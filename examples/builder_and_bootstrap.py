#!/usr/bin/env python
"""The §5 future-work tooling, working: palette → builder → bootstrap.

1. A :class:`NetworkPalette` gathers what the network offers (the data
   a visual builder would render).
2. An :class:`AssemblyBuilder` wires an application from that palette,
   type-checking every connection.
3. The assembly is wrapped into a **bootstrap component**
   (§2.4.4: "applications are just special components"), installed on
   one node, and instantiated — the single instance deploys the whole
   application through remote Node services.
4. A :class:`UsageMeter` shows the pay-per-use accounting of §2.1.1.

Run:  python examples/builder_and_bootstrap.py
"""

import dataclasses

from repro.cscw import (
    display_package,
    gui_part_package,
    whiteboard_package,
)
from repro.deployment.bootstrap import application_package
from repro.packaging.package import ComponentPackage, PackageBuilder
from repro.sim.topology import SERVER, star
from repro.testing import SimRig
from repro.tools import AssemblyBuilder, NetworkPalette, UsageMeter


def pay_per_use(package: ComponentPackage,
                cost: float) -> ComponentPackage:
    """Re-license a package as pay-per-use (vendor would do this)."""
    soft = dataclasses.replace(package.software, license="pay-per-use",
                               cost_per_use=cost)
    builder = PackageBuilder(soft, package.component)
    for path in package.members():
        if path.startswith("bin/"):
            builder.add_binary(path, package.member(path))
    return ComponentPackage(builder.build())


def main():
    rig = SimRig(star(3, hub_profile=SERVER))
    hub = rig.node("hub")

    # Publish components across the network; the whiteboard is a
    # commercial pay-per-use component in this story.
    hub.install_package(pay_per_use(whiteboard_package(), cost=0.50))
    hub.install_package(gui_part_package())
    rig.node("h0").install_package(display_package())
    meters = {host: UsageMeter(node) for host, node in rig.nodes.items()}

    # 1. the palette: what a visual builder would show the user
    palette = rig.run(until=NetworkPalette.gather(
        rig.node("h2"), rig.topology.host_ids()))
    print(palette.render())

    # 2. build the application, type-checked against the descriptors
    builder = AssemblyBuilder("board-app")
    builder.register_package(whiteboard_package())
    builder.register_package(gui_part_package())
    builder.register_package(display_package())
    assembly = (builder
                .add("board", "Whiteboard")
                .add("gui", "BoardGui")
                .add("screen", "Display")
                .connect("gui", "display", "screen", "graphics")
                .subscribe("gui", "board", "board", "changes")
                .build())
    print(f"\nbuilt assembly {assembly.name!r}: "
          f"{len(assembly.instances)} instances, "
          f"{len(assembly.connections)} connections (validated)")

    # 3. ship it as a bootstrap component and light it up from h2
    app_pkg = application_package(assembly)
    h2 = rig.node("h2")
    h2.install_package(app_pkg)
    bootstrap = h2.container.create_instance(app_pkg.name)
    rig.run(until=rig.env.now + 3.0)
    app = bootstrap.executor.application
    if bootstrap.executor.deploy_error:
        raise SystemExit(f"deploy failed: {bootstrap.executor.deploy_error}")
    print(f"bootstrap instance on h2 deployed the app: {app.placement}")

    # 4. the pay-per-use whiteboard was metered wherever it landed
    board_host = app.placement["board"]
    print(f"\n{meters[board_host].invoice()}")

    # teardown through the bootstrap instance
    h2.container.destroy_instance(bootstrap.instance_id)
    rig.run(until=rig.env.now + 2.0)
    print(f"\nafter bootstrap destruction, app torn down: "
          f"{app.torn_down}")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""The paper's motivating example: migrate the video decoder (§2.4.3).

"A component decoding a MPEG video stream would work much faster if it
is installed locally."

A camera host serves an encoded stream over a WAN; a viewer watches.
First the decoder runs next to the camera, shipping *decoded* frames
(8x larger) across the WAN — the display stutters.  Then the running
decoder is migrated (state and all) next to the viewer's display: only
the small encoded frames cross the WAN and the stream reaches full
frame rate.

Run:  python examples/video_migration.py
"""

from repro.container.migration import MigrationEngine
from repro.cscw import (
    display_package,
    stream_source_package,
    video_decoder_package,
)
from repro.cscw.video import FRAME_RATE
from repro.sim.topology import DESKTOP, SERVER, WAN, Topology
from repro.testing import SimRig


def main():
    topo = Topology()
    topo.add_host("camhost", SERVER)
    topo.add_host("viewer", DESKTOP)
    topo.add_link("camhost", "viewer", WAN)
    rig = SimRig(topo)
    cam, viewer = rig.node("camhost"), rig.node("viewer")

    cam.install_package(stream_source_package())
    cam.install_package(video_decoder_package())
    viewer.install_package(display_package())

    source = cam.container.create_instance("StreamSource")
    display = viewer.container.create_instance("Display")
    decoder = cam.container.create_instance("VideoDecoder")
    cam.container.connect(decoder.instance_id, "source",
                          source.ports.facet("stream").ior)
    cam.container.connect(decoder.instance_id, "display",
                          display.ports.facet("graphics").ior)

    window = 15.0
    rig.run(until=window)
    frames_remote = display.executor.drawn
    bytes_remote = rig.metrics.get("net.bytes")
    print(f"decoder at the CAMERA host for {window:.0f}s:")
    print(f"  frames shown : {frames_remote} "
          f"({frames_remote / window:.1f} fps, target {FRAME_RATE:.0f})")
    print(f"  WAN traffic  : {bytes_remote / 1e6:.2f} MB "
          f"({bytes_remote / window / 1e3:.0f} kB/s)")

    print("\nmigrating the running decoder to the viewer ...")
    info = rig.run(until=MigrationEngine(cam).migrate(
        decoder.instance_id, "viewer"))
    print(f"  now on {info.host}; decode position preserved at frame "
          f"{viewer.container.find_instance(info.instance_id).executor.frame_no}")

    t0, f0, b0 = rig.env.now, display.executor.drawn, rig.metrics.get(
        "net.bytes")
    rig.run(until=t0 + window)
    frames_local = display.executor.drawn - f0
    bytes_local = rig.metrics.get("net.bytes") - b0
    print(f"\ndecoder at the VIEWER for {window:.0f}s:")
    print(f"  frames shown : {frames_local} "
          f"({frames_local / window:.1f} fps)")
    print(f"  WAN traffic  : {bytes_local / 1e6:.2f} MB "
          f"({bytes_local / window / 1e3:.0f} kB/s)")

    speedup = frames_local / max(1, frames_remote)
    saving = bytes_remote / max(1, bytes_local)
    print(f"\n=> {speedup:.1f}x the frame rate at 1/{saving:.1f} "
          f"of the bandwidth, exactly the paper's argument.")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Quickstart: author a component, package it, deploy it, call it.

Walks the complete CORBA-LC development cycle on a three-host network:

1. define an interface in IDL (compiled by the bundled IDL compiler);
2. implement the component as an executor with a facet and an event
   source;
3. describe + package it (XML descriptors inside a ZIP);
4. install it on one node and let the *network* resolve it from another
   (run-time deployment: no host was ever hard-coded);
5. invoke it remotely and watch its events.

Run:  python examples/quickstart.py
"""

from repro.components.executor import ComponentExecutor, StatefulMixin
from repro.idl import compile_idl
from repro.orb.core import Servant
from repro.packaging.binaries import GLOBAL_BINARIES, synthetic_payload
from repro.packaging.package import ComponentPackage, PackageBuilder
from repro.sim.topology import SERVER, star
from repro.testing import SimRig
from repro.xmlmeta.descriptors import (
    ComponentTypeDescriptor,
    EventPortDecl,
    ImplementationDescriptor,
    PortDecl,
    QoSSpec,
    SoftwareDescriptor,
)
from repro.xmlmeta.versions import Version

# 1. The interface, in plain IDL --------------------------------------------------
GREETER_IDL = """
#pragma prefix "example"
module Quickstart {
  interface Greeter {
    string greet(in string name);
    long greeted_count();
  };
};
"""
GREETER = compile_idl(GREETER_IDL).Quickstart.Greeter


# 2. The implementation: an executor + its facet servant -----------------------------
class GreeterFacet(Servant):
    _interface = GREETER

    def __init__(self, executor):
        self._executor = executor

    def greet(self, name: str) -> str:
        self._executor.count += 1
        # announce every greeting on the component's event source
        self._executor.context.emit("greetings", name)
        return f"Hello, {name}! (greeting #{self._executor.count})"

    def greeted_count(self) -> int:
        return self._executor.count


class GreeterExecutor(StatefulMixin, ComponentExecutor):
    STATE_ATTRS = ("count",)

    def __init__(self):
        super().__init__()
        self.count = 0

    def create_facet(self, port_name):
        assert port_name == "hello"
        return GreeterFacet(self)


# 3. Describe + package ---------------------------------------------------------------
def build_greeter_package() -> ComponentPackage:
    GLOBAL_BINARIES.register("example.greeter", GreeterExecutor)
    software = SoftwareDescriptor(
        name="Greeter",
        version=Version.parse("1.0.0"),
        vendor="quickstart",
        abstract="Greets people and announces each greeting as an event.",
        mobility="mobile",
        replication="coordinated",
        implementations=[ImplementationDescriptor(
            os="*", arch="*", orb="*",
            entry_point="example.greeter",
            binary_path="bin/any/greeter")],
    )
    component_type = ComponentTypeDescriptor(
        name="Greeter",
        provides=[PortDecl("hello", GREETER.repo_id)],
        emits=[EventPortDecl("greetings", "quickstart.greeting")],
        qos=QoSSpec(cpu_units=10.0, memory_mb=8.0),
    )
    builder = PackageBuilder(software, component_type)
    builder.add_idl("greeter", GREETER_IDL)
    builder.add_binary("bin/any/greeter", synthetic_payload(4096, seed=1))
    return ComponentPackage(builder.build())


def main():
    # A hub + 2 leaves LAN; one CORBA-LC Node runs per host.
    rig = SimRig(star(2, hub_profile=SERVER))
    hub, h0, h1 = rig.node("hub"), rig.node("h0"), rig.node("h1")

    package = build_greeter_package()
    print(f"built package: {package.name} v{package.version}, "
          f"{package.size} bytes, members: {package.members()}")

    # 4. Install on the hub only.  h1 will get it through the network:
    # stand up the Distributed Registry so nodes resolve network-wide.
    from repro.registry.groups import DistributedRegistry, RegistryConfig
    registry = DistributedRegistry(rig.nodes,
                                   RegistryConfig(update_interval=1.0))
    registry.deploy({"lan": rig.topology.host_ids()})

    hub.install_package(package)
    print(f"installed on hub; registry sees: "
          f"{[c.name for c in hub.registry.installed()]}")
    rig.run(until=registry.settle_time())  # let soft-state views warm up

    # Dependency resolution from another host: the node asks the network
    # for *an interface*, not a hostname.
    greeter_ior = rig.run(until=h1.request_component(GREETER.repo_id))
    print(f"h1 resolved Greeter -> {greeter_ior}")

    # 5. Invoke through a typed stub (full CDR on the simulated wire).
    greeter = h1.orb.stub(greeter_ior, GREETER)
    print(h1.orb.sync(greeter.greet("Ada")))
    print(h1.orb.sync(greeter.greet("Barbara")))
    print("greeted_count =", h1.orb.sync(greeter.greeted_count()))

    # Watch the component's events from a third host.
    from repro.orb.services.events import (
        CallbackPushConsumer, EVENT_CHANNEL_IFACE)
    heard = []
    consumer_ior = h0.orb.adapter("root").activate(
        CallbackPushConsumer(lambda any_: heard.append(any_.value)))
    channel = hub.events.channel_ior("quickstart.greeting")
    h0.orb.sync(h0.orb.stub(channel, EVENT_CHANNEL_IFACE)
                .connect_push_consumer(consumer_ior))
    h1.orb.sync(greeter.greet("Grace"))
    rig.run(until=rig.env.now + 1.0)
    print("h0 heard greeting events:", heard)

    print(f"\nsimulated time: {rig.env.now:.4f}s, "
          f"network bytes: {int(rig.metrics.get('net.bytes'))}, "
          f"messages: {int(rig.metrics.get('net.messages'))}")


if __name__ == "__main__":
    main()

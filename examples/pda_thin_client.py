#!/usr/bin/env python
"""Tiny devices as first-class nodes (§2 R8, §3.1).

A PDA joins the network over a lossy wireless link.  It is far too weak
to run the whiteboard or its GUI (their QoS exceeds the PDA's CPU), so:

- the PDA receives only the *subset* of the Display package built for
  its platform (§2.3 partial extraction — compare the sizes!);
- every other component runs on the server and is used remotely;
- the distributed registry's placement logic never selects the PDA for
  normal components (tiny hosts are a last resort).

Run:  python examples/pda_thin_client.py
"""

from repro.cscw import (
    SURFACE_IFACE,
    display_package,
    gui_part_package,
    whiteboard_package,
)
from repro.registry.groups import DistributedRegistry, RegistryConfig
from repro.sim.topology import PDA, SERVER, WIRELESS, Topology
from repro.testing import SimRig


def main():
    topo = Topology()
    topo.add_host("server", SERVER)
    topo.add_host("pda", PDA)
    topo.add_link("server", "pda", WIRELESS)
    rig = SimRig(topo)
    server, pda = rig.node("server"), rig.node("pda")

    # Full multi-platform package vs. the PDA's slice of it (§2.3).
    full = display_package(multi_platform=True)
    subset = full.extract_subset(PDA.os, PDA.arch, PDA.orb)
    print(f"Display package: full={full.size} bytes "
          f"({len(full.software.implementations)} platforms), "
          f"PDA subset={subset.size} bytes "
          f"({len(subset.software.implementations)} platform)")

    server.install_package(whiteboard_package())
    server.install_package(gui_part_package())
    pda.install_package(subset)

    # Stand up the distributed registry over both hosts.
    registry = DistributedRegistry(
        rig.nodes, RegistryConfig(update_interval=2.0))
    registry.deploy({"g0": ["server", "pda"]})
    rig.run(until=registry.settle_time())

    # The PDA can host its own (cheap) display...
    display = pda.container.create_instance("Display")
    print(f"PDA runs: {[i.component_name for i in pda.container.instances()]}")

    # ...but resolving the whiteboard from the PDA lands on the server.
    ior = rig.run(until=pda.request_component(SURFACE_IFACE.repo_id))
    print(f"PDA resolved Whiteboard -> host {ior.host_id!r} "
          f"(used remotely, never fetched)")

    # The GUI part also runs on the server, painting to the PDA display.
    gui = server.container.create_instance("BoardGui")
    server.container.connect(gui.instance_id, "display",
                             display.ports.facet("graphics").ior)

    surface = pda.orb.stub(ior, SURFACE_IFACE)
    t0 = rig.env.now
    for i in range(5):
        pda.orb.sync(surface.add_stroke({
            "author": "pda-user", "x0": float(i), "y0": 0.0,
            "x1": float(i), "y1": 1.0, "color": "black"}))
    rig.run(until=rig.env.now + 2.0)
    drawn = display.executor.drawn
    print(f"PDA drew 5 strokes through the remote board; "
          f"its local display painted {drawn} updates")
    print(f"round-trip budget over wireless: "
          f"{(rig.env.now - t0):.3f} sim-s, "
          f"PDA never exceeded its {PDA.cpu_power:.0f}-unit CPU "
          f"(committed: {pda.resources.cpu_committed:.0f})")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Grid computing (§3.2): Monte-Carlo π over harvested idle cycles.

Part 1 — one-shot aggregation: the data-parallel component splits its
sample budget, workers are instantiated across the cluster, partials
are gathered and merged (§2.1.1 "aggregation").

Part 2 — volunteer computing: workstations with simulated interactive
users volunteer only while idle; the master farms shards, tolerates
crashes by re-queueing, and the answer still converges.

Run:  python examples/grid_montecarlo.py
"""

import math

from repro.container.aggregation import AggregationCoordinator
from repro.grid import (
    IdleMonitor,
    MonteCarloPiExecutor,
    VolunteerAgent,
    VolunteerMaster,
    montecarlo_package,
)
from repro.sim.faults import FaultInjector
from repro.sim.topology import SERVER, star
from repro.testing import SimRig


def one_shot_aggregation():
    print("== one-shot data-parallel aggregation ==")
    rig = SimRig(star(8, hub_profile=SERVER), seed=1)
    hub = rig.node("hub")
    hub.install_package(montecarlo_package())

    for workers in (1, 2, 4, 8):
        r = SimRig(star(8, hub_profile=SERVER), seed=1)
        r.node("hub").install_package(montecarlo_package())
        coordinator = AggregationCoordinator(r.node("hub"))
        t0 = r.env.now
        estimate = r.run(until=coordinator.run(
            "MonteCarloPi", [f"h{i}" for i in range(workers)],
            {"total_samples": 400_000, "base_seed": 7}))
        elapsed = r.env.now - t0
        print(f"  {workers} workers: pi~{estimate:.4f} "
              f"in {elapsed:7.3f} sim-s")


def volunteer_pool():
    print("\n== volunteer computing with user churn and a crash ==")
    rig = SimRig(star(10, hub_profile=SERVER), seed=4)
    hub = rig.node("hub")
    hub.install_package(montecarlo_package())

    master = VolunteerMaster(hub, "MonteCarloPi", shard_timeout=20.0)
    for i in range(10):
        node = rig.node(f"h{i}")
        monitor = IdleMonitor(node, rig.rngs.stream(f"idle.{i}"),
                              mean_busy=20.0, mean_idle=60.0)
        VolunteerAgent(node, monitor, master.ior)

    # one volunteer will die mid-run
    FaultInjector(rig.env, rig.topology).crash_at(3.0, "h2")

    shards = [{"samples": 100_000, "seed": i} for i in range(30)]
    done = master.submit(shards)
    partials = rig.run(until=done)
    estimate = MonteCarloPiExecutor.merge_values(partials)

    print(f"  {len(shards)} shards over volunteers "
          f"(requeues after crash/churn: {master.requeues})")
    print(f"  pi ~ {estimate:.5f}  (error "
          f"{abs(estimate - math.pi):.5f})")
    print(f"  finished at sim t={rig.env.now:.1f}s; "
          f"registrations={int(rig.metrics.get('volunteer.registrations'))}")


if __name__ == "__main__":
    one_shot_aggregation()
    volunteer_pool()

#!/usr/bin/env python
"""Figure 2, live: a collaborative whiteboard across three users.

A server and two workstations share a whiteboard.  The shared model
lives wherever the run-time deployer puts it; each user's GUI part
renders strokes onto the *local* Display component ("GUI components can
be considered within the modular design of the application", §3.1).
Midway, Bob's GUI part is replaced with a different renderer at run
time — the presentation-layer swap the paper advertises.

Run:  python examples/cscw_whiteboard.py
"""

from repro.cscw import (
    SURFACE_IFACE,
    display_package,
    gui_part_package,
    whiteboard_package,
)
from repro.deployment import Deployer, RuntimePlanner
from repro.sim.topology import DESKTOP, LAN, SERVER, Topology
from repro.testing import SimRig
from repro.xmlmeta.descriptors import (
    AssemblyConnection,
    AssemblyDescriptor,
    AssemblyInstance,
)


def make_office() -> SimRig:
    topo = Topology()
    topo.add_host("server", SERVER)
    topo.add_host("alice", DESKTOP)
    topo.add_host("bob", DESKTOP)
    for a, b in (("server", "alice"), ("server", "bob"), ("alice", "bob")):
        topo.add_link(a, b, LAN)
    return SimRig(topo)


def stroke(author, x0, y0, x1, y1, color):
    return {"author": author, "x0": x0, "y0": y0, "x1": x1, "y1": y1,
            "color": color}


def main():
    rig = make_office()
    server = rig.node("server")

    # Components are published on the server; displays are installed on
    # every user's machine (the display is pinned hardware).
    server.install_package(whiteboard_package())
    server.install_package(gui_part_package(style="wireframe"))
    server.install_package(gui_part_package(style="filled",
                                            name="FilledGui"))
    displays = {}
    for user in ("alice", "bob"):
        rig.node(user).install_package(display_package())
        displays[user] = rig.node(user).container.create_instance(
            "Display")

    # The application is an assembly: instances + connections, deployed
    # at RUN time by the planner (no hosts named!).
    assembly = AssemblyDescriptor(
        name="whiteboard",
        instances=[
            AssemblyInstance("board", "Whiteboard"),
            AssemblyInstance("gui_alice", "BoardGui"),
            AssemblyInstance("gui_bob", "BoardGui"),
        ],
        connections=[
            AssemblyConnection("gui_alice", "board", "board", "changes",
                               kind="event"),
            AssemblyConnection("gui_bob", "board", "board", "changes",
                               kind="event"),
        ],
    )
    deployer = Deployer(rig.nodes, RuntimePlanner(),
                        coordinator_host="server")
    app = rig.run(until=deployer.deploy(assembly))
    print("run-time placement:", app.placement)

    # Wire each GUI part to its user's local display.
    for user, gui in (("alice", "gui_alice"), ("bob", "gui_bob")):
        agent = server.service_stub(app.placement[gui], "container")
        rig.run(until=agent.connect(
            app.instance_id(gui), "display",
            displays[user].ports.facet("graphics").ior.to_string()))

    surface = server.orb.stub(app.facet_ior("board", "surface"),
                              SURFACE_IFACE)

    # Alice and Bob draw.
    server.orb.sync(surface.add_stroke(
        stroke("alice", 0, 0, 4, 4, "red")))
    server.orb.sync(surface.add_stroke(
        stroke("bob", 4, 0, 0, 4, "blue")))
    rig.run(until=rig.env.now + 0.5)
    for user in ("alice", "bob"):
        ex = displays[user].executor
        print(f"{user}'s display painted {ex.drawn} strokes: "
              f"{list(ex.windows.values())[0]}")

    # Run-time presentation swap: replace Bob's GUI part with the
    # filled renderer — new instance, same wiring, old one destroyed.
    print("\nreplacing bob's GUI part with the 'filled' renderer...")
    bob_host = app.placement["gui_bob"]
    agent = server.service_stub(bob_host, "container")
    rig.run(until=agent.destroy_instance(app.instance_id("gui_bob")))
    from repro.components.reflection import InstanceInfo
    info = InstanceInfo.from_value(rig.run(until=agent.create_instance(
        "FilledGui", "", "whiteboard.gui_bob2")))
    rig.run(until=agent.connect(
        info.instance_id, "display",
        displays["bob"].ports.facet("graphics").ior.to_string()))
    from repro.node.events import EventBroker
    channel = EventBroker.channel_ior_on(app.placement["board"],
                                         "cscw.stroke")
    rig.run(until=agent.subscribe(info.instance_id, "board",
                                  channel.to_string()))

    server.orb.sync(surface.add_stroke(
        stroke("alice", 2, 2, 3, 3, "green")))
    rig.run(until=rig.env.now + 0.5)
    last = list(displays["bob"].executor.windows.values())[-1][-1]
    print(f"bob's display now renders: {last!r}")

    strokes = server.orb.sync(surface.strokes())
    print(f"\nboard holds {len(strokes)} strokes; "
          f"sim time {rig.env.now:.3f}s, "
          f"wire bytes {int(rig.metrics.get('net.bytes'))}")


if __name__ == "__main__":
    main()

"""CORBA Lightweight Components (CORBA-LC) — a full reproduction.

Implements the component model of Sevilla, García & Gómez, *Design and
Implementation Requirements for CORBA Lightweight Components* (ICPP
2001): a lightweight, reflective, peer-to-peer distributed component
model in which the network as a whole is the repository of components
and resources, and deployment is decided at run time.

Subpackages, bottom-up:

- :mod:`repro.sim` — deterministic discrete-event simulation substrate
  (kernel, topology, network, faults, metrics).
- :mod:`repro.orb` — a CORBA-like ORB (CDR, GIOP, IORs, POA, DII,
  naming, event channels).
- :mod:`repro.idl` — an OMG IDL compiler emitting runtime artifacts.
- :mod:`repro.xmlmeta` — OSD-based XML component descriptors.
- :mod:`repro.packaging` — ZIP component packages with signatures.
- :mod:`repro.components` — the component model: executors, ports,
  factories, reflection.
- :mod:`repro.container` — instance runtime: lifecycle, migration,
  replication, aggregation.
- :mod:`repro.node` — the per-host Node service (paper Fig. 1).
- :mod:`repro.registry` — the Distributed Registry protocols (MRMs,
  soft state, hierarchical queries, replication, prediction).
- :mod:`repro.deployment` — run-time placement, applications, load
  balancing.
- :mod:`repro.cscw` / :mod:`repro.grid` — the paper's §3 domains.
- :mod:`repro.testing` — demo components and simulation rigs.

Most programs start from :class:`repro.testing.SimRig` (or build an
:class:`repro.sim.Environment` + :class:`repro.sim.Network` +
:class:`repro.node.Node` per host by hand), deploy a
:class:`repro.registry.DistributedRegistry`, install packages, and let
``node.request_component(repo_id)`` do the rest.
"""

__version__ = "1.0.0"

__all__ = [
    "sim",
    "orb",
    "idl",
    "xmlmeta",
    "packaging",
    "components",
    "container",
    "node",
    "registry",
    "deployment",
    "cscw",
    "grid",
    "testing",
]

"""Run-time load balancing via instance migration (§2.4.3).

"Network Resource Monitoring and component instance migration and
replication to achieve load balancing" — the balancer periodically
compares host CPU utilizations and, when the spread exceeds a
threshold, migrates a mobile instance from the hottest host to the
host that would profit most, re-wiring the owning application.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.container.migration import MigrationError
from repro.deployment.application import Application, Deployer
from repro.deployment.planner import load_imbalance
from repro.orb.exceptions import SystemException
from repro.sim.kernel import Event, Interrupt


@dataclass(frozen=True)
class BalanceAction:
    """One migration the balancer performed."""

    time: float
    instance: str
    application: str
    source: str
    target: str


class LoadBalancer:
    """Threshold-based migration scheduler over a deployer's nodes."""

    def __init__(self, deployer: Deployer, threshold: float = 0.25,
                 interval: float = 10.0) -> None:
        self.deployer = deployer
        self.threshold = threshold
        self.interval = interval
        self.actions: list[BalanceAction] = []
        self._proc = None

    # -- one-shot ------------------------------------------------------------
    def run_once(self) -> Event:
        """One balancing pass; yields the action taken or None."""
        return self.deployer.env.process(self._run_once())

    def _run_once(self):
        views = yield from self.deployer._gather_views()
        usable = [v for v in views if not v.is_tiny]
        if len(usable) < 2 or load_imbalance(usable) < self.threshold:
            return None
        hottest = max(usable, key=lambda v: v.cpu_utilization)
        coolest = min(usable, key=lambda v: v.cpu_utilization)
        choice = self._pick_instance(hottest.host, coolest)
        if choice is None:
            return None
        app, instance_name, qos = choice
        try:
            yield app.migrate(instance_name, coolest.host)
        except MigrationError:
            return None
        except SystemException:
            # A host crashed mid-migration or mid-rewire.  The balancer
            # is a background service: it must log the failure and keep
            # its loop alive, not die with the host that crashed.
            self.deployer.coordinator.metrics.counter(
                "balance.failures").inc()
            return None
        action = BalanceAction(
            time=self.deployer.env.now, instance=instance_name,
            application=app.name, source=hottest.host, target=coolest.host)
        self.actions.append(action)
        self.deployer.coordinator.metrics.counter("balance.migrations").inc()
        return action

    def _pick_instance(self, hot_host: str, cool_view
                       ) -> Optional[tuple[Application, str, object]]:
        """The biggest mobile instance on *hot_host* that fits the target."""
        best = None
        for app in self.deployer.applications:
            for name, host in app.placement.items():
                if host != hot_host:
                    continue
                info = app.infos[name]
                node = self.deployer.nodes[hot_host]
                instance = node.container.find_instance(info.instance_id)
                if instance is None:
                    continue
                cls = instance.component_class
                if not cls.is_mobile:
                    continue
                qos = cls.component_type.qos
                if (qos.cpu_units > cool_view.cpu_available
                        or qos.memory_mb > cool_view.memory_available):
                    continue
                if best is None or qos.cpu_units > best[2].cpu_units:
                    best = (app, name, qos)
        return best

    # -- continuous -------------------------------------------------------------
    def start(self) -> None:
        if self._proc is None or not self._proc.is_alive:
            self._proc = self.deployer.env.process(self._loop())

    def stop(self) -> None:
        if self._proc is not None and self._proc.is_alive:
            self._proc.interrupt("balancer stopped")

    def _loop(self):
        try:
            while True:
                yield self.deployer.env.timeout(self.interval)
                yield from self._run_once()
        except Interrupt:
            return

"""Placement planners: where should each assembly instance run?

The CORBA-LC :class:`RuntimePlanner` decides with *current* resource
views (dynamic data from the Reflection Architecture).  The baselines
model what the paper contrasts against:

- :class:`StaticPlanner` — "traditional component models force
  programmers to decide the hosts ... using a 'static' description"
  (§1): placement is computed once from static capacities and reused
  regardless of load (a CCM assembly).
- :class:`RandomPlanner` / :class:`RoundRobinPlanner` — naive spreads.

All planners return ``{instance_name: host_id}`` and raise
:class:`PlacementError` when an instance cannot fit anywhere.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.node.resources import ResourceSnapshot
from repro.util.errors import ReproError
from repro.xmlmeta.descriptors import AssemblyDescriptor, QoSSpec


class PlacementError(ReproError):
    """No host can satisfy an instance's QoS requirements."""


class PlannerBase:
    """Shared helpers: per-host capacity tracking during planning."""

    #: Hosts whose profile is tiny are never given instances unless
    #: nothing else fits — the paper's PDAs "use all components
    #: remotely" (§3.1).
    avoid_tiny: bool = True

    def plan(self, assembly: AssemblyDescriptor,
             views: Sequence[ResourceSnapshot],
             qos_of: dict[str, QoSSpec]) -> dict[str, str]:
        raise NotImplementedError

    def replan_instance(self, assembly: AssemblyDescriptor,
                        instance_name: str,
                        views: Sequence[ResourceSnapshot],
                        qos_of: dict[str, QoSSpec],
                        exclude: Sequence[str] = ()) -> str:
        """Place one instance of an already-deployed assembly.

        Used for recovery: the rest of the assembly stays put, so only
        *instance_name* is planned, against current views minus the
        hosts in *exclude* (typically the host it was stranded on).
        """
        decls = [i for i in assembly.instances if i.name == instance_name]
        if not decls:
            raise PlacementError(
                f"assembly {assembly.name!r} has no instance "
                f"{instance_name!r}"
            )
        mini = AssemblyDescriptor(name=assembly.name, instances=decls,
                                  connections=[])
        excluded = set(exclude)
        usable = [v for v in views if v.host not in excluded]
        return self.plan(mini, usable, qos_of)[instance_name]

    # -- helpers -----------------------------------------------------------
    @staticmethod
    def _ordered_instances(assembly: AssemblyDescriptor,
                           qos_of: dict[str, QoSSpec]):
        """Biggest CPU demand first (best-fit-decreasing)."""
        def cpu(inst):
            return qos_of.get(inst.component, QoSSpec()).cpu_units
        return sorted(assembly.instances, key=cpu, reverse=True)

    @staticmethod
    def _free_tables(views: Sequence[ResourceSnapshot], dynamic: bool
                     ) -> tuple[dict[str, float], dict[str, float]]:
        """(free cpu, free memory) per host.

        ``dynamic=False`` ignores current commitments — that is exactly
        what makes a static plan blind to load.
        """
        cpu, mem = {}, {}
        for view in views:
            if dynamic:
                cpu[view.host] = view.cpu_available
                mem[view.host] = view.memory_available
            else:
                cpu[view.host] = view.cpu_capacity
                mem[view.host] = view.memory_capacity
        return cpu, mem

    def _fits(self, host: str, qos: QoSSpec, cpu: dict, mem: dict) -> bool:
        return (cpu.get(host, 0.0) >= qos.cpu_units
                and mem.get(host, 0.0) >= qos.memory_mb)

    def _commit(self, host: str, qos: QoSSpec, cpu: dict, mem: dict) -> None:
        cpu[host] -= qos.cpu_units
        mem[host] -= qos.memory_mb

    def _host_classes(self, views: Sequence[ResourceSnapshot]
                      ) -> tuple[list[str], list[str]]:
        """(preferred hosts, tiny hosts)."""
        normal = [v.host for v in views if not v.is_tiny]
        tiny = [v.host for v in views if v.is_tiny]
        return normal, tiny


class RuntimePlanner(PlannerBase):
    """CORBA-LC placement: balance load using *current* free resources.

    Greedy best-fit-decreasing: each instance goes to the host that
    retains the largest free-CPU fraction after accepting it, which
    spreads heavy components across the least loaded machines.
    """

    def plan(self, assembly, views, qos_of):
        cpu, mem = self._free_tables(views, dynamic=True)
        capacity = {v.host: v.cpu_capacity for v in views}
        normal, tiny = self._host_classes(views)
        placement: dict[str, str] = {}
        for inst in self._ordered_instances(assembly, qos_of):
            qos = qos_of.get(inst.component, QoSSpec())
            candidates = [h for h in normal if self._fits(h, qos, cpu, mem)]
            if not candidates and (tiny and not self.avoid_tiny or tiny):
                candidates = [h for h in tiny
                              if self._fits(h, qos, cpu, mem)]
            if not candidates:
                raise PlacementError(
                    f"no host fits {inst.name} "
                    f"(cpu={qos.cpu_units}, mem={qos.memory_mb})"
                )
            best = max(candidates,
                       key=lambda h: (cpu[h] - qos.cpu_units)
                       / max(capacity[h], 1e-9))
            placement[inst.name] = best
            self._commit(best, qos, cpu, mem)
        return placement


class StaticPlanner(PlannerBase):
    """CCM-style fixed assembly: placement from *static* capacity only.

    The plan is computed from nameplate capacities, ignoring whatever
    is already running — and, mimicking a hand-written deployment
    descriptor, the same assembly always yields the same mapping.
    """

    def plan(self, assembly, views, qos_of):
        cpu, mem = self._free_tables(views, dynamic=False)
        normal, tiny = self._host_classes(views)
        hosts = sorted(normal) or sorted(tiny)
        placement: dict[str, str] = {}
        index = 0
        for inst in assembly.instances:  # descriptor order, not sorted
            qos = qos_of.get(inst.component, QoSSpec())
            chosen: Optional[str] = None
            for offset in range(len(hosts)):
                host = hosts[(index + offset) % len(hosts)]
                if self._fits(host, qos, cpu, mem):
                    chosen = host
                    index = (index + offset + 1) % len(hosts)
                    break
            if chosen is None:
                raise PlacementError(f"static plan cannot fit {inst.name}")
            placement[inst.name] = chosen
            self._commit(chosen, qos, cpu, mem)
        return placement


class RandomPlanner(PlannerBase):
    """Uniform random placement among hosts that fit.

    Accepts either a ready generator or an
    :class:`~repro.sim.rng.RngRegistry`, from which the dedicated
    ``deployment.random_planner`` stream is drawn — so two planners
    built over equal-seeded registries place identically.
    """

    STREAM = "deployment.random_planner"

    def __init__(self, rng) -> None:
        stream = getattr(rng, "stream", None)
        self.rng: np.random.Generator = (
            stream(self.STREAM) if callable(stream) else rng)

    def plan(self, assembly, views, qos_of):
        cpu, mem = self._free_tables(views, dynamic=True)
        normal, tiny = self._host_classes(views)
        placement: dict[str, str] = {}
        for inst in assembly.instances:
            qos = qos_of.get(inst.component, QoSSpec())
            candidates = [h for h in normal if self._fits(h, qos, cpu, mem)]
            if not candidates:
                candidates = [h for h in tiny
                              if self._fits(h, qos, cpu, mem)]
            if not candidates:
                raise PlacementError(f"no host fits {inst.name}")
            chosen = candidates[int(self.rng.integers(0, len(candidates)))]
            placement[inst.name] = chosen
            self._commit(chosen, qos, cpu, mem)
        return placement


class RoundRobinPlanner(PlannerBase):
    """Cycle through hosts irrespective of load or heterogeneity."""

    def plan(self, assembly, views, qos_of):
        cpu, mem = self._free_tables(views, dynamic=True)
        normal, tiny = self._host_classes(views)
        hosts = sorted(normal) or sorted(tiny)
        placement: dict[str, str] = {}
        for i, inst in enumerate(assembly.instances):
            qos = qos_of.get(inst.component, QoSSpec())
            chosen = None
            for offset in range(len(hosts)):
                host = hosts[(i + offset) % len(hosts)]
                if self._fits(host, qos, cpu, mem):
                    chosen = host
                    break
            if chosen is None:
                raise PlacementError(f"no host fits {inst.name}")
            placement[inst.name] = chosen
            self._commit(chosen, qos, cpu, mem)
        return placement


class VerifiedPlanner(PlannerBase):
    """Wrap any planner with a static-verification gate.

    An alternative to handing the gate to the :class:`Deployer`
    directly, for callers that build their planner pipeline separately:
    ``plan`` first runs the gate's check against the node population it
    was constructed over, so an assembly that fails verification never
    produces a placement.  The gate is duck-typed (see
    :class:`repro.analysis.gate.DeploymentGate`) to keep this module
    free of an analysis dependency.
    """

    def __init__(self, inner: PlannerBase, gate, nodes,
                 metrics=None) -> None:
        self.inner = inner
        self.gate = gate
        self.nodes = nodes
        self.metrics = metrics

    def plan(self, assembly, views, qos_of):
        self.gate.check(assembly, self.nodes, metrics=self.metrics)
        return self.inner.plan(assembly, views, qos_of)

    def replan_instance(self, assembly, instance_name, views, qos_of,
                        exclude=()):
        # Recovery replans an already-verified assembly; re-checking a
        # one-instance slice would flag its (intentionally stripped)
        # connections, so delegate unverified.
        return self.inner.replan_instance(assembly, instance_name, views,
                                          qos_of, exclude=exclude)


def load_imbalance(views: Sequence[ResourceSnapshot]) -> float:
    """Max-min CPU utilization spread — the benchmarks' balance metric."""
    utils = [v.cpu_utilization for v in views if not v.is_tiny]
    if not utils:
        return 0.0
    return float(max(utils) - min(utils))

"""Applications as bootstrap components (§2.4.4, taken literally).

"In CORBA-LC, applications are just special components.  They are
special because (1) they encapsulate the explicit rules to connect
together certain components and their instances ...  applications can
be considered as bootstrap components: when applications start running,
they expose their explicit dependencies, requiring instances of other
components and connecting them following the user stated pattern."

:func:`application_package` wraps an
:class:`~repro.xmlmeta.descriptors.AssemblyDescriptor` into an
installable component whose executor, on activation, deploys the
assembly — using only the node it happens to run on (remote registry /
acceptor / container-agent calls through :class:`NetworkDeployer`).
Install the package anywhere, create one instance, and the application
materializes; destroy the instance and it tears down.
"""

from __future__ import annotations

from typing import Optional

from repro.components.executor import ComponentExecutor
from repro.components.reflection import ComponentInfo
from repro.deployment.application import Application, Deployer
from repro.deployment.planner import RuntimePlanner
from repro.node.resources import ResourceSnapshot
from repro.orb.exceptions import SystemException
from repro.packaging.binaries import GLOBAL_BINARIES
from repro.packaging.package import ComponentPackage, PackageBuilder
from repro.sim.kernel import Interrupt
from repro.util.errors import ReproError
from repro.xmlmeta.descriptors import (
    AssemblyDescriptor,
    ComponentTypeDescriptor,
    ImplementationDescriptor,
    QoSSpec,
    SoftwareDescriptor,
)
from repro.xmlmeta.versions import Version

ASSEMBLY_MEMBER = "META-INF/assembly.xml"


class BootstrapError(ReproError):
    """The bootstrap component could not deploy its assembly."""


class NetworkDeployer(Deployer):
    """A Deployer that lives on ONE node and sees peers only through
    their remote Node services.

    The orchestrator-side :class:`Deployer` peeks into local
    ``Node`` objects for component metadata; this subclass obtains the
    same information over the wire (registry ``installed()`` carries
    each component's QoS and the acceptor serves packages), so it can
    run inside a component instance — which is exactly what a bootstrap
    application is.
    """

    def __init__(self, node, host_ids: list[str], planner=None,
                 gate=None) -> None:
        self.node = node
        self.host_ids = [h for h in host_ids]
        self.planner = planner or RuntimePlanner()
        self.gate = gate
        self.coordinator = node
        self.env = node.env
        self.topology = node.network.topology
        self.nodes = {}           # intentionally empty: remote-only
        self.applications: list[Application] = []
        self._component_cache: dict[str, tuple[str, ComponentInfo]] = {}

    # -- remote discovery ---------------------------------------------------
    def _gather_views(self):
        views: list[ResourceSnapshot] = []
        from repro.node.node import Node
        from repro.node.resources import RESOURCE_MANAGER_IFACE
        snapshot_op = RESOURCE_MANAGER_IFACE.operations["snapshot"]
        for host in self.host_ids:
            if not self.topology.host(host).alive:
                continue
            ior = Node.service_ior(host, "resources")
            try:
                value = yield self.node.orb.invoke(
                    ior, snapshot_op, (), timeout=2.0,
                    meter="deploy.views")
            except SystemException:
                continue
            views.append(ResourceSnapshot.from_value(value))
        return views

    def _locate(self, component: str):
        """Find (host, ComponentInfo) for *component* over the wire."""
        cached = self._component_cache.get(component)
        if cached is not None and self.topology.host(cached[0]).alive:
            return cached
        from repro.node.registry import COMPONENT_REGISTRY_IFACE
        installed_op = COMPONENT_REGISTRY_IFACE.operations["installed"]
        from repro.node.node import Node
        for host in self.host_ids:
            if not self.topology.host(host).alive:
                continue
            ior = Node.service_ior(host, "registry")
            try:
                infos = yield self.node.orb.invoke(
                    ior, installed_op, (), timeout=2.0,
                    meter="deploy.locate")
            except SystemException:
                continue
            for value in infos:
                info = ComponentInfo.from_value(value)
                if info.name == component:
                    self._component_cache[component] = (host, info)
                    return (host, info)
        raise BootstrapError(
            f"component {component!r} is installed nowhere reachable"
        )

    # -- overrides of the local-introspection paths ------------------------------
    def _deploy(self, assembly: AssemblyDescriptor):
        # Resolve sources and QoS remotely before the base pipeline.
        self._sources: dict[str, str] = {}
        self._qos: dict[str, QoSSpec] = {}
        for inst in assembly.instances:
            if inst.component in self._qos:
                continue
            host, info = yield from self._locate(inst.component)
            self._sources[inst.component] = host
            self._qos[inst.component] = QoSSpec(
                cpu_units=info.qos_cpu, memory_mb=info.qos_memory,
                bandwidth_bps=info.qos_bandwidth)
        result = yield from super()._deploy(assembly)
        return result

    def _qos_of(self, assembly: AssemblyDescriptor) -> dict[str, QoSSpec]:
        return dict(self._qos)

    def _source_host(self, component: str) -> str:
        try:
            return self._sources[component]
        except (AttributeError, KeyError):
            raise BootstrapError(
                f"no known source for {component!r}"
            ) from None

    def _ensure_installed(self, component: str, host: str):
        """Fully remote variant: probe the target's acceptor, ship the
        package from the discovered source if needed."""
        target = self.node.service_stub(host, "acceptor")
        if (yield target.is_installed(component, "")):
            return
        source = self._source_host(component)
        pkg = yield self.node.service_stub(source, "acceptor").fetch(
            component, "")
        if not (yield target.is_installed(component, "")):
            yield target.install(pkg)
        self.node.metrics.counter("deploy.packages_shipped").inc()


class BootstrapExecutor(ComponentExecutor):
    """Executor of an application component.

    On activation it parses the assembly carried in its own package and
    deploys it through a :class:`NetworkDeployer`; on removal it tears
    the application down.  The node object and peer list are injected
    by the container context plus the factory configuration below.
    """

    #: set per generated subclass by :func:`application_package`.
    ASSEMBLY_XML: str = ""

    def __init__(self) -> None:
        super().__init__()
        self.application = None
        self.deploy_error = None

    def on_activate(self) -> None:
        self.context.spawn(self._bootstrap())

    def _bootstrap(self):
        try:
            node = self.context._container.node  # agreed local interface
            assembly = AssemblyDescriptor.from_xml(self.ASSEMBLY_XML)
            host_ids = node.network.topology.host_ids()
            deployer = NetworkDeployer(node, host_ids)
            self.application = yield deployer.deploy(assembly)
        except Interrupt:
            return
        except Exception as exc:
            self.deploy_error = exc

    def on_remove(self) -> None:
        if self.application is not None and not self.application.torn_down:
            # fire-and-forget teardown; the process outlives the
            # bootstrap instance itself
            self.application.teardown()


def application_package(assembly: AssemblyDescriptor,
                        version: str = "1.0.0",
                        vendor: str = "app",
                        name: Optional[str] = None) -> ComponentPackage:
    """Package *assembly* as an installable bootstrap component."""
    comp_name = name or f"app-{assembly.name}"
    xml = assembly.to_xml()

    executor_cls = type(
        f"Bootstrap_{assembly.name}", (BootstrapExecutor,),
        {"ASSEMBLY_XML": xml},
    )
    entry = f"bootstrap.{comp_name}"
    GLOBAL_BINARIES.register(entry, executor_cls, replace=True)

    soft = SoftwareDescriptor(
        name=comp_name, version=Version.parse(version), vendor=vendor,
        abstract=f"Bootstrap component for application {assembly.name!r}.",
        mobility="mobile", replication="none",
        implementations=[ImplementationDescriptor(
            "*", "*", "*", entry, "bin/any/bootstrap")],
    )
    comp = ComponentTypeDescriptor(
        name=comp_name,
        qos=QoSSpec(cpu_units=1.0, memory_mb=1.0),
        lifecycle="process",
    )
    builder = PackageBuilder(soft, comp)
    builder.add_binary("bin/any/bootstrap", xml.encode())
    # the assembly also travels as readable metadata
    builder.add_idl("assembly-note",
                    "// assembly is embedded in the binary payload")
    return ComponentPackage(builder.build())

"""Applications as bootstrap components (§2.4.4).

"When applications start running, they expose their explicit
dependencies, requiring instances of other components and connecting
them following the user stated pattern."  The :class:`Deployer` takes
an :class:`~repro.xmlmeta.descriptors.AssemblyDescriptor` and, at run
time: gathers live resource views, asks a planner for a placement,
ships packages to hosts that lack them, creates the instances through
each node's Container Agent, and wires every declared connection.

The resulting :class:`Application` handle supports teardown, migration
of its instances, and the connection re-wiring migrations require.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.components.reflection import InstanceInfo
from repro.container.agent import dumps_state
from repro.container.migration import MigrationEngine
from repro.node.events import EventBroker
from repro.node.node import Node
from repro.node.resources import RESOURCE_MANAGER_IFACE, ResourceSnapshot
from repro.orb.exceptions import SystemException
from repro.orb.ior import IOR
from repro.registry.view import NodeView
from repro.sim.kernel import Event
from repro.util.errors import ReproError
from repro.xmlmeta.descriptors import (
    AssemblyConnection,
    AssemblyDescriptor,
    QoSSpec,
)

_SNAPSHOT = RESOURCE_MANAGER_IFACE.operations["snapshot"]


class DeploymentError(ReproError):
    """Assembly could not be deployed or wired."""


class RepairSuperseded(DeploymentError):
    """A queued repair lost its race and must not incarnate.

    Raised when the repair's fencing epoch no longer matches the
    instance's — some other recovery or migration already re-incarnated
    it while this repair was still planning.  Callers treat it as a
    clean abort, not a failure: the instance is fine, just not by this
    repair's hand.
    """


@dataclass
class Application:
    """A deployed assembly: live instances plus their wiring."""

    assembly: AssemblyDescriptor
    placement: dict[str, str]
    infos: dict[str, InstanceInfo]
    deployer: "Deployer"
    torn_down: bool = False
    #: instance name -> incarnation fencing epoch, bumped by every
    #: successful repair or migration.  A repair planned against epoch
    #: E refuses to incarnate once the instance's epoch moved past E
    #: (see :exc:`RepairSuperseded`): without the fence, a host that
    #: heals — or a competing recovery that wins — while a repair is
    #: still gathering views yields *two* live incarnations of the
    #: same instance id.
    incarnations: dict[str, int] = field(default_factory=dict)

    @property
    def name(self) -> str:
        return self.assembly.name

    def incarnation(self, instance_name: str) -> int:
        """Current fencing epoch of one instance (0 = as deployed)."""
        return self.incarnations.get(instance_name, 0)

    def host_of(self, instance_name: str) -> str:
        return self.placement[instance_name]

    def instance_id(self, instance_name: str) -> str:
        return self.infos[instance_name].instance_id

    def facet_ior(self, instance_name: str, port: str) -> IOR:
        info = self.infos[instance_name]
        for pinfo in info.ports:
            if pinfo.name == port and pinfo.kind == "facet" and pinfo.peer:
                return IOR.from_string(pinfo.peer)
        raise DeploymentError(
            f"{instance_name} has no facet {port!r}"
        )

    def connections_to(self, instance_name: str) -> list[AssemblyConnection]:
        return [c for c in self.assembly.connections
                if c.to_instance == instance_name]

    # -- operations (return process events) -------------------------------------
    def teardown(self) -> Event:
        return self.deployer.env.process(self._teardown())

    def _teardown(self):
        for name, info in self.infos.items():
            host = self.placement[name]
            if not self.deployer.topology.host(host).alive:
                # The instance survives in the dead host's container; it
                # must be destroyed when the host comes back or it leaks
                # (and keeps its resources reserved) forever.
                self.deployer.orphans.append((host, info.instance_id))
                continue
            agent = self.deployer.coordinator.service_stub(host, "container")
            try:
                yield agent.destroy_instance(info.instance_id)
            except SystemException:
                # Host died mid-call: same orphan story as above.
                self.deployer.orphans.append((host, info.instance_id))
                continue
        self.torn_down = True
        if self in self.deployer.applications:
            self.deployer.applications.remove(self)

    def migrate(self, instance_name: str, target_host: str) -> Event:
        """Migrate one instance and re-wire connections touching it."""
        return self.deployer.env.process(
            self._migrate(instance_name, target_host))

    def _migrate(self, instance_name: str, target_host: str):
        source_host = self.placement[instance_name]
        engine = MigrationEngine(self.deployer.nodes[source_host])
        info = yield engine.migrate(self.instance_id(instance_name),
                                    target_host)
        self.infos[instance_name] = info
        self.placement[instance_name] = target_host
        self.incarnations[instance_name] = \
            self.incarnation(instance_name) + 1
        yield from self._rewire(instance_name)
        return info

    def repair(self, instance_name: str, target_host: str,
               state: Optional[dict] = None,
               fence: Optional[int] = None) -> Event:
        """Re-incarnate an instance stranded on a dead host.

        Unlike :meth:`migrate`, repair never talks to the source host —
        it is dead; whatever state was not checkpointed is lost.  The
        instance is incarnated on *target_host* under its old id with
        *state* (last checkpoint, or empty), its outgoing wiring is
        rebuilt from the assembly descriptor, and connections pointing
        at it are re-aimed at the new incarnation.  *fence*, when
        given, is the :meth:`incarnation` epoch this repair was planned
        against; the repair aborts with :exc:`RepairSuperseded` if the
        epoch moved in the meantime.
        """
        return self.deployer.env.process(
            self._repair(instance_name, target_host, state, fence))

    def _repair(self, instance_name: str, target_host: str,
                state: Optional[dict] = None,
                fence: Optional[int] = None):
        old_host = self.placement[instance_name]
        old_id = self.instance_id(instance_name)
        decl = next(i for i in self.assembly.instances
                    if i.name == instance_name)
        yield from self.deployer._ensure_installed(decl.component,
                                                   target_host)
        receptacles, subscriptions = self._outgoing_wiring(instance_name)
        agent = self.deployer.coordinator.service_stub(target_host,
                                                       "container")
        # Last fence check before the irreversible step: the install
        # above yielded, and a competing recovery may have finished in
        # the meantime.  Incarnating anyway would duplicate the
        # instance.
        if fence is not None and self.incarnation(instance_name) != fence:
            raise RepairSuperseded(
                f"repair of {instance_name!r} planned at incarnation "
                f"{fence} superseded (now "
                f"{self.incarnation(instance_name)})"
            )
        value = yield agent.incarnate(
            decl.component, decl.versions.text, old_id,
            dumps_state(state or {}), receptacles, subscriptions)
        self.incarnations[instance_name] = \
            self.incarnation(instance_name) + 1
        self.infos[instance_name] = InstanceInfo.from_value(value)
        self.placement[instance_name] = target_host
        if old_host != target_host:
            # The dead host still holds the stale incarnation; schedule
            # it for destruction when (if) that host returns.
            self.deployer.orphans.append((old_host, old_id))
        try:
            skipped = yield from self._rewire(instance_name)
        except SystemException:
            # A user host crashed mid-rewire.  The incarnation itself
            # succeeded; report every inbound connection as still
            # pending rather than failing the whole repair.
            skipped = list(self.connections_to(instance_name))
        return skipped

    def _outgoing_wiring(self, instance_name: str
                         ) -> tuple[list[dict], list[dict]]:
        """This instance's declared outgoing connections as wire pairs."""
        receptacles: list[dict] = []
        subscriptions: list[dict] = []
        for conn in self.assembly.connections:
            if conn.from_instance != instance_name:
                continue
            if conn.kind == "interface":
                ior = self.facet_ior(conn.to_instance, conn.to_port)
                receptacles.append({"name": conn.from_port,
                                    "peer": ior.to_string()})
            else:
                kind = self._event_kind(conn.to_instance, conn.to_port)
                channel = EventBroker.channel_ior_on(
                    self.placement[conn.to_instance], kind)
                subscriptions.append({"name": conn.from_port,
                                      "peer": channel.to_string()})
        return receptacles, subscriptions

    def _rewire(self, migrated: str):
        """Repair connections whose provider facets/channels moved.

        Connections whose *user* currently sits on a dead host cannot be
        repaired now; they are returned so a supervisor can retry them
        once the user's host is back (or the user itself is recovered,
        which rebuilds its outgoing wiring anyway).
        """
        coordinator = self.deployer.coordinator
        skipped: list[AssemblyConnection] = []
        for conn in self.connections_to(migrated):
            user_host = self.placement[conn.from_instance]
            if not self.deployer.topology.host(user_host).alive:
                skipped.append(conn)
                continue
            user_id = self.instance_id(conn.from_instance)
            agent = coordinator.service_stub(user_host, "container")
            if conn.kind == "interface":
                new_ior = self.facet_ior(migrated, conn.to_port)
                try:
                    yield agent.disconnect(user_id, conn.from_port)
                except SystemException:
                    pass
                yield agent.connect(user_id, conn.from_port,
                                    new_ior.to_string())
            else:
                kind = self._event_kind(migrated, conn.to_port)
                channel = EventBroker.channel_ior_on(
                    self.placement[migrated], kind)
                yield agent.subscribe(user_id, conn.from_port,
                                      channel.to_string())
        return skipped

    def _event_kind(self, instance_name: str, port: str) -> str:
        for pinfo in self.infos[instance_name].ports:
            if pinfo.name == port:
                return pinfo.type_id
        raise DeploymentError(
            f"{instance_name} has no event port {port!r}"
        )


class Deployer:
    """Run-time deployment driver over a node population."""

    def __init__(self, nodes: dict[str, Node], planner,
                 coordinator_host: Optional[str] = None,
                 gate=None) -> None:
        if not nodes:
            raise DeploymentError("no nodes")
        self.nodes = nodes
        self.planner = planner
        #: optional static-verification gate (duck-typed; see
        #: repro.analysis.gate.DeploymentGate).  When set, assemblies
        #: failing verification are rejected before any instance exists.
        self.gate = gate
        host = coordinator_host or next(iter(nodes))
        self.coordinator = nodes[host]
        self.env = self.coordinator.env
        self.topology = self.coordinator.network.topology
        self.applications: list[Application] = []
        #: (host, instance_id) pairs stranded on dead hosts by teardown
        #: or repair; the ApplicationSupervisor destroys them when the
        #: host returns.
        self.orphans: list[tuple[str, str]] = []

    # -- views --------------------------------------------------------------
    def gather_views(self) -> Event:
        """Live resource snapshots from every reachable node."""
        return self.env.process(self._gather_views())

    def _gather_views(self):
        views: list[ResourceSnapshot] = []
        for host in self.nodes:
            if not self.topology.host(host).alive:
                continue
            ior = Node.service_ior(host, "resources")
            try:
                value = yield self.coordinator.orb.invoke(
                    ior, _SNAPSHOT, (), timeout=2.0, meter="deploy.views")
            except SystemException:
                continue
            views.append(ResourceSnapshot.from_value(value))
        return views

    # -- component sourcing ------------------------------------------------------
    def _source_host(self, component: str) -> str:
        for host, node in self.nodes.items():
            if (self.topology.host(host).alive
                    and node.repository.is_installed(component)):
                return host
        raise DeploymentError(
            f"component {component!r} is installed nowhere"
        )

    def _qos_of(self, assembly: AssemblyDescriptor) -> dict[str, QoSSpec]:
        out: dict[str, QoSSpec] = {}
        for inst in assembly.instances:
            if inst.component in out:
                continue
            source = self.nodes[self._source_host(inst.component)]
            cls = source.repository.lookup(inst.component, inst.versions)
            out[inst.component] = cls.component_type.qos
        return out

    # -- deployment ------------------------------------------------------------------
    def deploy(self, assembly: AssemblyDescriptor) -> Event:
        """Deploy *assembly*; yields the :class:`Application` handle."""
        return self.env.process(self._deploy(assembly))

    def _deploy(self, assembly: AssemblyDescriptor):
        if self.gate is not None:
            # Static verification first: a rejected assembly must not
            # touch the network — no views, no plan, no incarnations.
            self.gate.check(assembly, self.nodes,
                            metrics=self.coordinator.metrics)
        views = yield from self._gather_views()
        qos_of = self._qos_of(assembly)
        placement = self.planner.plan(assembly, views, qos_of)

        infos: dict[str, InstanceInfo] = {}
        for inst in assembly.instances:
            host = placement[inst.name]
            yield from self._ensure_installed(inst.component, host)
            agent = self.coordinator.service_stub(host, "container")
            value = yield agent.create_instance(
                inst.component, inst.versions.text,
                f"{assembly.name}.{inst.name}")
            infos[inst.name] = InstanceInfo.from_value(value)

        app = Application(assembly=assembly, placement=placement,
                          infos=infos, deployer=self)
        yield from self._wire(app)
        self.applications.append(app)
        self.coordinator.metrics.counter("deploy.applications").inc()
        return app

    def _ensure_installed(self, component: str, host: str):
        node = self.nodes[host]
        if node.repository.is_installed(component):
            return
        source = self._source_host(component)
        source_acceptor = self.coordinator.service_stub(source, "acceptor")
        pkg = yield source_acceptor.fetch(component, "")
        target_acceptor = self.coordinator.service_stub(host, "acceptor")
        installed = yield target_acceptor.is_installed(component, "")
        if not installed:
            yield target_acceptor.install(pkg)
        self.coordinator.metrics.counter("deploy.packages_shipped").inc()

    def _wire(self, app: Application):
        for conn in app.assembly.connections:
            user_host = app.placement[conn.from_instance]
            user_id = app.instance_id(conn.from_instance)
            agent = self.coordinator.service_stub(user_host, "container")
            if conn.kind == "interface":
                provider = app.facet_ior(conn.to_instance, conn.to_port)
                yield agent.connect(user_id, conn.from_port,
                                    provider.to_string())
            else:
                kind = app._event_kind(conn.to_instance, conn.to_port)
                sink_kind = app._event_kind(conn.from_instance,
                                            conn.from_port)
                if kind != sink_kind:
                    raise DeploymentError(
                        f"event connection {conn.from_instance}."
                        f"{conn.from_port} <- {conn.to_instance}."
                        f"{conn.to_port}: kind mismatch "
                        f"({sink_kind!r} vs {kind!r})"
                    )
                channel = EventBroker.channel_ior_on(
                    app.placement[conn.to_instance], kind)
                yield agent.subscribe(user_id, conn.from_port,
                                      channel.to_string())

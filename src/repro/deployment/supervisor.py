"""Self-healing deployment supervision (§2.4.3).

The paper requires protocols that "support spurious node failures and
node disconnections (and re-connections) gracefully", but deployment
alone only *places* instances — nothing reacts when the host under one
dies.  The :class:`ApplicationSupervisor` closes that loop from the
deployer's coordinator node:

- **liveness** comes from the Distributed Registry's soft-state views
  when one is provided (a host whose reports the MRMs stopped seeing is
  presumed down) and from ground-truth topology otherwise;
- **stranded instances** — deployed instances whose host is down — are
  *re-planned* onto a live host with the deployer's planner and
  re-incarnated there (from the last supervisor checkpoint of their
  externalized state) via the migration/incarnation machinery, then
  their connections are re-wired;
- **coordinated replica groups** registered via :meth:`watch_group` get
  their primary *promoted* to a live backup under a fresh fencing
  epoch, so a restarted ex-primary can never push stale state back;
- **orphans** — instances stranded on dead hosts by teardown or left
  behind by a repair — are destroyed once their host returns;
- when no live host has capacity, the recovery is **queued** and
  retried with exponential backoff instead of being dropped.

Every recovery emits metrics (``supervisor.*`` counters, the
``supervisor.recovery.latency`` histogram) and, when the coordinator's
ORB is instrumented, one trace span.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.container.agent import StateDecodeError, loads_state
from repro.container.replication import (
    ReplicaGroup,
    ReplicaManager,
    ReplicationError,
)
from repro.deployment.application import (
    Application,
    Deployer,
    DeploymentError,
    RepairSuperseded,
)
from repro.deployment.planner import PlacementError
from repro.obs import RECOVERY_LATENCY_HIST
from repro.obs import names
from repro.orb.exceptions import SystemException, UserException
from repro.sim.kernel import Event, Interrupt


@dataclass(frozen=True)
class RecoveryRecord:
    """One completed recovery, for reports and benchmarks."""

    time: float
    kind: str                   # "replan" | "promote"
    name: str                   # instance name or component name
    old_host: str
    new_host: str
    latency: float              # detection -> recovered, sim seconds
    attempts: int = 1


@dataclass
class _Pending:
    """A stranded instance waiting for (another) recovery attempt."""

    detected: float
    next_try: float
    attempts: int = 0
    #: the instance's incarnation epoch when it was detected stranded;
    #: the repair is fenced on it (see Application.incarnations).
    epoch: int = 0


class ApplicationSupervisor:
    """Watches a deployer's applications and heals them after crashes."""

    def __init__(self, deployer: Deployer, interval: float = 5.0,
                 checkpoint: bool = True, registry=None,
                 backoff_base: float = 2.0,
                 backoff_cap: float = 60.0, bus=None) -> None:
        self.deployer = deployer
        self.node = deployer.coordinator
        self.env = deployer.env
        self.topology = deployer.topology
        self.interval = interval
        self.checkpoint = checkpoint
        #: optional DistributedRegistry supplying soft-state liveness.
        self.registry = registry
        #: optional EventBus: every recovery decision is published to
        #: ``supervisor.<kind>`` so dashboards/auditors observe healing
        #: without polling ``recoveries`` (decoupled, as OpenCCM-style
        #: deployment infrastructures use notification channels).
        self.bus = bus
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.recoveries: list[RecoveryRecord] = []
        self.watched_groups: list[tuple[ReplicaGroup, ReplicaManager]] = []
        #: instance_id -> last externalized state seen alive.
        self.checkpoints: dict[str, dict] = {}
        self._pending: dict[tuple[str, str], _Pending] = {}
        #: instances with a recovery currently in flight — a second
        #: tick (or a run_once overlapping the loop) must not start a
        #: competing repair of the same instance.
        self._repairing: set[tuple[str, str]] = set()
        self._live_cache: Optional[tuple[float, set]] = None
        #: (app.name, instance) -> app, connections still to re-wire.
        self._pending_rewires: dict[tuple[str, str], Application] = {}
        self._proc = self.env.process(self._loop())
        self.node.host.on_crash.append(self._on_crash)
        self.node.host.on_restart.append(self._on_restart)

    # -- lifecycle ---------------------------------------------------------
    def _on_crash(self, _host) -> None:
        if self._proc is not None and self._proc.is_alive:
            self._proc.interrupt("host crashed")
        self._proc = None
        # The coordinator's RAM is gone with it.
        self.checkpoints.clear()
        self._pending.clear()
        self._repairing.clear()
        self._pending_rewires.clear()

    def _on_restart(self, _host) -> None:
        self._proc = self.env.process(self._loop())

    def stop(self) -> None:
        if self._proc is not None and self._proc.is_alive:
            self._proc.interrupt("supervisor stopped")
        self._proc = None

    def watch_group(self, group: ReplicaGroup,
                    manager: ReplicaManager) -> None:
        """Supervise a replica group: promote on primary-host death."""
        self.watched_groups.append((group, manager))

    # -- signals -----------------------------------------------------------
    def _signal(self, kind: str, **attrs) -> None:
        """Publish one supervision event to the bus (no-op without one)."""
        if self.bus is not None:
            attrs["kind"] = kind
            self.bus.publish(f"supervisor.{kind}", attrs)

    # -- liveness ----------------------------------------------------------
    def _host_alive(self, host_id: str) -> bool:
        if self.registry is not None:
            return host_id in self._live_view()
        return self.topology.host(host_id).alive

    def _live_view(self) -> set:
        """The registry's live-host set, computed once per sim-instant.

        Liveness is asked per watched instance; against a federated
        (gossip-backed) registry on a large population that merge is
        the expensive part of a tick, and within one instant the
        answer cannot change.
        """
        if self._live_cache is None or self._live_cache[0] != self.env.now:
            self._live_cache = (self.env.now,
                                set(self.registry.live_hosts()))
        return self._live_cache[1]

    # -- main loop ---------------------------------------------------------
    def _loop(self):
        try:
            while True:
                yield self.env.timeout(self.interval)
                yield from self._tick()
        except Interrupt:
            return

    def run_once(self) -> Event:
        """One full supervision pass, as a process event (for tests)."""
        return self.env.process(self._tick())

    def _tick(self):
        yield from self._sweep_orphans()
        yield from self._check_groups()
        yield from self._check_applications()
        yield from self._retry_rewires()
        if self.checkpoint:
            yield from self._checkpoint_pass()

    # -- orphan sweep ------------------------------------------------------
    def _sweep_orphans(self):
        """Destroy teardown/repair leftovers on hosts that returned."""
        for entry in list(self.deployer.orphans):
            host, instance_id = entry
            if not self.topology.host(host).alive:
                continue
            agent = self.node.service_stub(host, "container")
            try:
                yield agent.destroy_instance(instance_id)
            except UserException:
                pass                    # already gone: still swept
            except SystemException:
                continue                # crashed again; retry next pass
            if entry in self.deployer.orphans:
                self.deployer.orphans.remove(entry)
            self.node.metrics.counter(names.SUPERVISOR_ORPHANS_SWEPT).inc()
            self._signal("orphan_swept", host=host,
                         instance=instance_id)

    # -- replica promotion -------------------------------------------------
    def _check_groups(self):
        for group, manager in list(self.watched_groups):
            if group.mode != "coordinated" or not group.members:
                continue
            primary = group.primary
            if self._host_alive(primary.host):
                continue
            obs = getattr(self.node.orb, "obs", None)
            span = obs.span(names.SPAN_SUPERVISOR_PROMOTE, host=self.node.host_id,
                            attrs={"component": group.component,
                                   "dead_host": primary.host}) if obs else None
            epoch_before = group.epoch
            try:
                new_primary = group.select_primary(self.topology)
            except ReplicationError as exc:
                self.node.metrics.counter(
                    names.SUPERVISOR_RECOVERY_DEFERRED).inc()
                if span:
                    obs.tracer.end_span(span, status="deferred",
                                        error=str(exc))
                continue
            if group.epoch != epoch_before:
                self.node.metrics.counter(names.SUPERVISOR_PROMOTIONS).inc()
                self.recoveries.append(RecoveryRecord(
                    time=self.env.now, kind="promote",
                    name=group.component, old_host=primary.host,
                    new_host=new_primary.host, latency=0.0))
                self._signal("promotion", component=group.component,
                             old_host=primary.host,
                             new_host=new_primary.host,
                             epoch=group.epoch)
            try:
                # Align the surviving backups with the promoted primary.
                yield from manager._sync(group)
            except (ReplicationError, SystemException, UserException):
                pass                    # next pass retries
            if span:
                obs.tracer.end_span(span, status="ok")

    # -- stranded application instances ------------------------------------
    def _check_applications(self):
        for app in list(self.deployer.applications):
            if app.torn_down:
                continue
            for name in list(app.placement):
                key = (app.name, name)
                if key in self._repairing:
                    # Another pass is mid-recovery on this instance;
                    # racing it would double-incarnate.
                    continue
                if self._host_alive(app.placement[name]):
                    # Back (or never gone): the instance survived in its
                    # container; nothing to recover.
                    self._pending.pop(key, None)
                    continue
                pend = self._pending.get(key)
                if pend is None:
                    pend = _Pending(detected=self.env.now,
                                    next_try=self.env.now,
                                    epoch=app.incarnation(name))
                    self._pending[key] = pend
                    self.node.metrics.counter(names.SUPERVISOR_STRANDED).inc()
                    self._signal("stranded", application=app.name,
                                 instance=name,
                                 host=app.placement[name])
                if self.env.now < pend.next_try:
                    continue
                self._repairing.add(key)
                try:
                    yield from self._recover_instance(app, name, pend)
                finally:
                    self._repairing.discard(key)

    def _recover_instance(self, app: Application, name: str,
                          pend: _Pending):
        dead_host = app.placement[name]
        obs = getattr(self.node.orb, "obs", None)
        span = obs.span(names.SPAN_SUPERVISOR_RECOVER, host=self.node.host_id,
                        attrs={"application": app.name, "instance": name,
                               "dead_host": dead_host,
                               "attempt": pend.attempts + 1}) if obs else None
        try:
            views = yield from self.deployer._gather_views()
            qos_of = self.deployer._qos_of(app.assembly)
            target = self.deployer.planner.replan_instance(
                app.assembly, name, views, qos_of, exclude=(dead_host,))
            state = self.checkpoints.get(app.instance_id(name))
            # Planning yielded; the world may have moved on.  If the
            # "dead" host healed, its container still holds the live,
            # authoritative instance — re-incarnating it elsewhere now
            # would duplicate it and roll its state back to the last
            # checkpoint.  Same if a competing recovery already bumped
            # the incarnation epoch.
            if (self._host_alive(dead_host)
                    or app.incarnation(name) != pend.epoch):
                raise RepairSuperseded(
                    f"{name!r} came back on {dead_host} (or was "
                    f"repaired by someone else) while recovery was "
                    f"planning")
            skipped = yield from app._repair(name, target, state,
                                             fence=pend.epoch)
        except RepairSuperseded as exc:
            # Clean abort, not a failure: the instance is alive again
            # (or already repaired); drop the queued recovery.
            self._pending.pop((app.name, name), None)
            self.node.metrics.counter(names.SUPERVISOR_REPAIR_FENCED).inc()
            self._signal("repair_fenced", application=app.name,
                         instance=name, host=dead_host)
            if span:
                obs.tracer.end_span(span, status="fenced",
                                    error=str(exc))
            return
        except (PlacementError, DeploymentError, SystemException,
                UserException) as exc:
            # Degrade gracefully: keep the recovery queued and back off.
            pend.attempts += 1
            pend.next_try = self.env.now + min(
                self.backoff_base * (2 ** (pend.attempts - 1)),
                self.backoff_cap)
            self.node.metrics.counter(names.SUPERVISOR_RECOVERY_DEFERRED).inc()
            self._signal("deferred", application=app.name, instance=name,
                         attempts=pend.attempts)
            if span:
                obs.tracer.end_span(span, status="deferred",
                                    error=str(exc))
            return
        if skipped:
            self._pending_rewires[(app.name, name)] = app
        self._pending.pop((app.name, name), None)
        latency = self.env.now - pend.detected
        self.node.metrics.counter(names.SUPERVISOR_RECOVERIES).inc()
        self.node.metrics.histogram(RECOVERY_LATENCY_HIST).record(
            max(latency, 1e-9))
        self.recoveries.append(RecoveryRecord(
            time=self.env.now, kind="replan", name=name,
            old_host=dead_host, new_host=target, latency=latency,
            attempts=pend.attempts + 1))
        self._signal("recovery", application=app.name, instance=name,
                     old_host=dead_host, new_host=target,
                     latency=latency)
        if span:
            obs.tracer.end_span(span, status="ok")

    # -- deferred rewires --------------------------------------------------
    def _retry_rewires(self):
        """Re-aim connections whose user host was down at repair time."""
        for key, app in list(self._pending_rewires.items()):
            _, name = key
            if app.torn_down:
                self._pending_rewires.pop(key, None)
                continue
            try:
                skipped = yield from app._rewire(name)
            except SystemException:
                continue                # user crashed mid-rewire; retry
            if not skipped:
                self._pending_rewires.pop(key, None)

    # -- checkpoints -------------------------------------------------------
    def _checkpoint_pass(self):
        """Snapshot live instances' externalized state for later repair."""
        for app in list(self.deployer.applications):
            if app.torn_down:
                continue
            for name, host in list(app.placement.items()):
                if not self.topology.host(host).alive:
                    continue
                agent = self.node.service_stub(host, "container")
                try:
                    data = yield agent.get_state(app.instance_id(name))
                except (SystemException, UserException):
                    continue
                try:
                    state = loads_state(data)
                except StateDecodeError:
                    # Wire corruption handed back garbage: keep the
                    # previous good checkpoint, never die over it.
                    self.node.metrics.counter(
                        names.SUPERVISOR_CHECKPOINTS_CORRUPT).inc()
                    continue
                self.checkpoints[app.instance_id(name)] = state
                self.node.metrics.counter(names.SUPERVISOR_CHECKPOINTS).inc()

"""Run-time deployment (§2.4.4).

"In CORBA-LC the matching between component required instances and
network-running instances is performed at run-time: the exact node in
which every instance is going to be run is decided when the application
requests it, and this decision may change to reflect changes in the
load of either the nodes or the network."

- :mod:`repro.deployment.planner` — placement policies: the QoS/load
  aware run-time planner, and the baselines the benchmarks compare it
  against (CCM-style static assignment, random, round-robin).
- :mod:`repro.deployment.application` — applications as bootstrap
  components: deploying an assembly descriptor, wiring ports, teardown,
  and re-wiring after migrations.
- :mod:`repro.deployment.loadbalancer` — the run-time scheduling loop
  that migrates instances off overloaded hosts.
- :mod:`repro.deployment.supervisor` — the self-healing loop that
  re-incarnates instances stranded by host crashes, promotes replica
  primaries under fencing epochs, and sweeps teardown orphans.
"""

from repro.deployment.planner import (
    PlannerBase,
    RandomPlanner,
    RoundRobinPlanner,
    RuntimePlanner,
    StaticPlanner,
    VerifiedPlanner,
)
from repro.deployment.application import Application, Deployer
from repro.deployment.loadbalancer import LoadBalancer
from repro.deployment.supervisor import (
    ApplicationSupervisor,
    RecoveryRecord,
)

__all__ = [
    "PlannerBase",
    "RuntimePlanner",
    "StaticPlanner",
    "RandomPlanner",
    "RoundRobinPlanner",
    "VerifiedPlanner",
    "Application",
    "ApplicationSupervisor",
    "Deployer",
    "LoadBalancer",
    "RecoveryRecord",
]

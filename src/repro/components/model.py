"""ComponentClass: an installed component type, ready to instantiate.

Binds a validated :class:`~repro.packaging.package.ComponentPackage` to
the executable content resolved for a concrete platform — the runtime
equivalent of having dlopen()ed the right binary out of the package.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.packaging.binaries import BinaryRegistry, GLOBAL_BINARIES
from repro.packaging.package import ComponentPackage, PackageError
from repro.sim.topology import HostProfile
from repro.xmlmeta.descriptors import (
    ComponentTypeDescriptor,
    SoftwareDescriptor,
)
from repro.xmlmeta.versions import Version


class ComponentClass:
    """An installed component: package + platform-resolved factory."""

    def __init__(self, package: ComponentPackage, profile: HostProfile,
                 binaries: Optional[BinaryRegistry] = None) -> None:
        self.package = package
        self.profile = profile
        registry = binaries if binaries is not None else GLOBAL_BINARIES
        impl = package.implementation_for(profile.os, profile.arch,
                                          profile.orb)
        if impl is None:
            raise PackageError(
                f"component {package.name!r} has no implementation for "
                f"platform ({profile.os}, {profile.arch}, {profile.orb})"
            )
        self.implementation = impl
        self.factory: Callable = registry.resolve(impl.entry_point)

    # -- descriptor shortcuts ------------------------------------------------
    @property
    def name(self) -> str:
        return self.package.name

    @property
    def version(self) -> Version:
        return self.package.version

    @property
    def software(self) -> SoftwareDescriptor:
        return self.package.software

    @property
    def component_type(self) -> ComponentTypeDescriptor:
        return self.package.component

    @property
    def is_mobile(self) -> bool:
        return self.software.is_mobile

    @property
    def replicable(self) -> bool:
        return self.software.replication != "none"

    @property
    def aggregatable(self) -> bool:
        return self.software.aggregation == "data-parallel"

    def new_executor(self):
        """Instantiate the executable content: a fresh executor."""
        return self.factory()

    def provides_repo_id(self, repo_id: str) -> bool:
        """Does any provided port implement *repo_id*?"""
        return any(p.repo_id == repo_id
                   for p in self.component_type.provides)

    def __repr__(self) -> str:
        return (f"<ComponentClass {self.name} v{self.version} "
                f"on {self.profile.name}>")

"""The CORBA-LC component model (the paper's primary contribution).

Components are "binary independent units, with explicitly defined
dependencies and offerings, which can be used to compose applications"
(§2.1).  This package provides their runtime shape:

- :mod:`repro.components.executor` — what component developers write:
  the executor callback class and the container-provided context (the
  "agreed local interfaces" of §2.2), including the state
  externalization hooks migration relies on.
- :mod:`repro.components.model` — :class:`ComponentClass`, the runtime
  binding of an installed package to loadable executable content.
- :mod:`repro.components.ports` — the reflective port set: facets,
  receptacles, event sources/sinks.  Port sets can change at run time
  (§2.4.2), and mutations are observable so registries stay current.
- :mod:`repro.components.factory` — auto-generated factory servants
  (§2.1.2 "Factory properties ... allows to automatically generate the
  factory code").
- :mod:`repro.components.reflection` — introspection snapshots the
  Component Registry serves to the network and to builder tools.
"""

from repro.components.executor import (
    ComponentContext,
    ComponentExecutor,
    StatefulMixin,
)
from repro.components.model import ComponentClass
from repro.components.ports import (
    EventSinkPort,
    EventSourcePort,
    FacetPort,
    PortSet,
    ReceptaclePort,
)
from repro.components.factory import FACTORY_IFACE, ComponentFactoryServant
from repro.components.reflection import (
    ConnectionInfo,
    InstanceInfo,
    PortInfo,
)

__all__ = [
    "ComponentContext",
    "ComponentExecutor",
    "StatefulMixin",
    "ComponentClass",
    "PortSet",
    "FacetPort",
    "ReceptaclePort",
    "EventSourcePort",
    "EventSinkPort",
    "FACTORY_IFACE",
    "ComponentFactoryServant",
    "InstanceInfo",
    "PortInfo",
    "ConnectionInfo",
]

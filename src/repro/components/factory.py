"""Auto-generated component factories (§2.1.2).

"Factory interfaces are needed in CORBA-LC to manage the set of
instances of a component.  Clients can search for a factory of the
required component and ask it for the creation of a component
instance."

The factory interface is defined in IDL and compiled by our IDL
compiler at import time; the servant is generated from the component's
lifecycle description by delegating to the container.
"""

from __future__ import annotations

from repro.idl import compile_idl
from repro.orb.core import Servant

_FACTORY_IDL = """
#pragma prefix "corbalc"
module Framework {
  exception CreationFailed { string reason; };
  exception NoSuchInstance { string instance_id; };

  interface ComponentFactory {
    // Creates an instance; returns its instance id.
    string create_instance(in string name) raises (CreationFailed);
    // IOR of a provided port (facet) of an existing instance.
    Object get_facet(in string instance_id, in string port)
        raises (NoSuchInstance);
    void destroy_instance(in string instance_id) raises (NoSuchInstance);
    sequence<string> instance_ids();
    readonly attribute string component_name;
  };
};
"""

_module = compile_idl(_FACTORY_IDL)
FACTORY_IFACE = _module.Framework.ComponentFactory
CreationFailed = _module.Framework.CreationFailed
NoSuchInstance = _module.Framework.NoSuchInstance


class ComponentFactoryServant(Servant):
    """Factory for one component type, generated over a container.

    The container supplies the actual lifecycle work; the factory tracks
    which instance ids it created (its "set of instances").
    """

    _interface = FACTORY_IFACE

    def __init__(self, container, component_name: str) -> None:
        self._container = container
        self._component_name = component_name
        self._ids: list[str] = []

    # -- IDL operations -----------------------------------------------------
    def create_instance(self, name: str) -> str:
        try:
            instance = self._container.create_instance(
                self._component_name, requested_name=name or None
            )
        except Exception as exc:
            raise CreationFailed(str(exc)) from exc
        self._ids.append(instance.instance_id)
        return instance.instance_id

    def get_facet(self, instance_id: str, port: str):
        instance = self._container.find_instance(instance_id)
        if instance is None:
            raise NoSuchInstance(instance_id)
        from repro.components.ports import PortError
        try:
            return instance.ports.facet(port).ior
        except PortError as exc:
            raise NoSuchInstance(f"{instance_id}: {exc}") from None

    def destroy_instance(self, instance_id: str) -> None:
        if instance_id not in self._ids:
            raise NoSuchInstance(instance_id)
        # The container calls forget() on us during destruction, so the
        # id is gone from our list by the time this returns.
        self._container.destroy_instance(instance_id)

    def instance_ids(self) -> list[str]:
        return list(self._ids)

    def _get_component_name(self) -> str:
        return self._component_name

    # -- local bookkeeping -----------------------------------------------------
    def forget(self, instance_id: str) -> None:
        """Drop an id without destroying (instance migrated away)."""
        if instance_id in self._ids:
            self._ids.remove(instance_id)

    def adopt(self, instance_id: str) -> None:
        """Track an id created elsewhere (instance migrated in)."""
        if instance_id not in self._ids:
            self._ids.append(instance_id)

"""Runtime ports: the external communication points of an instance.

"Those external communication points are collectively called ports ...
there are two basic kinds of ports: interfaces and events" (§2.1.2).

- :class:`FacetPort` — a provided interface (servant + IOR).
- :class:`ReceptaclePort` — a used interface (holds the connected IOR).
- :class:`EventSourcePort` — emits events into a push channel.
- :class:`EventSinkPort` — consumes events from channels.

The :class:`PortSet` is reflective: CORBA-LC "does not restrict the set
of external properties of a component to be fixed and allows it to
change at run-time" (§2.1.2), so ports can be added and removed live and
listeners (the node's Component Registry) observe every mutation.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Optional

from repro.orb.core import ORB, Servant, Stub
from repro.orb.dii import GLOBAL_IFR
from repro.orb.ior import IOR
from repro.util.errors import ConfigurationError, ReproError


class PortError(ReproError):
    """Invalid port operation (unknown port, wrong kind, not connected)."""


class Port:
    """Common shape of all port kinds."""

    kind: str = "?"

    def __init__(self, name: str) -> None:
        self.name = name

    def describe(self) -> dict:
        return {"name": self.name, "kind": self.kind}


class FacetPort(Port):
    """A provided interface: the instance's servant, activated by the
    container, reachable via :attr:`ior`."""

    kind = "facet"

    def __init__(self, name: str, repo_id: str, servant: Servant,
                 ior: Optional[IOR] = None) -> None:
        super().__init__(name)
        self.repo_id = repo_id
        self.servant = servant
        self.ior = ior

    def describe(self) -> dict:
        d = super().describe()
        d["repo_id"] = self.repo_id
        d["ior"] = self.ior.to_string() if self.ior else ""
        return d


class ReceptaclePort(Port):
    """A used interface: holds the IOR this instance is wired to."""

    kind = "receptacle"

    def __init__(self, name: str, repo_id: str, optional: bool = False) -> None:
        super().__init__(name)
        self.repo_id = repo_id
        self.optional = optional
        self.peer: Optional[IOR] = None

    @property
    def connected(self) -> bool:
        return self.peer is not None

    def connect(self, ior: IOR) -> None:
        if self.peer is not None:
            raise PortError(f"receptacle {self.name!r} already connected")
        self.peer = ior

    def disconnect(self) -> IOR:
        if self.peer is None:
            raise PortError(f"receptacle {self.name!r} not connected")
        peer, self.peer = self.peer, None
        return peer

    def stub(self, orb: ORB) -> Stub:
        """A typed stub for the connected peer."""
        if self.peer is None:
            raise PortError(f"receptacle {self.name!r} not connected")
        iface = GLOBAL_IFR.require(self.repo_id)
        return orb.stub(self.peer, iface)

    def describe(self) -> dict:
        d = super().describe()
        d["repo_id"] = self.repo_id
        d["optional"] = self.optional
        d["peer"] = self.peer.to_string() if self.peer else ""
        return d


class EventSourcePort(Port):
    """Emits events of one kind into the framework's push channel."""

    kind = "event-source"

    def __init__(self, name: str, event_kind: str,
                 channel: Optional[IOR] = None) -> None:
        super().__init__(name)
        self.event_kind = event_kind
        self.channel = channel
        self.emitted = 0

    def describe(self) -> dict:
        d = super().describe()
        d["event_kind"] = self.event_kind
        d["channel"] = self.channel.to_string() if self.channel else ""
        return d


class EventSinkPort(Port):
    """Consumes events; the container activates a PushConsumer servant
    whose IOR is subscribed to matching channels."""

    kind = "event-sink"

    def __init__(self, name: str, event_kind: str,
                 consumer_ior: Optional[IOR] = None) -> None:
        super().__init__(name)
        self.event_kind = event_kind
        self.consumer_ior = consumer_ior
        self.subscriptions: list[IOR] = []
        self.received = 0

    def describe(self) -> dict:
        d = super().describe()
        d["event_kind"] = self.event_kind
        d["subscriptions"] = len(self.subscriptions)
        return d


PortListener = Callable[[str, Port], None]  # (action, port)


class PortSet:
    """The reflective, mutable collection of an instance's ports."""

    def __init__(self) -> None:
        self._ports: dict[str, Port] = {}
        self.listeners: list[PortListener] = []

    # -- mutation ---------------------------------------------------------
    def add(self, port: Port) -> Port:
        if port.name in self._ports:
            raise ConfigurationError(f"duplicate port name {port.name!r}")
        self._ports[port.name] = port
        self._notify("added", port)
        return port

    def remove(self, name: str) -> Port:
        try:
            port = self._ports.pop(name)
        except KeyError:
            raise PortError(f"no port {name!r}") from None
        self._notify("removed", port)
        return port

    def _notify(self, action: str, port: Port) -> None:
        for listener in list(self.listeners):
            listener(action, port)

    def changed(self, port_name: str) -> None:
        """Signal that an existing port's wiring changed (connections)."""
        port = self.get(port_name)
        self._notify("changed", port)

    # -- typed access -------------------------------------------------------
    def get(self, name: str) -> Port:
        try:
            return self._ports[name]
        except KeyError:
            raise PortError(f"no port {name!r}") from None

    def _typed(self, name: str, cls, kind: str):
        port = self.get(name)
        if not isinstance(port, cls):
            raise PortError(f"port {name!r} is {port.kind}, not {kind}")
        return port

    def facet(self, name: str) -> FacetPort:
        return self._typed(name, FacetPort, "facet")

    def receptacle(self, name: str) -> ReceptaclePort:
        return self._typed(name, ReceptaclePort, "receptacle")

    def event_source(self, name: str) -> EventSourcePort:
        return self._typed(name, EventSourcePort, "event-source")

    def event_sink(self, name: str) -> EventSinkPort:
        return self._typed(name, EventSinkPort, "event-sink")

    # -- views ---------------------------------------------------------------
    def __contains__(self, name: str) -> bool:
        return name in self._ports

    def __len__(self) -> int:
        return len(self._ports)

    def names(self) -> list[str]:
        return list(self._ports)

    def by_kind(self, kind: str) -> list[Port]:
        return [p for p in self._ports.values() if p.kind == kind]

    def facets(self) -> list[FacetPort]:
        return self.by_kind("facet")  # type: ignore[return-value]

    def receptacles(self) -> list[ReceptaclePort]:
        return self.by_kind("receptacle")  # type: ignore[return-value]

    def describe(self) -> list[dict]:
        return [p.describe() for p in self._ports.values()]

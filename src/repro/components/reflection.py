"""Introspection snapshots served by the Reflection Architecture.

The Component Registry provides "(a) the set of installed components,
(b) the set of component instances running in the node and the
properties of each, and (c) how those instances are connected via ports
(assemblies)" (§2.4.2) — both to the network (for distributed queries)
and "by visual builder tools to offer to the user the palette of
available components".

These records are plain structs with CDR TypeCodes, so registry
operations return them across the wire.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.orb.typecodes import (
    sequence_tc,
    struct_tc,
    tc_boolean,
    tc_double,
    tc_string,
)

PORT_INFO_TC = struct_tc("PortInfo", [
    ("name", tc_string),
    ("kind", tc_string),
    ("type_id", tc_string),       # interface repo id or event kind
    ("peer", tc_string),          # stringified IOR / channel, "" if none
], repo_id="IDL:corbalc/Framework/PortInfo:1.0")

INSTANCE_INFO_TC = struct_tc("InstanceInfo", [
    ("instance_id", tc_string),
    ("component", tc_string),
    ("version", tc_string),
    ("host", tc_string),
    ("active", tc_boolean),
    ("ports", sequence_tc(PORT_INFO_TC)),
], repo_id="IDL:corbalc/Framework/InstanceInfo:1.0")

COMPONENT_INFO_TC = struct_tc("ComponentInfo", [
    ("name", tc_string),
    ("version", tc_string),
    ("vendor", tc_string),
    ("mobility", tc_string),
    ("provides", sequence_tc(tc_string)),   # provided repo ids
    ("uses", sequence_tc(tc_string)),       # required repo ids
    ("qos_cpu", tc_double),
    ("qos_memory", tc_double),
    ("qos_bandwidth", tc_double),
], repo_id="IDL:corbalc/Framework/ComponentInfo:1.0")

CONNECTION_INFO_TC = struct_tc("ConnectionInfo", [
    ("instance_id", tc_string),
    ("port", tc_string),
    ("peer", tc_string),
], repo_id="IDL:corbalc/Framework/ConnectionInfo:1.0")


@dataclass(frozen=True)
class PortInfo:
    name: str
    kind: str
    type_id: str
    peer: str = ""

    def to_value(self) -> dict:
        return {"name": self.name, "kind": self.kind,
                "type_id": self.type_id, "peer": self.peer}

    @classmethod
    def from_value(cls, value: dict) -> "PortInfo":
        return cls(**value)


@dataclass(frozen=True)
class InstanceInfo:
    instance_id: str
    component: str
    version: str
    host: str
    active: bool
    ports: tuple[PortInfo, ...] = ()

    def to_value(self) -> dict:
        return {
            "instance_id": self.instance_id,
            "component": self.component,
            "version": self.version,
            "host": self.host,
            "active": self.active,
            "ports": [p.to_value() for p in self.ports],
        }

    @classmethod
    def from_value(cls, value: dict) -> "InstanceInfo":
        return cls(
            instance_id=value["instance_id"],
            component=value["component"],
            version=value["version"],
            host=value["host"],
            active=value["active"],
            ports=tuple(PortInfo.from_value(p) for p in value["ports"]),
        )


@dataclass(frozen=True)
class ComponentInfo:
    """Installed-component summary used by distributed queries."""

    name: str
    version: str
    vendor: str
    mobility: str
    provides: tuple[str, ...]
    uses: tuple[str, ...]
    qos_cpu: float = 0.0
    qos_memory: float = 0.0
    qos_bandwidth: float = 0.0

    def to_value(self) -> dict:
        return {
            "name": self.name, "version": self.version,
            "vendor": self.vendor, "mobility": self.mobility,
            "provides": list(self.provides), "uses": list(self.uses),
            "qos_cpu": self.qos_cpu, "qos_memory": self.qos_memory,
            "qos_bandwidth": self.qos_bandwidth,
        }

    @classmethod
    def from_value(cls, value: dict) -> "ComponentInfo":
        return cls(
            name=value["name"], version=value["version"],
            vendor=value["vendor"], mobility=value["mobility"],
            provides=tuple(value["provides"]), uses=tuple(value["uses"]),
            qos_cpu=value["qos_cpu"], qos_memory=value["qos_memory"],
            qos_bandwidth=value["qos_bandwidth"],
        )

    @classmethod
    def from_package(cls, package) -> "ComponentInfo":
        soft = package.software
        comp = package.component
        return cls(
            name=soft.name,
            version=str(soft.version),
            vendor=soft.vendor,
            mobility=soft.mobility,
            provides=tuple(p.repo_id for p in comp.provides),
            uses=tuple(p.repo_id for p in comp.required_components()),
            qos_cpu=comp.qos.cpu_units,
            qos_memory=comp.qos.memory_mb,
            qos_bandwidth=comp.qos.bandwidth_bps,
        )


@dataclass(frozen=True)
class ConnectionInfo:
    instance_id: str
    port: str
    peer: str

    def to_value(self) -> dict:
        return {"instance_id": self.instance_id, "port": self.port,
                "peer": self.peer}

    @classmethod
    def from_value(cls, value: dict) -> "ConnectionInfo":
        return cls(**value)

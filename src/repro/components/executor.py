"""The component/container contract: executors and contexts.

"Instances ask the container for the required services and it in turn
informs the instance of its environment (its context).  ...  the
component/container dialog is based on agreed local interfaces" (§2.2).

A component implementation subclasses :class:`ComponentExecutor`.  The
container calls the lifecycle hooks; the executor calls back into its
:class:`ComponentContext` for everything it needs from the framework
(connections, events, component requests, CPU accounting).
"""

from __future__ import annotations

from typing import Any, Optional, Protocol, runtime_checkable

from repro.orb.core import Servant
from repro.util.errors import ReproError


class LifecycleError(ReproError):
    """An executor hook was invoked in an invalid state."""


@runtime_checkable
class ComponentContext(Protocol):
    """What the container promises every instance (agreed local interface).

    The concrete implementation lives in the container; executors only
    see this protocol.
    """

    @property
    def instance_id(self) -> str:
        """Unique id of this instance."""
        ...

    @property
    def host_id(self) -> str:
        """Host the instance currently runs on (changes after migration)."""
        ...

    def now(self) -> float:
        """Current simulated time."""
        ...

    def connection(self, port_name: str):
        """Typed stub for the peer connected to a receptacle, or None."""
        ...

    def emit(self, port_name: str, value: Any, typecode=None) -> None:
        """Push an event through an event-source port."""
        ...

    def request_component(self, repo_id: str, qos=None):
        """Ask the network for a component instance providing *repo_id*.

        Returns a kernel Event that yields the facet IOR (the
        network-wide dependency resolution of §2.4.3).
        """
        ...

    def charge_cpu(self, work_units: float):
        """Account *work_units* of computation; returns a kernel Event
        that fires when the work is done at this host's speed."""
        ...

    def schedule(self, delay: float):
        """A kernel timeout event for *delay* simulated seconds."""
        ...

    def spawn(self, generator):
        """Run *generator* as a simulation process tied to the instance."""
        ...


class ComponentExecutor:
    """Base class for component implementations.

    Lifecycle (driven by the container)::

        set_context -> activate -> [passivate -> activate]* -> remove

    Migration additionally uses :meth:`get_state` / :meth:`set_state`
    around a passivate/activate pair on different hosts ("the container
    can ask the component instance ... to resume its execution returning
    its internal state", §2.2).
    """

    def __init__(self) -> None:
        self.context: Optional[ComponentContext] = None
        self._active = False

    # -- wiring ----------------------------------------------------------
    def set_context(self, context: ComponentContext) -> None:
        """Container injects the context before any other hook."""
        self.context = context

    # -- lifecycle hooks ----------------------------------------------------
    @property
    def is_active(self) -> bool:
        return self._active

    def activate(self) -> None:
        """Instance begins (or resumes) execution."""
        if self._active:
            raise LifecycleError("activate() on an active instance")
        self._active = True
        self.on_activate()

    def passivate(self) -> None:
        """Instance execution is suspended (e.g. before migration)."""
        if not self._active:
            raise LifecycleError("passivate() on an inactive instance")
        self._active = False
        self.on_passivate()

    def remove(self) -> None:
        """Instance is being destroyed."""
        if self._active:
            self.passivate()
        self.on_remove()

    # -- developer overrides ---------------------------------------------------
    def on_activate(self) -> None:
        """Override: start timers/processes, announce readiness."""

    def on_passivate(self) -> None:
        """Override: quiesce; stop issuing new work."""

    def on_remove(self) -> None:
        """Override: final cleanup."""

    def on_event(self, port_name: str, value: Any) -> None:
        """Override: an event arrived on the named sink port."""

    def create_facet(self, port_name: str) -> Servant:
        """Override: return the servant implementing a provided port.

        Called once per facet at instance creation (and again after
        migration re-incarnates the instance).
        """
        raise LifecycleError(
            f"{type(self).__name__} declares facet {port_name!r} but does "
            "not implement create_facet()"
        )

    # -- state externalization (migration / replication) ---------------------------
    def get_state(self) -> dict:
        """Return the instance state as plain data (JSON-able).

        The default treats the component as stateless.  Stateful
        components override both state hooks (or use
        :class:`StatefulMixin`).
        """
        return {}

    def set_state(self, state: dict) -> None:
        """Restore state captured by :meth:`get_state` (default: ignore)."""

    # -- aggregation (data-parallel components, §2.1.1) ------------------------------
    def split(self, n_ways: int) -> list[dict]:
        """Partition pending work into *n_ways* shards (state dicts).

        Only meaningful for components whose descriptor declares
        ``aggregation="data-parallel"``.
        """
        raise LifecycleError(
            f"{type(self).__name__} does not support aggregation"
        )

    def merge(self, partials: list[Any]) -> Any:
        """Gather partial results into the complete solution."""
        raise LifecycleError(
            f"{type(self).__name__} does not support aggregation"
        )


class StatefulMixin:
    """State externalization over a declared attribute list.

    Subclasses set ``STATE_ATTRS``; get/set_state then copy exactly
    those attributes, which keeps migration payloads explicit.
    """

    STATE_ATTRS: tuple[str, ...] = ()

    def get_state(self) -> dict:
        return {name: getattr(self, name) for name in self.STATE_ATTRS}

    def set_state(self, state: dict) -> None:
        for name in self.STATE_ATTRS:
            if name in state:
                setattr(self, name, state[name])

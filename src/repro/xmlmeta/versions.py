"""Component versions and version-range constraints.

Dependencies in a software descriptor name another component plus the
range of versions that satisfies it ("new components installed in a
host may require ... new version of existing components", §2).
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from functools import total_ordering

from repro.util.errors import ValidationError

_VERSION_RE = re.compile(r"^(\d+)\.(\d+)(?:\.(\d+))?$")
_RANGE_RE = re.compile(r"^(>=|<=|==|>|<)\s*(\d+\.\d+(?:\.\d+)?)$")


@total_ordering
@dataclass(frozen=True)
class Version:
    """A semantic-ish component version: major.minor.patch."""

    major: int
    minor: int
    patch: int = 0

    @classmethod
    def parse(cls, text: str) -> "Version":
        m = _VERSION_RE.match(text.strip())
        if m is None:
            raise ValidationError(f"bad version {text!r}")
        return cls(int(m.group(1)), int(m.group(2)), int(m.group(3) or 0))

    def _key(self) -> tuple[int, int, int]:
        return (self.major, self.minor, self.patch)

    def __lt__(self, other: "Version") -> bool:
        if not isinstance(other, Version):
            return NotImplemented
        return self._key() < other._key()

    def __str__(self) -> str:
        return f"{self.major}.{self.minor}.{self.patch}"


class VersionRange:
    """A conjunction of comparison constraints, e.g. ``>=1.2, <2.0``.

    The empty string means "any version".
    """

    def __init__(self, text: str = "") -> None:
        self.text = text.strip()
        self._constraints: list[tuple[str, Version]] = []
        if self.text:
            for part in self.text.split(","):
                m = _RANGE_RE.match(part.strip())
                if m is None:
                    raise ValidationError(f"bad version constraint {part!r}")
                self._constraints.append((m.group(1), Version.parse(m.group(2))))

    def matches(self, version: Version) -> bool:
        for oper, bound in self._constraints:
            if oper == ">=" and not version >= bound:
                return False
            if oper == "<=" and not version <= bound:
                return False
            if oper == ">" and not version > bound:
                return False
            if oper == "<" and not version < bound:
                return False
            if oper == "==" and not version == bound:
                return False
        return True

    def is_empty(self) -> bool:
        """True iff no version at all can satisfy the conjunction.

        Versions are discrete triples, so an exclusive lower bound
        ``> x.y.z`` is normalised to the inclusive ``>= x.y.(z+1)``
        before comparing against the tightest upper bound; equality
        constraints reduce to membership of that single version.
        """
        eqs = [bound for oper, bound in self._constraints if oper == "=="]
        if eqs:
            return not self.matches(eqs[0])
        lo = None           # tightest inclusive lower bound
        hi = None           # (tightest upper bound, inclusive?)
        for oper, bound in self._constraints:
            if oper in (">=", ">"):
                eff = bound if oper == ">=" else Version(
                    bound.major, bound.minor, bound.patch + 1)
                if lo is None or eff > lo:
                    lo = eff
            else:
                incl = oper == "<="
                if hi is None or bound < hi[0] or (bound == hi[0]
                                                   and not incl):
                    hi = (bound, incl)
        if lo is None or hi is None:
            return False
        bound, incl = hi
        return lo > bound or (lo == bound and not incl)

    def intersect(self, other: "VersionRange") -> "VersionRange":
        """The range satisfied by exactly the versions both accept."""
        if not self.text:
            return VersionRange(other.text)
        if not other.text:
            return VersionRange(self.text)
        return VersionRange(f"{self.text}, {other.text}")

    def __eq__(self, other: object) -> bool:
        return isinstance(other, VersionRange) and self.text == other.text

    def __hash__(self) -> int:
        return hash(self.text)

    def __str__(self) -> str:
        return self.text or "*"

    def __repr__(self) -> str:
        return f"VersionRange({self.text!r})"

"""A small DTD-style validator for XML element trees.

The paper's descriptors are "described using XML files ... The Document
Type Definitions (DTDs) describing those files are based upon the ...
Open Software Descriptor DTD" (§2.1.1).  This module provides the
equivalent validation: each :class:`ElementSpec` constrains an element's
attributes and children with DTD-like cardinalities.

Validation collects *every* violation in one pass — each as a
:class:`~repro.util.diagnostics.Finding` (code ``SCH001``, location =
the element path) — so one run reports everything wrong with a
document.  :func:`validate_element` then raises a single
:class:`SchemaError` carrying all of them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from xml.etree import ElementTree as ET

from repro.util.diagnostics import Finding, Severity
from repro.util.errors import ValidationError

#: Finding code for every schema-level violation.
SCHEMA_VIOLATION = "SCH001"


class SchemaError(ValidationError):
    """An XML document violated its descriptor schema.

    ``findings`` holds one :class:`Finding` per violation; the message
    joins them so callers matching on substrings keep working.
    """

    def __init__(self, message_or_findings) -> None:
        if isinstance(message_or_findings, str):
            findings = [Finding(code=SCHEMA_VIOLATION,
                                severity=Severity.ERROR, location="",
                                message=message_or_findings)]
        else:
            findings = list(message_or_findings)
        self.findings = findings
        super().__init__("; ".join(
            (f"{f.location}: {f.message}" if f.location else f.message)
            for f in findings))


#: Cardinality markers, DTD style.
ONE = "1"        # exactly one
OPT = "?"        # zero or one
MANY = "*"       # zero or more
SOME = "+"       # one or more


@dataclass
class ElementSpec:
    """Schema for one element type.

    ``children`` maps child tag -> (ElementSpec, cardinality).
    ``required_attrs`` / ``optional_attrs`` constrain attributes; other
    attributes are rejected.  ``text`` allows character content.
    """

    tag: str
    required_attrs: tuple[str, ...] = ()
    optional_attrs: tuple[str, ...] = ()
    children: dict = field(default_factory=dict)
    text: bool = False

    def child(self, spec: "ElementSpec", cardinality: str = MANY) -> "ElementSpec":
        """Declare a child element; returns self for chaining."""
        if cardinality not in (ONE, OPT, MANY, SOME):
            raise ValidationError(f"bad cardinality {cardinality!r}")
        self.children[spec.tag] = (spec, cardinality)
        return self


def collect_violations(element: ET.Element, spec: ElementSpec,
                       path: str = "") -> list[Finding]:
    """Every schema violation in *element*'s subtree, none fatal.

    Locations are element paths (``/softpkg/license``); a tag mismatch
    stops descent below that element (its children cannot be judged
    against a spec that does not describe them) but sibling subtrees
    are still checked.
    """
    where = f"{path}/{element.tag}"
    found: list[Finding] = []

    def violation(message: str) -> None:
        found.append(Finding(code=SCHEMA_VIOLATION, severity=Severity.ERROR,
                             location=where, message=message))

    if element.tag != spec.tag:
        violation(f"expected element <{spec.tag}>")
        return found

    allowed = set(spec.required_attrs) | set(spec.optional_attrs)
    for attr in element.attrib:
        if attr not in allowed:
            violation(f"unexpected attribute {attr!r}")
    for attr in spec.required_attrs:
        if attr not in element.attrib:
            violation(f"missing attribute {attr!r}")

    if not spec.text and element.text and element.text.strip():
        violation("character content not allowed")

    counts: dict[str, int] = {}
    for child in element:
        entry = spec.children.get(child.tag)
        if entry is None:
            violation(f"unexpected child <{child.tag}>")
            continue
        child_spec, _card = entry
        found.extend(collect_violations(child, child_spec, where))
        counts[child.tag] = counts.get(child.tag, 0) + 1

    for tag, (_spec, card) in spec.children.items():
        n = counts.get(tag, 0)
        if card == ONE and n != 1:
            violation(f"needs exactly one <{tag}>, got {n}")
        if card == OPT and n > 1:
            violation(f"at most one <{tag}>, got {n}")
        if card == SOME and n < 1:
            violation(f"needs at least one <{tag}>")
    return found


def validate_element(element: ET.Element, spec: ElementSpec,
                     path: str = "") -> None:
    """Validate *element* against *spec*.

    Raises one :class:`SchemaError` carrying *all* violations (on its
    ``findings`` attribute) rather than stopping at the first.
    """
    found = collect_violations(element, spec, path)
    if found:
        raise SchemaError(found)


def parse_and_validate(xml_text: str, spec: ElementSpec) -> ET.Element:
    """Parse *xml_text* and validate the root against *spec*."""
    try:
        root = ET.fromstring(xml_text)
    except ET.ParseError as exc:
        raise SchemaError(f"malformed XML: {exc}") from None
    validate_element(root, spec)
    return root

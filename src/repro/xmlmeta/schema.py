"""A small DTD-style validator for XML element trees.

The paper's descriptors are "described using XML files ... The Document
Type Definitions (DTDs) describing those files are based upon the ...
Open Software Descriptor DTD" (§2.1.1).  This module provides the
equivalent validation: each :class:`ElementSpec` constrains an element's
attributes and children with DTD-like cardinalities.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional
from xml.etree import ElementTree as ET

from repro.util.errors import ValidationError


class SchemaError(ValidationError):
    """An XML document violated its descriptor schema."""


#: Cardinality markers, DTD style.
ONE = "1"        # exactly one
OPT = "?"        # zero or one
MANY = "*"       # zero or more
SOME = "+"       # one or more


@dataclass
class ElementSpec:
    """Schema for one element type.

    ``children`` maps child tag -> (ElementSpec, cardinality).
    ``required_attrs`` / ``optional_attrs`` constrain attributes; other
    attributes are rejected.  ``text`` allows character content.
    """

    tag: str
    required_attrs: tuple[str, ...] = ()
    optional_attrs: tuple[str, ...] = ()
    children: dict = field(default_factory=dict)
    text: bool = False

    def child(self, spec: "ElementSpec", cardinality: str = MANY) -> "ElementSpec":
        """Declare a child element; returns self for chaining."""
        if cardinality not in (ONE, OPT, MANY, SOME):
            raise ValidationError(f"bad cardinality {cardinality!r}")
        self.children[spec.tag] = (spec, cardinality)
        return self


def validate_element(element: ET.Element, spec: ElementSpec,
                     path: str = "") -> None:
    """Validate *element* against *spec*; raises :class:`SchemaError`."""
    where = f"{path}/{element.tag}"
    if element.tag != spec.tag:
        raise SchemaError(f"{where}: expected element <{spec.tag}>")

    allowed = set(spec.required_attrs) | set(spec.optional_attrs)
    for attr in element.attrib:
        if attr not in allowed:
            raise SchemaError(f"{where}: unexpected attribute {attr!r}")
    for attr in spec.required_attrs:
        if attr not in element.attrib:
            raise SchemaError(f"{where}: missing attribute {attr!r}")

    if not spec.text and element.text and element.text.strip():
        raise SchemaError(f"{where}: character content not allowed")

    counts: dict[str, int] = {}
    for child in element:
        entry = spec.children.get(child.tag)
        if entry is None:
            raise SchemaError(f"{where}: unexpected child <{child.tag}>")
        child_spec, _card = entry
        validate_element(child, child_spec, where)
        counts[child.tag] = counts.get(child.tag, 0) + 1

    for tag, (_spec, card) in spec.children.items():
        n = counts.get(tag, 0)
        if card == ONE and n != 1:
            raise SchemaError(f"{where}: needs exactly one <{tag}>, got {n}")
        if card == OPT and n > 1:
            raise SchemaError(f"{where}: at most one <{tag}>, got {n}")
        if card == SOME and n < 1:
            raise SchemaError(f"{where}: needs at least one <{tag}>")


def parse_and_validate(xml_text: str, spec: ElementSpec) -> ET.Element:
    """Parse *xml_text* and validate the root against *spec*."""
    try:
        root = ET.fromstring(xml_text)
    except ET.ParseError as exc:
        raise SchemaError(f"malformed XML: {exc}") from None
    validate_element(root, spec)
    return root

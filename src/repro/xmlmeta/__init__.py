"""XML component metadata (the paper's OSD-derived descriptors).

CORBA-LC describes components with "IDL files and XML files ... with a
custom DTD" (§2.1.2) whose DTDs are "based upon the WWW Consortium's
Open Software Descriptor" (§2.1.1).  This package implements that
metadata layer:

- :mod:`repro.xmlmeta.versions` — versions and version ranges used by
  dependency declarations.
- :mod:`repro.xmlmeta.schema` — a small DTD-style validator for element
  trees.
- :mod:`repro.xmlmeta.descriptors` — the three descriptor documents and
  their XML round-trip:

  * :class:`SoftwareDescriptor` — the static/binary-package dimension
    (§2.1.1): platform-specific implementations, dependencies, mobility,
    replication, aggregation, licensing, signature.
  * :class:`ComponentTypeDescriptor` — the dynamic dimension (§2.1.2):
    ports (provided/used interfaces, event sources/sinks), factory
    lifecycle, QoS requirements, framework services.
  * :class:`AssemblyDescriptor` — explicit instance/connection rules of
    an application (§2.4.4).
"""

from repro.xmlmeta.versions import Version, VersionRange
from repro.xmlmeta.schema import ElementSpec, SchemaError, validate_element
from repro.xmlmeta.descriptors import (
    AssemblyConnection,
    AssemblyDescriptor,
    AssemblyInstance,
    ComponentTypeDescriptor,
    Dependency,
    EventPortDecl,
    ImplementationDescriptor,
    PortDecl,
    QoSSpec,
    SoftwareDescriptor,
)

__all__ = [
    "Version",
    "VersionRange",
    "ElementSpec",
    "SchemaError",
    "validate_element",
    "SoftwareDescriptor",
    "ImplementationDescriptor",
    "Dependency",
    "ComponentTypeDescriptor",
    "PortDecl",
    "EventPortDecl",
    "QoSSpec",
    "AssemblyDescriptor",
    "AssemblyInstance",
    "AssemblyConnection",
]

"""The three CORBA-LC descriptor documents and their XML round-trips.

Every descriptor serializes to XML (:meth:`to_xml`) and parses back with
schema validation (:meth:`from_xml`), mirroring the paper's "IDL and XML
files ... stored in the package jointly with the component binary".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional
from xml.etree import ElementTree as ET

from repro.util.errors import ValidationError
from repro.xmlmeta.schema import (
    ElementSpec,
    MANY,
    ONE,
    OPT,
    SOME,
    parse_and_validate,
)
from repro.xmlmeta.versions import Version, VersionRange

# Enumerated vocabularies (§2.1.1 static description of offerings/needs).
MOBILITY = ("mobile", "pinned")
REPLICATION = ("none", "stateless", "coordinated")
AGGREGATION = ("none", "data-parallel")
LICENSES = ("free", "pay-per-use", "subscription")
LIFECYCLES = ("service", "session", "process")


def _check_enum(label: str, value: str, allowed: tuple[str, ...]) -> str:
    if value not in allowed:
        raise ValidationError(f"{label} must be one of {allowed}, got {value!r}")
    return value


def _indent(text: str) -> str:
    # ElementTree.indent exists from 3.9; use it for readable documents.
    root = ET.fromstring(text)
    ET.indent(root)
    return ET.tostring(root, encoding="unicode")


# ---------------------------------------------------------------------------
# Software (binary package) descriptor — the static dimension
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Dependency:
    """Another component (with acceptable versions) this one requires."""

    component: str
    versions: VersionRange = VersionRange("")

    def satisfied_by(self, name: str, version: Version) -> bool:
        return name == self.component and self.versions.matches(version)


@dataclass(frozen=True)
class ImplementationDescriptor:
    """One platform-specific binary inside the package.

    ``entry_point`` names the executable content (for us, a registered
    Python factory: the stand-in for a DLL/.class/TCL script, §2.3);
    ``binary_path`` is the archive member holding the payload bytes.
    """

    os: str
    arch: str
    orb: str
    entry_point: str
    binary_path: str

    def matches(self, os: str, arch: str, orb: str) -> bool:
        def ok(want: str, have: str) -> bool:
            return want in ("*", have)
        return ok(self.os, os) and ok(self.arch, arch) and ok(self.orb, orb)


@dataclass
class SoftwareDescriptor:
    """OSD-derived package metadata (§2.1.1)."""

    name: str
    version: Version
    vendor: str = "unknown"
    abstract: str = ""
    license: str = "free"
    cost_per_use: float = 0.0
    mobility: str = "mobile"
    replication: str = "none"
    aggregation: str = "none"
    signature: str = ""            # hex digest; "" = unsigned
    dependencies: list[Dependency] = field(default_factory=list)
    implementations: list[ImplementationDescriptor] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.name:
            raise ValidationError("component name must be non-empty")
        _check_enum("license", self.license, LICENSES)
        _check_enum("mobility", self.mobility, MOBILITY)
        _check_enum("replication", self.replication, REPLICATION)
        _check_enum("aggregation", self.aggregation, AGGREGATION)

    @property
    def is_mobile(self) -> bool:
        return self.mobility == "mobile"

    def implementation_for(self, os: str, arch: str,
                           orb: str) -> Optional[ImplementationDescriptor]:
        """The first implementation runnable on the given platform."""
        for impl in self.implementations:
            if impl.matches(os, arch, orb):
                return impl
        return None

    # -- XML ------------------------------------------------------------------
    def to_xml(self) -> str:
        root = ET.Element("softpkg", {
            "name": self.name,
            "version": str(self.version),
            "vendor": self.vendor,
        })
        if self.abstract:
            ET.SubElement(root, "abstract").text = self.abstract
        ET.SubElement(root, "license", {
            "model": self.license,
            "cost-per-use": repr(self.cost_per_use),
        })
        ET.SubElement(root, "distribution", {
            "mobility": self.mobility,
            "replication": self.replication,
            "aggregation": self.aggregation,
        })
        if self.signature:
            ET.SubElement(root, "signature", {"digest": self.signature})
        for dep in self.dependencies:
            ET.SubElement(root, "dependency", {
                "component": dep.component,
                "versions": dep.versions.text,
            })
        for impl in self.implementations:
            ET.SubElement(root, "implementation", {
                "os": impl.os, "arch": impl.arch, "orb": impl.orb,
                "entry-point": impl.entry_point,
                "binary": impl.binary_path,
            })
        return _indent(ET.tostring(root, encoding="unicode"))

    _SCHEMA = (
        ElementSpec("softpkg", required_attrs=("name", "version", "vendor"))
        .child(ElementSpec("abstract", text=True), OPT)
        .child(ElementSpec("license",
                           required_attrs=("model",),
                           optional_attrs=("cost-per-use",)), ONE)
        .child(ElementSpec("distribution",
                           required_attrs=("mobility", "replication",
                                           "aggregation")), ONE)
        .child(ElementSpec("signature", required_attrs=("digest",)), OPT)
        .child(ElementSpec("dependency",
                           required_attrs=("component",),
                           optional_attrs=("versions",)), MANY)
        .child(ElementSpec("implementation",
                           required_attrs=("os", "arch", "orb",
                                           "entry-point", "binary")), MANY)
    )

    @classmethod
    def from_xml(cls, xml_text: str) -> "SoftwareDescriptor":
        root = parse_and_validate(xml_text, cls._SCHEMA)
        abstract = root.findtext("abstract", default="") or ""
        lic = root.find("license")
        dist = root.find("distribution")
        sig = root.find("signature")
        deps = [
            Dependency(el.get("component"),
                       VersionRange(el.get("versions", "")))
            for el in root.findall("dependency")
        ]
        impls = [
            ImplementationDescriptor(
                os=el.get("os"), arch=el.get("arch"), orb=el.get("orb"),
                entry_point=el.get("entry-point"),
                binary_path=el.get("binary"),
            )
            for el in root.findall("implementation")
        ]
        return cls(
            name=root.get("name"),
            version=Version.parse(root.get("version")),
            vendor=root.get("vendor"),
            abstract=abstract.strip(),
            license=lic.get("model"),
            cost_per_use=float(lic.get("cost-per-use", "0.0")),
            mobility=dist.get("mobility"),
            replication=dist.get("replication"),
            aggregation=dist.get("aggregation"),
            signature=sig.get("digest") if sig is not None else "",
            dependencies=deps,
            implementations=impls,
        )


# ---------------------------------------------------------------------------
# Component type descriptor — the dynamic dimension
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class PortDecl:
    """An interface port: a facet (provides) or receptacle (uses)."""

    name: str
    repo_id: str
    optional: bool = False   # for 'uses': app can start without it


@dataclass(frozen=True)
class EventPortDecl:
    """An event port: a source (emits) or sink (consumes)."""

    name: str
    event_kind: str


@dataclass(frozen=True)
class QoSSpec:
    """Run-time resource requirements of an instance (§2.1.2).

    ``cpu_units`` is sustained work-units/s, ``memory_mb`` resident
    memory, ``bandwidth_bps`` the minimum stream bandwidth the instance
    needs to its peers.
    """

    cpu_units: float = 0.0
    memory_mb: float = 0.0
    bandwidth_bps: float = 0.0

    def fits_within(self, other: "QoSSpec") -> bool:
        """True if *other*'s capacities cover these requirements."""
        return (self.cpu_units <= other.cpu_units
                and self.memory_mb <= other.memory_mb
                and self.bandwidth_bps <= other.bandwidth_bps)


@dataclass
class ComponentTypeDescriptor:
    """Run-time (dynamic dimension) properties of a component (§2.1.2)."""

    name: str
    description: str = ""
    provides: list[PortDecl] = field(default_factory=list)
    uses: list[PortDecl] = field(default_factory=list)
    emits: list[EventPortDecl] = field(default_factory=list)
    consumes: list[EventPortDecl] = field(default_factory=list)
    qos: QoSSpec = field(default_factory=QoSSpec)
    lifecycle: str = "session"
    framework_services: list[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.name:
            raise ValidationError("component type name must be non-empty")
        _check_enum("lifecycle", self.lifecycle, LIFECYCLES)
        seen: set[str] = set()
        for port in list(self.provides) + list(self.uses):
            if port.name in seen:
                raise ValidationError(f"duplicate port name {port.name!r}")
            seen.add(port.name)

    def provided_ids(self) -> set[str]:
        return {p.repo_id for p in self.provides}

    def required_components(self) -> list[PortDecl]:
        return [p for p in self.uses if not p.optional]

    # -- XML ---------------------------------------------------------------------
    def to_xml(self) -> str:
        root = ET.Element("componenttype", {
            "name": self.name,
            "lifecycle": self.lifecycle,
        })
        if self.description:
            ET.SubElement(root, "description").text = self.description
        for port in self.provides:
            ET.SubElement(root, "provides", {
                "name": port.name, "repoid": port.repo_id,
            })
        for port in self.uses:
            ET.SubElement(root, "uses", {
                "name": port.name, "repoid": port.repo_id,
                "optional": "yes" if port.optional else "no",
            })
        for ev in self.emits:
            ET.SubElement(root, "emits", {
                "name": ev.name, "kind": ev.event_kind,
            })
        for ev in self.consumes:
            ET.SubElement(root, "consumes", {
                "name": ev.name, "kind": ev.event_kind,
            })
        ET.SubElement(root, "qos", {
            "cpu": repr(self.qos.cpu_units),
            "memory": repr(self.qos.memory_mb),
            "bandwidth": repr(self.qos.bandwidth_bps),
        })
        for svc in self.framework_services:
            ET.SubElement(root, "service", {"name": svc})
        return _indent(ET.tostring(root, encoding="unicode"))

    _SCHEMA = (
        ElementSpec("componenttype", required_attrs=("name", "lifecycle"))
        .child(ElementSpec("description", text=True), OPT)
        .child(ElementSpec("provides", required_attrs=("name", "repoid")), MANY)
        .child(ElementSpec("uses", required_attrs=("name", "repoid"),
                           optional_attrs=("optional",)), MANY)
        .child(ElementSpec("emits", required_attrs=("name", "kind")), MANY)
        .child(ElementSpec("consumes", required_attrs=("name", "kind")), MANY)
        .child(ElementSpec("qos",
                           required_attrs=("cpu", "memory", "bandwidth")), ONE)
        .child(ElementSpec("service", required_attrs=("name",)), MANY)
    )

    @classmethod
    def from_xml(cls, xml_text: str) -> "ComponentTypeDescriptor":
        root = parse_and_validate(xml_text, cls._SCHEMA)
        qos = root.find("qos")
        return cls(
            name=root.get("name"),
            lifecycle=root.get("lifecycle"),
            description=(root.findtext("description", default="") or "").strip(),
            provides=[PortDecl(el.get("name"), el.get("repoid"))
                      for el in root.findall("provides")],
            uses=[PortDecl(el.get("name"), el.get("repoid"),
                           optional=el.get("optional", "no") == "yes")
                  for el in root.findall("uses")],
            emits=[EventPortDecl(el.get("name"), el.get("kind"))
                   for el in root.findall("emits")],
            consumes=[EventPortDecl(el.get("name"), el.get("kind"))
                      for el in root.findall("consumes")],
            qos=QoSSpec(cpu_units=float(qos.get("cpu")),
                        memory_mb=float(qos.get("memory")),
                        bandwidth_bps=float(qos.get("bandwidth"))),
            framework_services=[el.get("name")
                                for el in root.findall("service")],
        )


# ---------------------------------------------------------------------------
# Assembly descriptor — applications as bootstrap components
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class AssemblyInstance:
    """One named instance the application requires (§2.4.4)."""

    name: str
    component: str
    versions: VersionRange = VersionRange("")


@dataclass(frozen=True)
class AssemblyConnection:
    """Wire ``from_instance.from_port`` (a receptacle or event sink) to
    ``to_instance.to_port`` (a facet or event source)."""

    from_instance: str
    from_port: str
    to_instance: str
    to_port: str
    kind: str = "interface"   # or "event"


@dataclass
class AssemblyDescriptor:
    """The explicit instance/connection rules of an application."""

    name: str
    instances: list[AssemblyInstance] = field(default_factory=list)
    connections: list[AssemblyConnection] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.name:
            raise ValidationError("assembly name must be non-empty")
        names = [i.name for i in self.instances]
        if len(set(names)) != len(names):
            raise ValidationError(f"duplicate instance names in {self.name}")
        known = set(names)
        for conn in self.connections:
            for inst in (conn.from_instance, conn.to_instance):
                if inst not in known:
                    raise ValidationError(
                        f"connection references unknown instance {inst!r}"
                    )
            if conn.kind not in ("interface", "event"):
                raise ValidationError(f"bad connection kind {conn.kind!r}")

    # -- XML --------------------------------------------------------------------
    def to_xml(self) -> str:
        root = ET.Element("assembly", {"name": self.name})
        for inst in self.instances:
            ET.SubElement(root, "instance", {
                "name": inst.name,
                "component": inst.component,
                "versions": inst.versions.text,
            })
        for conn in self.connections:
            ET.SubElement(root, "connect", {
                "from": f"{conn.from_instance}.{conn.from_port}",
                "to": f"{conn.to_instance}.{conn.to_port}",
                "kind": conn.kind,
            })
        return _indent(ET.tostring(root, encoding="unicode"))

    _SCHEMA = (
        ElementSpec("assembly", required_attrs=("name",))
        .child(ElementSpec("instance",
                           required_attrs=("name", "component"),
                           optional_attrs=("versions",)), SOME)
        .child(ElementSpec("connect",
                           required_attrs=("from", "to"),
                           optional_attrs=("kind",)), MANY)
    )

    @classmethod
    def from_xml(cls, xml_text: str) -> "AssemblyDescriptor":
        root = parse_and_validate(xml_text, cls._SCHEMA)
        instances = [
            AssemblyInstance(el.get("name"), el.get("component"),
                             VersionRange(el.get("versions", "")))
            for el in root.findall("instance")
        ]

        def split_endpoint(text: str) -> tuple[str, str]:
            if "." not in text:
                raise ValidationError(f"bad endpoint {text!r}")
            inst, port = text.split(".", 1)
            return inst, port

        connections = []
        for el in root.findall("connect"):
            fi, fp = split_endpoint(el.get("from"))
            ti, tp = split_endpoint(el.get("to"))
            connections.append(AssemblyConnection(
                fi, fp, ti, tp, kind=el.get("kind", "interface")))
        return cls(name=root.get("name"), instances=instances,
                   connections=connections)

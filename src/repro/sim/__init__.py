"""Deterministic discrete-event simulation substrate.

The paper's protocols (network cohesion, soft-state resource updates,
hierarchical queries, replicated Meta-Resource Managers) are distributed
algorithms whose interesting properties are message counts, bandwidth and
failover latency.  This package provides the seeded discrete-event engine
and network model those protocols run on:

- :mod:`repro.sim.kernel` — a SimPy-style event loop (events, generator
  processes, timeouts, conditions, interrupts) with deterministic
  ordering.
- :mod:`repro.sim.rng` — named, independently-seeded random streams.
- :mod:`repro.sim.topology` — hosts (with hardware profiles, e.g. PDA
  vs. server), links, and routing.
- :mod:`repro.sim.network` — store-and-forward message delivery with
  per-link latency, bandwidth queueing, loss and partitions.
- :mod:`repro.sim.faults` — crash/restart and churn injection.
- :mod:`repro.sim.stats` — counters and time-series metric collection.
"""

from repro.sim.kernel import (
    AllOf,
    AnyOf,
    Environment,
    Event,
    Interrupt,
    Process,
    Timeout,
)
from repro.sim.rng import RngRegistry
from repro.sim.topology import Host, HostProfile, Link, LinkClass, Topology
from repro.sim.network import Message, Network, NetworkInterface
from repro.sim.faults import FaultInjector, ChurnModel
from repro.sim.stats import Counter, MetricRegistry, TimeSeries

__all__ = [
    "AllOf",
    "AnyOf",
    "Environment",
    "Event",
    "Interrupt",
    "Process",
    "Timeout",
    "RngRegistry",
    "Host",
    "HostProfile",
    "Link",
    "LinkClass",
    "Topology",
    "Message",
    "Network",
    "NetworkInterface",
    "FaultInjector",
    "ChurnModel",
    "Counter",
    "MetricRegistry",
    "TimeSeries",
]

"""Network topology: hosts, links, routing, and hardware profiles.

The paper's requirement 8 ("integration of tiny devices ... PDAs as well
as high-end servers") makes host heterogeneity load-bearing, so hosts
carry a :class:`HostProfile` describing CPU power, memory, OS/arch/ORB
identity and whether the device is "tiny".  Links carry latency,
bandwidth and loss so that the packaging/migration experiments can
distinguish a LAN from a modem line.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Iterable, Optional

import networkx as nx

from repro.util.errors import ConfigurationError


@dataclass(frozen=True)
class HostProfile:
    """Static hardware/platform description of a host.

    These are exactly the "static characteristics (such as CPU and
    Operating System Type, ORB)" the Node's Resource Manager exposes.
    """

    name: str
    cpu_power: float  # relative work units per simulated second
    memory_mb: int
    os: str
    arch: str
    orb: str
    is_tiny: bool = False

    def scaled(self, factor: float) -> "HostProfile":
        """A copy with CPU power scaled by *factor* (heterogeneity knobs)."""
        return replace(self, cpu_power=self.cpu_power * factor)


#: Representative profiles used throughout tests/benchmarks.
SERVER = HostProfile("server", cpu_power=1000.0, memory_mb=4096,
                     os="linux", arch="x86", orb="corba-lc", is_tiny=False)
DESKTOP = HostProfile("desktop", cpu_power=400.0, memory_mb=512,
                      os="win32", arch="x86", orb="corba-lc", is_tiny=False)
PDA = HostProfile("pda", cpu_power=20.0, memory_mb=16,
                  os="palmos", arch="arm", orb="corba-lc-micro", is_tiny=True)


@dataclass(frozen=True)
class LinkClass:
    """A technology class for links: latency (s), bandwidth (bytes/s), loss."""

    name: str
    latency: float
    bandwidth: float
    loss: float = 0.0


LAN = LinkClass("lan", latency=0.0005, bandwidth=12_500_000.0)        # 100 Mb/s
WAN = LinkClass("wan", latency=0.030, bandwidth=1_250_000.0)          # 10 Mb/s
WIRELESS = LinkClass("wireless", latency=0.005, bandwidth=687_500.0,  # 5.5 Mb/s
                     loss=0.01)
MODEM = LinkClass("modem", latency=0.100, bandwidth=7_000.0)          # 56 kb/s


class Host:
    """A machine participating in the network."""

    def __init__(self, host_id: str, profile: HostProfile) -> None:
        self.host_id = host_id
        self.profile = profile
        self.alive = True
        #: Called (with this host) when the host crashes / restarts, so
        #: services running on it can stop/restart themselves.
        self.on_crash: list[Callable[["Host"], None]] = []
        self.on_restart: list[Callable[["Host"], None]] = []

    def crash(self) -> None:
        if not self.alive:
            return
        self.alive = False
        for cb in list(self.on_crash):
            cb(self)

    def restart(self) -> None:
        if self.alive:
            return
        self.alive = True
        for cb in list(self.on_restart):
            cb(self)

    def __repr__(self) -> str:
        state = "up" if self.alive else "DOWN"
        return f"<Host {self.host_id} [{self.profile.name}] {state}>"


class Link:
    """A bidirectional link between two hosts."""

    def __init__(self, a: str, b: str, link_class: LinkClass) -> None:
        self.a = a
        self.b = b
        self.link_class = link_class
        self.up = True
        #: Simulated time until which the link is busy serializing earlier
        #: messages (store-and-forward queueing model).
        self.busy_until = 0.0

    @property
    def key(self) -> tuple[str, str]:
        return (self.a, self.b) if self.a <= self.b else (self.b, self.a)

    @property
    def latency(self) -> float:
        return self.link_class.latency

    @property
    def bandwidth(self) -> float:
        return self.link_class.bandwidth

    @property
    def loss(self) -> float:
        return self.link_class.loss

    def __repr__(self) -> str:
        state = "up" if self.up else "CUT"
        return f"<Link {self.a}<->{self.b} {self.link_class.name} {state}>"


class Topology:
    """Hosts + links + shortest-latency routing.

    Routing uses latency-weighted shortest paths over the subgraph of
    live hosts and un-cut links.  Routes are cached and invalidated on
    any topology or liveness change.
    """

    def __init__(self) -> None:
        self._graph = nx.Graph()
        self._hosts: dict[str, Host] = {}
        self._links: dict[tuple[str, str], Link] = {}
        self._route_cache: dict[tuple[str, str], Optional[list[str]]] = {}
        #: (src, dst) -> Link list of the cached route (or None when
        #: unreachable); invalidated together with the route cache.
        self._link_cache: dict[tuple[str, str], Optional[list["Link"]]] = {}
        #: live-subgraph memo shared by all route computations between
        #: liveness changes; rebuilding it per (src, dst) pair is
        #: O(hosts + links) each time and dominates 1k-host runs.
        self._live_graph_cache: Optional[nx.Graph] = None

    # -- construction ------------------------------------------------------
    def add_host(self, host_id: str, profile: HostProfile = DESKTOP) -> Host:
        if host_id in self._hosts:
            raise ConfigurationError(f"duplicate host id {host_id!r}")
        host = Host(host_id, profile)
        self._hosts[host_id] = host
        self._graph.add_node(host_id)
        self._route_cache.clear()
        self._link_cache.clear()
        self._live_graph_cache = None
        return host

    def add_link(self, a: str, b: str, link_class: LinkClass = LAN) -> Link:
        if a not in self._hosts or b not in self._hosts:
            raise ConfigurationError(f"link endpoints must exist: {a!r}, {b!r}")
        if a == b:
            raise ConfigurationError("self-links are not allowed")
        link = Link(a, b, link_class)
        if link.key in self._links:
            raise ConfigurationError(f"duplicate link {a!r}<->{b!r}")
        self._links[link.key] = link
        self._graph.add_edge(a, b, weight=link_class.latency)
        self._route_cache.clear()
        self._link_cache.clear()
        self._live_graph_cache = None
        return link

    # -- access ------------------------------------------------------------
    def host(self, host_id: str) -> Host:
        try:
            return self._hosts[host_id]
        except KeyError:
            raise ConfigurationError(f"unknown host {host_id!r}") from None

    def __contains__(self, host_id: str) -> bool:
        return host_id in self._hosts

    def hosts(self) -> list[Host]:
        return list(self._hosts.values())

    def host_ids(self) -> list[str]:
        return list(self._hosts)

    def link(self, a: str, b: str) -> Link:
        key = (a, b) if a <= b else (b, a)
        try:
            return self._links[key]
        except KeyError:
            raise ConfigurationError(f"no link {a!r}<->{b!r}") from None

    def links(self) -> list[Link]:
        return list(self._links.values())

    def neighbors(self, host_id: str) -> list[str]:
        return list(self._graph.neighbors(host_id))

    # -- liveness / partitions ----------------------------------------------
    def invalidate_routes(self) -> None:
        self._route_cache.clear()
        self._link_cache.clear()
        self._live_graph_cache = None

    def set_link_state(self, a: str, b: str, up: bool) -> None:
        self.link(a, b).up = up
        self._route_cache.clear()
        self._link_cache.clear()
        self._live_graph_cache = None

    def set_host_state(self, host_id: str, alive: bool) -> None:
        host = self.host(host_id)
        if alive:
            host.restart()
        else:
            host.crash()
        self._route_cache.clear()
        self._link_cache.clear()
        self._live_graph_cache = None

    # -- routing -------------------------------------------------------------
    def _live_graph(self) -> nx.Graph:
        g = self._live_graph_cache
        if g is None:
            g = nx.Graph()
            for hid, host in self._hosts.items():
                if host.alive:
                    g.add_node(hid)
            for link in self._links.values():
                if (link.up and link.a in g and link.b in g):
                    g.add_edge(link.a, link.b, weight=link.latency)
            self._live_graph_cache = g
        return g

    def route(self, src: str, dst: str) -> Optional[list[str]]:
        """Host-id path from *src* to *dst*, or None if unreachable.

        The endpoints must exist; the source may be a crashed host only
        in the sense that a caller checks liveness itself — routing
        requires both endpoints live.
        """
        if src == dst:
            return [src]
        key = (src, dst)
        if key in self._route_cache:
            return self._route_cache[key]
        self.host(src)
        self.host(dst)
        g = self._live_graph()
        try:
            path = nx.shortest_path(g, src, dst, weight="weight")
        except (nx.NetworkXNoPath, nx.NodeNotFound):
            path = None
        self._route_cache[key] = path
        return path

    def path_links(self, path: list[str]) -> list[Link]:
        """The links along a host path."""
        return [self.link(a, b) for a, b in zip(path, path[1:])]

    def route_links(self, src: str, dst: str) -> Optional[list[Link]]:
        """Cached link list of the live route src->dst (None when
        unreachable).  Saves re-deriving the link objects on every
        message along a hot path."""
        key = (src, dst)
        try:
            return self._link_cache[key]
        except KeyError:
            pass
        path = self.route(src, dst)
        links = None if path is None else self.path_links(path)
        self._link_cache[key] = links
        return links

    def reachable(self, src: str, dst: str) -> bool:
        return self.route(src, dst) is not None


# -- topology builders --------------------------------------------------------

def star(n_leaves: int, hub_profile: HostProfile = SERVER,
         leaf_profile: HostProfile = DESKTOP,
         link_class: LinkClass = LAN) -> Topology:
    """A hub host ``hub`` with *n_leaves* hosts ``h0..h{n-1}`` around it."""
    topo = Topology()
    topo.add_host("hub", hub_profile)
    for i in range(n_leaves):
        topo.add_host(f"h{i}", leaf_profile)
        topo.add_link("hub", f"h{i}", link_class)
    return topo


def line(n: int, profile: HostProfile = DESKTOP,
         link_class: LinkClass = LAN) -> Topology:
    """Hosts ``h0..h{n-1}`` in a chain."""
    topo = Topology()
    for i in range(n):
        topo.add_host(f"h{i}", profile)
    for i in range(n - 1):
        topo.add_link(f"h{i}", f"h{i+1}", link_class)
    return topo


def clustered(n_clusters: int, cluster_size: int,
              intra: LinkClass = LAN, inter: LinkClass = WAN,
              profile: HostProfile = DESKTOP,
              backbone: str = "chain") -> Topology:
    """LAN clusters joined by WAN links between their first hosts.

    Hosts are named ``c{i}h{j}``.  Each cluster is a full mesh (hosts on
    one switch: no peer host is a single point of failure for intra-LAN
    traffic); cluster heads ``c{i}h0`` act as WAN gateways.  This is the
    shape the paper's hierarchical MRM protocol targets: locality inside
    a cluster, expensive links between clusters.

    ``backbone`` picks the gateway interconnect:

    - ``"chain"`` (default) — ``c0h0 - c1h0 - ... `` in a line: the
      historical shape, fine for a handful of clusters.
    - ``"chords"`` — a ring plus power-of-two chord links
      (``ci <-> c(i + 2^k)``), giving an O(log C) WAN diameter.  Use
      this for large cluster counts, where a chain's O(C) diameter
      would make the middle links a bottleneck for all cross traffic.
    """
    if backbone not in ("chain", "chords"):
        raise ConfigurationError(f"unknown backbone {backbone!r}")
    topo = Topology()
    for c in range(n_clusters):
        for j in range(cluster_size):
            topo.add_host(f"c{c}h{j}", profile)
        for j in range(cluster_size):
            for k in range(j + 1, cluster_size):
                topo.add_link(f"c{c}h{j}", f"c{c}h{k}", intra)
    if backbone == "chain" or n_clusters <= 2:
        for c in range(n_clusters - 1):
            topo.add_link(f"c{c}h0", f"c{c+1}h0", inter)
        return topo
    seen: set[tuple[int, int]] = set()
    offsets = [1]
    step = 2
    while step < n_clusters:
        offsets.append(step)
        step *= 2
    for c in range(n_clusters):
        for offset in offsets:
            pair = tuple(sorted((c, (c + offset) % n_clusters)))
            if pair[0] == pair[1] or pair in seen:
                continue
            seen.add(pair)
            topo.add_link(f"c{pair[0]}h0", f"c{pair[1]}h0", inter)
    return topo


def random_mesh(n: int, degree: float, rng, profile: HostProfile = DESKTOP,
                link_class: LinkClass = LAN) -> Topology:
    """A connected random graph of *n* hosts with average degree ~*degree*.

    Built as a random spanning tree plus extra random edges; always
    connected, deterministic under the supplied *rng*.
    """
    topo = Topology()
    for i in range(n):
        topo.add_host(f"h{i}", profile)
    # random spanning tree
    order = list(range(n))
    rng.shuffle(order)
    for idx in range(1, n):
        a = order[idx]
        b = order[int(rng.integers(0, idx))]
        topo.add_link(f"h{a}", f"h{b}", link_class)
    # extra edges
    extra = max(0, int(n * degree / 2) - (n - 1))
    tries = 0
    while extra > 0 and tries < 50 * n:
        tries += 1
        a, b = int(rng.integers(0, n)), int(rng.integers(0, n))
        if a == b:
            continue
        key = (f"h{min(a,b)}", f"h{max(a,b)}")
        if key in topo._links:
            continue
        topo.add_link(key[0], key[1], link_class)
        extra -= 1
    return topo

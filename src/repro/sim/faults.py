"""Fault injection: crashes, restarts, link cuts, partitions, churn.

The paper demands protocols that "support spurious node failures and
node disconnections (and re-connections) gracefully" (§2.4.3); this
module produces exactly those event patterns, deterministically.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.sim.kernel import Environment
from repro.sim.rng import RngRegistry
from repro.sim.topology import Topology


class FaultInjector:
    """Scheduled, scripted faults against a topology."""

    def __init__(self, env: Environment, topology: Topology) -> None:
        self.env = env
        self.topology = topology
        self.log: list[tuple[float, str, str]] = []

    # -- immediate --------------------------------------------------------
    def crash_host(self, host_id: str) -> None:
        self.topology.set_host_state(host_id, alive=False)
        self.log.append((self.env.now, "crash", host_id))

    def restart_host(self, host_id: str) -> None:
        self.topology.set_host_state(host_id, alive=True)
        self.log.append((self.env.now, "restart", host_id))

    def cut_link(self, a: str, b: str) -> None:
        self.topology.set_link_state(a, b, up=False)
        self.log.append((self.env.now, "cut", f"{a}|{b}"))

    def heal_link(self, a: str, b: str) -> None:
        self.topology.set_link_state(a, b, up=True)
        self.log.append((self.env.now, "heal", f"{a}|{b}"))

    def partition(self, group_a: Iterable[str], group_b: Iterable[str]) -> list[tuple[str, str]]:
        """Cut every link crossing the two host groups; returns the cuts."""
        set_a, set_b = set(group_a), set(group_b)
        cut = []
        for link in self.topology.links():
            if (link.a in set_a and link.b in set_b) or (
                link.a in set_b and link.b in set_a
            ):
                if link.up:
                    self.cut_link(link.a, link.b)
                    cut.append((link.a, link.b))
        return cut

    def heal_partition(self, cuts: Iterable[tuple[str, str]]) -> None:
        for a, b in cuts:
            self.heal_link(a, b)

    # -- scheduled ----------------------------------------------------------
    def crash_at(self, time: float, host_id: str) -> None:
        self._at(time, lambda: self.crash_host(host_id))

    def restart_at(self, time: float, host_id: str) -> None:
        self._at(time, lambda: self.restart_host(host_id))

    def cut_link_at(self, time: float, a: str, b: str) -> None:
        self._at(time, lambda: self.cut_link(a, b))

    def heal_link_at(self, time: float, a: str, b: str) -> None:
        self._at(time, lambda: self.heal_link(a, b))

    # -- churn scenarios -------------------------------------------------
    def outage_at(self, time: float, host_id: str,
                  duration: float) -> None:
        """One scripted crash/restart cycle: down at *time*, back after
        *duration* — the unit of deterministic churn scenarios."""
        self.crash_at(time, host_id)
        self.restart_at(time + duration, host_id)

    def outages(self, plan: Iterable[tuple[str, float, float]]) -> None:
        """Schedule a whole churn script of (host, time, duration)."""
        for host_id, time, duration in plan:
            self.outage_at(time, host_id, duration)

    def partition_at(self, time: float, group_a: Iterable[str],
                     group_b: Iterable[str],
                     duration: Optional[float] = None) -> None:
        """Partition the two groups at *time*; heal after *duration*.

        The links actually cut are determined at fire time (a link
        already down stays out of the heal set), so a partition composes
        with other scheduled faults.
        """
        set_a, set_b = list(group_a), list(group_b)
        cuts: list[tuple[str, str]] = []
        self._at(time, lambda: cuts.extend(self.partition(set_a, set_b)))
        if duration is not None:
            self._at(time + duration, lambda: self.heal_partition(cuts))

    def _at(self, time: float, action) -> None:
        delay = time - self.env.now
        if delay < 0:
            raise ValueError(f"fault time {time} is in the past")
        self.env.timeout(delay).callbacks.append(lambda _ev: action())


class ChurnModel:
    """Random crash/restart churn over a set of hosts.

    Each selected host independently alternates between up-time drawn
    from Exp(mean_uptime) and down-time drawn from Exp(mean_downtime).
    Determinism comes from the named RNG stream.
    """

    def __init__(
        self,
        env: Environment,
        injector: FaultInjector,
        rngs: RngRegistry,
        hosts: Iterable[str],
        mean_uptime: float,
        mean_downtime: float,
        protected: Optional[Iterable[str]] = None,
    ) -> None:
        self.env = env
        self.injector = injector
        self.rng = rngs.stream("churn")
        self.mean_uptime = mean_uptime
        self.mean_downtime = mean_downtime
        protected_set = set(protected or ())
        self.hosts = [h for h in hosts if h not in protected_set]
        self.crashes = 0
        self.restarts = 0
        self._procs = [env.process(self._churn(h)) for h in self.hosts]

    def _churn(self, host_id: str):
        while True:
            yield self.env.timeout(float(self.rng.exponential(self.mean_uptime)))
            self.injector.crash_host(host_id)
            self.crashes += 1
            yield self.env.timeout(float(self.rng.exponential(self.mean_downtime)))
            self.injector.restart_host(host_id)
            self.restarts += 1

"""Fault injection: crashes, restarts, link cuts, partitions, churn —
and wire faults (corruption, truncation, duplication, reordering).

The paper demands protocols that "support spurious node failures and
node disconnections (and re-connections) gracefully" (§2.4.3); this
module produces exactly those event patterns, deterministically.  The
:class:`WireFaultModel` extends the fault vocabulary below the message
level: real networks do not only *drop* messages, they also deliver
damaged, repeated and out-of-order ones, and a robust ORB must survive
every byte pattern such a wire can produce.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from repro.sim.kernel import Environment
from repro.sim.rng import RngRegistry
from repro.sim.topology import Topology


@dataclass(frozen=True)
class WireFaultProfile:
    """Per-link fault rates, each an independent per-message probability.

    ``corrupt`` flips 1..``max_flips`` random bits in the payload,
    ``truncate`` cuts the payload at a random boundary, ``duplicate``
    delivers the message a second time ``dup_delay`` later, ``reorder``
    holds the message back by ``reorder_delay`` so traffic sent after it
    arrives first.  Corruption and truncation only act on ``bytes``
    payloads (the ORB's GIOP frames); opaque payloads pass unharmed.
    """

    corrupt: float = 0.0
    truncate: float = 0.0
    duplicate: float = 0.0
    reorder: float = 0.0
    max_flips: int = 4
    dup_delay: float = 0.002
    reorder_delay: float = 0.05

    def __post_init__(self) -> None:
        for name in ("corrupt", "truncate", "duplicate", "reorder"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} rate {rate} outside [0, 1]")
        if self.max_flips < 1:
            raise ValueError("max_flips must be >= 1")

    @property
    def active(self) -> bool:
        return (self.corrupt or self.truncate or self.duplicate
                or self.reorder) > 0


class WireFaultModel:
    """Seeded message-level fault injection, consulted by the Network.

    Install with ``network.wire_faults = WireFaultModel(...)`` (or the
    Network constructor argument); set a default profile for every link
    and/or per-link overrides.  Faults compose along a route: a message
    crossing two lossy links rolls the dice on each.  All randomness
    comes from one named RNG stream, so a given seed produces the same
    fault pattern on every run.
    """

    STREAM = "net.wire_faults"

    def __init__(self, rngs: RngRegistry, metrics,
                 default: Optional[WireFaultProfile] = None) -> None:
        self.rng = rngs.stream(self.STREAM)
        self.metrics = metrics
        self.default = default
        self._links: dict[frozenset, WireFaultProfile] = {}

    # -- configuration -----------------------------------------------------
    def set_default(self, profile: Optional[WireFaultProfile]) -> None:
        self.default = profile

    def set_link(self, a: str, b: str, profile: WireFaultProfile) -> None:
        self._links[frozenset((a, b))] = profile

    def clear_link(self, a: str, b: str) -> None:
        self._links.pop(frozenset((a, b)), None)

    def profile_for(self, link) -> Optional[WireFaultProfile]:
        return self._links.get(frozenset((link.a, link.b)), self.default)

    # -- application -------------------------------------------------------
    def apply(self, payload, links) -> list[tuple[object, float]]:
        """Roll faults for one message crossing *links*.

        Returns the deliveries to schedule as ``(payload, extra_delay)``
        pairs — usually one, two when duplicated, always at least one
        (wire faults damage messages; outright loss stays the business
        of the links' ``loss`` probability).
        """
        extra_delay = 0.0
        duplicated = False
        dup_delay = 0.0
        for link in links:
            profile = self.profile_for(link)
            if profile is None or not profile.active:
                continue
            if profile.corrupt and self.rng.random() < profile.corrupt:
                mutated = self._flip_bits(payload, profile.max_flips)
                if mutated is not None:
                    payload = mutated
                    self.metrics.counter("net.corrupted.bitflip").inc()
            if profile.truncate and self.rng.random() < profile.truncate:
                mutated = self._truncate(payload)
                if mutated is not None:
                    payload = mutated
                    self.metrics.counter("net.corrupted.truncate").inc()
            if profile.duplicate and self.rng.random() < profile.duplicate:
                duplicated = True
                dup_delay = max(dup_delay, profile.dup_delay)
                self.metrics.counter("net.corrupted.duplicate").inc()
            if profile.reorder and self.rng.random() < profile.reorder:
                extra_delay += profile.reorder_delay
                self.metrics.counter("net.corrupted.reorder").inc()
        deliveries = [(payload, extra_delay)]
        if duplicated:
            deliveries.append((payload, extra_delay + dup_delay))
        return deliveries

    def _flip_bits(self, payload, max_flips: int) -> Optional[bytes]:
        if not isinstance(payload, (bytes, bytearray)) or not payload:
            return None
        data = bytearray(payload)
        n_flips = 1 + int(self.rng.integers(0, max_flips))
        for _ in range(n_flips):
            pos = int(self.rng.integers(0, len(data)))
            data[pos] ^= 1 << int(self.rng.integers(0, 8))
        return bytes(data)

    def _truncate(self, payload) -> Optional[bytes]:
        if not isinstance(payload, (bytes, bytearray)) or not payload:
            return None
        cut = int(self.rng.integers(0, len(payload)))
        return bytes(payload[:cut])


class FaultInjector:
    """Scheduled, scripted faults against a topology."""

    def __init__(self, env: Environment, topology: Topology) -> None:
        self.env = env
        self.topology = topology
        self.log: list[tuple[float, str, str]] = []

    # -- immediate --------------------------------------------------------
    def crash_host(self, host_id: str) -> None:
        self.topology.set_host_state(host_id, alive=False)
        self.log.append((self.env.now, "crash", host_id))

    def restart_host(self, host_id: str) -> None:
        self.topology.set_host_state(host_id, alive=True)
        self.log.append((self.env.now, "restart", host_id))

    def cut_link(self, a: str, b: str) -> None:
        self.topology.set_link_state(a, b, up=False)
        self.log.append((self.env.now, "cut", f"{a}|{b}"))

    def heal_link(self, a: str, b: str) -> None:
        self.topology.set_link_state(a, b, up=True)
        self.log.append((self.env.now, "heal", f"{a}|{b}"))

    def partition(self, group_a: Iterable[str], group_b: Iterable[str]) -> list[tuple[str, str]]:
        """Cut every link crossing the two host groups; returns the cuts."""
        set_a, set_b = set(group_a), set(group_b)
        cut = []
        for link in self.topology.links():
            if (link.a in set_a and link.b in set_b) or (
                link.a in set_b and link.b in set_a
            ):
                if link.up:
                    self.cut_link(link.a, link.b)
                    cut.append((link.a, link.b))
        return cut

    def heal_partition(self, cuts: Iterable[tuple[str, str]]) -> None:
        for a, b in cuts:
            self.heal_link(a, b)

    # -- scheduled ----------------------------------------------------------
    def crash_at(self, time: float, host_id: str) -> None:
        self._at(time, lambda: self.crash_host(host_id))

    def restart_at(self, time: float, host_id: str) -> None:
        self._at(time, lambda: self.restart_host(host_id))

    def cut_link_at(self, time: float, a: str, b: str) -> None:
        self._at(time, lambda: self.cut_link(a, b))

    def heal_link_at(self, time: float, a: str, b: str) -> None:
        self._at(time, lambda: self.heal_link(a, b))

    # -- churn scenarios -------------------------------------------------
    def outage_at(self, time: float, host_id: str,
                  duration: float) -> None:
        """One scripted crash/restart cycle: down at *time*, back after
        *duration* — the unit of deterministic churn scenarios."""
        self.crash_at(time, host_id)
        self.restart_at(time + duration, host_id)

    def outages(self, plan: Iterable[tuple[str, float, float]]) -> None:
        """Schedule a whole churn script of (host, time, duration)."""
        for host_id, time, duration in plan:
            self.outage_at(time, host_id, duration)

    def partition_at(self, time: float, group_a: Iterable[str],
                     group_b: Iterable[str],
                     duration: Optional[float] = None) -> None:
        """Partition the two groups at *time*; heal after *duration*.

        The links actually cut are determined at fire time (a link
        already down stays out of the heal set), so a partition composes
        with other scheduled faults.
        """
        set_a, set_b = list(group_a), list(group_b)
        cuts: list[tuple[str, str]] = []
        self._at(time, lambda: cuts.extend(self.partition(set_a, set_b)))
        if duration is not None:
            self._at(time + duration, lambda: self.heal_partition(cuts))

    def _at(self, time: float, action) -> None:
        delay = time - self.env.now
        if delay < 0:
            raise ValueError(f"fault time {time} is in the past")
        self.env.timeout(delay).callbacks.append(lambda _ev: action())


class ChurnModel:
    """Random crash/restart churn over a set of hosts.

    Each selected host independently alternates between up-time drawn
    from Exp(mean_uptime) and down-time drawn from Exp(mean_downtime).
    Determinism comes from the named RNG stream.
    """

    def __init__(
        self,
        env: Environment,
        injector: FaultInjector,
        rngs: RngRegistry,
        hosts: Iterable[str],
        mean_uptime: float,
        mean_downtime: float,
        protected: Optional[Iterable[str]] = None,
    ) -> None:
        self.env = env
        self.injector = injector
        self.rng = rngs.stream("churn")
        self.mean_uptime = mean_uptime
        self.mean_downtime = mean_downtime
        protected_set = set(protected or ())
        self.hosts = [h for h in hosts if h not in protected_set]
        self.crashes = 0
        self.restarts = 0
        self._procs = [env.process(self._churn(h)) for h in self.hosts]

    def _churn(self, host_id: str):
        while True:
            yield self.env.timeout(float(self.rng.exponential(self.mean_uptime)))
            self.injector.crash_host(host_id)
            self.crashes += 1
            yield self.env.timeout(float(self.rng.exponential(self.mean_downtime)))
            self.injector.restart_host(host_id)
            self.restarts += 1

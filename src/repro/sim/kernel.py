"""Discrete-event simulation kernel.

A compact, deterministic engine with SimPy-compatible semantics for the
subset the library uses:

- :class:`Event` — one-shot occurrence carrying a value or an exception.
- :class:`Timeout` — event that triggers after a simulated delay.
- :class:`Process` — a generator driven by the events it yields.
- :class:`AnyOf` / :class:`AllOf` — composite wait conditions.
- :class:`Environment` — the event queue and clock.

Determinism: events scheduled for the same simulated time are processed
in (priority, insertion-order) order, so a given program produces an
identical trace on every run.  Nothing here reads wall-clock time or an
unseeded RNG.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, Optional

#: Scheduling priorities for events that fire at the same simulated time.
URGENT = 0
NORMAL = 1

_PENDING = object()


class Interrupt(Exception):
    """Raised inside a process when :meth:`Process.interrupt` is called.

    ``cause`` carries the value the interrupter supplied.
    """

    @property
    def cause(self) -> Any:
        return self.args[0]


class StopSimulation(Exception):
    """Internal: raised to end :meth:`Environment.run` at its horizon."""


class Event:
    """A one-shot occurrence in simulated time.

    An event starts *pending*, becomes *triggered* once given a value via
    :meth:`succeed` / :meth:`fail`, and is *processed* after the
    environment has run its callbacks.
    """

    # Slotted: events are created several times per simulated message,
    # so skipping the per-instance dict is a measurable win.  The
    # __weakref__ slot stays because observability code keys
    # WeakKeyDictionaries by Process.
    __slots__ = ("env", "callbacks", "_value", "_ok", "_defused",
                 "__weakref__")

    def __init__(self, env: "Environment") -> None:
        self.env = env
        #: Callables invoked (with this event) when the event is processed.
        #: ``None`` once processed.
        self.callbacks: Optional[list[Callable[["Event"], None]]] = []
        self._value: Any = _PENDING
        self._ok: bool = True
        #: Set when a failure has been consumed (e.g. thrown into a
        #: process); undefused failures crash the simulation run.
        self._defused = False

    # -- state ----------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has a value and is (or will be) scheduled."""
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded (only meaningful once triggered)."""
        if not self.triggered:
            raise RuntimeError("event not yet triggered")
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value (or the exception it failed with)."""
        if self._value is _PENDING:
            raise RuntimeError("event not yet triggered")
        return self._value

    # -- triggering ------------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with *value*."""
        if self._value is not _PENDING:
            raise RuntimeError(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        env = self.env
        env._eid += 1
        heapq.heappush(env._queue, (env._now, URGENT, env._eid, self))
        return self

    def fail(self, exc: BaseException) -> "Event":
        """Trigger the event with an exception."""
        if self._value is not _PENDING:
            raise RuntimeError(f"{self!r} already triggered")
        if not isinstance(exc, BaseException):
            raise TypeError(f"fail() needs an exception, got {exc!r}")
        self._ok = False
        self._value = exc
        env = self.env
        env._eid += 1
        heapq.heappush(env._queue, (env._now, URGENT, env._eid, self))
        return self

    def defused(self) -> "Event":
        """Mark a failure as handled so it will not crash the run."""
        self._defused = True
        return self

    def __repr__(self) -> str:
        state = (
            "pending"
            if not self.triggered
            else ("processed" if self.processed else "triggered")
        )
        return f"<{type(self).__name__} {state} at 0x{id(self):x}>"


class Timeout(Event):
    """Event that triggers ``delay`` simulated seconds after creation."""

    __slots__ = ("_delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        # Event.__init__ inlined: timeouts carry every network message
        # and every operation's CPU cost, so the super() frame counts.
        self.env = env
        self.callbacks = []
        self._defused = False
        self._delay = delay
        self._ok = True
        self._value = value
        env._eid += 1
        heapq.heappush(env._queue, (env._now + delay, NORMAL, env._eid, self))

    def __repr__(self) -> str:
        return f"<Timeout delay={self._delay} at 0x{id(self):x}>"


class Initialize(Event):
    """Internal event that starts a freshly created process."""

    __slots__ = ()

    def __init__(self, env: "Environment", process: "Process") -> None:
        super().__init__(env)
        self._ok = True
        self._value = None
        self.callbacks.append(process._resume)
        env._schedule(self, URGENT)


class Interruption(Event):
    """Internal event that delivers an :class:`Interrupt` to a process."""

    __slots__ = ("_process",)

    def __init__(self, process: "Process", cause: Any) -> None:
        super().__init__(process.env)
        self._ok = False
        self._value = Interrupt(cause)
        self._defused = True
        self._process = process
        self.callbacks.append(self._deliver)
        self.env._schedule(self, URGENT)

    def _deliver(self, event: "Event") -> None:
        proc = self._process
        if proc.triggered:  # process already finished; drop silently
            return
        # Detach the process from whatever it was waiting on, then resume
        # it with the failed (Interrupt-carrying) event.
        if proc._target is not None and proc._target.callbacks is not None:
            try:
                proc._target.callbacks.remove(proc._resume)
            except ValueError:
                pass
        proc._resume(self)


class Process(Event):
    """Drives a generator; the process *is* an event that triggers when
    the generator returns (value = ``return`` value) or raises.

    Inside the generator, ``yield event`` suspends until the event is
    processed; the ``yield`` expression evaluates to the event's value.
    Yielding a failed event re-raises its exception inside the generator.
    """

    __slots__ = ("_gen", "_target")

    def __init__(self, env: "Environment", generator: Generator) -> None:
        if not hasattr(generator, "throw"):
            raise TypeError(f"{generator!r} is not a generator")
        super().__init__(env)
        self._gen = generator
        self._target: Optional[Event] = Initialize(env, self)

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if self.triggered:
            raise RuntimeError(f"{self!r} has terminated and cannot be interrupted")
        if self is self.env.active_process:
            raise RuntimeError("a process cannot interrupt itself")
        Interruption(self, cause)

    def _resume(self, event: Event) -> None:
        self.env._active_proc = self
        while True:
            try:
                if event._ok:
                    next_ev = self._gen.send(
                        event._value if event._value is not _PENDING else None
                    )
                else:
                    # The exception is being handed to the process, so it
                    # no longer needs to crash the run.
                    event._defused = True
                    exc = event._value
                    next_ev = self._gen.throw(exc)
            except StopIteration as stop:
                self._ok = True
                self._value = stop.value
                self.env._schedule(self, URGENT)
                break
            except BaseException as exc:  # generator died
                self._ok = False
                self._value = exc
                self.env._schedule(self, URGENT)
                break

            if not isinstance(next_ev, Event):
                error = RuntimeError(
                    f"process yielded a non-event: {next_ev!r}"
                )
                self._ok = False
                self._value = error
                self.env._schedule(self, URGENT)
                break

            if next_ev.callbacks is not None:
                # Pending or triggered-but-unprocessed: wait for it.
                next_ev.callbacks.append(self._resume)
                self._target = next_ev
                break
            # Already processed: continue immediately with its value.
            event = next_ev

        self.env._active_proc = None


class Condition(Event):
    """Base for :class:`AnyOf` / :class:`AllOf` composite events."""

    __slots__ = ("_events", "_completed")

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        super().__init__(env)
        self._events = list(events)
        self._completed: dict[Event, Any] = {}
        for ev in self._events:
            if ev.env is not env:
                raise ValueError("events from different environments")
        if not self._events:
            self.succeed({})
            return
        for ev in self._events:
            if ev.callbacks is None:
                self._check(ev)
            else:
                ev.callbacks.append(self._check)

    def _satisfied(self, n_completed: int, n_total: int) -> bool:
        raise NotImplementedError

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        if not event._ok:
            event._defused = True
            self.fail(event._value)
            return
        self._completed[event] = event._value
        if self._satisfied(len(self._completed), len(self._events)):
            # Report values of every already-completed event, in the
            # order the events were passed in.
            self.succeed(
                {ev: val for ev, val in self._completed.items()}
            )


class AnyOf(Condition):
    """Triggers when the first constituent event succeeds."""

    __slots__ = ()

    def _satisfied(self, n_completed: int, n_total: int) -> bool:
        return n_completed >= 1


class AllOf(Condition):
    """Triggers when every constituent event has succeeded."""

    __slots__ = ()

    def _satisfied(self, n_completed: int, n_total: int) -> bool:
        return n_completed == n_total


class Environment:
    """The simulation clock and event queue."""

    def __init__(self, initial_time: float = 0.0) -> None:
        self._now = float(initial_time)
        self._queue: list[tuple[float, int, int, Event]] = []
        self._eid = 0
        self._active_proc: Optional[Process] = None

    # -- clock -----------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time (seconds)."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently executing, if any."""
        return self._active_proc

    # -- factories ---------------------------------------------------------
    def event(self) -> Event:
        """Create a new pending event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that triggers after *delay* sim-seconds."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator) -> Process:
        """Start a new process driving *generator*."""
        return Process(self, generator)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    # -- scheduling --------------------------------------------------------
    def _schedule(self, event: Event, priority: int, delay: float = 0.0) -> None:
        self._eid += 1
        heapq.heappush(self._queue, (self._now + delay, priority, self._eid, event))

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process the single next event.

        Raises the event's exception if it failed and nothing defused it —
        this is how programming errors inside processes surface in tests.
        """
        if not self._queue:
            raise RuntimeError("no more events")
        when, _prio, _eid, event = heapq.heappop(self._queue)
        self._now = when
        callbacks, event.callbacks = event.callbacks, None
        if callbacks is None:
            return  # event somehow processed twice; ignore
        for cb in callbacks:
            cb(event)
        if not event._ok and not event._defused:
            exc = event._value
            raise exc

    def run(self, until: "float | Event | None" = None) -> Any:
        """Run the simulation.

        - ``until`` a number: run events up to that time, then set the
          clock to it.
        - ``until`` an :class:`Event`: run until it is processed and
          return its value (raising if it failed).
        - ``until`` ``None``: run until no events remain.
        """
        stop_at: Optional[float] = None
        stop_ev: Optional[Event] = None
        if until is None:
            pass
        elif isinstance(until, Event):
            stop_ev = until
            if stop_ev.callbacks is None:  # already processed
                if not stop_ev._ok:
                    raise stop_ev._value
                return stop_ev._value
        else:
            stop_at = float(until)
            if stop_at < self._now:
                raise ValueError(
                    f"until ({stop_at}) is in the past (now={self._now})"
                )

        try:
            if stop_at is None:
                # Hot loop: the body of step() inlined with the queue
                # bound locally.  Semantics are identical; run-until-event
                # is the per-invocation path and call overhead counts.
                queue = self._queue
                pop = heapq.heappop
                while queue:
                    when, _prio, _eid, event = pop(queue)
                    self._now = when
                    callbacks, event.callbacks = event.callbacks, None
                    if callbacks is None:
                        continue
                    for cb in callbacks:
                        cb(event)
                    if event is stop_ev:
                        # Identity check instead of a StopSimulation
                        # raise/catch: run-until-event happens once per
                        # sync() and exception unwinding costs more than
                        # one comparison per processed event.
                        if event._ok:
                            return event._value
                        event._defused = True
                        raise event._value
                    if not event._ok and not event._defused:
                        raise event._value
            else:
                while self._queue:
                    if self._queue[0][0] > stop_at:
                        break
                    self.step()
        except StopSimulation as stop:
            return stop.args[0]

        if stop_at is not None:
            self._now = stop_at
        if stop_ev is not None:
            # Queue exhausted before the target event triggered.
            raise RuntimeError(
                "simulation ran out of events before `until` event triggered"
            )
        return None

"""Store-and-forward message delivery over a :class:`Topology`.

Delivery time of a message along a route is computed hop by hop:

    arrival(hop k) = max(arrival(hop k-1), link.busy_until)
                     + size / link.bandwidth + link.latency

i.e. each link serializes messages FIFO at its bandwidth and then adds
propagation latency.  The whole journey is computed when the message is
sent (no per-hop events), which keeps large simulations cheap while
still charging every traversed link its bytes — the quantity the
paper's bandwidth arguments are about.

Failure semantics:
- if no live route exists at send time, the message is dropped;
- lossy links drop the message with their loss probability;
- if the destination host is dead at delivery time, the message is
  dropped;
- an installed :class:`~repro.sim.faults.WireFaultModel` may corrupt,
  truncate, duplicate or reorder messages per link (``net.corrupted.*``
  metrics) — the wire is allowed to be hostile, not just lossy.

Higher layers that need reliability (the ORB, the cohesion protocol)
implement timeouts and retries on top, exactly as TCP/GIOP would.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Callable, Optional

from repro.sim.kernel import Environment, Timeout
from repro.sim.rng import RngRegistry
from repro.sim.stats import MetricRegistry
from repro.sim.topology import Topology
from repro.util.errors import ConfigurationError

#: Fixed per-message header overhead (transport + GIOP-ish framing), bytes.
HEADER_BYTES = 64


@dataclass(slots=True)
class Message:
    """A unit of network transfer."""

    #: per-network sequence number (an int: nothing consumes message
    #: ids, so the hot path skips formatting an id string per message)
    msg_id: int
    src: str
    dst: str
    port: str           # logical service name on the destination host
    payload: Any
    size: int           # payload size in bytes (headers added by Network)
    sent_at: float = 0.0
    #: optional out-of-band metadata; None (not a fresh dict) by default
    #: so the hot send path skips an allocation per message.
    headers: Optional[dict[str, Any]] = None
    #: logical messages carried in this transfer (> 1 for a pipelined
    #: multi-frame transmission; the payload still travels as one unit).
    frames: int = 1

    @property
    def total_size(self) -> int:
        return self.size + HEADER_BYTES


Handler = Callable[[Message], None]


class NetworkInterface:
    """A host's attachment point: named ports dispatch inbound messages."""

    def __init__(self, network: "Network", host_id: str) -> None:
        self.network = network
        self.host_id = host_id
        self._handlers: dict[str, Handler] = {}

    def bind(self, port: str, handler: Handler) -> None:
        """Register *handler* for messages addressed to *port*."""
        if port in self._handlers:
            raise ConfigurationError(
                f"port {port!r} already bound on host {self.host_id!r}"
            )
        self._handlers[port] = handler

    def unbind(self, port: str) -> None:
        self._handlers.pop(port, None)

    def send(self, dst: str, port: str, payload: Any, size: int) -> Message:
        """Fire-and-forget send; returns the Message (possibly dropped)."""
        return self.network.send(self.host_id, dst, port, payload, size)

    def _dispatch(self, msg: Message) -> None:
        handler = self._handlers.get(msg.port)
        if handler is None:
            self.network.metrics.counter("net.unrouted").inc()
            return
        handler(msg)


class Network:
    """Message fabric over a topology, driven by the sim environment."""

    def __init__(
        self,
        env: Environment,
        topology: Topology,
        rngs: Optional[RngRegistry] = None,
        metrics: Optional[MetricRegistry] = None,
        wire_faults=None,
    ) -> None:
        self.env = env
        self.topology = topology
        self.rngs = rngs or RngRegistry(0)
        self.metrics = metrics or MetricRegistry()
        self._msg_seq = 0
        self._interfaces: dict[str, NetworkInterface] = {}
        self._loss_rng = self.rngs.stream("net.loss")
        # Hot-path metric handles, resolved once instead of per message.
        self._ctr_messages = self.metrics.counter("net.messages")
        self._ctr_logical = self.metrics.counter("net.logical")
        self._ctr_local = self.metrics.counter("net.local")
        self._ctr_bytes = self.metrics.counter("net.bytes")
        self._ctr_hops = self.metrics.counter("net.hops")
        self._ctr_delivered = self.metrics.counter("net.delivered")
        self._ctr_backbone = self.metrics.counter("net.bytes.backbone")
        self._link_bytes = self.metrics.labelled_family("net.link_bytes")
        #: id(link) -> (label, is_backbone), computed once per link.
        self._link_meta: dict[int, tuple[str, bool]] = {}
        #: host_id -> Host, memoized: hosts are never removed from a
        #: topology (liveness is a flag on the Host object itself), so
        #: the mapping is stable for the life of the network.
        self._host_memo: dict[str, Any] = {}
        #: optional :class:`~repro.sim.faults.WireFaultModel`: when set,
        #: messages may arrive corrupted, truncated, duplicated or
        #: reordered.  Assignable after construction as well.
        self.wire_faults = wire_faults

    def interface(self, host_id: str) -> NetworkInterface:
        """Return (creating if needed) the interface for *host_id*."""
        iface = self._interfaces.get(host_id)
        if iface is None:
            self.topology.host(host_id)  # validate
            iface = NetworkInterface(self, host_id)
            self._interfaces[host_id] = iface
        return iface

    # -- sending ---------------------------------------------------------
    def send(self, src: str, dst: str, port: str, payload: Any, size: int,
             frames: int = 1) -> Message:
        """Send *payload* of *size* bytes from *src* to *dst*:*port*.

        *frames* counts the logical messages the payload carries (1 for
        an ordinary send; the per-destination frame count for a
        pipelined multi-frame transmission, which is charged as *one*
        header and one link transfer — the coalescing saving).

        Always returns the Message object; whether it arrives depends on
        routes, loss and destination liveness.
        """
        if size < 0:
            raise ConfigurationError(f"negative message size {size}")
        env = self.env
        self._msg_seq += 1
        msg = Message(self._msg_seq, src, dst, port, payload,
                      int(size), env._now)
        if frames != 1:
            msg.frames = frames
        self._ctr_messages.value += 1
        self._ctr_logical.value += frames

        src_host = self._host_memo.get(src)
        if src_host is None:
            src_host = self._host_memo[src] = self.topology.host(src)
        if not src_host.alive:
            self.metrics.counter("net.dropped.src_dead").inc()
            return msg

        if src == dst:
            # Local delivery: loopback costs nothing on the wire.
            self._ctr_local.value += 1
            Timeout(env, 0.0, msg).callbacks.append(self._deliver)
            return msg

        if dst not in self.topology:
            # Destination addresses are data-plane payload (IORs travel
            # the wire and can arrive corrupted): an address naming no
            # real host is dropped like any unroutable packet, and the
            # sender's reply deadline deals with it — it must never
            # blow back into the sending process as a config error.
            self.metrics.counter("net.dropped.unknown_dst").inc()
            return msg

        links = self.topology.route_links(src, dst)
        if links is None:
            self.metrics.counter("net.dropped.unreachable").inc()
            return msg

        arrival = env._now
        total = msg.size + HEADER_BYTES
        link_meta = self._link_meta
        link_bytes = self._link_bytes
        for link in links:
            if not link.up:
                self.metrics.counter("net.dropped.link_down").inc()
                return msg
            cls = link.link_class
            if cls.loss > 0 and self._loss_rng.random() < cls.loss:
                # Charge the bytes up to and including the lossy link —
                # they were transmitted, then lost.
                self.metrics.counter("net.dropped.loss").inc()
                self._charge(link, total)
                return msg
            start = link.busy_until
            if arrival > start:
                start = arrival
            tx = total / cls.bandwidth
            link.busy_until = start + tx
            arrival = start + tx + cls.latency
            # _charge inlined: this runs once per link per message.
            meta = link_meta.get(id(link))
            if meta is None:
                meta = (f"{link.a}|{link.b}", cls.name != "lan")
                link_meta[id(link)] = meta
            label, backbone = meta
            link_bytes[label] = link_bytes.get(label, 0.0) + total
            if backbone:
                self._ctr_backbone.value += total

        self._ctr_bytes.value += total
        self._ctr_hops.value += len(links)
        base_delay = arrival - env._now
        if self.wire_faults is not None:
            for payload, extra in self.wire_faults.apply(msg.payload, links):
                delivery = msg if payload is msg.payload else replace(
                    msg, payload=payload)
                self._schedule_delivery(delivery, delay=base_delay + extra)
            return msg
        # The message rides as the timeout's value — no per-message
        # closure, and no _schedule_delivery frame on the common path.
        Timeout(env, base_delay, msg).callbacks.append(self._deliver)
        return msg

    def _charge(self, link, nbytes: int) -> None:
        meta = self._link_meta.get(id(link))
        if meta is None:
            meta = (f"{link.a}|{link.b}", link.link_class.name != "lan")
            self._link_meta[id(link)] = meta
        label, backbone = meta
        bucket = self._link_bytes
        bucket[label] = bucket.get(label, 0.0) + nbytes
        if backbone:
            self._ctr_backbone.value += nbytes

    def _schedule_delivery(self, msg: Message, delay: float) -> None:
        # The message rides as the timeout's value — no per-message
        # closure allocation on the hot path.
        Timeout(self.env, delay, msg).callbacks.append(self._deliver)

    def _deliver(self, ev) -> None:
        msg = ev._value
        host = self._host_memo.get(msg.dst)
        if host is None:
            host = self._host_memo[msg.dst] = self.topology.host(msg.dst)
        if not host.alive:
            self.metrics.counter("net.dropped.dst_dead").inc()
            return
        iface = self._interfaces.get(msg.dst)
        if iface is None:
            self.metrics.counter("net.unrouted").inc()
            return
        self._ctr_delivered.value += 1
        handler = iface._handlers.get(msg.port)
        if handler is None:
            self.metrics.counter("net.unrouted").inc()
            return
        handler(msg)

    # -- convenience -----------------------------------------------------
    def bytes_sent(self) -> float:
        return self.metrics.get("net.bytes")

    def messages_sent(self) -> float:
        return self.metrics.get("net.messages")

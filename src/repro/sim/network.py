"""Store-and-forward message delivery over a :class:`Topology`.

Delivery time of a message along a route is computed hop by hop:

    arrival(hop k) = max(arrival(hop k-1), link.busy_until)
                     + size / link.bandwidth + link.latency

i.e. each link serializes messages FIFO at its bandwidth and then adds
propagation latency.  The whole journey is computed when the message is
sent (no per-hop events), which keeps large simulations cheap while
still charging every traversed link its bytes — the quantity the
paper's bandwidth arguments are about.

Failure semantics:
- if no live route exists at send time, the message is dropped;
- lossy links drop the message with their loss probability;
- if the destination host is dead at delivery time, the message is
  dropped;
- an installed :class:`~repro.sim.faults.WireFaultModel` may corrupt,
  truncate, duplicate or reorder messages per link (``net.corrupted.*``
  metrics) — the wire is allowed to be hostile, not just lossy.

Higher layers that need reliability (the ORB, the cohesion protocol)
implement timeouts and retries on top, exactly as TCP/GIOP would.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Callable, Optional

from repro.sim.kernel import Environment
from repro.sim.rng import RngRegistry
from repro.sim.stats import MetricRegistry
from repro.sim.topology import Topology
from repro.util.errors import ConfigurationError
from repro.util.ids import IdGenerator

#: Fixed per-message header overhead (transport + GIOP-ish framing), bytes.
HEADER_BYTES = 64


@dataclass
class Message:
    """A unit of network transfer."""

    msg_id: str
    src: str
    dst: str
    port: str           # logical service name on the destination host
    payload: Any
    size: int           # payload size in bytes (headers added by Network)
    sent_at: float = 0.0
    headers: dict[str, Any] = field(default_factory=dict)

    @property
    def total_size(self) -> int:
        return self.size + HEADER_BYTES


Handler = Callable[[Message], None]


class NetworkInterface:
    """A host's attachment point: named ports dispatch inbound messages."""

    def __init__(self, network: "Network", host_id: str) -> None:
        self.network = network
        self.host_id = host_id
        self._handlers: dict[str, Handler] = {}

    def bind(self, port: str, handler: Handler) -> None:
        """Register *handler* for messages addressed to *port*."""
        if port in self._handlers:
            raise ConfigurationError(
                f"port {port!r} already bound on host {self.host_id!r}"
            )
        self._handlers[port] = handler

    def unbind(self, port: str) -> None:
        self._handlers.pop(port, None)

    def send(self, dst: str, port: str, payload: Any, size: int) -> Message:
        """Fire-and-forget send; returns the Message (possibly dropped)."""
        return self.network.send(self.host_id, dst, port, payload, size)

    def _dispatch(self, msg: Message) -> None:
        handler = self._handlers.get(msg.port)
        if handler is None:
            self.network.metrics.counter("net.unrouted").inc()
            return
        handler(msg)


class Network:
    """Message fabric over a topology, driven by the sim environment."""

    def __init__(
        self,
        env: Environment,
        topology: Topology,
        rngs: Optional[RngRegistry] = None,
        metrics: Optional[MetricRegistry] = None,
        wire_faults=None,
    ) -> None:
        self.env = env
        self.topology = topology
        self.rngs = rngs or RngRegistry(0)
        self.metrics = metrics or MetricRegistry()
        self._ids = IdGenerator()
        self._interfaces: dict[str, NetworkInterface] = {}
        self._loss_rng = self.rngs.stream("net.loss")
        #: optional :class:`~repro.sim.faults.WireFaultModel`: when set,
        #: messages may arrive corrupted, truncated, duplicated or
        #: reordered.  Assignable after construction as well.
        self.wire_faults = wire_faults

    def interface(self, host_id: str) -> NetworkInterface:
        """Return (creating if needed) the interface for *host_id*."""
        iface = self._interfaces.get(host_id)
        if iface is None:
            self.topology.host(host_id)  # validate
            iface = NetworkInterface(self, host_id)
            self._interfaces[host_id] = iface
        return iface

    # -- sending ---------------------------------------------------------
    def send(self, src: str, dst: str, port: str, payload: Any, size: int) -> Message:
        """Send *payload* of *size* bytes from *src* to *dst*:*port*.

        Always returns the Message object; whether it arrives depends on
        routes, loss and destination liveness.
        """
        if size < 0:
            raise ConfigurationError(f"negative message size {size}")
        msg = Message(
            msg_id=self._ids.next("msg"),
            src=src,
            dst=dst,
            port=port,
            payload=payload,
            size=int(size),
            sent_at=self.env.now,
        )
        self.metrics.counter("net.messages").inc()

        src_host = self.topology.host(src)
        if not src_host.alive:
            self.metrics.counter("net.dropped.src_dead").inc()
            return msg

        if src == dst:
            # Local delivery: loopback costs nothing on the wire.
            self.metrics.counter("net.local").inc()
            self._schedule_delivery(msg, delay=0.0)
            return msg

        path = self.topology.route(src, dst)
        if path is None:
            self.metrics.counter("net.dropped.unreachable").inc()
            return msg

        links = self.topology.path_links(path)
        arrival = self.env.now
        total = msg.total_size
        for link in links:
            if not link.up:
                self.metrics.counter("net.dropped.link_down").inc()
                return msg
            if link.loss > 0 and self._loss_rng.random() < link.loss:
                # Charge the bytes up to and including the lossy link —
                # they were transmitted, then lost.
                self.metrics.counter("net.dropped.loss").inc()
                self._charge(link, total)
                return msg
            start = max(arrival, link.busy_until)
            tx = total / link.bandwidth
            link.busy_until = start + tx
            arrival = start + tx + link.latency
            self._charge(link, total)

        self.metrics.counter("net.bytes").inc(total)
        self.metrics.counter("net.hops").inc(len(links))
        base_delay = arrival - self.env.now
        if self.wire_faults is not None:
            for payload, extra in self.wire_faults.apply(msg.payload, links):
                delivery = msg if payload is msg.payload else replace(
                    msg, payload=payload)
                self._schedule_delivery(delivery, delay=base_delay + extra)
            return msg
        self._schedule_delivery(msg, delay=base_delay)
        return msg

    def _charge(self, link, nbytes: int) -> None:
        self.metrics.add_labelled("net.link_bytes", f"{link.a}|{link.b}", nbytes)
        if link.link_class.name != "lan":
            self.metrics.counter("net.bytes.backbone").inc(nbytes)

    def _schedule_delivery(self, msg: Message, delay: float) -> None:
        def deliver(_ev) -> None:
            host = self.topology.host(msg.dst)
            if not host.alive:
                self.metrics.counter("net.dropped.dst_dead").inc()
                return
            iface = self._interfaces.get(msg.dst)
            if iface is None:
                self.metrics.counter("net.unrouted").inc()
                return
            self.metrics.counter("net.delivered").inc()
            iface._dispatch(msg)

        timeout = self.env.timeout(delay)
        timeout.callbacks.append(deliver)

    # -- convenience -----------------------------------------------------
    def bytes_sent(self) -> float:
        return self.metrics.get("net.bytes")

    def messages_sent(self) -> float:
        return self.metrics.get("net.messages")

"""Named, independently-seeded random streams.

Every source of randomness in a simulation draws from its own named
stream so that adding a new randomized subsystem does not perturb the
draws seen by existing ones.  Streams are derived from a single root
seed with :class:`numpy.random.SeedSequence`, which guarantees
independence between streams and reproducibility across runs.
"""

from __future__ import annotations

import zlib

import numpy as np


def derived_stream(name: str, seed: int) -> np.random.Generator:
    """A fresh generator derived from (*name*, *seed*).

    The sanctioned construction path for seed-parameterized pure
    functions that live outside any registry (e.g. a worker shard that
    receives its seed over the wire): the same (name, seed) pair always
    yields an identical sequence, and distinct names never collide even
    for equal seeds.  Registry streams use the same derivation, so a
    ``derived_stream(n, s)`` matches ``RngRegistry(s).stream(n)``.
    """
    # crc32 gives a stable 32-bit digest of the name; spawning from
    # SeedSequence(seed, digest) keeps streams independent.
    digest = zlib.crc32(name.encode("utf-8"))
    seq = np.random.SeedSequence(entropy=int(seed), spawn_key=(digest,))
    return np.random.default_rng(seq)


class RngRegistry:
    """Factory for named random streams derived from one root seed."""

    def __init__(self, seed: int = 0) -> None:
        self._seed = int(seed)
        self._streams: dict[str, np.random.Generator] = {}

    @property
    def seed(self) -> int:
        return self._seed

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for *name*, creating it on first use.

        The same (root seed, name) pair always yields an identical
        sequence, regardless of creation order of other streams.
        """
        gen = self._streams.get(name)
        if gen is None:
            gen = derived_stream(name, self._seed)
            self._streams[name] = gen
        return gen

    def fork(self, salt: int) -> "RngRegistry":
        """Derive a new registry (e.g. for a replica simulation run)."""
        return RngRegistry(self._seed * 1_000_003 + int(salt))

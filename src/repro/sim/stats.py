"""Metric collection: counters and time series.

Protocol benchmarks (bandwidth, message counts, staleness, failover
latency) read their numbers from a :class:`MetricRegistry` owned by the
simulation, rather than each protocol keeping ad-hoc state.
"""

from __future__ import annotations

from bisect import bisect_left
from collections import defaultdict
from typing import Iterable, Optional

import numpy as np


class Counter:
    """A monotonically increasing (or arbitrary additive) scalar."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def __repr__(self) -> str:
        return f"Counter({self.name}={self.value})"


class TimeSeries:
    """A sequence of (time, value) samples with summary statistics."""

    __slots__ = ("name", "_times", "_values")

    def __init__(self, name: str) -> None:
        self.name = name
        self._times: list[float] = []
        self._values: list[float] = []

    def record(self, time: float, value: float) -> None:
        self._times.append(float(time))
        self._values.append(float(value))

    def __len__(self) -> int:
        return len(self._values)

    @property
    def times(self) -> np.ndarray:
        return np.asarray(self._times, dtype=float)

    @property
    def values(self) -> np.ndarray:
        return np.asarray(self._values, dtype=float)

    def mean(self) -> float:
        return float(np.mean(self._values)) if self._values else float("nan")

    def max(self) -> float:
        return float(np.max(self._values)) if self._values else float("nan")

    def min(self) -> float:
        return float(np.min(self._values)) if self._values else float("nan")

    def percentile(self, q: float) -> float:
        return float(np.percentile(self._values, q)) if self._values else float("nan")

    def rate(self) -> float:
        """Average of values per unit time over the observed span."""
        if len(self._times) < 2:
            return float("nan")
        span = self._times[-1] - self._times[0]
        if span <= 0:
            return float("nan")
        return float(np.sum(self._values) / span)


class Histogram:
    """Values binned into fixed log-scale buckets.

    Bucket ``i`` covers ``(edge[i-1], edge[i]]`` with geometric edges
    ``lo * growth**i``; values at or below ``lo`` land in bucket 0 and
    values above the top edge in a final overflow bucket.  Fixed edges
    keep recording O(log buckets) and make histograms of the same shape
    directly comparable (the latency/size reports rely on this).

    Percentiles are estimated by linear interpolation inside the
    containing bucket, clamped to the observed min/max, so they are
    exact at the bucket edges and never off by more than one bucket.
    """

    __slots__ = ("name", "edges", "counts", "count", "total",
                 "_min", "_max")

    def __init__(self, name: str, lo: float = 1e-6, growth: float = 2.0,
                 buckets: int = 48) -> None:
        if lo <= 0 or growth <= 1.0 or buckets < 1:
            raise ValueError(
                f"histogram needs lo > 0, growth > 1, buckets >= 1 "
                f"(got lo={lo}, growth={growth}, buckets={buckets})"
            )
        self.name = name
        self.edges: list[float] = [lo * growth ** i for i in range(buckets)]
        #: one count per edge, plus the overflow bucket.
        self.counts: list[int] = [0] * (buckets + 1)
        self.count = 0
        self.total = 0.0
        self._min: float = float("inf")
        self._max: float = float("-inf")

    def record(self, value: float) -> None:
        value = float(value)
        self.counts[bisect_left(self.edges, value)] += 1
        self.count += 1
        self.total += value
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value

    def mean(self) -> float:
        return self.total / self.count if self.count else float("nan")

    def min(self) -> float:
        return self._min if self.count else float("nan")

    def max(self) -> float:
        return self._max if self.count else float("nan")

    def percentile(self, q: float) -> float:
        """Estimated q-th percentile (q in [0, 100])."""
        if not self.count:
            return float("nan")
        if not 0 <= q <= 100:
            raise ValueError(f"percentile {q} outside [0, 100]")
        rank = (q / 100.0) * self.count
        seen = 0.0
        for i, n in enumerate(self.counts):
            if n == 0:
                continue
            if seen + n >= rank:
                frac = 0.0 if n == 0 else max(0.0, (rank - seen)) / n
                lower = self.edges[i - 1] if 0 < i <= len(self.edges) \
                    else self._min
                upper = self.edges[i] if i < len(self.edges) else self._max
                value = lower + (upper - lower) * frac
                return min(max(value, self._min), self._max)
            seen += n
        return self._max

    def __repr__(self) -> str:
        return (f"Histogram({self.name}: n={self.count}, "
                f"mean={self.mean():.4g})")


class MetricRegistry:
    """Namespace of counters, time series and histograms, keyed by
    dotted names."""

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._series: dict[str, TimeSeries] = {}
        self._histograms: dict[str, Histogram] = {}
        self._labelled: dict[str, dict[str, float]] = defaultdict(dict)

    def counter(self, name: str) -> Counter:
        c = self._counters.get(name)
        if c is None:
            c = self._counters[name] = Counter(name)
        return c

    def series(self, name: str) -> TimeSeries:
        s = self._series.get(name)
        if s is None:
            s = self._series[name] = TimeSeries(name)
        return s

    def histogram(self, name: str, lo: float = 1e-6, growth: float = 2.0,
                  buckets: int = 48) -> Histogram:
        """Return the named histogram, creating it on first use.

        Shape arguments only apply on creation; later calls return the
        existing histogram unchanged.
        """
        h = self._histograms.get(name)
        if h is None:
            h = self._histograms[name] = Histogram(
                name, lo=lo, growth=growth, buckets=buckets)
        return h

    def find_histogram(self, name: str) -> Optional[Histogram]:
        """The named histogram if it exists, without creating it."""
        return self._histograms.get(name)

    def histograms(self) -> dict[str, Histogram]:
        return dict(self._histograms)

    def add_labelled(self, name: str, label: str, amount: float = 1.0) -> None:
        """Accumulate into a labelled counter family (e.g. bytes per link)."""
        self._labelled[name][label] = self._labelled[name].get(label, 0.0) + amount

    def labelled(self, name: str) -> dict[str, float]:
        return dict(self._labelled.get(name, {}))

    def labelled_family(self, name: str) -> dict[str, float]:
        """The live label->value dict for *name*, for hot-path callers
        that accumulate directly instead of going through
        :meth:`add_labelled` per event."""
        return self._labelled[name]

    def counters(self) -> dict[str, float]:
        return {name: c.value for name, c in self._counters.items()}

    def get(self, name: str, default: float = 0.0) -> float:
        c = self._counters.get(name)
        return c.value if c is not None else default

    def names(self) -> Iterable[str]:
        yield from self._counters
        yield from self._series
        yield from self._histograms

    def snapshot(self) -> dict[str, float]:
        """Flat dict of every counter, the mean of every series, and
        count/mean/p50/p95/p99 of every histogram."""
        out = self.counters()
        for name, s in self._series.items():
            out[f"{name}.mean"] = s.mean()
        for name, h in self._histograms.items():
            out[f"{name}.count"] = float(h.count)
            out[f"{name}.mean"] = h.mean()
            out[f"{name}.p50"] = h.percentile(50)
            out[f"{name}.p95"] = h.percentile(95)
            out[f"{name}.p99"] = h.percentile(99)
        return out

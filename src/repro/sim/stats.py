"""Metric collection: counters and time series.

Protocol benchmarks (bandwidth, message counts, staleness, failover
latency) read their numbers from a :class:`MetricRegistry` owned by the
simulation, rather than each protocol keeping ad-hoc state.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterable

import numpy as np


class Counter:
    """A monotonically increasing (or arbitrary additive) scalar."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def __repr__(self) -> str:
        return f"Counter({self.name}={self.value})"


class TimeSeries:
    """A sequence of (time, value) samples with summary statistics."""

    __slots__ = ("name", "_times", "_values")

    def __init__(self, name: str) -> None:
        self.name = name
        self._times: list[float] = []
        self._values: list[float] = []

    def record(self, time: float, value: float) -> None:
        self._times.append(float(time))
        self._values.append(float(value))

    def __len__(self) -> int:
        return len(self._values)

    @property
    def times(self) -> np.ndarray:
        return np.asarray(self._times, dtype=float)

    @property
    def values(self) -> np.ndarray:
        return np.asarray(self._values, dtype=float)

    def mean(self) -> float:
        return float(np.mean(self._values)) if self._values else float("nan")

    def max(self) -> float:
        return float(np.max(self._values)) if self._values else float("nan")

    def min(self) -> float:
        return float(np.min(self._values)) if self._values else float("nan")

    def percentile(self, q: float) -> float:
        return float(np.percentile(self._values, q)) if self._values else float("nan")

    def rate(self) -> float:
        """Average of values per unit time over the observed span."""
        if len(self._times) < 2:
            return float("nan")
        span = self._times[-1] - self._times[0]
        if span <= 0:
            return float("nan")
        return float(np.sum(self._values) / span)


class MetricRegistry:
    """Namespace of counters and time series, keyed by dotted names."""

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._series: dict[str, TimeSeries] = {}
        self._labelled: dict[str, dict[str, float]] = defaultdict(dict)

    def counter(self, name: str) -> Counter:
        c = self._counters.get(name)
        if c is None:
            c = self._counters[name] = Counter(name)
        return c

    def series(self, name: str) -> TimeSeries:
        s = self._series.get(name)
        if s is None:
            s = self._series[name] = TimeSeries(name)
        return s

    def add_labelled(self, name: str, label: str, amount: float = 1.0) -> None:
        """Accumulate into a labelled counter family (e.g. bytes per link)."""
        self._labelled[name][label] = self._labelled[name].get(label, 0.0) + amount

    def labelled(self, name: str) -> dict[str, float]:
        return dict(self._labelled.get(name, {}))

    def counters(self) -> dict[str, float]:
        return {name: c.value for name, c in self._counters.items()}

    def get(self, name: str, default: float = 0.0) -> float:
        c = self._counters.get(name)
        return c.value if c is not None else default

    def names(self) -> Iterable[str]:
        yield from self._counters
        yield from self._series

    def snapshot(self) -> dict[str, float]:
        """Flat dict of every counter plus the mean of every series."""
        out = self.counters()
        for name, s in self._series.items():
            out[f"{name}.mean"] = s.mean()
        return out

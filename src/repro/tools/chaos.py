"""Chaos-campaign runner CLI.

Run seeded chaos campaigns against the standard scenario and report
invariant violations::

    python -m repro.tools.chaos --seed 7
    python -m repro.tools.chaos --seed 100 --campaigns 5 --horizon 60
    python -m repro.tools.chaos --seed 7 --json report.json
    python -m repro.tools.chaos --replay report.json

``--campaigns K`` runs seeds ``N .. N+K-1``.  ``--replay`` re-runs a
saved report's seed and config and compares the canonical JSON byte
for byte — a violation report is its own reproducer.  Exit status is
0 when every campaign (or the replay comparison) is clean, 1
otherwise.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.chaos import CampaignConfig, ChaosReport, run_campaign


def _config_from_args(args) -> CampaignConfig:
    return CampaignConfig(horizon=args.horizon, mean_gap=args.mean_gap,
                          mean_dwell=args.mean_dwell,
                          settle=args.settle)


def _config_from_report(report: ChaosReport) -> CampaignConfig:
    cfg = dict(report.config)
    weights = tuple((kind, float(weight))
                    for kind, weight in cfg.pop("weights", []))
    if weights:
        cfg["weights"] = weights
    return CampaignConfig(**cfg)


def _replay(path: str) -> int:
    with open(path, "r", encoding="utf-8") as fh:
        saved = ChaosReport.from_dict(json.load(fh))
    print(f"replaying seed {saved.seed} "
          f"(horizon {saved.horizon:g}s)...")
    fresh = run_campaign(saved.seed, config=_config_from_report(saved))
    if fresh.to_json() == saved.to_json():
        print(f"replay is byte-identical (digest {fresh.digest()})")
        return 0
    print("REPLAY DIVERGED from the saved report:")
    print(f"  saved  digest {saved.digest()}")
    print(f"  replay digest {fresh.digest()}")
    return 1


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.tools.chaos", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--seed", type=int, default=1,
                        help="first campaign seed (default 1)")
    parser.add_argument("--campaigns", type=int, default=1,
                        help="number of consecutive seeds to run")
    parser.add_argument("--horizon", type=float, default=60.0,
                        help="fault-injection window in sim seconds")
    parser.add_argument("--mean-gap", type=float, default=3.0,
                        help="mean sim seconds between fault actions")
    parser.add_argument("--mean-dwell", type=float, default=6.0,
                        help="mean sim seconds a fault stays applied")
    parser.add_argument("--settle", type=float, default=0.0,
                        help="quiescence settle (0 = derived)")
    parser.add_argument("--json", metavar="PATH",
                        help="write the (last) report as JSON")
    parser.add_argument("--replay", metavar="PATH",
                        help="re-run a saved report's seed and compare")
    args = parser.parse_args(argv)

    if args.replay:
        return _replay(args.replay)

    config = _config_from_args(args)
    failures = 0
    report = None
    for seed in range(args.seed, args.seed + args.campaigns):
        report = run_campaign(seed, config=config)
        print(report.render_text())
        if not report.ok:
            failures += 1
    if args.json and report is not None:
        with open(args.json, "w", encoding="utf-8") as fh:
            fh.write(report.to_json())
        print(f"wrote {args.json}")
    if failures:
        print(f"{failures}/{args.campaigns} campaign(s) violated "
              f"invariants")
        return 1
    print(f"{args.campaigns} campaign(s) clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())

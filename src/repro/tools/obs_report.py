"""Summarize an instrumented simulation: latency, bytes, retries, traces.

``build_report`` turns an :class:`~repro.obs.Observability` hub into a
plain dict (JSON-safe) with per-operation client/server latency
percentiles, request/reply sizes, error and retry counts, the
pending-reply-table depth profile, per-meter protocol totals, and a
trace summary.  ``render_text`` prints it as aligned tables — this is
what the EXPERIMENTS write-ups quote.

Run as a module for the embedded end-to-end check::

    PYTHONPATH=src python -m repro.tools.obs_report --selftest [--json]

The selftest builds a small fleet (soft-state reporters, an MRM, one
deliberately flaky call retried through ``invoke_with_retry``, one node
crash/restart) and asserts the observability invariants: percentile
monotonicity, connected traces, recorded retries, and a pending table
that ends empty.  Exit status 0 on success, 1 on any violation.
"""

from __future__ import annotations

import argparse
import json
import math
import sys
from typing import Any, Optional

from repro.obs import PENDING_DEPTH_SERIES

#: histogram-name prefixes that the per-operation tables are built from.
_CLIENT_LATENCY = "orb.client.latency."
_SERVER_LATENCY = "orb.server.latency."
_REQUEST_BYTES = "orb.client.request_bytes."
_REPLY_BYTES = "orb.client.reply_bytes."


def _hist_stats(hist) -> dict[str, float]:
    return {
        "count": hist.count,
        "mean": hist.mean(),
        "p50": hist.percentile(50),
        "p95": hist.percentile(95),
        "p99": hist.percentile(99),
        "max": hist.max(),
    }


def build_report(hub) -> dict[str, Any]:
    """Aggregate one hub's metrics + traces into a JSON-safe dict."""
    metrics = hub.metrics
    histograms = metrics.histograms()
    counters = metrics.counters()

    operations: dict[str, dict[str, Any]] = {}

    def op_entry(operation: str) -> dict[str, Any]:
        entry = operations.get(operation)
        if entry is None:
            entry = operations[operation] = {}
        return entry

    for name, hist in histograms.items():
        if name.startswith(_CLIENT_LATENCY):
            op_entry(name[len(_CLIENT_LATENCY):])["client"] = \
                _hist_stats(hist)
        elif name.startswith(_SERVER_LATENCY):
            op_entry(name[len(_SERVER_LATENCY):])["server"] = \
                _hist_stats(hist)
        elif name.startswith(_REQUEST_BYTES):
            op_entry(name[len(_REQUEST_BYTES):])["request_bytes"] = \
                _hist_stats(hist)
        elif name.startswith(_REPLY_BYTES):
            op_entry(name[len(_REPLY_BYTES):])["reply_bytes"] = \
                _hist_stats(hist)
    for operation, entry in operations.items():
        entry["client_errors"] = counters.get(
            f"orb.client.errors.{operation}", 0.0)
        entry["server_errors"] = counters.get(
            f"orb.server.errors.{operation}", 0.0)
        entry["retries"] = counters.get(f"orb.retries.{operation}", 0.0)

    meters: dict[str, dict[str, float]] = {}
    for name, value in counters.items():
        if name.endswith(".msgs") or name.endswith(".bytes") \
                or name.endswith(".errors"):
            stem, _, field = name.rpartition(".")
            if stem.startswith("orb."):
                continue
            meters.setdefault(stem, {})[field] = value
    for stem, entry in meters.items():
        hist = histograms.get(f"{stem}.latency")
        if hist is not None and hist.count:
            entry["latency"] = _hist_stats(hist)

    depth = metrics._series.get(PENDING_DEPTH_SERIES)
    pending = {
        "samples": len(depth) if depth is not None else 0,
        "max": depth.max() if depth is not None and len(depth) else 0.0,
        "mean": depth.mean() if depth is not None and len(depth) else 0.0,
        "last": (float(depth.values[-1])
                 if depth is not None and len(depth) else 0.0),
    }

    traces = hub.traces()
    open_spans = sum(1 for s in hub.tracer.spans if not s.finished)
    error_spans = sum(1 for s in hub.tracer.spans if s.status == "error")
    connected = sum(1 for tid in traces
                    if hub.tracer.trace_is_connected(tid))
    largest = max((len(spans) for spans in traces.values()), default=0)

    return {
        "clock": hub.env.now,
        "operations": dict(sorted(operations.items())),
        "meters": dict(sorted(meters.items())),
        "pending": pending,
        "counters": {
            "requests": counters.get("orb.requests", 0.0),
            "oneways": counters.get("orb.oneways", 0.0),
            "timeouts": counters.get("orb.timeouts", 0.0),
            "retries": counters.get("orb.retries", 0.0),
        },
        "traces": {
            "count": len(traces),
            "spans": len(hub.tracer.spans),
            "open_spans": open_spans,
            "error_spans": error_spans,
            "connected": connected,
            "largest": largest,
        },
    }


def _fmt(value: float, unit: str = "") -> str:
    if value is None or (isinstance(value, float) and math.isnan(value)):
        return "-"
    if unit == "s":
        if value < 1e-3:
            return f"{value * 1e6:.0f}us"
        if value < 1.0:
            return f"{value * 1e3:.2f}ms"
        return f"{value:.3f}s"
    if unit == "B":
        return f"{value:.0f}B"
    if isinstance(value, float) and value == int(value):
        return str(int(value))
    return f"{value:.3g}"


def _table(headers: list[str], rows: list[list[str]]) -> list[str]:
    widths = [max(len(str(headers[i])),
                  *(len(str(r[i])) for r in rows)) if rows
              else len(str(headers[i])) for i in range(len(headers))]
    def line(cells):
        return "  ".join(str(c).ljust(w) for c, w in zip(cells, widths))
    return [line(headers), line(["-" * w for w in widths])] + \
        [line(r) for r in rows]


def render_text(rep: dict[str, Any]) -> str:
    out: list[str] = []
    out.append(f"observability report @ t={rep['clock']:.3f}s")
    c = rep["counters"]
    out.append(f"requests={_fmt(c['requests'])} "
               f"oneways={_fmt(c['oneways'])} "
               f"timeouts={_fmt(c['timeouts'])} "
               f"retries={_fmt(c['retries'])}")
    out.append("")

    rows = []
    for operation, entry in rep["operations"].items():
        cl = entry.get("client")
        rq = entry.get("request_bytes")
        rows.append([
            operation,
            _fmt(cl["count"]) if cl else "-",
            _fmt(cl["p50"], "s") if cl else "-",
            _fmt(cl["p95"], "s") if cl else "-",
            _fmt(cl["p99"], "s") if cl else "-",
            _fmt(rq["mean"], "B") if rq else "-",
            _fmt(entry["retries"]),
            _fmt(entry["client_errors"] + entry["server_errors"]),
        ])
    if rows:
        out.append("per-operation (client view)")
        out.extend(_table(
            ["operation", "calls", "p50", "p95", "p99",
             "req bytes", "retries", "errors"], rows))
        out.append("")

    rows = []
    for stem, entry in rep["meters"].items():
        lat = entry.get("latency")
        rows.append([
            stem,
            _fmt(entry.get("msgs", 0.0)),
            _fmt(entry.get("bytes", 0.0), "B"),
            _fmt(lat["p50"], "s") if lat else "-",
            _fmt(lat["p99"], "s") if lat else "-",
            _fmt(entry.get("errors", 0.0)),
        ])
    if rows:
        out.append("protocol meters")
        out.extend(_table(
            ["meter", "msgs", "bytes", "p50", "p99", "errors"], rows))
        out.append("")

    p = rep["pending"]
    out.append(f"pending replies: max={_fmt(p['max'])} "
               f"mean={_fmt(p['mean'])} last={_fmt(p['last'])} "
               f"({_fmt(p['samples'])} samples)")
    t = rep["traces"]
    out.append(f"traces: {_fmt(t['count'])} "
               f"({_fmt(t['spans'])} spans, largest {_fmt(t['largest'])}, "
               f"{_fmt(t['connected'])} connected, "
               f"{_fmt(t['error_spans'])} error spans, "
               f"{_fmt(t['open_spans'])} still open)")
    return "\n".join(out)


# ---------------------------------------------------------------------------
# Selftest
# ---------------------------------------------------------------------------

def _selftest_scenario():
    """A small instrumented fleet exercising every obs code path."""
    from repro.orb.core import InterfaceDef, Servant, op
    from repro.orb.exceptions import TRANSIENT
    from repro.orb.retry import RetryPolicy, invoke_with_retry
    from repro.orb.typecodes import tc_long
    from repro.registry.mrm import MrmAgent, MrmConfig
    from repro.registry.softstate import SoftStateReporter
    from repro.sim.topology import star
    from repro.testing import SimRig

    rig = SimRig(star(3), seed=7)
    hub = rig.observe()

    mrm = MrmAgent(rig.node("hub"), "g0",
                   config=MrmConfig(update_interval=2.0))
    leaves = [f"h{i}" for i in range(3)]
    for i, leaf in enumerate(leaves):
        SoftStateReporter(rig.node(leaf), [mrm.ior], mrm.config,
                          phase=0.3 * (i + 1))

    flaky_iface = InterfaceDef("IDL:selftest/Flaky:1.0", "Flaky",
                               operations=[op("poke", [], tc_long)])

    class FlakyServant(Servant):
        _interface = flaky_iface
        failures_left = 1
        calls = 0

        def poke(self):
            FlakyServant.calls += 1
            if FlakyServant.failures_left > 0:
                FlakyServant.failures_left -= 1
                raise TRANSIENT("injected fault")
            return FlakyServant.calls

    ior = rig.node("hub").orb.adapter("selftest").activate(FlakyServant())

    def client():
        yield rig.env.timeout(1.0)
        result = yield from invoke_with_retry(
            rig.node("h0").orb, ior, flaky_iface.operations["poke"], (),
            policy=RetryPolicy(attempts=3, timeout=1.0, backoff=0.2))
        return result

    client_proc = rig.env.process(client())

    def churn():
        yield rig.env.timeout(5.0)
        rig.topology.set_host_state("h2", alive=False)
        yield rig.env.timeout(4.0)
        rig.topology.set_host_state("h2", alive=True)

    rig.env.process(churn())
    rig.run(until=16.0)
    return rig, hub, client_proc, mrm


def run_selftest(as_json: bool = False,
                 out=sys.stdout) -> int:
    rig, hub, client_proc, mrm = _selftest_scenario()
    rep = build_report(hub)
    failures: list[str] = []

    def check(cond: bool, what: str) -> None:
        if not cond:
            failures.append(what)

    check(client_proc.value == 2, "retried call returned the wrong value")
    check(rep["counters"]["retries"] >= 1, "no retry was recorded")
    check(rep["operations"].get("poke", {}).get("retries", 0) >= 1,
          "per-operation retry counter missing")

    # every histogram's percentiles must be monotone and within range
    for name, hist in hub.metrics.histograms().items():
        if not hist.count:
            continue
        p50, p95, p99 = (hist.percentile(50), hist.percentile(95),
                         hist.percentile(99))
        check(p50 <= p95 <= p99,
              f"percentiles not monotone for {name}")
        check(hist.min() <= p50 and p99 <= hist.max(),
              f"percentiles outside observed range for {name}")

    traces = hub.traces()
    check(rep["traces"]["count"] > 0, "no traces were produced")
    check(all(hub.tracer.trace_is_connected(tid) for tid in traces),
          "found a disconnected trace")
    retry_traces = [spans for spans in traces.values()
                    if any(s.name == "retry:poke" for s in spans)]
    check(len(retry_traces) == 1, "expected exactly one retry:poke trace")
    if retry_traces:
        spans = retry_traces[0]
        check(len(spans) >= 5,  # retry + 2x(call+serve)
              f"retry trace too small ({len(spans)} spans)")
        check(any(s.status == "error" for s in spans),
              "failed attempt not marked as an error span")
        check(any(s.kind == "server" and s.status == "ok" for s in spans),
              "no successful server span in the retry trace")

    check(rep["meters"].get("registry.soft", {}).get("msgs", 0) > 0,
          "soft-state reports not metered")
    check(all(len(orb._pending) == 0 for orb in hub.orbs),
          "pending-reply table not empty at end of run")
    check(rep["pending"]["max"] <= 2,
          "pending-reply table grew beyond the expected bound")
    check("h2" in mrm.members, "restarted node missing from MRM view")

    print(render_text(rep), file=out)
    if as_json:
        print(json.dumps(rep, indent=2, sort_keys=True), file=out)
    if failures:
        for failure in failures:
            print(f"SELFTEST FAIL: {failure}", file=out)
        return 1
    print("selftest OK", file=out)
    return 0


def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.tools.obs_report",
        description="Render an observability report; --selftest runs an "
                    "embedded end-to-end scenario and checks invariants.")
    parser.add_argument("--selftest", action="store_true",
                        help="run the embedded scenario and verify it")
    parser.add_argument("--json", action="store_true",
                        help="also emit the report as JSON")
    ns = parser.parse_args(argv)
    if ns.selftest:
        return run_selftest(as_json=ns.json)
    parser.error("nothing to do (the module API is build_report/"
                 "render_text; from the CLI use --selftest)")
    return 2


if __name__ == "__main__":
    sys.exit(main())

"""The visual-builder model: palette + validating assembly construction.

A GUI would render :class:`NetworkPalette` (what components exist in
the network, what instances run, how they are wired — all obtained
through the ordinary remote Component Registry interfaces) and drive an
:class:`AssemblyBuilder`, which validates port compatibility against
the components' declared types before emitting an
:class:`~repro.xmlmeta.descriptors.AssemblyDescriptor`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.components.reflection import ComponentInfo, InstanceInfo
from repro.orb.exceptions import SystemException
from repro.sim.kernel import Event
from repro.util.errors import ValidationError
from repro.xmlmeta.descriptors import (
    AssemblyConnection,
    AssemblyDescriptor,
    AssemblyInstance,
    ComponentTypeDescriptor,
)
from repro.xmlmeta.versions import VersionRange


@dataclass
class PaletteEntry:
    """One component as the palette shows it."""

    info: ComponentInfo
    hosts: list[str] = field(default_factory=list)  # where it's installed


@dataclass
class NetworkPalette:
    """Network-wide view for builder tools."""

    components: dict[str, PaletteEntry] = field(default_factory=dict)
    instances: list[InstanceInfo] = field(default_factory=list)

    @classmethod
    def gather(cls, node, hosts: list[str]) -> Event:
        """Collect the palette by querying every host's registry.

        Runs as a simulation process; unreachable hosts are skipped
        (the palette shows what is *currently* available).
        """
        return node.env.process(cls._gather(node, hosts))

    @classmethod
    def _gather(cls, node, hosts: list[str]):
        palette = cls()
        for host in hosts:
            if not node.network.topology.host(host).alive:
                continue
            registry = node.service_stub(host, "registry")
            try:
                installed = yield registry.installed(_timeout=2.0,
                                                     _meter="builder")
                instances = yield registry.instances(_timeout=2.0,
                                                     _meter="builder")
            except SystemException:
                continue
            for value in installed:
                info = ComponentInfo.from_value(value)
                entry = palette.components.get(info.name)
                if entry is None:
                    entry = palette.components[info.name] = PaletteEntry(
                        info=info)
                entry.hosts.append(host)
            palette.instances.extend(
                InstanceInfo.from_value(v) for v in instances)
        return palette

    def providers_of(self, repo_id: str) -> list[str]:
        return sorted(name for name, entry in self.components.items()
                      if repo_id in entry.info.provides)

    def connections(self) -> list[tuple[str, str, str]]:
        """(instance, port, peer) triples of current live wiring."""
        out = []
        for info in self.instances:
            for port in info.ports:
                if port.kind == "receptacle" and port.peer:
                    out.append((info.instance_id, port.name, port.peer))
        return out

    def render(self) -> str:
        """ASCII rendering of the palette (what a GUI would draw)."""
        lines = ["=== component palette ==="]
        for name in sorted(self.components):
            entry = self.components[name]
            lines.append(
                f"  [{name} v{entry.info.version}] on "
                f"{','.join(sorted(entry.hosts))}  "
                f"provides={len(entry.info.provides)} "
                f"uses={len(entry.info.uses)}")
        lines.append("=== running instances ===")
        for info in sorted(self.instances, key=lambda i: i.instance_id):
            state = "active" if info.active else "passive"
            lines.append(f"  {info.instance_id} ({info.component}) "
                         f"@ {info.host} [{state}]")
            for port in info.ports:
                marker = {"facet": "o--", "receptacle": "--(",
                          "event-source": ">>>", "event-sink": "<<<"}
                wired = " -> " + port.peer if port.peer else ""
                lines.append(f"      {marker.get(port.kind, '?')} "
                             f"{port.name}: {port.type_id}{wired}")
        return "\n".join(lines)


class AssemblyBuilder:
    """Builds a *validated* AssemblyDescriptor against component types.

    The builder knows each component's declared ports (its
    :class:`~repro.xmlmeta.descriptors.ComponentTypeDescriptor`), so a
    mis-typed connection fails at build time — before any deployment.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self._types: dict[str, ComponentTypeDescriptor] = {}
        self._instances: list[AssemblyInstance] = []
        self._connections: list[AssemblyConnection] = []

    # -- vocabulary ---------------------------------------------------------
    def register_type(self, descriptor: ComponentTypeDescriptor
                      ) -> "AssemblyBuilder":
        self._types[descriptor.name] = descriptor
        return self

    def register_package(self, package) -> "AssemblyBuilder":
        return self.register_type(package.component)

    # -- construction ----------------------------------------------------------
    def add(self, instance_name: str, component: str,
            versions: str = "") -> "AssemblyBuilder":
        if component not in self._types:
            raise ValidationError(
                f"unknown component {component!r}; register its type "
                "first"
            )
        if any(i.name == instance_name for i in self._instances):
            raise ValidationError(
                f"duplicate instance name {instance_name!r}"
            )
        self._instances.append(AssemblyInstance(
            instance_name, component, VersionRange(versions)))
        return self

    def _ctype(self, instance_name: str) -> ComponentTypeDescriptor:
        for inst in self._instances:
            if inst.name == instance_name:
                return self._types[inst.component]
        raise ValidationError(f"unknown instance {instance_name!r}")

    def connect(self, user: str, receptacle: str, provider: str,
                facet: str) -> "AssemblyBuilder":
        """Wire ``user.receptacle`` to ``provider.facet``, type-checked."""
        user_type = self._ctype(user)
        provider_type = self._ctype(provider)
        rec = next((p for p in user_type.uses if p.name == receptacle),
                   None)
        if rec is None:
            raise ValidationError(
                f"{user_type.name} has no receptacle {receptacle!r}"
            )
        fac = next((p for p in provider_type.provides if p.name == facet),
                   None)
        if fac is None:
            raise ValidationError(
                f"{provider_type.name} has no facet {facet!r}"
            )
        if rec.repo_id != fac.repo_id:
            raise ValidationError(
                f"type mismatch: {receptacle!r} needs {rec.repo_id}, "
                f"{facet!r} offers {fac.repo_id}"
            )
        self._connections.append(AssemblyConnection(
            user, receptacle, provider, facet, kind="interface"))
        return self

    def subscribe(self, consumer: str, sink: str, producer: str,
                  source: str) -> "AssemblyBuilder":
        """Wire ``consumer.sink`` to ``producer.source`` events."""
        consumer_type = self._ctype(consumer)
        producer_type = self._ctype(producer)
        snk = next((p for p in consumer_type.consumes if p.name == sink),
                   None)
        if snk is None:
            raise ValidationError(
                f"{consumer_type.name} has no event sink {sink!r}"
            )
        src = next((p for p in producer_type.emits if p.name == source),
                   None)
        if src is None:
            raise ValidationError(
                f"{producer_type.name} has no event source {source!r}"
            )
        if snk.event_kind != src.event_kind:
            raise ValidationError(
                f"event kind mismatch: {snk.event_kind!r} vs "
                f"{src.event_kind!r}"
            )
        self._connections.append(AssemblyConnection(
            consumer, sink, producer, source, kind="event"))
        return self

    # -- finalize ------------------------------------------------------------------
    def unsatisfied_receptacles(self) -> list[tuple[str, str]]:
        """Mandatory receptacles nothing is connected to."""
        wired = {(c.from_instance, c.from_port)
                 for c in self._connections if c.kind == "interface"}
        missing = []
        for inst in self._instances:
            for port in self._types[inst.component].uses:
                if not port.optional and (inst.name, port.name) not in wired:
                    missing.append((inst.name, port.name))
        return missing

    def build(self, allow_unsatisfied: bool = False) -> AssemblyDescriptor:
        if not self._instances:
            raise ValidationError("assembly has no instances")
        if not allow_unsatisfied:
            missing = self.unsatisfied_receptacles()
            if missing:
                raise ValidationError(
                    f"unsatisfied mandatory receptacles: {missing}"
                )
        return AssemblyDescriptor(
            name=self.name,
            instances=list(self._instances),
            connections=list(self._connections),
        )

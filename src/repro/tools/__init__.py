"""Tooling layered on the reflection architecture.

The paper's future work includes "implement visual building tools
allowing users to build applications based on all available network
components" (§5), with the Component Registry explicitly feeding
"visual builder tools ... the palette of available components,
instances and connections among them" (§2.4.2).

- :mod:`repro.tools.builder` — that palette, plus a validating assembly
  builder (the model a GUI would sit on).
- :mod:`repro.tools.licensing` — pay-per-use accounting over container
  events (§2.1.1 "pay-per-use information: describes the licensing
  model for this component").
"""

from repro.tools.builder import AssemblyBuilder, NetworkPalette
from repro.tools.licensing import UsageMeter

__all__ = ["NetworkPalette", "AssemblyBuilder", "UsageMeter"]

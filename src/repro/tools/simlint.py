"""Source-level lint CLI: ``python -m repro.tools.simlint PATH...``.

Runs the :mod:`repro.analysis.simlint` rule families (determinism,
control-loop safety, paired effects, metric/span name hygiene) over
python sources and reports typed findings::

    python -m repro.tools.simlint src/repro
    python -m repro.tools.simlint src/repro --format json
    python -m repro.tools.simlint src/repro --write-baseline
    python -m repro.tools.simlint --rules

Findings already recorded in the baseline file (default
``simlint-baseline.json`` at the current directory, when present) are
subtracted; stale baseline entries are themselves reported.  Inline
``# simlint: disable=SIM003`` comments silence a single line.

Exit status is the maximum severity at or above ``--fail-on``
(default ``warning``): 0 clean, 1 warnings, 2 errors — the same
contract as ``repro.tools.lint``.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.analysis.simlint import (
    Baseline,
    RULE_DOCS,
    SimlintConfig,
    lint_paths,
)
from repro.util.diagnostics import Severity

DEFAULT_BASELINE = "simlint-baseline.json"

_THRESHOLDS = {"info": Severity.INFO, "warning": Severity.WARNING,
               "error": Severity.ERROR}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.tools.simlint",
        description="Determinism / control-loop / paired-effect / "
                    "name-hygiene lint over python sources.")
    parser.add_argument("paths", nargs="*",
                        help="files or directories of *.py sources")
    parser.add_argument("--format", choices=("text", "json"),
                        default="text", help="report format")
    parser.add_argument("--baseline", metavar="PATH", default=None,
                        help=f"baseline file (default "
                             f"{DEFAULT_BASELINE} when it exists)")
    parser.add_argument("--no-baseline", action="store_true",
                        help="ignore any baseline file")
    parser.add_argument("--write-baseline", action="store_true",
                        help="write current findings to the baseline "
                             "file and exit 0")
    parser.add_argument("--fail-on",
                        choices=tuple(_THRESHOLDS), default="warning",
                        help="lowest severity that affects the exit "
                             "code (default: warning)")
    parser.add_argument("--rules", action="store_true",
                        help="print the rule catalog and exit")
    args = parser.parse_args(argv)

    if args.rules:
        # RULE_DOCS fills as rule modules register; force that.
        lint_paths(())
        for code in sorted(RULE_DOCS):
            print(f"{code}  {RULE_DOCS[code]}")
        return 0
    if not args.paths:
        parser.error("no paths given (or use --rules)")

    diag = lint_paths(args.paths, config=SimlintConfig(),
                      root=Path.cwd())

    baseline_path = args.baseline or (
        DEFAULT_BASELINE if Path(DEFAULT_BASELINE).exists() else None)

    if args.write_baseline:
        target = args.baseline or DEFAULT_BASELINE
        Baseline.from_diagnostics(
            diag, reason="grandfathered by --write-baseline; "
                         "document or fix").save(target)
        print(f"wrote {len(diag)} finding(s) to {target}")
        return 0

    if baseline_path and not args.no_baseline:
        diag = Baseline.load(baseline_path).apply(diag)

    if args.format == "json":
        print(json.dumps(diag.as_dict(), indent=2, sort_keys=True))
    else:
        sys.stdout.write(diag.render_text())

    threshold = _THRESHOLDS[args.fail_on]
    gated = [f for f in diag if f.severity >= threshold]
    return max((int(f.severity) for f in gated), default=0)


if __name__ == "__main__":
    sys.exit(main())

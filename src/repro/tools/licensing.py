"""Pay-per-use accounting (§2.1.1).

"Pay-per-use information: describes the licensing model for this
component."  The meter observes one node's container: every creation
of an instance of a ``pay-per-use`` component accrues that component's
``cost_per_use`` to its vendor.  ``subscription`` components accrue
usage-time instead (charged on destruction); ``free`` components cost
nothing.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field


@dataclass
class UsageRecord:
    vendor: str
    component: str
    license: str
    uses: int = 0
    usage_seconds: float = 0.0
    charge: float = 0.0


class UsageMeter:
    """Per-node licensing meter over container lifecycle events."""

    #: per-second rate applied to 'subscription' components.
    SUBSCRIPTION_RATE = 0.001

    def __init__(self, node) -> None:
        self.node = node
        self._records: dict[str, UsageRecord] = {}
        self._started: dict[str, float] = {}   # instance_id -> t_created
        node.container.listeners.append(self._on_event)

    def _record_for(self, cls) -> UsageRecord:
        soft = cls.software
        record = self._records.get(soft.name)
        if record is None:
            record = self._records[soft.name] = UsageRecord(
                vendor=soft.vendor, component=soft.name,
                license=soft.license)
        return record

    def _on_event(self, action: str, instance) -> None:
        cls = instance.component_class
        soft = cls.software
        if soft.license == "free":
            return
        record = self._record_for(cls)
        now = self.node.env.now
        if action == "created":
            record.uses += 1
            self._started[instance.instance_id] = now
            if soft.license == "pay-per-use":
                record.charge += soft.cost_per_use
        elif action in ("destroyed", "migrated-out"):
            started = self._started.pop(instance.instance_id, None)
            if started is not None:
                elapsed = now - started
                record.usage_seconds += elapsed
                if soft.license == "subscription":
                    record.charge += elapsed * self.SUBSCRIPTION_RATE

    # -- reporting ----------------------------------------------------------
    def records(self) -> list[UsageRecord]:
        return sorted(self._records.values(),
                      key=lambda r: (r.vendor, r.component))

    def total_due(self, vendor: str | None = None) -> float:
        return sum(r.charge for r in self._records.values()
                   if vendor is None or r.vendor == vendor)

    def invoice(self) -> str:
        """Human-readable statement per vendor."""
        by_vendor: dict[str, list[UsageRecord]] = defaultdict(list)
        for record in self.records():
            by_vendor[record.vendor].append(record)
        lines = [f"licensing statement for node {self.node.host_id}"]
        for vendor in sorted(by_vendor):
            lines.append(f"  vendor {vendor}:")
            for r in by_vendor[vendor]:
                lines.append(
                    f"    {r.component} [{r.license}] uses={r.uses} "
                    f"time={r.usage_seconds:.1f}s due={r.charge:.4f}")
            subtotal = sum(r.charge for r in by_vendor[vendor])
            lines.append(f"    subtotal: {subtotal:.4f}")
        lines.append(f"  total due: {self.total_due():.4f}")
        return "\n".join(lines)

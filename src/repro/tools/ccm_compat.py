"""CCM interchange: export/import CORBA-LC descriptors as CCM documents.

The paper's future work includes "study the integration of this model
with current and future CCM implementations" (§5).  The packaging
models are cousins (both descend from the OSD DTD), so descriptors can
be translated mechanically:

- :func:`to_ccm_softpkg` — CORBA-LC software descriptor → a CCM
  ``.csd`` software package descriptor.
- :func:`to_ccm_corbacomponent` — component type descriptor → a CCM
  ``.ccd`` CORBA component descriptor (ports section).
- :func:`from_ccm_softpkg` — import a (subset of a) CCM ``.csd``.

CORBA-LC-only concepts with no CCM slot (mobility, replication,
aggregation, pay-per-use) are carried in a ``<corbalc-extension>``
element so a round-trip through CCM tooling preserves them.
"""

from __future__ import annotations

from xml.etree import ElementTree as ET

from repro.util.errors import ValidationError
from repro.xmlmeta.descriptors import (
    ComponentTypeDescriptor,
    Dependency,
    ImplementationDescriptor,
    SoftwareDescriptor,
)
from repro.xmlmeta.versions import Version, VersionRange


def _pretty(root: ET.Element) -> str:
    ET.indent(root)
    return ET.tostring(root, encoding="unicode")


# -- export -------------------------------------------------------------------

def to_ccm_softpkg(soft: SoftwareDescriptor) -> str:
    """Render a CCM-style ``.csd`` software package descriptor."""
    root = ET.Element("softpkg", {"name": soft.name,
                                  "version": str(soft.version)})
    ET.SubElement(root, "pkgtype").text = "CORBA Component"
    title = ET.SubElement(root, "title")
    title.text = soft.name
    if soft.abstract:
        ET.SubElement(root, "description").text = soft.abstract
    author = ET.SubElement(root, "author")
    ET.SubElement(author, "company").text = soft.vendor
    for dep in soft.dependencies:
        d = ET.SubElement(root, "dependency", {"type": "CORBALC"})
        ET.SubElement(d, "name").text = dep.component
        if dep.versions.text:
            ET.SubElement(d, "version").text = dep.versions.text
    for i, impl in enumerate(soft.implementations):
        node = ET.SubElement(root, "implementation",
                             {"id": f"{soft.name}-impl-{i}"})
        ET.SubElement(node, "os", {"name": impl.os})
        ET.SubElement(node, "processor", {"name": impl.arch})
        ET.SubElement(node, "compiler", {"name": impl.orb})
        code = ET.SubElement(node, "code", {"type": "DLL"})
        ET.SubElement(code, "fileinarchive", {"name": impl.binary_path})
        ET.SubElement(code, "entrypoint").text = impl.entry_point
    ET.SubElement(root, "corbalc-extension", {
        "mobility": soft.mobility,
        "replication": soft.replication,
        "aggregation": soft.aggregation,
        "license": soft.license,
        "cost-per-use": repr(soft.cost_per_use),
    })
    return _pretty(root)


def to_ccm_corbacomponent(comp: ComponentTypeDescriptor) -> str:
    """Render the ports section of a CCM ``.ccd`` descriptor."""
    root = ET.Element("corbacomponent")
    ET.SubElement(root, "componentkind").append(
        ET.Element(comp.lifecycle))
    features = ET.SubElement(root, "componentfeatures",
                             {"name": comp.name})
    ports = ET.SubElement(features, "ports")
    for port in comp.provides:
        ET.SubElement(ports, "provides", {
            "providesname": port.name, "repid": port.repo_id})
    for port in comp.uses:
        ET.SubElement(ports, "uses", {
            "usesname": port.name, "repid": port.repo_id})
    for ev in comp.emits:
        ET.SubElement(ports, "emits", {
            "emitsname": ev.name, "eventtype": ev.event_kind})
    for ev in comp.consumes:
        ET.SubElement(ports, "consumes", {
            "consumesname": ev.name, "eventtype": ev.event_kind})
    return _pretty(root)


# -- import --------------------------------------------------------------------

def from_ccm_softpkg(text: str) -> SoftwareDescriptor:
    """Parse a CCM ``.csd`` (the subset :func:`to_ccm_softpkg` emits).

    Unknown elements are ignored, matching how CCM tools treat foreign
    vocabularies; the ``corbalc-extension`` element, when present,
    restores the CORBA-LC-only fields.
    """
    try:
        root = ET.fromstring(text)
    except ET.ParseError as exc:
        raise ValidationError(f"malformed .csd: {exc}") from None
    if root.tag != "softpkg":
        raise ValidationError(f"not a softpkg document: <{root.tag}>")
    name = root.get("name")
    version = root.get("version")
    if not name or not version:
        raise ValidationError("softpkg needs name and version")

    vendor = root.findtext("author/company", default="unknown") or "unknown"
    abstract = (root.findtext("description", default="") or "").strip()

    dependencies = []
    for dep in root.findall("dependency"):
        dep_name = dep.findtext("name")
        if not dep_name:
            continue
        dependencies.append(Dependency(
            dep_name, VersionRange(dep.findtext("version", default=""))))

    implementations = []
    for impl in root.findall("implementation"):
        os_el = impl.find("os")
        cpu_el = impl.find("processor")
        orb_el = impl.find("compiler")
        code = impl.find("code")
        if code is None:
            continue
        archive = code.find("fileinarchive")
        entry = code.findtext("entrypoint", default="")
        implementations.append(ImplementationDescriptor(
            os=os_el.get("name") if os_el is not None else "*",
            arch=cpu_el.get("name") if cpu_el is not None else "*",
            orb=orb_el.get("name") if orb_el is not None else "*",
            entry_point=entry or "unknown",
            binary_path=(archive.get("name")
                         if archive is not None else "bin/unknown"),
        ))

    ext = root.find("corbalc-extension")
    extras = {}
    if ext is not None:
        extras = {
            "mobility": ext.get("mobility", "mobile"),
            "replication": ext.get("replication", "none"),
            "aggregation": ext.get("aggregation", "none"),
            "license": ext.get("license", "free"),
            "cost_per_use": float(ext.get("cost-per-use", "0.0")),
        }
    return SoftwareDescriptor(
        name=name,
        version=Version.parse(version),
        vendor=vendor,
        abstract=abstract,
        dependencies=dependencies,
        implementations=implementations,
        **extras,
    )

"""Static verification CLI: ``python -m repro.tools.lint PATH...``.

Walks the given files/directories collecting ``.idl`` sources and the
three descriptor XML kinds (recognised by root tag: ``softpkg``,
``componenttype``, ``assembly``), builds one
:class:`~repro.analysis.verifier.ApplicationModel`, and runs all three
verifier layers over it.  Softpkg/componenttype files pair up by
component name.

Exit code is the maximum severity seen (0 clean/info, 1 warnings,
2 errors), so shell gates can distinguish "suspicious" from "wrong".
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from xml.etree import ElementTree as ET

from repro.analysis.findings import Diagnostics
from repro.analysis.verifier import ApplicationModel, verify_model
from repro.xmlmeta.descriptors import (
    AssemblyDescriptor,
    ComponentTypeDescriptor,
    SoftwareDescriptor,
)
from repro.xmlmeta.schema import SchemaError
from repro.xmlmeta.versions import Version


def gather_paths(paths: list[str]) -> list[Path]:
    """Expand files/directories into the sorted list of lintable files."""
    out: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            out.update(path.rglob("*.idl"))
            out.update(path.rglob("*.xml"))
        else:
            out.add(path)
    return sorted(out)


def build_model(files: list[Path], diag: Diagnostics) -> ApplicationModel:
    """Parse every input file into one application model.

    File-level problems (unreadable, unparsable XML, unknown root tag,
    schema violations) become findings; good files contribute their
    IDL/descriptor to the model.
    """
    model = ApplicationModel()
    software: dict[str, tuple[str, SoftwareDescriptor]] = {}
    components: dict[str, tuple[str, ComponentTypeDescriptor]] = {}

    for path in files:
        label = str(path)
        try:
            text = path.read_text()
        except OSError as exc:
            diag.error("LNT001", label, f"cannot read: {exc}")
            continue
        if path.suffix == ".idl":
            model.add_idl(label, text)
            continue
        try:
            root_tag = ET.fromstring(text).tag
        except ET.ParseError as exc:
            diag.error("SCH001", label, f"malformed XML: {exc}")
            continue
        try:
            if root_tag == "softpkg":
                desc = SoftwareDescriptor.from_xml(text)
                software[desc.name] = (label, desc)
            elif root_tag == "componenttype":
                desc = ComponentTypeDescriptor.from_xml(text)
                components[desc.name] = (label, desc)
            elif root_tag == "assembly":
                model.add_assembly(AssemblyDescriptor.from_xml(text),
                                   source=label)
            else:
                diag.error("LNT002", label,
                           f"unknown document root <{root_tag}> (expected "
                           f"softpkg, componenttype or assembly)")
        except SchemaError as exc:
            for finding in exc.findings:
                diag.error(finding.code, f"{label}{finding.location}",
                           finding.message)
        except Exception as exc:  # descriptor-level validation
            diag.error("LNT003", label, f"invalid descriptor: {exc}")

    for name in sorted(set(software) | set(components)):
        soft = software.get(name)
        comp = components.get(name)
        if soft is None:
            label, desc = comp
            diag.warning("LNT004", label,
                         f"componenttype {name!r} has no matching softpkg")
            model.packages.add(
                SoftwareDescriptor(name=name, version=Version(0, 0, 0)),
                desc, source=label)
            continue
        if comp is None:
            label, desc = soft
            diag.warning("LNT004", label,
                         f"softpkg {name!r} has no matching componenttype")
            continue
        model.packages.add(soft[1], comp[1],
                           source=f"{soft[0]} + {comp[0]}")
    return model


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.tools.lint",
        description="Statically verify IDL + XML descriptor sets.")
    parser.add_argument("paths", nargs="+",
                        help="files or directories (*.idl, *.xml)")
    parser.add_argument("--format", choices=("text", "json"),
                        default="text", help="report format")
    parser.add_argument("--lenient-interfaces", action="store_true",
                        help="do not require every port repo-id to "
                             "resolve to declared IDL")
    args = parser.parse_args(argv)

    diag = Diagnostics()
    files = gather_paths(args.paths)
    if not files:
        print("nothing to lint", file=sys.stderr)
        return 2
    model = build_model(files, diag)
    verify_model(model, diag,
                 strict_interfaces=not args.lenient_interfaces)

    if args.format == "json":
        print(json.dumps(diag.as_dict(), indent=2, sort_keys=True))
    else:
        sys.stdout.write(diag.render_text())
    return diag.max_severity()


if __name__ == "__main__":
    sys.exit(main())

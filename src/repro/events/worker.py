"""Bounded worker pools for asynchronous event handling.

A :class:`WorkerPool` decouples publishers from handlers: ``submit``
enqueues and returns immediately; ``workers`` simulation processes
drain the queue and run the handler.  Handlers may be plain callables
(run inline by the worker) or generator functions (driven with
``yield from``, so a handler may perform timed work — remote calls,
sleeps — while the pool keeps absorbing submissions).

The queue is bounded with the same drop-oldest policy as
:class:`~repro.events.batch_writer.BatchWriter`: past ``capacity`` the
oldest queued item is discarded and counted in ``<name>.dropped``.  A
handler that raises is counted (``<name>.errors``) and the worker
survives — one poisoned event must not kill the subscriber.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Optional

from repro.sim.kernel import Environment, Interrupt
from repro.sim.stats import MetricRegistry
from repro.util.errors import ConfigurationError


class WorkerPool:
    """N simulation processes draining one bounded FIFO queue."""

    __slots__ = ("env", "handler", "capacity", "metrics", "name",
                 "_queue", "_waiters", "_procs", "_stopped",
                 "_ctr_handled", "_ctr_dropped", "_ctr_errors")

    def __init__(self, env: Environment, handler: Callable,
                 workers: int = 1, capacity: int = 1024,
                 metrics: Optional[MetricRegistry] = None,
                 name: str = "pool") -> None:
        if workers < 1:
            raise ConfigurationError(f"workers must be >= 1, got {workers}")
        if capacity < 1:
            raise ConfigurationError(f"capacity must be >= 1, "
                                     f"got {capacity}")
        self.env = env
        self.handler = handler
        self.capacity = capacity
        self.metrics = metrics or MetricRegistry()
        self.name = name
        self._queue: deque = deque()
        self._waiters: list = []   # idle workers' wake events
        self._stopped = False
        self._ctr_handled = self.metrics.counter(f"{name}.handled")
        self._ctr_dropped = self.metrics.counter(f"{name}.dropped")
        self._ctr_errors = self.metrics.counter(f"{name}.errors")
        self._procs = [env.process(self._worker()) for _ in range(workers)]

    @property
    def pending(self) -> int:
        return len(self._queue)

    def submit(self, item) -> None:
        """Enqueue *item*; never blocks the caller."""
        queue = self._queue
        if len(queue) >= self.capacity:
            queue.popleft()
            self._ctr_dropped.value += 1
        queue.append(item)
        if self._waiters:
            self._waiters.pop().succeed()

    def clear(self) -> None:
        """Drop everything queued without handling (crash semantics)."""
        self._queue.clear()

    def stop(self) -> None:
        """Terminate the workers; queued items are abandoned."""
        self._stopped = True
        for proc in self._procs:
            if proc.is_alive:
                proc.interrupt("pool stopped")
        self._procs = []

    def _worker(self):
        env = self.env
        queue = self._queue
        handler = self.handler
        try:
            while not self._stopped:
                if not queue:
                    wake = env.event()
                    self._waiters.append(wake)
                    yield wake
                    continue
                item = queue.popleft()
                try:
                    result = handler(item)
                    if result is not None and hasattr(result, "throw"):
                        yield from result
                except Interrupt:
                    raise
                except Exception:
                    self._ctr_errors.value += 1
                    continue
                self._ctr_handled.value += 1
        except Interrupt:
            return

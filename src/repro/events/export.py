"""Metrics export over the event bus.

Before this module, observability data left a node only by direct
point-to-point calls (or not at all — most benches read registries in
process).  A :class:`MetricsExporter` instead snapshots a node's
counters on an interval and *publishes* them to its bus; a batched
subscription forwards whole windows of snapshots to a central
:class:`MetricsCollector` as a single ``ingest`` oneway per batch.

One exporter, one topic, any number of consumers: a local dashboard
handler and the remote forwarder can subscribe side by side without
the exporter knowing either exists.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.events.bus import EventBus
from repro.events.remote import BatchForwarder
from repro.orb.core import InterfaceDef, Servant, op
from repro.orb.ior import IOR
from repro.orb.retry import CircuitBreaker
from repro.orb.typecodes import sequence_tc, tc_double, tc_string
from repro.sim.kernel import Interrupt

TOPIC = "metrics.snapshot"
METER = "events.metrics"
ADAPTER = "node"

METRICS_SINK_IFACE = InterfaceDef(
    "IDL:corbalc/Events/MetricsSink:1.0",
    "MetricsSink",
    operations=[
        # One batch of counter samples from one host; parallel sequences
        # keep the wire shape sequence-of-primitive (codegen tier).
        op("ingest", [("host", tc_string),
                      ("names", sequence_tc(tc_string)),
                      ("values", sequence_tc(tc_double))],
           oneway=True),
    ],
)


class MetricsCollectorServant(Servant):
    _interface = METRICS_SINK_IFACE

    def __init__(self, collector: "MetricsCollector") -> None:
        self.collector = collector

    def ingest(self, host: str, names: list, values: list) -> None:
        self.collector.accept(host, names, values)


class MetricsCollector:
    """Central sink: last-write-wins counter values per reporting host."""

    def __init__(self, node, key: str = "metrics.collector") -> None:
        self.node = node
        self._key = key
        #: host -> {counter name -> last value}
        self.latest: dict[str, dict[str, float]] = {}
        #: host -> sim time of the last ingested batch
        self.last_seen: dict[str, float] = {}
        self.batches = 0
        self.samples = 0
        self._servant = MetricsCollectorServant(self)
        node.orb.adapter(ADAPTER).activate(self._servant, key=key)

    @property
    def ior(self) -> IOR:
        return IOR(METRICS_SINK_IFACE.repo_id, self.node.host_id,
                   ADAPTER, self._key)

    def accept(self, host: str, names: Sequence[str],
               values: Sequence[float]) -> None:
        table = self.latest.setdefault(host, {})
        for name, value in zip(names, values):
            table[name] = value
        self.last_seen[host] = self.node.env.now
        self.batches += 1
        self.samples += len(names)


class MetricsExporter:
    """Periodic counter snapshots published to a node's event bus."""

    def __init__(self, node, bus: EventBus,
                 collector_ior: Optional[IOR] = None,
                 interval: float = 5.0,
                 prefixes: Sequence[str] = ("orb.", "net.", "bus."),
                 breaker: Optional[CircuitBreaker] = None,
                 max_batch: int = 16, max_age: float = 0.25) -> None:
        self.node = node
        self.bus = bus
        self.interval = interval
        self.prefixes = tuple(prefixes)
        self.snapshots = 0
        self._sub = None
        if collector_ior is not None:
            forwarder = BatchForwarder(
                node.orb, collector_ior,
                METRICS_SINK_IFACE.operations["ingest"],
                to_args=self._to_args, breaker=breaker, meter=METER)
            self._sub = bus.batch_subscribe(
                TOPIC, forwarder.deliver,
                max_batch=max_batch, max_age=max_age)
        self._proc = node.env.process(self._loop())
        node.host.on_crash.append(self._on_crash)
        node.host.on_restart.append(self._on_restart)

    def _to_args(self, events) -> tuple:
        # Snapshots in one batch all come from this node, so the batch
        # collapses to one (host, names, values) triple; later samples
        # of the same counter supersede earlier ones at the collector
        # (last-write-wins), so plain concatenation is correct.
        names: list[str] = []
        values: list[float] = []
        for event in events:
            snap = event.payload
            names.extend(snap)
            values.extend(snap.values())
        return (self.node.host_id, names, values)

    def snapshot(self) -> dict[str, float]:
        counters = self.node.metrics.counters()
        return {name: value for name, value in counters.items()
                if name.startswith(self.prefixes)}

    def publish_now(self) -> None:
        self.bus.publish(TOPIC, self.snapshot())
        self.snapshots += 1

    def _loop(self):
        try:
            while True:
                yield self.node.env.timeout(self.interval)
                self.publish_now()
        except Interrupt:
            return

    def _on_crash(self, _host) -> None:
        if self._proc is not None and self._proc.is_alive:
            self._proc.interrupt("host crashed")
        self._proc = None
        if self._sub is not None:
            self._sub.clear()

    def _on_restart(self, _host) -> None:
        self._proc = self.node.env.process(self._loop())

    def stop(self) -> None:
        if self._proc is not None and self._proc.is_alive:
            self._proc.interrupt("exporter stopped")
        self._proc = None

"""Remote delivery of bus events as batched oneway calls.

A :class:`BatchForwarder` is the flush target that turns a batched bus
subscription into wire traffic: each flush becomes **one** oneway
invocation whose arguments carry the whole batch (``to_args`` maps the
event list to the operation's argument tuple).  Stacked on the ORB's
GIOP pipelining, consecutive flushes to the same destination coalesce
further into multi-request transmissions — the two layers together are
what turn N logical reports into ~1 link charge.

Delivery is breaker-guarded: an OPEN breaker suppresses the send
locally (``bus.remote.suppressed``) instead of feeding a dead peer, and
every admitted send counts as half-open proof of life via
:func:`~repro.orb.retry.send_oneway_with_breaker` — without that, a
oneway-only path could never re-close its breaker.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

from repro.obs import names
from repro.orb.core import InterfaceDef, ORB, OperationDef, Servant, op
from repro.orb.exceptions import SystemException
from repro.orb.ior import IOR
from repro.orb.retry import CircuitBreaker, send_oneway_with_breaker
from repro.orb.typecodes import sequence_tc, tc_string

#: Generic remote event sink: the string-payload counterpart of a CORBA
#: notification channel's push consumer, with a batched variant so one
#: call (and one wire transmission, under pipelining) can carry a whole
#: flush window.
EVENT_SINK_IFACE = InterfaceDef(
    "IDL:corbalc/Events/EventSink:1.0",
    "EventSink",
    operations=[
        op("push", [("topic", tc_string), ("data", tc_string)],
           oneway=True),
        op("push_batch", [("topics", sequence_tc(tc_string)),
                          ("data", sequence_tc(tc_string))],
           oneway=True),
    ],
)


class EventSinkServant(Servant):
    """Collects pushed events in arrival order (tests and benchmarks)."""

    _interface = EVENT_SINK_IFACE

    def __init__(self) -> None:
        self.received: list[tuple[str, str]] = []

    def push(self, topic: str, data: str) -> None:
        self.received.append((topic, data))

    def push_batch(self, topics: list, data: list) -> None:
        self.received.extend(zip(topics, data))


def sink_batch_args(events) -> tuple:
    """``to_args`` mapping bus events onto ``push_batch`` arguments."""
    topics = []
    data = []
    for event in events:
        topics.append(event.topic)
        data.append(event.payload)
    return (topics, data)


class BatchForwarder:
    """Flush callback forwarding event batches over one oneway op."""

    __slots__ = ("orb", "ior", "odef", "to_args", "breaker", "meter",
                 "_ctr_batches", "_ctr_events", "_ctr_suppressed",
                 "_ctr_errors")

    def __init__(self, orb: ORB, ior: IOR, odef: OperationDef,
                 to_args: Callable[[Sequence], tuple],
                 breaker: Optional[CircuitBreaker] = None,
                 meter: Optional[str] = None) -> None:
        self.orb = orb
        self.ior = ior
        self.odef = odef
        self.to_args = to_args
        self.breaker = breaker
        self.meter = meter
        metrics = orb.metrics
        self._ctr_batches = metrics.counter(names.BUS_REMOTE_BATCHES)
        self._ctr_events = metrics.counter(names.BUS_REMOTE_EVENTS)
        self._ctr_suppressed = metrics.counter(names.BUS_REMOTE_SUPPRESSED)
        self._ctr_errors = metrics.counter(names.BUS_REMOTE_ERRORS)

    def deliver(self, events: Sequence) -> bool:
        """Send one batch; True if it was handed to the wire."""
        try:
            args = self.to_args(events)
            sent = send_oneway_with_breaker(
                self.orb, self.ior, self.odef, args,
                breaker=self.breaker, meter=self.meter)
        except SystemException:
            # Marshalling failure or local fast-fail path: the batch is
            # lost (oneway semantics), but the subscriber must survive.
            self._ctr_errors.value += 1
            return False
        if sent:
            self._ctr_batches.value += 1
            self._ctr_events.value += len(events)
        else:
            self._ctr_suppressed.value += 1
        return sent


class FanoutForwarder:
    """Flush callback replicating event batches to many sinks.

    One batched subscription feeding N destinations through
    :meth:`~repro.orb.core.ORB.send_oneway_fanout`: the batch arguments
    are marshalled once and every sink gets its own frame.  Compared to
    N independent :class:`BatchForwarder` subscriptions this halves the
    publish-side bookkeeping (one buffer, one age timer) and removes
    the N-fold re-encoding of identical batch bodies.

    Fan-out is all-or-nothing per flush (no per-destination breaker):
    use separate :class:`BatchForwarder` subscriptions when
    destinations need independent suppression.
    """

    __slots__ = ("orb", "iors", "odef", "to_args", "meter",
                 "_ctr_batches", "_ctr_events", "_ctr_errors")

    def __init__(self, orb: ORB, iors: Sequence[IOR], odef: OperationDef,
                 to_args: Callable[[Sequence], tuple],
                 meter: Optional[str] = None) -> None:
        self.orb = orb
        self.iors = list(iors)
        self.odef = odef
        self.to_args = to_args
        self.meter = meter
        metrics = orb.metrics
        self._ctr_batches = metrics.counter(names.BUS_REMOTE_BATCHES)
        self._ctr_events = metrics.counter(names.BUS_REMOTE_EVENTS)
        self._ctr_errors = metrics.counter(names.BUS_REMOTE_ERRORS)

    def retarget(self, iors: Sequence[IOR]) -> None:
        """Re-aim the fan-out at a new sink set.

        Gossip-style users re-pick destinations per flush (each round
        samples a fresh peer set); the subscription and its buffer stay
        in place, only the addressing changes.
        """
        self.iors = list(iors)

    def deliver(self, events: Sequence) -> bool:
        """Send one batch to every sink; True if handed to the wire."""
        if not self.iors:
            return False
        try:
            self.orb.send_oneway_fanout(self.iors, self.odef,
                                        self.to_args(events),
                                        meter=self.meter)
        except SystemException:
            self._ctr_errors.value += 1
            return False
        self._ctr_batches.value += len(self.iors)
        self._ctr_events.value += len(events) * len(self.iors)
        return True

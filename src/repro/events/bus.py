"""In-process pub/sub event bus with batched, decoupled delivery.

The bus is per-node infrastructure (like the ORB): publishers hand an
event to a topic and return immediately; each subscriber owns its own
delivery machinery —

- a :class:`~repro.events.worker.WorkerPool` for per-event handlers
  (``subscribe``), or
- a :class:`~repro.events.batch_writer.BatchWriter` for size/age-batched
  handlers (``batch_subscribe``), the shape remote forwarders use so
  many logical messages ride one wire transmission (see
  :mod:`repro.events.remote` and the ORB's GIOP pipelining underneath).

A slow or dead subscriber therefore never blocks the publisher or its
sibling subscribers; its own bounded buffer fills and sheds oldest-first
into ``bus.dropped``.

Topics are dot-separated names matched exactly, plus trailing-wildcard
patterns: a subscription to ``"supervisor.*"`` receives every topic
beginning ``"supervisor."``, and ``"*"`` receives everything.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.events.batch_writer import BatchWriter
from repro.events.worker import WorkerPool
from repro.obs import names
from repro.sim.kernel import Environment
from repro.sim.stats import MetricRegistry
from repro.util.errors import ConfigurationError


class Event:
    """One published occurrence: payload plus bus-stamped metadata."""

    __slots__ = ("topic", "payload", "time", "seq")

    def __init__(self, topic: str, payload, time: float, seq: int) -> None:
        self.topic = topic
        self.payload = payload
        self.time = time
        self.seq = seq

    def __repr__(self) -> str:
        return (f"Event({self.topic!r}, {self.payload!r}, "
                f"t={self.time}, seq={self.seq})")


class Subscription:
    """One subscriber's attachment: pattern + private delivery machinery."""

    __slots__ = ("bus", "pattern", "_sink", "_batched", "delivered")

    def __init__(self, bus: "EventBus", pattern: str, sink,
                 batched: bool) -> None:
        self.bus = bus
        self.pattern = pattern
        self._sink = sink          # WorkerPool or BatchWriter
        self._batched = batched
        self.delivered = 0         # events accepted into this sink

    @property
    def pending(self) -> int:
        return self._sink.pending

    def _deliver(self, event: Event) -> None:
        self.delivered += 1
        if self._batched:
            self._sink.append(event)
        else:
            self._sink.submit(event)

    def flush(self) -> None:
        """Force a batched subscription to deliver now (no-op otherwise)."""
        if self._batched:
            self._sink.flush()

    def clear(self) -> None:
        """Drop buffered, undelivered events (crash semantics)."""
        self._sink.clear()

    def cancel(self) -> None:
        self.bus.unsubscribe(self)


class EventBus:
    """Topic-routed fan-out with per-subscriber buffering."""

    def __init__(self, env: Environment,
                 metrics: Optional[MetricRegistry] = None) -> None:
        self.env = env
        self.metrics = metrics or MetricRegistry()
        self._seq = 0
        #: exact topic -> subscriptions
        self._topics: dict[str, list[Subscription]] = {}
        #: ("prefix.", sub) for trailing-wildcard patterns ("" matches all)
        self._wildcards: list[tuple[str, Subscription]] = []
        self._ctr_published = self.metrics.counter(names.BUS_PUBLISHED)
        self._ctr_delivered = self.metrics.counter(names.BUS_DELIVERED)
        self._ctr_no_subscriber = self.metrics.counter(names.BUS_NO_SUBSCRIBER)

    # -- subscribing -----------------------------------------------------
    def subscribe(self, pattern: str, handler: Callable,
                  workers: int = 1, capacity: int = 1024) -> Subscription:
        """Per-event delivery: *handler(event)* runs on a worker pool."""
        pool = WorkerPool(self.env, handler, workers=workers,
                          capacity=capacity, metrics=self.metrics,
                          name="bus")
        return self._attach(pattern, pool, batched=False)

    def batch_subscribe(self, pattern: str, flush: Callable,
                        max_batch: int = 64, max_age: float = 0.05,
                        capacity: int = 1024) -> Subscription:
        """Batched delivery: *flush(list-of-events)* on size/age windows."""
        writer = BatchWriter(self.env, flush, max_batch=max_batch,
                             max_age=max_age, capacity=capacity,
                             metrics=self.metrics, name="bus")
        return self._attach(pattern, writer, batched=True)

    def _attach(self, pattern: str, sink, batched: bool) -> Subscription:
        if not pattern:
            raise ConfigurationError("empty topic pattern")
        sub = Subscription(self, pattern, sink, batched)
        if pattern.endswith("*"):
            prefix = pattern[:-1]
            if prefix and not prefix.endswith("."):
                raise ConfigurationError(
                    f"wildcard pattern must end '.*' or be '*': {pattern!r}")
            self._wildcards.append((prefix, sub))
        else:
            self._topics.setdefault(pattern, []).append(sub)
        return sub

    def unsubscribe(self, sub: Subscription) -> None:
        subs = self._topics.get(sub.pattern)
        if subs is not None and sub in subs:
            subs.remove(sub)
            if not subs:
                del self._topics[sub.pattern]
        self._wildcards = [(p, s) for p, s in self._wildcards if s is not sub]
        if sub._batched:
            sub._sink.clear()
        else:
            sub._sink.stop()

    # -- publishing ------------------------------------------------------
    def publish(self, topic: str, payload=None) -> Event:
        """Hand one event to every matching subscriber; never blocks."""
        self._seq += 1
        event = Event(topic, payload, self.env._now, self._seq)
        self._ctr_published.value += 1
        matched = False
        subs = self._topics.get(topic)
        if subs:
            matched = True
            for sub in tuple(subs):
                sub._deliver(event)
                self._ctr_delivered.value += 1
        for prefix, sub in self._wildcards:
            if topic.startswith(prefix):
                matched = True
                sub._deliver(event)
                self._ctr_delivered.value += 1
        if not matched:
            self._ctr_no_subscriber.value += 1
        return event

    # -- maintenance -----------------------------------------------------
    def flush(self) -> None:
        """Force every batched subscription to deliver now."""
        for subs in self._topics.values():
            for sub in subs:
                sub.flush()
        for _prefix, sub in self._wildcards:
            sub.flush()

    def subscriptions(self) -> list[Subscription]:
        out = [s for subs in self._topics.values() for s in subs]
        out.extend(s for _p, s in self._wildcards)
        return out

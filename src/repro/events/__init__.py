"""Asynchronous event infrastructure: pub/sub bus, batching, fan-out.

The paper's "network as repository" architecture runs on continuous
background dissemination — soft-state reports, supervisor signals,
metrics — none of which needs request/reply semantics.  This package
gives that traffic a proper asynchronous spine:

- :class:`~repro.events.bus.EventBus` — per-node topic pub/sub with
  per-subscriber worker pools and bounded, drop-oldest buffers;
- :class:`~repro.events.batch_writer.BatchWriter` — size/age-threshold
  batching used by subscriptions and remote forwarders;
- :class:`~repro.events.worker.WorkerPool` — bounded asynchronous
  handler execution;
- :class:`~repro.events.remote.BatchForwarder` — batches become single
  oneway calls (stacking on the ORB's GIOP pipelining underneath);
- :mod:`~repro.events.export` — metrics snapshots over the bus to a
  central collector.
"""

from repro.events.batch_writer import BatchWriter
from repro.events.bus import Event, EventBus, Subscription
from repro.events.remote import BatchForwarder, FanoutForwarder
from repro.events.worker import WorkerPool

__all__ = [
    "BatchForwarder",
    "BatchWriter",
    "Event",
    "EventBus",
    "FanoutForwarder",
    "Subscription",
    "WorkerPool",
]

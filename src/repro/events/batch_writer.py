"""Size/age-batched delivery with a bounded buffer.

A :class:`BatchWriter` accumulates items and hands them to its flush
callback as one batch when either threshold trips:

- **size** — the batch reached ``max_batch`` items;
- **age** — the *oldest* buffered item has waited ``max_age`` simulated
  seconds (armed lazily with one token-versioned kernel timer, the same
  exactly-one-live-timer pattern the ORB uses for its deadline sweeper
  and pipeline flush windows).

The buffer is bounded: past ``capacity`` items the writer drops the
*oldest* entry (new data is worth more than old data for soft-state
style traffic — the next report supersedes the last) and counts it in
``<name>.dropped``.  A writer can be :meth:`pause`-d while its
destination is known-dead; appends keep accumulating (and aging out)
until :meth:`resume`.

The flush callback may be a plain callable or a generator function;
generators are driven as simulation processes so flushes may perform
timed work (remote sends) without blocking the publisher.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Optional

from repro.sim.kernel import Environment, Timeout
from repro.sim.stats import MetricRegistry
from repro.util.errors import ConfigurationError


class BatchWriter:
    """Accumulate items; flush by size or age; drop-oldest past capacity."""

    __slots__ = ("env", "_flush_cb", "max_batch", "max_age", "capacity",
                 "metrics", "name", "on_drop", "_buf", "_token", "_armed",
                 "_paused", "_ctr_flushes", "_ctr_items", "_ctr_dropped")

    def __init__(self, env: Environment, flush: Callable,
                 max_batch: int = 64, max_age: float = 0.05,
                 capacity: int = 1024,
                 metrics: Optional[MetricRegistry] = None,
                 name: str = "batch",
                 on_drop: Optional[Callable] = None) -> None:
        if max_batch < 1:
            raise ConfigurationError(f"max_batch must be >= 1, "
                                     f"got {max_batch}")
        if max_age <= 0:
            raise ConfigurationError(f"max_age must be > 0, got {max_age}")
        if capacity < max_batch:
            raise ConfigurationError(
                f"capacity ({capacity}) must be >= max_batch ({max_batch})")
        self.env = env
        self._flush_cb = flush
        self.max_batch = max_batch
        self.max_age = max_age
        self.capacity = capacity
        self.metrics = metrics or MetricRegistry()
        self.name = name
        self.on_drop = on_drop
        self._buf: deque = deque()
        self._token = 0          # versions the armed age timer
        self._armed = False
        self._paused = False
        self._ctr_flushes = self.metrics.counter(f"{name}.flushes")
        self._ctr_items = self.metrics.counter(f"{name}.flushed")
        self._ctr_dropped = self.metrics.counter(f"{name}.dropped")

    # -- state -----------------------------------------------------------
    @property
    def pending(self) -> int:
        return len(self._buf)

    @property
    def paused(self) -> bool:
        return self._paused

    # -- feeding ---------------------------------------------------------
    def append(self, item) -> None:
        """Buffer *item*; may flush synchronously on the size threshold."""
        buf = self._buf
        if len(buf) >= self.capacity:
            dropped = buf.popleft()
            self._ctr_dropped.value += 1
            if self.on_drop is not None:
                self.on_drop(dropped)
        buf.append(item)
        if self._paused:
            return
        if len(buf) >= self.max_batch:
            self.flush()
        elif not self._armed:
            self._armed = True
            self._token += 1
            Timeout(self.env, self.max_age,
                    self._token).callbacks.append(self._age_timer)

    def _age_timer(self, ev) -> None:
        if ev._value != self._token:
            return  # superseded: a flush already emptied this window
        self._armed = False
        if self._buf and not self._paused:
            self.flush()

    # -- flushing --------------------------------------------------------
    def flush(self) -> None:
        """Deliver everything buffered now (no-op on an empty buffer)."""
        if not self._buf:
            return
        batch = list(self._buf)
        self._buf.clear()
        self._armed = False
        self._token += 1   # invalidate any armed age timer
        self._ctr_flushes.value += 1
        self._ctr_items.value += len(batch)
        result = self._flush_cb(batch)
        if result is not None and hasattr(result, "throw"):
            self.env.process(result)

    def clear(self) -> None:
        """Drop everything buffered without delivering (crash semantics)."""
        self._buf.clear()
        self._armed = False
        self._token += 1

    # -- flow control ----------------------------------------------------
    def pause(self) -> None:
        """Stop flushing; appends keep buffering (and dropping oldest)."""
        self._paused = True

    def resume(self) -> None:
        """Re-enable flushing; a full-enough buffer flushes immediately."""
        self._paused = False
        if len(self._buf) >= self.max_batch:
            self.flush()
        elif self._buf and not self._armed:
            self._armed = True
            self._token += 1
            Timeout(self.env, self.max_age,
                    self._token).callbacks.append(self._age_timer)

"""Layer 2: cross-checks between XML descriptors and declared IDL.

Where layer 1 proves each IDL specification is internally consistent,
this layer proves the *descriptors* agree with the IDL and with each
other: interface ports must name declared interfaces, dependency
version ranges must be satisfiable against the packages actually
available, QoS figures must be sane, framework-service references must
name services the node model provides.

======== ==================================================================
code     meaning
======== ==================================================================
CMP001   port repo-id does not resolve to a declared interface
CMP002   dependency unsatisfiable against the package set
CMP003   dependency (or instance) version range is empty/inverted
CMP004   unknown framework service (warning)
CMP005   QoS figure out of range
CMP006   duplicate event-port name
======== ==================================================================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from repro.analysis.findings import Diagnostics
from repro.analysis.idlcheck import InterfaceGraph
from repro.xmlmeta.descriptors import (
    ComponentTypeDescriptor,
    SoftwareDescriptor,
)
from repro.xmlmeta.versions import Version, VersionRange

#: Services a component may declare it needs from its hosting node
#: (the node model's well-known services plus container-level features).
KNOWN_FRAMEWORK_SERVICES = frozenset({
    "registry", "resources", "acceptor", "container",
    "migration", "events", "aggregation", "licensing",
})


@dataclass
class PackageInfo:
    """One (software, component-type) descriptor pair in the package set."""

    software: SoftwareDescriptor
    component: ComponentTypeDescriptor
    source: str = ""

    @property
    def name(self) -> str:
        return self.software.name

    @property
    def version(self) -> Version:
        return self.software.version


class PackageSet:
    """All packages an application could draw on, indexed by name.

    The dependency-satisfiability and assembly checks resolve component
    names and version ranges against this set — the static analogue of
    what the node repositories answer at deployment time.
    """

    def __init__(self) -> None:
        self._by_name: dict[str, list[PackageInfo]] = {}

    def add(self, software: SoftwareDescriptor,
            component: ComponentTypeDescriptor,
            source: str = "") -> PackageInfo:
        info = PackageInfo(software=software, component=component,
                           source=source)
        self._by_name.setdefault(info.name, []).append(info)
        return info

    def add_package(self, package, source: str = "") -> PackageInfo:
        """Add a :class:`~repro.packaging.package.ComponentPackage`."""
        return self.add(package.software, package.component,
                        source=source or f"package {package.name}")

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def __len__(self) -> int:
        return sum(len(v) for v in self._by_name.values())

    def __iter__(self) -> Iterable[PackageInfo]:
        for infos in self._by_name.values():
            yield from infos

    def names(self) -> list[str]:
        return sorted(self._by_name)

    def versions_of(self, name: str) -> list[Version]:
        return sorted(i.version for i in self._by_name.get(name, []))

    def resolve(self, name: str,
                versions: Optional[VersionRange] = None
                ) -> Optional[PackageInfo]:
        """The newest package named *name* within *versions*, if any."""
        candidates = [
            info for info in self._by_name.get(name, [])
            if versions is None or versions.matches(info.version)
        ]
        if not candidates:
            return None
        return max(candidates, key=lambda info: info.version)


def check_component_type(component: ComponentTypeDescriptor,
                         graph: InterfaceGraph,
                         diag: Diagnostics,
                         source: str = "",
                         strict_interfaces: bool = True) -> None:
    """Check one component-type descriptor against the interface graph."""
    where = source or f"componenttype {component.name}"

    for category, ports in (("provides", component.provides),
                            ("uses", component.uses)):
        for port in ports:
            if port.repo_id not in graph:
                message = (f"component {component.name!r}, {category} port "
                           f"{port.name!r}: repo-id {port.repo_id!r} does "
                           f"not name a declared interface")
                if strict_interfaces:
                    diag.error("CMP001", where, message)
                else:
                    diag.info("CMP001", where, message)

    seen: dict[str, str] = {p.name: "interface"
                            for p in list(component.provides)
                            + list(component.uses)}
    for category, ports in (("emits", component.emits),
                            ("consumes", component.consumes)):
        for port in ports:
            if port.name in seen:
                diag.error(
                    "CMP006", where,
                    f"component {component.name!r}: event port "
                    f"{port.name!r} duplicates a {seen[port.name]} port")
            seen[port.name] = "event"

    qos = component.qos
    for label, value in (("cpu", qos.cpu_units),
                         ("memory", qos.memory_mb),
                         ("bandwidth", qos.bandwidth_bps)):
        if value < 0:
            diag.error("CMP005", where,
                       f"component {component.name!r}: QoS {label} is "
                       f"negative ({value})")

    for service in component.framework_services:
        if service not in KNOWN_FRAMEWORK_SERVICES:
            diag.warning(
                "CMP004", where,
                f"component {component.name!r} requests unknown framework "
                f"service {service!r} (known: "
                f"{', '.join(sorted(KNOWN_FRAMEWORK_SERVICES))})")


def check_software(software: SoftwareDescriptor,
                   packages: PackageSet,
                   diag: Diagnostics,
                   source: str = "") -> None:
    """Check one software descriptor's dependencies against *packages*."""
    where = source or f"softpkg {software.name}"
    for dep in software.dependencies:
        if dep.versions.is_empty():
            diag.error(
                "CMP003", where,
                f"component {software.name!r}: dependency on "
                f"{dep.component!r} has empty version range "
                f"{dep.versions.text!r} (no version can satisfy it)")
            continue
        if packages.resolve(dep.component, dep.versions) is None:
            available = [str(v) for v in packages.versions_of(dep.component)]
            detail = (f"available versions: {', '.join(available)}"
                      if available else "no package by that name")
            diag.error(
                "CMP002", where,
                f"component {software.name!r}: dependency "
                f"{dep.component!r} {dep.versions} is unsatisfiable "
                f"({detail})")


def check_package_set(packages: PackageSet,
                      graph: InterfaceGraph,
                      diag: Diagnostics,
                      strict_interfaces: bool = True) -> None:
    """Run both descriptor checks over every package in the set."""
    for info in packages:
        check_component_type(info.component, graph, diag,
                             source=info.source,
                             strict_interfaces=strict_interfaces)
        check_software(info.software, packages, diag, source=info.source)

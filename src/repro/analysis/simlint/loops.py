"""SIM010- control-loop safety rules.

The PR-9 chaos harness found the archetype for this family: a corrupt
``get_state`` reply whose *decode* raised inside the supervisor's
checkpoint pass, escaping the ``while True`` loop and silently killing
self-healing for the rest of the run.  Loops that supervise the system
(supervisor ticks, shard-agent gossip rounds, soft-state reporters,
worker pools) must treat each iteration as a fault boundary:

- **SIM010** — bare ``except:`` swallows ``GeneratorExit`` and
  ``KeyboardInterrupt``; always name what you catch;
- **SIM011** — a broad ``except Exception`` inside a loop of a
  generator function must let kernel control exceptions through:
  either a preceding ``except Interrupt: raise`` clause or a re-raise
  in the handler body — otherwise a crash/stop interrupt is absorbed
  as if it were a handler error and the process never dies;
- **SIM012** — in designated control-loop modules, calls that decode
  foreign bytes (``loads_*``, ``decode*``, ``parse_*``, ``from_json``
  ...) inside a perpetual loop must sit inside a ``try``: decode
  errors are *data* faults and must cost one iteration, not the loop;
- **SIM013** — a ``while True`` loop with yields in a control-loop
  module should handle :class:`~repro.sim.kernel.Interrupt` somewhere
  in the function, so ``stop()``/crash interrupts end it cleanly.
"""

from __future__ import annotations

import ast
import re

from repro.analysis.simlint.engine import rule

_DOCS = {
    "SIM010": "bare except (swallows GeneratorExit/KeyboardInterrupt)",
    "SIM011": "broad except in generator loop hides kernel interrupts",
    "SIM012": "unguarded decode call inside a control loop iteration",
    "SIM013": "perpetual control loop without Interrupt handling",
}

#: exception names that count as kernel/loop control.
_CONTROL_EXCEPTIONS = {"Interrupt", "StopSimulation", "GeneratorExit",
                       "BaseException"}
_BROAD_EXCEPTIONS = {"Exception", "BaseException"}


def _exc_names(handler: ast.ExceptHandler) -> set[str]:
    """Last-segment names of the exception types a handler catches."""
    node = handler.type
    if node is None:
        return set()
    nodes = node.elts if isinstance(node, ast.Tuple) else [node]
    out = set()
    for item in nodes:
        if isinstance(item, ast.Attribute):
            out.add(item.attr)
        elif isinstance(item, ast.Name):
            out.add(item.id)
    return out


def _walk_scope(scope: ast.AST):
    """Descendants of *scope*, not entering nested functions."""
    stack = list(ast.iter_child_nodes(scope))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


def _is_generator(func: ast.AST) -> bool:
    return any(isinstance(node, (ast.Yield, ast.YieldFrom))
               for node in _walk_scope(func))


def _handler_reraises(handler: ast.ExceptHandler) -> bool:
    return any(isinstance(node, ast.Raise)
               for node in _walk_scope(handler))


def _call_name(node: ast.Call) -> str:
    func = node.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return ""


@rule(docs=_DOCS)
def check_loops(source, config, sink) -> None:
    # SIM010 — everywhere, any function.
    for node in ast.walk(source.tree):
        if isinstance(node, ast.ExceptHandler) and node.type is None:
            sink.error(
                "SIM010", node,
                "bare 'except:' also swallows GeneratorExit and "
                "KeyboardInterrupt; name the exceptions (or catch "
                "Exception after re-raising Interrupt)")

    control_module = config.is_control_loop_module(source)
    decode_re = re.compile(config.decode_call_re)

    for func in ast.walk(source.tree):
        if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if not _is_generator(func):
            continue

        func_handles_interrupt = any(
            isinstance(node, ast.ExceptHandler)
            and _exc_names(node) & _CONTROL_EXCEPTIONS
            for node in _walk_scope(func))

        for loop in _walk_scope(func):
            if not isinstance(loop, (ast.While, ast.For)):
                continue

            # SIM011 — broad handlers inside the loop must re-raise
            # control exceptions (or a prior clause must catch them).
            for sub in _walk_scope(loop):
                if not isinstance(sub, ast.Try):
                    continue
                control_caught = False
                for handler in sub.handlers:
                    names = _exc_names(handler)
                    if names & _CONTROL_EXCEPTIONS and \
                            "BaseException" not in names:
                        control_caught = True
                    if names & _BROAD_EXCEPTIONS:
                        if not control_caught and \
                                not _handler_reraises(handler):
                            sink.error(
                                "SIM011", handler,
                                "broad except inside a generator loop "
                                "absorbs kernel Interrupt/"
                                "StopSimulation; add 'except "
                                "Interrupt: raise' before it (or "
                                "re-raise in the handler)")

            # SIM012/SIM013 apply only to designated control loops.
            if not control_module:
                continue
            perpetual = isinstance(loop, ast.While)
            if not perpetual:
                continue
            has_yield = any(isinstance(node, (ast.Yield, ast.YieldFrom))
                            for node in _walk_scope(loop))

            unguarded = _unguarded_decode_calls(loop, decode_re)
            for call in unguarded:
                sink.error(
                    "SIM012", call,
                    f"'{_call_name(call)}' decodes foreign data inside "
                    f"a control loop with no enclosing try: a decode "
                    f"error would escape the iteration and kill the "
                    f"loop (the checkpoint-corruption bug shape)")

            if has_yield and not func_handles_interrupt:
                sink.warning(
                    "SIM013", loop,
                    f"perpetual loop in {func.name}() never handles "
                    f"Interrupt; stop()/crash interrupts will surface "
                    f"as unhandled errors instead of ending the loop")


def _unguarded_decode_calls(loop: ast.AST, decode_re) -> list[ast.Call]:
    """Decode-shaped calls under *loop* with no Try between them."""
    out: list[ast.Call] = []

    def visit(node: ast.AST, guarded: bool) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                                  ast.Lambda)):
                continue
            child_guarded = guarded
            if isinstance(node, ast.Try) and child in node.body:
                # only the try *body* is protected by its handlers;
                # code in handlers/finally/else runs unprotected.
                child_guarded = guarded or bool(node.handlers)
            if isinstance(child, ast.Call) and not child_guarded \
                    and decode_re.match(_call_name(child)):
                out.append(child)
            visit(child, child_guarded)

    visit(loop, False)
    return out

"""simlint driver: parse sources, run rule passes, apply suppressions.

A :class:`SourceFile` is one parsed module plus its per-line inline
suppressions; :func:`lint_sources` runs every rule pass over a batch of
them into one :class:`~repro.analysis.findings.Diagnostics`, honouring
``# simlint: disable=CODE[,CODE...]`` comments on the offending line.
:func:`lint_paths` is the filesystem front end the CLI and the
self-check test share.

Rule passes live in sibling modules and register themselves in
:data:`RULES`; each is a callable ``(source, config, diag) -> None``.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable, Optional

from repro.analysis.findings import Diagnostics
from repro.util.diagnostics import Severity

#: ``# simlint: disable=SIM001,SIM030`` (or ``disable=all``).
_SUPPRESS_RE = re.compile(
    r"#\s*simlint:\s*disable=([A-Za-z0-9_,\s]+)")


@dataclass
class SimlintConfig:
    """What the rules treat as special, by path suffix.

    Paths are matched against the *posix* form of the file's path, so
    entries like ``"sim/rng.py"`` work for any scan root.
    """

    #: the one module allowed to construct numpy generators: the
    #: named-stream registry itself.
    rng_modules: tuple[str, ...] = ("sim/rng.py",)
    #: modules whose perpetual loops are held to the SIM012/SIM013
    #: control-loop rules (supervisors, agents, reporters, pools).
    control_loop_modules: tuple[str, ...] = (
        "deployment/supervisor.py",
        "deployment/loadbalancer.py",
        "registry/softstate.py",
        "registry/federation/shard.py",
        "events/worker.py",
        "events/batch_writer.py",
        "grid/volunteer.py",
    )
    #: modules holding chaos-style fault installers (SIM020).
    action_modules: tuple[str, ...] = ("chaos/actions.py",)
    #: function-name prefix marking a fault installer in those modules.
    action_prefix: str = "act_"
    #: call names that look like decoding/parsing foreign bytes —
    #: the checkpoint-corruption bug shape (SIM012).
    decode_call_re: str = (
        r"^(loads?_|.*_loads$|decode|.*_decode$|parse_|from_json$"
        r"|from_dict$|from_bytes$|from_xml$)")
    #: emit methods whose first argument is a metric name (SIM030).
    metric_methods: tuple[str, ...] = (
        "counter", "histogram", "series", "add_labelled",
        "labelled_family", "find_histogram",
    )
    #: emit methods whose first argument is a span name (SIM031).
    span_methods: tuple[str, ...] = ("span", "start_span")
    #: modules exempt from the metric/span literal rule (the declared
    #: registry itself, and the stats primitives that take caller
    #: names verbatim).
    names_exempt_modules: tuple[str, ...] = (
        "obs/names.py", "sim/stats.py", "obs/trace.py",
    )

    def is_rng_module(self, source: "SourceFile") -> bool:
        return source.matches(self.rng_modules)

    def is_control_loop_module(self, source: "SourceFile") -> bool:
        return source.matches(self.control_loop_modules)

    def is_action_module(self, source: "SourceFile") -> bool:
        return source.matches(self.action_modules)


@dataclass
class SourceFile:
    """One module under analysis: path, text, AST, suppressions."""

    path: str                       # as reported in finding locations
    text: str
    tree: ast.Module = field(repr=False, default=None)
    #: line number -> set of suppressed codes ({"all"} suppresses any).
    suppressions: dict[int, set[str]] = field(default_factory=dict)

    @classmethod
    def parse(cls, path: str, text: str) -> "SourceFile":
        tree = ast.parse(text, filename=path)
        suppressions: dict[int, set[str]] = {}
        for lineno, line in enumerate(text.splitlines(), start=1):
            match = _SUPPRESS_RE.search(line)
            if match:
                codes = {c.strip().upper() if c.strip().lower() != "all"
                         else "all"
                         for c in match.group(1).split(",") if c.strip()}
                suppressions[lineno] = codes
        return cls(path=path, text=text, tree=tree,
                   suppressions=suppressions)

    def matches(self, suffixes: Iterable[str]) -> bool:
        posix = Path(self.path).as_posix()
        return any(posix.endswith(suffix) for suffix in suffixes)

    def suppressed(self, code: str, lineno: int) -> bool:
        codes = self.suppressions.get(lineno)
        return bool(codes) and (code in codes or "all" in codes)

    def location(self, node: ast.AST) -> str:
        return f"{self.path}:{getattr(node, 'lineno', 0)}"


class _Sink:
    """Per-file diagnostics shim that applies inline suppressions."""

    def __init__(self, source: SourceFile, diag: Diagnostics) -> None:
        self.source = source
        self.diag = diag
        self.suppressed_count = 0

    def emit(self, code: str, severity: Severity, node: ast.AST,
             message: str) -> None:
        lineno = getattr(node, "lineno", 0)
        if self.source.suppressed(code, lineno):
            self.suppressed_count += 1
            return
        self.diag.emit(code, severity, self.source.location(node), message)

    def error(self, code: str, node: ast.AST, message: str) -> None:
        self.emit(code, Severity.ERROR, node, message)

    def warning(self, code: str, node: ast.AST, message: str) -> None:
        self.emit(code, Severity.WARNING, node, message)

    def info(self, code: str, node: ast.AST, message: str) -> None:
        self.emit(code, Severity.INFO, node, message)


#: registered rule passes, run in order over every source file.
RULES: list[Callable[[SourceFile, SimlintConfig, _Sink], None]] = []

#: code -> one-line description, for ``--rules`` output and the docs.
RULE_DOCS: dict[str, str] = {}


def rule(func=None, *, docs: Optional[dict[str, str]] = None):
    """Register a rule pass (optionally documenting its codes)."""
    def wrap(f):
        RULES.append(f)
        if docs:
            RULE_DOCS.update(docs)
        return f
    return wrap(func) if func is not None else wrap


def lint_sources(sources: Iterable[SourceFile],
                 config: Optional[SimlintConfig] = None,
                 diag: Optional[Diagnostics] = None) -> Diagnostics:
    """Run every rule pass over already-parsed *sources*."""
    config = config or SimlintConfig()
    diag = diag if diag is not None else Diagnostics()
    # Import the rule modules for their registration side effect
    # (deferred so SourceFile/SimlintConfig can be imported from here
    # without a cycle).
    from repro.analysis.simlint import (  # noqa: F401
        determinism, effects, hygiene, loops,
    )
    for source in sources:
        sink = _Sink(source, diag)
        for pass_ in RULES:
            pass_(source, config, sink)
    return diag


def gather_sources(paths: Iterable[str], diag: Diagnostics,
                   root: Optional[str] = None) -> list[SourceFile]:
    """Expand files/directories into parsed sources.

    Locations are reported relative to *root* (default: the common
    parent the caller passed), so baselines survive checkouts living
    at different absolute paths.
    """
    files: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            files.update(path.rglob("*.py"))
        else:
            files.add(path)
    sources = []
    root_path = Path(root) if root else None
    for path in sorted(files):
        label = path.as_posix()
        if root_path is not None:
            try:
                label = path.relative_to(root_path).as_posix()
            except ValueError:
                pass
        try:
            text = path.read_text()
        except OSError as exc:
            diag.error("SIM000", str(path), f"cannot read: {exc}")
            continue
        try:
            sources.append(SourceFile.parse(label, text))
        except SyntaxError as exc:
            diag.error("SIM000", f"{label}:{exc.lineno or 0}",
                       f"cannot parse: {exc.msg}")
    return sources


def lint_paths(paths: Iterable[str],
               config: Optional[SimlintConfig] = None,
               root: Optional[str] = None) -> Diagnostics:
    """Lint files/directories; the programmatic equivalent of the CLI."""
    diag = Diagnostics()
    sources = gather_sources(paths, diag, root=root)
    return lint_sources(sources, config=config, diag=diag)

"""Grandfathered-findings baseline for simlint.

A baseline entry says "this finding is known, accepted, and documented
— don't fail the gate over it".  Entries are keyed by *(path, code,
message)* — deliberately **not** by line number, so unrelated edits
above a grandfathered site don't invalidate the baseline — with a
``count`` bounding how many identical findings the entry absorbs and a
mandatory human ``reason``.

The contract is two-sided: an unbaselined finding fails the gate, and
a baseline entry that no longer matches anything is reported as
**stale** (the violation was fixed — delete the entry) so the file can
only shrink toward zero, never silently rot.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable

from repro.analysis.findings import Diagnostics
from repro.util.diagnostics import Finding

#: code used for "baseline entry matched nothing" findings.
STALE_CODE = "SIM090"


def strip_line(location: str) -> str:
    """``path:123`` -> ``path`` (line numbers are baseline-unstable)."""
    path, sep, tail = location.rpartition(":")
    if sep and tail.isdigit():
        return path
    return location


@dataclass(frozen=True)
class BaselineEntry:
    path: str
    code: str
    message: str
    count: int = 1
    reason: str = ""

    @property
    def key(self) -> tuple[str, str, str]:
        return (self.path, self.code, self.message)

    def as_dict(self) -> dict:
        return {"path": self.path, "code": self.code,
                "message": self.message, "count": self.count,
                "reason": self.reason}


class Baseline:
    """A set of grandfathered findings, persisted as sorted JSON."""

    VERSION = 1

    def __init__(self, entries: Iterable[BaselineEntry] = ()) -> None:
        self.entries: list[BaselineEntry] = list(entries)

    # -- persistence --------------------------------------------------------
    @classmethod
    def load(cls, path) -> "Baseline":
        data = json.loads(Path(path).read_text())
        if data.get("version") != cls.VERSION:
            raise ValueError(
                f"unsupported baseline version {data.get('version')!r}")
        return cls(BaselineEntry(
            path=e["path"], code=e["code"], message=e["message"],
            count=int(e.get("count", 1)), reason=e.get("reason", ""))
            for e in data.get("entries", []))

    def save(self, path) -> None:
        Path(path).write_text(self.to_json())

    def to_json(self) -> str:
        entries = sorted(self.entries,
                         key=lambda e: (e.path, e.code, e.message))
        return json.dumps(
            {"version": self.VERSION,
             "entries": [e.as_dict() for e in entries]},
            indent=2, sort_keys=True) + "\n"

    # -- construction from a run --------------------------------------------
    @classmethod
    def from_diagnostics(cls, diag: Diagnostics,
                         reason: str = "grandfathered") -> "Baseline":
        counts: dict[tuple[str, str, str], int] = {}
        for finding in diag:
            key = (strip_line(finding.location), finding.code,
                   finding.message)
            counts[key] = counts.get(key, 0) + 1
        return cls(BaselineEntry(path=p, code=c, message=m, count=n,
                                 reason=reason)
                   for (p, c, m), n in counts.items())

    # -- application --------------------------------------------------------
    def apply(self, diag: Diagnostics) -> Diagnostics:
        """Findings minus baselined ones, plus stale-entry findings.

        Returns a new :class:`Diagnostics`; *diag* is not modified.
        """
        budget: dict[tuple[str, str, str], int] = {}
        for entry in self.entries:
            budget[entry.key] = budget.get(entry.key, 0) + entry.count
        out = Diagnostics()
        suppressed = 0
        for finding in diag:
            key = (strip_line(finding.location), finding.code,
                   finding.message)
            if budget.get(key, 0) > 0:
                budget[key] -= 1
                suppressed += 1
                continue
            out.findings.append(finding)
        for entry in self.entries:
            remaining = budget.get(entry.key, 0)
            if remaining > 0:
                budget[entry.key] = 0
                out.warning(
                    STALE_CODE, entry.path,
                    f"stale baseline entry: {entry.code} "
                    f"({entry.message!r}) matched "
                    f"{entry.count - remaining}/{entry.count} "
                    f"finding(s); the violation was fixed — delete "
                    f"the entry")
        return out

    def __len__(self) -> int:
        return len(self.entries)


def finding_key(finding: Finding) -> tuple[str, str, str]:
    """The baseline key a finding would be matched under."""
    return (strip_line(finding.location), finding.code, finding.message)

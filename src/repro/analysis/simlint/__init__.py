"""Source-level determinism & control-loop safety analyzer (simlint).

The PR-5 verifier checks deployment *artifacts* (IDL, descriptors,
assemblies); simlint turns the same typed-findings machinery on the
codebase itself.  The lightweight-component reproduction promises
byte-for-byte replay from a seed, but that guarantee is only as strong
as the source discipline behind it: one stray ``random.random()`` or
wall-clock read desynchronizes every campaign, one decode error
escaping a supervisor loop kills self-healing, one unreverted chaos
fault poisons the next campaign, and one typo'd metric name silently
drops a benchmark series.

Four rule families, each with stable ``SIMxxx`` codes:

- **determinism** (SIM001-) — the stdlib ``random`` module, wall
  clocks, ``os.urandom``-style entropy, ad-hoc numpy ``Generator``
  construction, and unordered ``set`` iteration are forbidden outside
  the named-stream discipline of :mod:`repro.sim.rng`;
- **control-loop safety** (SIM010-) — supervisor/agent/reporter/worker
  loops must not let decode errors escape an iteration, must re-raise
  kernel control exceptions from broad handlers, and must shut down
  cleanly on :class:`~repro.sim.kernel.Interrupt`;
- **paired effects** (SIM020-) — chaos fault installers must return a
  revert closure; staged ring membership changes must be rebalanced
  (or cancelled) on every path out of the function;
- **name hygiene** (SIM030-) — every metric/span name emitted as a
  string literal must be declared in :mod:`repro.obs.names`.

Findings can be silenced inline (``# simlint: disable=SIM003``) or
grandfathered in a checked-in baseline file (see
:mod:`repro.analysis.simlint.baseline`).  The CLI front end is
``python -m repro.tools.simlint``.
"""

from __future__ import annotations

from repro.analysis.simlint.baseline import Baseline
from repro.analysis.simlint.engine import (
    RULE_DOCS,
    SimlintConfig,
    SourceFile,
    lint_paths,
    lint_sources,
)

__all__ = [
    "Baseline",
    "RULE_DOCS",
    "SimlintConfig",
    "SourceFile",
    "lint_paths",
    "lint_sources",
]

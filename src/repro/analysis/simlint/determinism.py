"""SIM001- determinism rules.

Replay-from-a-seed only holds if every random draw and every notion of
"now" flows from the simulation: named :class:`repro.sim.rng`
streams and ``env.now``.  These passes ban the escape hatches:

- **SIM001** — importing the stdlib ``random`` module (process-global
  state; seeded or not, it desynchronizes unrelated subsystems);
- **SIM002** — wall-clock / host-entropy reads (``time.time``,
  ``datetime.now``, ``os.urandom``, ``uuid.uuid4``, ``secrets``):
  values differ run to run, so anything derived from them diverges;
- **SIM003** — constructing numpy generators (``default_rng``,
  ``RandomState``, ``SeedSequence``) or drawing from the global numpy
  RNG anywhere but :mod:`repro.sim.rng`: every generator must trace to
  a seeded ``RngRegistry.stream`` / ``derived_stream`` so streams stay
  independent and replayable;
- **SIM004** — iterating an unordered ``set`` where the iteration
  order is observable (``for`` loops, comprehensions, ``list()``/
  ``join()`` materialization): order depends on ``PYTHONHASHSEED``,
  the classic source of cross-process replay divergence.  Reduce with
  ``sorted()`` (or an order-insensitive fold) instead.
"""

from __future__ import annotations

import ast
from typing import Optional

from repro.analysis.simlint.engine import rule

_DOCS = {
    "SIM001": "stdlib random import (use sim/rng.py named streams)",
    "SIM002": "wall-clock or host-entropy read (use env.now / seeds)",
    "SIM003": "ad-hoc RNG construction outside sim/rng.py",
    "SIM004": "unordered set iteration with observable order",
}

#: run-to-run varying stdlib calls (fully-qualified after alias
#: resolution).
_WALL_CLOCK = {
    "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
    "os.urandom", "os.getrandom",
    "uuid.uuid1", "uuid.uuid4",
    "secrets.token_bytes", "secrets.token_hex", "secrets.token_urlsafe",
    "secrets.randbits", "secrets.randbelow", "secrets.choice",
}

#: numpy generator constructors — legal only inside sim/rng.py.
_RNG_CONSTRUCTORS = {
    "numpy.random.default_rng", "numpy.random.RandomState",
    "numpy.random.Generator", "numpy.random.SeedSequence",
    "numpy.random.PCG64", "numpy.random.Philox", "numpy.random.MT19937",
    "random.Random", "random.SystemRandom",
}

#: module-level draws against numpy's hidden global generator.
_GLOBAL_DRAWS = {
    "rand", "randn", "randint", "random", "random_sample", "ranf",
    "sample", "choice", "shuffle", "permutation", "uniform", "normal",
    "standard_normal", "exponential", "poisson", "bytes", "seed",
}

#: builtins whose result is insensitive to argument order — a set
#: flowing into these is fine.
_ORDER_INSENSITIVE_CALLS = {
    "sorted", "len", "sum", "min", "max", "any", "all", "set",
    "frozenset", "bool",
}

#: builtins that materialize their argument's iteration order.
_ORDER_MATERIALIZING_CALLS = {"list", "tuple", "enumerate", "iter",
                              "next", "zip", "map", "filter"}


class _ImportMap:
    """name bound in the module -> fully qualified dotted origin."""

    def __init__(self, tree: ast.Module) -> None:
        self.aliases: dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    bound = alias.asname or alias.name.split(".")[0]
                    # ``import a.b`` binds ``a``; ``import a.b as c``
                    # binds ``c`` to ``a.b``.
                    origin = alias.name if alias.asname else \
                        alias.name.split(".")[0]
                    self.aliases[bound] = origin
            elif isinstance(node, ast.ImportFrom) and node.module \
                    and node.level == 0:
                for alias in node.names:
                    bound = alias.asname or alias.name
                    self.aliases[bound] = f"{node.module}.{alias.name}"

    def resolve(self, node: ast.AST) -> Optional[str]:
        """Fully-qualified dotted name of *node*, if resolvable."""
        parts = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        base = self.aliases.get(node.id, node.id)
        parts.append(base)
        return ".".join(reversed(parts))


def _is_set_expr(node: ast.AST, set_names: set[str],
                 attr_sets: set[str] = frozenset()) -> bool:
    """Is *node* statically a ``set``?"""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name) \
            and node.func.id in ("set", "frozenset"):
        return True
    if isinstance(node, ast.Name) and node.id in set_names:
        return True
    if isinstance(node, ast.Attribute) and node.attr in attr_sets \
            and isinstance(node.value, ast.Name) \
            and node.value.id == "self":
        return True
    if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)):
        # set algebra stays a set when either side is known to be one
        return (_is_set_expr(node.left, set_names, attr_sets)
                and _is_set_expr(node.right, set_names, attr_sets))
    return False


def _local_set_names(func: ast.AST) -> set[str]:
    """Names assigned exactly set-typed values throughout *func*."""
    assigned: dict[str, bool] = {}
    for node in ast.walk(func):
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets = [node.target]
        else:
            continue
        for target in targets:
            if not isinstance(target, ast.Name):
                continue
            is_set = _is_set_expr(node.value, set())
            prior = assigned.get(target.id)
            assigned[target.id] = is_set if prior is None \
                else (prior and is_set)
    return {name for name, is_set in assigned.items() if is_set}


def _class_attr_sets(cls: ast.ClassDef) -> set[str]:
    """``self.x`` attributes only ever assigned set expressions."""
    assigned: dict[str, bool] = {}
    ann_sets = set()
    for node in ast.walk(cls):
        if isinstance(node, ast.AnnAssign) and node.value is None \
                and isinstance(node.target, ast.Name):
            # class-body annotation like ``partitioned: set = ...``
            # handled below when it has a value; bare annotations with
            # a set type hint count as intent.
            ann = ast.unparse(node.annotation) if hasattr(
                ast, "unparse") else ""
            if ann.startswith(("set", "frozenset")):
                ann_sets.add(node.target.id)
            continue
        if isinstance(node, ast.Assign):
            targets = node.targets
            value = node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets = [node.target]
            value = node.value
        elif isinstance(node, ast.AugAssign):
            # ``self.x |= ...`` keeps set-ness; ignore for inference
            continue
        else:
            continue
        for target in targets:
            if isinstance(target, ast.Attribute) and \
                    isinstance(target.value, ast.Name) and \
                    target.value.id == "self":
                is_set = _is_set_expr(value, set())
                prior = assigned.get(target.attr)
                assigned[target.attr] = is_set if prior is None \
                    else (prior and is_set)
            elif isinstance(target, ast.Name) and \
                    _is_set_expr(value, set()):
                # dataclass-style ``field: set = field(...)`` is rare;
                # skip rather than guess.
                pass
    return {name for name, is_set in assigned.items()
            if is_set} | ann_sets


@rule(docs=_DOCS)
def check_determinism(source, config, sink) -> None:
    if config.is_rng_module(source):
        return
    imports = _ImportMap(source.tree)

    # SIM001 — the import itself, so one finding per module.
    for node in ast.walk(source.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "random" or \
                        alias.name.startswith("random."):
                    sink.error(
                        "SIM001", node,
                        "stdlib 'random' is process-global state; draw "
                        "from a named RngRegistry stream "
                        "(repro.sim.rng) instead")
        elif isinstance(node, ast.ImportFrom):
            if node.level == 0 and node.module and \
                    node.module.split(".")[0] == "random":
                sink.error(
                    "SIM001", node,
                    "stdlib 'random' is process-global state; draw "
                    "from a named RngRegistry stream (repro.sim.rng) "
                    "instead")

    # SIM002 / SIM003 — call sites.
    for node in ast.walk(source.tree):
        if not isinstance(node, ast.Call):
            continue
        fqn = imports.resolve(node.func)
        if fqn is None:
            continue
        if fqn in _WALL_CLOCK:
            sink.error(
                "SIM002", node,
                f"{fqn}() varies run to run; simulations must read "
                f"env.now and derive identity from seeds")
        elif fqn in _RNG_CONSTRUCTORS:
            sink.error(
                "SIM003", node,
                f"{fqn}() constructed outside repro.sim.rng; obtain "
                f"generators via RngRegistry.stream()/derived_stream() "
                f"so every draw traces to the root seed")
        elif fqn.startswith("numpy.random.") and \
                fqn.rsplit(".", 1)[1] in _GLOBAL_DRAWS:
            sink.error(
                "SIM003", node,
                f"{fqn}() draws from numpy's hidden global generator; "
                f"obtain generators via RngRegistry.stream()/"
                f"derived_stream()")

    # SIM004 — observable set iteration order.  Each function is its
    # own scope for local set-name tracking; methods additionally see
    # their class's set-typed ``self.`` attributes; nested functions
    # are visited in their own pass, not their parent's.
    _check_sets_in(source.tree, set(), sink)
    for cls in ast.walk(source.tree):
        if isinstance(cls, ast.ClassDef):
            attr_sets = _class_attr_sets(cls)
            for func in cls.body:
                if isinstance(func, (ast.FunctionDef,
                                     ast.AsyncFunctionDef)):
                    _check_sets_in(func, attr_sets, sink)
    for func in ast.walk(source.tree):
        if isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
            parents = getattr(func, "_simlint_visited", False)
            if not parents:
                _check_sets_in(func, set(), sink)


def _check_sets_in(scope: ast.AST, attr_sets: set[str], sink) -> None:
    if getattr(scope, "_simlint_visited", False):
        return
    scope._simlint_visited = True
    set_names = _local_set_names(scope) \
        if not isinstance(scope, ast.Module) else set()
    # comprehensions whose whole result feeds an order-insensitive
    # call (sorted, sum, set...) are fine regardless of source order.
    blessed: set[int] = set()
    for node in _walk_scope(scope):
        if isinstance(node, ast.Call):
            func = node.func
            name = func.id if isinstance(func, ast.Name) else None
            if name in _ORDER_INSENSITIVE_CALLS:
                for arg in node.args:
                    blessed.add(id(arg))
    for node in _walk_scope(scope):
        _check_set_iteration(node, set_names, attr_sets, blessed, sink)


def _walk_scope(scope: ast.AST):
    """Descendants of *scope*'s body, not entering nested functions."""
    stack = list(ast.iter_child_nodes(scope))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


def _check_set_iteration(node: ast.AST, set_names: set[str],
                         attr_sets: set[str], blessed: set[int],
                         sink) -> None:
    def is_set(expr):
        return _is_set_expr(expr, set_names, attr_sets)

    if isinstance(node, ast.For) and is_set(node.iter):
        sink.warning(
            "SIM004", node.iter,
            "iterating a set exposes hash order "
            "(PYTHONHASHSEED-dependent); iterate sorted(...) or use an "
            "order-insensitive reduction")
    elif isinstance(node, (ast.ListComp, ast.GeneratorExp,
                           ast.DictComp)):
        if id(node) in blessed:
            return
        for comp in node.generators:
            if is_set(comp.iter):
                sink.warning(
                    "SIM004", comp.iter,
                    "comprehension over a set exposes hash order "
                    "(PYTHONHASHSEED-dependent); wrap the source in "
                    "sorted(...)")
    elif isinstance(node, ast.Call):
        func = node.func
        name = func.id if isinstance(func, ast.Name) else \
            func.attr if isinstance(func, ast.Attribute) else None
        if name in _ORDER_MATERIALIZING_CALLS or name == "join":
            for arg in node.args:
                if is_set(arg) and id(arg) not in blessed:
                    sink.warning(
                        "SIM004", arg,
                        f"{name}() materializes set hash order "
                        f"(PYTHONHASHSEED-dependent); sort first")

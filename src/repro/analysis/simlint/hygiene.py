"""SIM030- metric/trace name hygiene.

Benchmarks, invariant monitors and dashboards read metrics *by name*;
a typo'd emit site doesn't fail — it silently splits a series in two
("supervisor.recoverys" fills while the monitor watches
``supervisor.recoveries`` forever at zero).  The cure is a single
declared-names registry, :mod:`repro.obs.names`; these passes pin
every emit site to it:

- **SIM030** — a metric name passed as a string literal (or an
  f-string with dynamic segments) to ``counter``/``histogram``/
  ``series``/``add_labelled``/... must be declared;
- **SIM031** — ditto span labels passed to ``span``/``start_span``.

F-strings are canonicalized with ``*`` standing for each dynamic
segment (``f"chaos.action.{kind}"`` → ``chaos.action.*``) and must
match a declared *pattern* verbatim.  References to named constants
(``names.SUPERVISOR_RECOVERIES``) are accepted by construction — a
single definition point cannot drift.
"""

from __future__ import annotations

import ast

from repro.analysis.simlint.engine import rule

_DOCS = {
    "SIM030": "metric name literal not declared in repro.obs.names",
    "SIM031": "span label literal not declared in repro.obs.names",
}


def canonical_name(node: ast.AST) -> str | None:
    """The name argument as a literal or ``*``-canonical pattern.

    Returns ``None`` for arguments that are not (f-)string literals —
    constant references and computed names are out of scope here.
    """
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    if isinstance(node, ast.JoinedStr):
        parts = []
        for value in node.values:
            if isinstance(value, ast.Constant):
                parts.append(str(value.value))
            else:
                if parts and parts[-1] == "*":
                    continue      # collapse adjacent placeholders
                parts.append("*")
        name = "".join(parts)
        return None if name == "*" else name
    return None


@rule(docs=_DOCS)
def check_name_hygiene(source, config, sink) -> None:
    if source.matches(config.names_exempt_modules):
        return
    # Deferred so the analyzer can lint trees that don't ship an
    # obs.names (unit-test fixtures monkeypatch these).
    from repro.obs import names as declared

    for node in ast.walk(source.tree):
        if not isinstance(node, ast.Call) or \
                not isinstance(node.func, ast.Attribute) or not node.args:
            continue
        method = node.func.attr
        if method in config.metric_methods:
            name = canonical_name(node.args[0])
            if name is not None and not declared.metric_declared(name):
                sink.error(
                    "SIM030", node,
                    f"metric name {name!r} is not declared in "
                    f"repro.obs.names; declare it (or fix the typo) so "
                    f"readers and emitters cannot drift apart")
        elif method in config.span_methods:
            name = canonical_name(node.args[0])
            if name is not None and not declared.span_declared(name):
                sink.error(
                    "SIM031", node,
                    f"span label {name!r} is not declared in "
                    f"repro.obs.names; declare it (or fix the typo) so "
                    f"trace queries cannot drift from emit sites")

"""SIM020- paired-effect rules.

A chaos campaign's cleanliness contract is that every fault it injects
is undone before quiescence checks run; a registry ring's contract is
that staged membership intent never leaks out of the function that
staged it.  Both are "effect A requires paired effect B" shapes a
static pass can hold the line on:

- **SIM020** — a fault installer (``act_*`` in an action module) must
  define a ``revert`` closure and hand it back with every successful
  return; an installer returning a fault without its undo leaves the
  world dirty for every later campaign in the process;
- **SIM021** — after ``stage_add``/``stage_remove`` on a ring, every
  path to the end of the function must pass ``rebalance()`` (or
  ``cancel_staged()``); a return with staged-but-unapplied membership
  leaves lookups answering from a ring that silently disagrees with
  the membership the caller thinks it installed.  Paths that *raise*
  are exempt — an exception visibly aborts the change.
"""

from __future__ import annotations

import ast

from repro.analysis.simlint.engine import rule

_DOCS = {
    "SIM020": "fault installer without a returned revert closure",
    "SIM021": "stage_add/stage_remove not rebalanced on every path",
}

_STAGE_CALLS = {"stage_add", "stage_remove"}
_SETTLE_CALLS = {"rebalance", "cancel_staged"}


def _walk_scope(scope: ast.AST):
    stack = list(ast.iter_child_nodes(scope))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


def _call_name(node: ast.AST) -> str:
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Attribute):
            return func.attr
        if isinstance(func, ast.Name):
            return func.id
    return ""


def _returns_revert(node: ast.Return) -> bool:
    """Does the returned expression reference a name ``revert``?"""
    if node.value is None:
        return False
    for sub in ast.walk(node.value):
        if isinstance(sub, ast.Name) and sub.id == "revert":
            return True
    return False


def _is_none_return(node: ast.Return) -> bool:
    return node.value is None or (
        isinstance(node.value, ast.Constant) and node.value.value is None)


@rule(docs=_DOCS)
def check_paired_effects(source, config, sink) -> None:
    # SIM020 — only in designated action modules.
    if config.is_action_module(source):
        for func in source.tree.body:
            if not isinstance(func, ast.FunctionDef):
                continue
            if not func.name.startswith(config.action_prefix):
                continue
            has_revert = any(
                isinstance(node, ast.FunctionDef)
                and node.name == "revert"
                for node in ast.walk(func))
            applied_returns = [
                node for node in _walk_scope(func)
                if isinstance(node, ast.Return)
                and not _is_none_return(node)]
            if not has_revert and applied_returns:
                sink.error(
                    "SIM020", func,
                    f"fault installer {func.name}() applies a fault "
                    f"but defines no revert closure; campaigns cannot "
                    f"undo it before quiescence checks")
                continue
            for node in applied_returns:
                if not _returns_revert(node):
                    sink.error(
                        "SIM020", node,
                        f"{func.name}() returns an applied fault "
                        f"without its revert closure; include "
                        f"'revert' in the returned tuple")

    # SIM021 — anywhere: staged ring changes must settle in-function.
    for func in ast.walk(source.tree):
        if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if any(_call_name(node) in _STAGE_CALLS
               for node in _walk_scope(func)):
            for call in _pending_at_exit(func):
                sink.error(
                    "SIM021", call,
                    f"{_call_name(call)}() is staged but some path "
                    f"reaches the end of {func.name}() without "
                    f"rebalance()/cancel_staged(); lookups would keep "
                    f"answering from the stale ring")


def _pending_at_exit(func: ast.AST) -> list[ast.Call]:
    """Stage calls that can reach a (non-raising) function exit
    without a settle call on the way.

    A small path-insensitive-within-expressions, path-sensitive-across-
    statements walk: ``pending`` is the set of stage-call nodes not yet
    settled on the current path; branches fork it, loop bodies are
    analyzed once (a settle after the loop still clears staging done
    inside it).
    """
    escaped: list[ast.Call] = []
    seen_escaped: set[int] = set()

    def mark(pending: set[ast.Call]) -> None:
        for call in pending:
            if id(call) not in seen_escaped:
                seen_escaped.add(id(call))
                escaped.append(call)

    def expr_effects(node: ast.AST, pending: set) -> None:
        """Apply stage/settle calls appearing in one expression."""
        for sub in ast.walk(node):
            if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef,
                                ast.Lambda)):
                continue
            name = _call_name(sub)
            if name in _SETTLE_CALLS:
                pending.clear()
            elif name in _STAGE_CALLS:
                pending.add(sub)

    def run(body: list, pending: set) -> tuple[set, bool]:
        """Analyze a statement list; returns (pending at fall-through,
        reachable) where reachable=False means every path returned or
        raised."""
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
                continue
            if isinstance(stmt, ast.Return):
                expr_effects(stmt, pending)
                mark(pending)
                return set(), False
            if isinstance(stmt, (ast.Raise, ast.Continue, ast.Break)):
                # raising aborts the change visibly; break/continue
                # stay within the function, approximate as fall-through
                if isinstance(stmt, ast.Raise):
                    return set(), False
                continue
            if isinstance(stmt, ast.If):
                expr_effects(stmt.test, pending)
                p_then, r_then = run(stmt.body, set(pending))
                p_else, r_else = run(stmt.orelse, set(pending))
                if not r_then and not r_else:
                    return set(), False
                pending = (p_then if r_then else set()) | \
                    (p_else if r_else else set())
                continue
            if isinstance(stmt, (ast.For, ast.While)):
                if isinstance(stmt, ast.For):
                    expr_effects(stmt.iter, pending)
                else:
                    expr_effects(stmt.test, pending)
                p_body, _ = run(stmt.body, set(pending))
                pending = pending | p_body
                p_else, r_else = run(stmt.orelse, set(pending))
                if r_else:
                    pending = p_else
                continue
            if isinstance(stmt, ast.Try):
                p_body, r_body = run(stmt.body, set(pending))
                merged = p_body if r_body else set()
                reachable = r_body
                for handler in stmt.handlers:
                    # handlers may run with any prefix of the body
                    # executed; start them from the pre-try state plus
                    # whatever the body staged.
                    p_h, r_h = run(handler.body, pending | p_body)
                    if r_h:
                        merged |= p_h
                        reachable = True
                p_final, r_final = run(stmt.finalbody, set(merged))
                if stmt.finalbody:
                    merged, reachable = p_final, r_final and reachable
                pending = merged
                if not reachable:
                    return set(), False
                continue
            if isinstance(stmt, ast.With):
                for item in stmt.items:
                    expr_effects(item.context_expr, pending)
                pending, reachable = run(stmt.body, pending)
                if not reachable:
                    return set(), False
                continue
            expr_effects(stmt, pending)
        return pending, True

    pending, reachable = run(list(func.body), set())
    if reachable:
        mark(pending)
    return escaped

"""The deployment gate: static verification before the planner runs.

Opt-in bridge between the static verifier and the run-time
:class:`~repro.deployment.application.Deployer`.  The gate builds an
:class:`ApplicationModel` from the packages the target nodes actually
hold (their bundled IDL plus the process-wide interface repository,
since compiled stubs may ship no IDL text), verifies the assembly, and
raises :class:`AssemblyRejected` — carrying every finding — before a
single instance is incarnated.

The deployer keeps no import on this module; it accepts any object with
the gate's ``check(assembly, nodes)`` signature, so the dependency
points analysis → deployment-free and the gate stays optional.
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.findings import Diagnostics, Finding
from repro.analysis.verifier import model_from_packages, verify_model
from repro.util.errors import ValidationError
from repro.xmlmeta.descriptors import AssemblyDescriptor


class AssemblyRejected(ValidationError):
    """Static verification refused an assembly; findings attached."""

    def __init__(self, assembly_name: str, findings: list[Finding]) -> None:
        self.assembly_name = assembly_name
        self.findings = list(findings)
        errors = [f for f in self.findings if int(f.severity) >= 2]
        lines = "; ".join(f"{f.code} {f.message}" for f in errors[:5])
        more = f" (+{len(errors) - 5} more)" if len(errors) > 5 else ""
        super().__init__(
            f"assembly {assembly_name!r} rejected by static verification: "
            f"{lines}{more}")


class DeploymentGate:
    """Verifies assemblies against the packages live nodes hold.

    ``strict_interfaces`` defaults to off: at run time, interfaces may
    exist only as compiled stubs in the interface repository, so an
    unresolved repo-id is not proof of error the way it is for the lint
    CLI, which sees all the IDL there is.
    """

    def __init__(self, strict_interfaces: bool = False,
                 use_ifr: bool = True) -> None:
        self.strict_interfaces = strict_interfaces
        self.use_ifr = use_ifr

    # -- package collection ---------------------------------------------------
    @staticmethod
    def packages_on(nodes) -> list:
        """Every distinct package installed across *nodes*' repositories."""
        out = []
        seen: set[tuple[str, str]] = set()
        for node in nodes.values():
            for cls in node.repository.classes():
                key = (cls.package.name, str(cls.package.version))
                if key not in seen:
                    seen.add(key)
                    out.append(cls.package)
        return out

    # -- verification ---------------------------------------------------------
    def verify(self, assembly: AssemblyDescriptor,
               nodes) -> Diagnostics:
        """All findings for *assembly* against *nodes*' package sets."""
        ifr = None
        if self.use_ifr:
            from repro.orb.dii import GLOBAL_IFR
            ifr = GLOBAL_IFR
        model = model_from_packages(self.packages_on(nodes),
                                    assembly=assembly, ifr=ifr)
        return verify_model(model,
                            strict_interfaces=self.strict_interfaces)

    def check(self, assembly: AssemblyDescriptor, nodes,
              metrics=None) -> Diagnostics:
        """Verify; raise :class:`AssemblyRejected` on any error finding.

        Warnings and infos pass — the gate blocks only on findings that
        would make the deployment wrong, not merely suspicious.  When
        *metrics* is given, rejections count on ``analysis.rejected``.
        """
        diag = self.verify(assembly, nodes)
        if diag.has_errors():
            if metrics is not None:
                metrics.counter("analysis.rejected").inc()
            raise AssemblyRejected(assembly.name, diag.sorted())
        return diag

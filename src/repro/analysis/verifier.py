"""The three layers composed: verify a whole application model.

An :class:`ApplicationModel` is everything the static verifier can see
about an application before deployment — IDL sources, the package set
(software + component-type descriptor pairs), and zero or more assembly
descriptors.  :func:`verify_model` runs layer 1 over every IDL source,
merges the interface graphs, then cross-checks descriptors (layer 2)
and assemblies (layer 3) against them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.analysis.assembly import check_assembly
from repro.analysis.descriptors import PackageSet, check_package_set
from repro.analysis.findings import Diagnostics
from repro.analysis.idlcheck import InterfaceGraph, check_specification
from repro.idl import IdlLexError, IdlSyntaxError, parse
from repro.xmlmeta.descriptors import AssemblyDescriptor


@dataclass
class ApplicationModel:
    """Everything the verifier can see about one application."""

    #: source label -> IDL text
    idl_sources: dict[str, str] = field(default_factory=dict)
    packages: PackageSet = field(default_factory=PackageSet)
    #: (source label, descriptor) pairs
    assemblies: list[tuple[str, AssemblyDescriptor]] = \
        field(default_factory=list)
    #: interfaces known out-of-band (e.g. a live interface repository)
    seed_graph: Optional[InterfaceGraph] = None

    def add_idl(self, source: str, text: str) -> None:
        self.idl_sources[source] = text

    def add_assembly(self, assembly: AssemblyDescriptor,
                     source: str = "") -> None:
        self.assemblies.append((source or f"assembly {assembly.name}",
                                assembly))


def model_from_packages(packages, assembly: Optional[AssemblyDescriptor]
                        = None, ifr=None) -> ApplicationModel:
    """Build a model from live :class:`ComponentPackage` objects.

    *packages* is any iterable of component packages (e.g. drawn from
    node repositories); their bundled IDL sources feed layer 1.  When
    *ifr* is given, interfaces registered there (compiled stubs that
    ship no IDL text) seed the graph too.
    """
    model = ApplicationModel()
    seen_idl: set[str] = set()
    seen_pkg: set[tuple[str, str]] = set()
    for package in packages:
        key = (package.name, str(package.version))
        if key in seen_pkg:
            continue
        seen_pkg.add(key)
        model.packages.add_package(package)
        for path, text in sorted(package.idl_sources().items()):
            if text in seen_idl:
                continue
            seen_idl.add(text)
            model.add_idl(f"{package.name}:{path}", text)
    if ifr is not None:
        model.seed_graph = InterfaceGraph.from_ifr(ifr)
    if assembly is not None:
        model.add_assembly(assembly)
    return model


def verify_model(model: ApplicationModel,
                 diag: Optional[Diagnostics] = None,
                 strict_interfaces: bool = True) -> Diagnostics:
    """Run all three layers over *model*, returning the diagnostics.

    With ``strict_interfaces=False`` (the deployer gate's mode, where
    compiled stubs may carry interfaces no IDL text describes), port
    repo-ids that resolve nowhere are reported as info instead of
    errors, and connections between unprovable interfaces pass.
    """
    diag = diag if diag is not None else Diagnostics()

    graph = InterfaceGraph()
    if model.seed_graph is not None:
        graph.merge(model.seed_graph)
    for source in sorted(model.idl_sources):
        text = model.idl_sources[source]
        try:
            spec = parse(text)
        except (IdlSyntaxError, IdlLexError) as exc:
            diag.error("IDL000", source, f"does not parse: {exc}")
            continue
        checked = check_specification(spec, diag, source=source)
        graph.merge(checked.graph)

    check_package_set(model.packages, graph, diag,
                      strict_interfaces=strict_interfaces)

    for source, assembly in model.assemblies:
        check_assembly(assembly, model.packages, graph, diag,
                       source=source, strict_interfaces=strict_interfaces)
    return diag

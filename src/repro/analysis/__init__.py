"""Static verification of CORBA-LC applications before deployment.

Three layers over one diagnostics engine:

1. :mod:`repro.analysis.idlcheck` — semantic checks on parsed IDL and
   the interface-inheritance graph / subtype oracle (``IDL0xx`` codes).
2. :mod:`repro.analysis.descriptors` — descriptor-vs-IDL and
   descriptor-vs-package-set cross-checks (``CMP0xx`` codes).
3. :mod:`repro.analysis.assembly` — whole-application wiring checks
   over assembly descriptors (``ASM0xx`` codes).

:mod:`repro.analysis.verifier` composes them over an
:class:`ApplicationModel`; :mod:`repro.analysis.gate` adapts that to
the run-time deployer; :mod:`repro.tools.lint` is the command-line
front end.  Schema-level XML violations surface as ``SCH001`` findings
via :mod:`repro.xmlmeta.schema`.
"""

from repro.analysis.assembly import check_assembly
from repro.analysis.descriptors import (
    KNOWN_FRAMEWORK_SERVICES,
    PackageInfo,
    PackageSet,
    check_component_type,
    check_package_set,
    check_software,
)
from repro.analysis.findings import Diagnostics, Finding, Severity
from repro.analysis.gate import AssemblyRejected, DeploymentGate
from repro.analysis.idlcheck import (
    CheckedSpec,
    InterfaceGraph,
    InterfaceInfo,
    check_specification,
)
from repro.analysis.verifier import (
    ApplicationModel,
    model_from_packages,
    verify_model,
)

__all__ = [
    "ApplicationModel",
    "AssemblyRejected",
    "CheckedSpec",
    "DeploymentGate",
    "Diagnostics",
    "Finding",
    "InterfaceGraph",
    "InterfaceInfo",
    "KNOWN_FRAMEWORK_SERVICES",
    "PackageInfo",
    "PackageSet",
    "Severity",
    "check_assembly",
    "check_component_type",
    "check_package_set",
    "check_software",
    "check_specification",
    "model_from_packages",
    "verify_model",
]

"""Layer 3: whole-application checks over an assembly descriptor.

An assembly names instances of packaged components and wires their
ports; this layer proves the wiring diagram is realisable *before* the
planner spreads it over live nodes: every instance must resolve to a
package, every connection endpoint must name a declared port of the
right direction, interface connections must be type-compatible under
the layer-1 subtype oracle, and event connections must agree on the
event kind.

======== ==================================================================
code     meaning
======== ==================================================================
ASM001   instance names a component no package provides
ASM002   instance version range unsatisfiable against the package set
ASM003   duplicate instance name
ASM004   connection endpoint names an undeclared instance
ASM005   connection endpoint names a port the component lacks
ASM006   connection endpoint uses a port in the wrong direction/kind
ASM007   provided interface is not a subtype of the used interface
ASM008   event connection between ports of different event kinds
ASM009   dependency cycle across interface connections (warning)
ASM010   required (non-optional) receptacle left unconnected (warning)
======== ==================================================================
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.descriptors import PackageInfo, PackageSet
from repro.analysis.findings import Diagnostics
from repro.analysis.idlcheck import InterfaceGraph
from repro.xmlmeta.descriptors import AssemblyDescriptor


def _port(component, name: str):
    """(category, port) for *name* across all four port lists, or None."""
    for category, ports in (("provides", component.provides),
                            ("uses", component.uses),
                            ("emits", component.emits),
                            ("consumes", component.consumes)):
        for port in ports:
            if port.name == name:
                return category, port
    return None


def check_assembly(assembly: AssemblyDescriptor,
                   packages: PackageSet,
                   graph: InterfaceGraph,
                   diag: Diagnostics,
                   source: str = "",
                   strict_interfaces: bool = True) -> None:
    """Check *assembly* against the package set and interface graph."""
    where = source or f"assembly {assembly.name}"

    # -- instances ----------------------------------------------------------
    resolved: dict[str, Optional[PackageInfo]] = {}
    seen_names: set[str] = set()
    for inst in assembly.instances:
        if inst.name in seen_names:
            diag.error("ASM003", where,
                       f"duplicate instance name {inst.name!r}")
        seen_names.add(inst.name)
        if inst.component not in packages:
            diag.error(
                "ASM001", where,
                f"instance {inst.name!r}: no package provides component "
                f"{inst.component!r} (known: "
                f"{', '.join(packages.names()) or 'none'})")
            resolved[inst.name] = None
            continue
        if inst.versions.is_empty():
            diag.error(
                "ASM002", where,
                f"instance {inst.name!r}: version range "
                f"{inst.versions.text!r} for {inst.component!r} is empty")
            resolved[inst.name] = None
            continue
        info = packages.resolve(inst.component, inst.versions)
        if info is None:
            available = [str(v) for v in
                         packages.versions_of(inst.component)]
            diag.error(
                "ASM002", where,
                f"instance {inst.name!r}: no version of "
                f"{inst.component!r} satisfies {inst.versions} "
                f"(available: {', '.join(available)})")
        resolved[inst.name] = info

    # -- connections --------------------------------------------------------
    wired_receptacles: set[tuple[str, str]] = set()
    dep_edges: dict[str, set[str]] = {}
    for conn in assembly.connections:
        label = (f"connection {conn.from_instance}.{conn.from_port} -> "
                 f"{conn.to_instance}.{conn.to_port}")
        endpoints = []
        dangling = False
        for inst_name, port_name, role in (
                (conn.from_instance, conn.from_port, "from"),
                (conn.to_instance, conn.to_port, "to")):
            if inst_name not in resolved:
                diag.error("ASM004", where,
                           f"{label}: {role}-endpoint names undeclared "
                           f"instance {inst_name!r}")
                dangling = True
                continue
            info = resolved[inst_name]
            if info is None:
                dangling = True     # ASM001/ASM002 already reported
                continue
            found = _port(info.component, port_name)
            if found is None:
                diag.error(
                    "ASM005", where,
                    f"{label}: component {info.name!r} has no port "
                    f"{port_name!r}")
                dangling = True
                continue
            endpoints.append((inst_name, info, found))
        if dangling or len(endpoints) != 2:
            continue

        (f_inst, f_info, (f_cat, f_port)) = endpoints[0]
        (t_inst, t_info, (t_cat, t_port)) = endpoints[1]

        if conn.kind == "interface":
            ok = True
            if f_cat != "uses":
                diag.error(
                    "ASM006", where,
                    f"{label}: from-port {conn.from_port!r} is a "
                    f"{f_cat} port, expected a receptacle (uses)")
                ok = False
            if t_cat != "provides":
                diag.error(
                    "ASM006", where,
                    f"{label}: to-port {conn.to_port!r} is a "
                    f"{t_cat} port, expected a facet (provides)")
                ok = False
            if ok:
                wired_receptacles.add((f_inst, conn.from_port))
                dep_edges.setdefault(f_inst, set()).add(t_inst)
                used, provided = f_port.repo_id, t_port.repo_id
                if used != provided:
                    known = used in graph and provided in graph
                    if known and not graph.is_subtype(provided, used):
                        diag.error(
                            "ASM007", where,
                            f"{label}: provided interface {provided!r} is "
                            f"not a subtype of the receptacle's expected "
                            f"interface {used!r}")
                    elif not known and strict_interfaces:
                        diag.error(
                            "ASM007", where,
                            f"{label}: cannot prove {provided!r} "
                            f"compatible with {used!r} (interface not "
                            f"declared in any IDL source)")
        else:  # event
            ok = True
            if f_cat != "consumes":
                diag.error(
                    "ASM006", where,
                    f"{label}: from-port {conn.from_port!r} is a "
                    f"{f_cat} port, expected an event sink (consumes)")
                ok = False
            if t_cat != "emits":
                diag.error(
                    "ASM006", where,
                    f"{label}: to-port {conn.to_port!r} is a "
                    f"{t_cat} port, expected an event source (emits)")
                ok = False
            if ok and f_port.event_kind != t_port.event_kind:
                diag.error(
                    "ASM008", where,
                    f"{label}: sink consumes kind "
                    f"{f_port.event_kind!r} but source emits "
                    f"{t_port.event_kind!r}")

    # -- whole-graph checks -------------------------------------------------
    for cycle in _cycles(dep_edges):
        diag.warning(
            "ASM009", where,
            f"dependency cycle across connections: "
            f"{' -> '.join(cycle)} -> {cycle[0]} (deployment order is "
            f"unconstrained; startup may observe unwired receptacles)")

    for inst in assembly.instances:
        info = resolved.get(inst.name)
        if info is None:
            continue
        for port in info.component.uses:
            if not port.optional and (inst.name,
                                      port.name) not in wired_receptacles:
                diag.warning(
                    "ASM010", where,
                    f"instance {inst.name!r}: required receptacle "
                    f"{port.name!r} ({port.repo_id}) is not connected")


def _cycles(edges: dict[str, set[str]]) -> list[list[str]]:
    """Distinct simple cycles in the instance dependency graph."""
    color: dict[str, int] = {}
    path: list[str] = []
    found: list[list[str]] = []
    reported: set[frozenset] = set()

    def visit(node: str) -> None:
        color[node] = 0
        path.append(node)
        for target in sorted(edges.get(node, ())):
            if target not in color:
                visit(target)
            elif color[target] == 0:
                cycle = path[path.index(target):]
                key = frozenset(cycle)
                if key not in reported:
                    reported.add(key)
                    found.append(list(cycle))
        path.pop()
        color[node] = 1

    for node in sorted(edges):
        if node not in color:
            visit(node)
    return found

"""The diagnostics engine all three verifier layers write into.

A :class:`Diagnostics` instance collects :class:`Finding`s across many
checks and sources, answers severity queries, and renders text/JSON
reports.  The layers never raise on a bad document — they emit findings
and keep going, so one lint run reports *everything* wrong with an
application at once.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.util.diagnostics import Finding, Severity, max_severity

__all__ = ["Diagnostics", "Finding", "Severity"]


class Diagnostics:
    """Accumulates findings; shared by every checker in one run."""

    def __init__(self) -> None:
        self.findings: list[Finding] = []

    # -- emission -----------------------------------------------------------
    def emit(self, code: str, severity: Severity, location: str,
             message: str) -> Finding:
        finding = Finding(code=code, severity=severity, location=location,
                          message=message)
        self.findings.append(finding)
        return finding

    def error(self, code: str, location: str, message: str) -> Finding:
        return self.emit(code, Severity.ERROR, location, message)

    def warning(self, code: str, location: str, message: str) -> Finding:
        return self.emit(code, Severity.WARNING, location, message)

    def info(self, code: str, location: str, message: str) -> Finding:
        return self.emit(code, Severity.INFO, location, message)

    def extend(self, findings: Iterable[Finding]) -> None:
        self.findings.extend(findings)

    # -- queries ------------------------------------------------------------
    @property
    def errors(self) -> list[Finding]:
        return [f for f in self.findings if f.severity == Severity.ERROR]

    @property
    def warnings(self) -> list[Finding]:
        return [f for f in self.findings if f.severity == Severity.WARNING]

    def has_errors(self) -> bool:
        return any(f.severity == Severity.ERROR for f in self.findings)

    def max_severity(self) -> int:
        """Highest severity seen, as the lint exit code (0 when clean)."""
        return max_severity(self.findings)

    def codes(self) -> set[str]:
        return {f.code for f in self.findings}

    def by_code(self, code: str) -> list[Finding]:
        return [f for f in self.findings if f.code == code]

    def sorted(self) -> list[Finding]:
        """Severity-descending, then by location/code — a stable report order."""
        return sorted(self.findings,
                      key=lambda f: (-int(f.severity), f.location, f.code,
                                     f.message))

    # -- rendering ----------------------------------------------------------
    def render_text(self) -> str:
        if not self.findings:
            return "no findings\n"
        lines = [f.render() for f in self.sorted()]
        lines.append(f"{len(self.findings)} finding(s): "
                     f"{len(self.errors)} error(s), "
                     f"{len(self.warnings)} warning(s)")
        return "\n".join(lines) + "\n"

    def as_dict(self) -> dict:
        return {
            "findings": [f.as_dict() for f in self.sorted()],
            "counts": {
                "total": len(self.findings),
                "errors": len(self.errors),
                "warnings": len(self.warnings),
            },
            "max_severity": self.max_severity(),
        }

    def __len__(self) -> int:
        return len(self.findings)

    def __iter__(self):
        return iter(self.findings)

    def __repr__(self) -> str:
        return (f"<Diagnostics {len(self.findings)} findings, "
                f"{len(self.errors)} errors>")

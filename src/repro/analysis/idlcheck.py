"""Layer 1: semantic checks over a parsed IDL specification.

The parser accepts anything grammatical; :func:`check_specification`
walks the AST the way codegen would and reports, as findings instead of
exceptions, everything that would make the specification meaningless or
ambiguous at run time:

======== ==================================================================
code     meaning
======== ==================================================================
IDL001   undefined name (type/exception reference does not resolve)
IDL002   duplicate declaration in one scope
IDL003   identifiers colliding case-insensitively (illegal in OMG IDL)
IDL004   oneway operation with a non-void result
IDL005   oneway operation with out/inout parameters
IDL006   oneway operation with a raises clause
IDL007   union discriminator type not integer/char/boolean/enum
IDL008   union case label incompatible with the discriminator type
IDL009   duplicate union case label
IDL010   union with multiple default arms
IDL011   struct/union/exception recursion without sequence indirection
IDL012   interface inheritance cycle
IDL013   interface base that is not an interface
IDL014   name used in the wrong role (exception as data type, ...)
======== ==================================================================

Checking also yields the specification's interface-inheritance graph
(:class:`InterfaceGraph`), whose :meth:`~InterfaceGraph.is_subtype`
oracle the descriptor and assembly layers use to prove port
compatibility.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.analysis.findings import Diagnostics
from repro.idl import idlast as ast

#: Discriminator base types a union may switch on.
_LEGAL_DISCRIMINATORS = {
    "short", "long", "long long",
    "unsigned short", "unsigned long", "unsigned long long",
    "char", "boolean",
}

#: Entry kinds that may appear where a data type is expected.
_TYPE_KINDS = {"struct", "union", "enum", "typedef", "interface"}


# ---------------------------------------------------------------------------
# Interface graph + subtype oracle
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class InterfaceInfo:
    """One declared interface: identity plus direct bases (repo ids)."""

    repo_id: str
    name: str
    qualified_name: str
    bases: tuple[str, ...] = ()
    line: int = 0
    source: str = ""


class InterfaceGraph:
    """Inheritance DAG over interface repository ids.

    Built by the IDL checker (and optionally seeded from a live
    :class:`~repro.orb.dii.InterfaceRepository`); powers the
    subtype-compatibility oracle the descriptor/assembly layers use.
    All traversals are cycle-safe so a malformed graph still answers
    queries instead of recursing forever.
    """

    def __init__(self) -> None:
        self._info: dict[str, InterfaceInfo] = {}

    def add(self, info: InterfaceInfo) -> None:
        self._info[info.repo_id] = info

    def add_interface(self, repo_id: str, name: str = "",
                      bases: Iterable[str] = ()) -> None:
        self.add(InterfaceInfo(repo_id=repo_id, name=name or repo_id,
                               qualified_name=name or repo_id,
                               bases=tuple(bases)))

    def merge(self, other: "InterfaceGraph") -> None:
        self._info.update(other._info)

    @classmethod
    def from_ifr(cls, ifr) -> "InterfaceGraph":
        """Seed a graph from a live interface repository's definitions."""
        graph = cls()

        def visit(iface) -> None:
            if iface.repo_id in graph:
                return
            graph.add_interface(iface.repo_id, iface.name,
                                [b.repo_id for b in iface.bases])
            for base in iface.bases:
                visit(base)

        for repo_id in ifr.ids():
            visit(ifr.lookup(repo_id))
        return graph

    # -- queries ------------------------------------------------------------
    def __contains__(self, repo_id: str) -> bool:
        return repo_id in self._info

    def __len__(self) -> int:
        return len(self._info)

    def ids(self) -> list[str]:
        return sorted(self._info)

    def info(self, repo_id: str) -> Optional[InterfaceInfo]:
        return self._info.get(repo_id)

    def ancestors(self, repo_id: str) -> set[str]:
        """All transitive base repo ids of *repo_id* (excluding itself)."""
        seen: set[str] = set()
        stack = list(self._info[repo_id].bases) if repo_id in self else []
        while stack:
            base = stack.pop()
            if base in seen:
                continue
            seen.add(base)
            info = self._info.get(base)
            if info is not None:
                stack.extend(info.bases)
        return seen

    def is_subtype(self, sub_id: str, sup_id: str) -> bool:
        """True iff *sub_id* equals or (transitively) inherits *sup_id*."""
        return sub_id == sup_id or sup_id in self.ancestors(sub_id)

    def cycles(self) -> list[list[str]]:
        """Inheritance cycles, each as the list of repo ids involved."""
        color: dict[str, int] = {}  # 0 in progress, 1 done
        path: list[str] = []
        found: list[list[str]] = []

        def visit(rid: str) -> None:
            color[rid] = 0
            path.append(rid)
            info = self._info.get(rid)
            for base in (info.bases if info else ()):
                if base not in color:
                    visit(base)
                elif color[base] == 0:
                    found.append(path[path.index(base):] + [base])
            path.pop()
            color[rid] = 1

        for rid in sorted(self._info):
            if rid not in color:
                visit(rid)
        return found


# ---------------------------------------------------------------------------
# Scopes and symbol entries
# ---------------------------------------------------------------------------

@dataclass
class _Entry:
    kind: str        # module | interface | struct | union | enum |
                     # typedef | exception | const | enum_label | operation
                     # | attribute
    name: str
    payload: object
    line: int
    scope: "_Scope"  # scope the entry was declared in (for resolution)


class _Scope:
    def __init__(self, name: str, parent: Optional["_Scope"],
                 checker: "_Checker") -> None:
        self.name = name
        self.parent = parent
        self.checker = checker
        self.entries: dict[str, _Entry] = {}
        self._ci: dict[str, str] = {}  # lowercased -> declared spelling

    def path(self) -> list[str]:
        parts: list[str] = []
        scope: Optional[_Scope] = self
        while scope is not None and scope.name:
            parts.append(scope.name)
            scope = scope.parent
        return list(reversed(parts))

    def qualified(self, name: str) -> str:
        return "::".join(self.path() + [name])

    def declare(self, name: str, kind: str, payload: object,
                line: int) -> _Entry:
        diag = self.checker.diag
        where = self.checker.loc(line)
        if name in self.entries:
            first = self.entries[name]
            diag.error("IDL002", where,
                       f"duplicate declaration of {self.qualified(name)!r} "
                       f"(first declared as {first.kind} on line "
                       f"{first.line})")
            return self.entries[name]
        low = name.lower()
        if low in self._ci and self._ci[low] != name:
            diag.error("IDL003", where,
                       f"{self.qualified(name)!r} collides "
                       f"case-insensitively with "
                       f"{self.qualified(self._ci[low])!r}")
        else:
            self._ci[low] = name
        entry = _Entry(kind=kind, name=name, payload=payload, line=line,
                       scope=self)
        self.entries[name] = entry
        return entry

    def find_local(self, name: str) -> Optional[_Entry]:
        return self.entries.get(name)

    def find(self, name: str) -> Optional[_Entry]:
        scope: Optional[_Scope] = self
        while scope is not None:
            entry = scope.entries.get(name)
            if entry is not None:
                return entry
            scope = scope.parent
        return None


# ---------------------------------------------------------------------------
# The checker
# ---------------------------------------------------------------------------

@dataclass
class CheckedSpec:
    """Result of checking one specification."""

    spec: ast.Specification
    graph: InterfaceGraph
    interfaces: dict[str, InterfaceInfo] = field(default_factory=dict)

    @property
    def repo_ids(self) -> set[str]:
        return set(self.interfaces)


class _Checker:
    def __init__(self, spec: ast.Specification, diag: Diagnostics,
                 source: str) -> None:
        self.spec = spec
        self.diag = diag
        self.source = source
        self.root = _Scope("", None, self)
        self.interfaces: dict[str, InterfaceInfo] = {}
        #: aggregate entries (struct/union/exception) for recursion checks
        self._aggregates: list[_Entry] = []

    def loc(self, line: int) -> str:
        return f"{self.source}:{line}" if line else self.source

    # -- repo ids ------------------------------------------------------------
    def _repo_id(self, scope: _Scope, name: str) -> str:
        parts = scope.path() + [name]
        if self.spec.prefix:
            parts = [self.spec.prefix] + parts
        return "IDL:" + "/".join(parts) + ":1.0"

    # -- resolution -----------------------------------------------------------
    def _resolve(self, scope: _Scope, named: ast.NamedType, line: int,
                 quiet: bool = False) -> Optional[_Entry]:
        first, *rest = named.parts
        entry = scope.find(first)
        if entry is None:
            if not quiet:
                self.diag.error("IDL001", self.loc(line),
                                f"undefined name {named.text!r}")
            return None
        for part in rest:
            if entry.kind != "module":
                if not quiet:
                    self.diag.error("IDL001", self.loc(line),
                                    f"{named.text!r}: {part!r} looked up "
                                    f"inside non-module {entry.name!r}")
                return None
            inner = entry.payload.find_local(part)  # payload is a _Scope
            if inner is None:
                if not quiet:
                    self.diag.error("IDL001", self.loc(line),
                                    f"undefined name {named.text!r}")
                return None
            entry = inner
        return entry

    def _check_type(self, scope: _Scope, texpr, line: int) -> None:
        """Emit findings for any reference in *texpr* that is not a type."""
        if isinstance(texpr, ast.PrimitiveType):
            return
        if isinstance(texpr, ast.SequenceType):
            self._check_type(scope, texpr.element, line)
            return
        if isinstance(texpr, ast.ArrayOf):
            self._check_type(scope, texpr.element, line)
            return
        if isinstance(texpr, ast.NamedType):
            entry = self._resolve(scope, texpr, line)
            if entry is not None and entry.kind not in _TYPE_KINDS:
                self.diag.error(
                    "IDL014", self.loc(line),
                    f"{texpr.text!r} is a(n) {entry.kind}, not a data type")
            return
        self.diag.error("IDL014", self.loc(line),
                        f"unsupported type expression {texpr!r}")

    def _base_of(self, scope: _Scope, texpr
                 ) -> tuple[str, Optional[_Entry]]:
        """Resolve *texpr* through typedef chains to its base kind.

        Returns ``('primitive', None)`` style pairs:
        kind in {'primitive:<name>', 'enum', 'struct', 'union',
        'interface', 'sequence', 'array', 'exception', 'unknown'}.
        """
        guard: set[int] = set()
        while True:
            if isinstance(texpr, ast.PrimitiveType):
                return f"primitive:{texpr.name}", None
            if isinstance(texpr, ast.SequenceType):
                return "sequence", None
            if isinstance(texpr, ast.ArrayOf):
                return "array", None
            if isinstance(texpr, ast.NamedType):
                entry = self._resolve(scope, texpr, 0, quiet=True)
                if entry is None:
                    return "unknown", None
                if entry.kind == "typedef":
                    if id(entry) in guard:
                        return "unknown", None
                    guard.add(id(entry))
                    scope, texpr = entry.scope, entry.payload
                    continue
                return entry.kind, entry
            return "unknown", None

    # -- walk ------------------------------------------------------------------
    def run(self) -> CheckedSpec:
        for node in self.spec.definitions:
            self._definition(self.root, node)
        self._check_recursion()
        graph = InterfaceGraph()
        for info in self.interfaces.values():
            graph.add(info)
        for cycle in graph.cycles():
            names = " -> ".join(
                (graph.info(rid).qualified_name if graph.info(rid) else rid)
                for rid in cycle)
            self.diag.error("IDL012", self.source,
                            f"interface inheritance cycle: {names}")
        return CheckedSpec(spec=self.spec, graph=graph,
                           interfaces=dict(self.interfaces))

    def _definition(self, scope: _Scope, node) -> None:
        if isinstance(node, ast.ModuleDecl):
            self._module(scope, node)
        elif isinstance(node, ast.InterfaceDecl):
            self._interface(scope, node)
        elif isinstance(node, (ast.StructDecl, ast.ExceptionDecl)):
            kind = "struct" if isinstance(node, ast.StructDecl) else \
                "exception"
            entry = scope.declare(node.name, kind, node, node.line)
            self._aggregates.append(entry)
            self._members(scope, node.members)
        elif isinstance(node, ast.EnumDecl):
            entry = scope.declare(node.name, "enum", node, node.line)
            for label in node.labels:
                scope.declare(label, "enum_label", entry, node.line)
        elif isinstance(node, ast.UnionDecl):
            self._union(scope, node)
        elif isinstance(node, ast.TypedefDecl):
            self._check_type(scope, node.type, node.line)
            scope.declare(node.name, "typedef", node.type, node.line)
        elif isinstance(node, ast.ConstDecl):
            self._check_type(scope, node.type, node.line)
            scope.declare(node.name, "const", node, node.line)
        else:
            self.diag.error("IDL014", self.source,
                            f"unsupported declaration {node!r}")

    def _members(self, scope: _Scope, members: list[ast.Member]) -> None:
        seen: dict[str, int] = {}
        for member in members:
            self._check_type(scope, member.type, member.line)
            if member.name in seen:
                self.diag.error(
                    "IDL002", self.loc(member.line),
                    f"duplicate member {member.name!r} "
                    f"(first on line {seen[member.name]})")
            seen[member.name] = member.line

    def _module(self, scope: _Scope, node: ast.ModuleDecl) -> None:
        existing = scope.find_local(node.name)
        if existing is not None and existing.kind == "module":
            inner = existing.payload  # re-opened module
        else:
            inner = _Scope(node.name, scope, self)
            scope.declare(node.name, "module", inner, node.line)
        for item in node.body:
            self._definition(inner, item)

    # -- unions ----------------------------------------------------------------
    def _union(self, scope: _Scope, node: ast.UnionDecl) -> None:
        entry = scope.declare(node.name, "union", node, node.line)
        self._aggregates.append(entry)
        where = self.loc(node.line)
        self._check_type(scope, node.discriminator, node.line)
        base_kind, base_entry = self._base_of(scope, node.discriminator)

        disc = None  # ('int'|'char'|'bool'|'enum', enum labels)
        if base_kind.startswith("primitive:"):
            prim = base_kind.split(":", 1)[1]
            if prim not in _LEGAL_DISCRIMINATORS:
                self.diag.error(
                    "IDL007", where,
                    f"union {scope.qualified(node.name)}: discriminator "
                    f"type {prim!r} is not an integer/char/boolean/enum")
            elif prim == "char":
                disc = ("char", ())
            elif prim == "boolean":
                disc = ("bool", ())
            else:
                disc = ("int", ())
        elif base_kind == "enum":
            disc = ("enum", tuple(base_entry.payload.labels))
        elif base_kind != "unknown":  # unknown already got IDL001
            self.diag.error(
                "IDL007", where,
                f"union {scope.qualified(node.name)}: discriminator must "
                f"be an integer/char/boolean/enum type, not a {base_kind}")

        defaults = 0
        seen_labels: dict[tuple, object] = {}
        for arm in node.arms:
            self._check_type(scope, arm.type, node.line)
            for label in arm.labels:
                if label is None:
                    defaults += 1
                    continue
                key = (type(label).__name__, label)
                if key in seen_labels:
                    self.diag.error(
                        "IDL009", where,
                        f"union {scope.qualified(node.name)}: duplicate "
                        f"case label {label!r}")
                seen_labels[key] = arm
                if disc is not None:
                    self._check_label(scope, node, disc, label, where)
        if defaults > 1:
            self.diag.error(
                "IDL010", where,
                f"union {scope.qualified(node.name)}: {defaults} default "
                f"arms (at most one allowed)")

    def _check_label(self, scope: _Scope, node: ast.UnionDecl, disc,
                     label, where: str) -> None:
        kind, enum_labels = disc
        union = scope.qualified(node.name)
        if kind == "int":
            if isinstance(label, bool) or not isinstance(label, int):
                self.diag.error(
                    "IDL008", where,
                    f"union {union}: case label {label!r} is not an "
                    f"integer")
        elif kind == "bool":
            if not isinstance(label, bool):
                self.diag.error(
                    "IDL008", where,
                    f"union {union}: case label {label!r} is not TRUE or "
                    f"FALSE")
        elif kind == "char":
            if isinstance(label, bool) or not (
                    isinstance(label, str) and len(label) == 1):
                self.diag.error(
                    "IDL008", where,
                    f"union {union}: case label {label!r} is not a "
                    f"character")
        elif kind == "enum":
            if not isinstance(label, str) or label not in enum_labels:
                self.diag.error(
                    "IDL008", where,
                    f"union {union}: case label {label!r} is not a label "
                    f"of the discriminator enum")

    # -- interfaces -------------------------------------------------------------
    def _interface(self, scope: _Scope, node: ast.InterfaceDecl) -> None:
        where = self.loc(node.line)
        base_ids: list[str] = []
        for base in node.bases:
            entry = self._resolve(scope, base, node.line)
            if entry is None:
                continue
            if entry.kind != "interface":
                self.diag.error(
                    "IDL013", where,
                    f"interface {scope.qualified(node.name)}: base "
                    f"{base.text!r} is a(n) {entry.kind}, not an interface")
                continue
            base_ids.append(entry.payload.repo_id)  # payload: InterfaceInfo
        repo_id = self._repo_id(scope, node.name)
        info = InterfaceInfo(
            repo_id=repo_id, name=node.name,
            qualified_name=scope.qualified(node.name),
            bases=tuple(base_ids), line=node.line, source=self.source)
        scope.declare(node.name, "interface", info, node.line)
        self.interfaces[repo_id] = info

        inner = _Scope(node.name, scope, self)
        for item in node.body:
            if isinstance(item, ast.OperationDecl):
                self._operation(inner, item)
            elif isinstance(item, ast.AttributeDecl):
                inner.declare(item.name, "attribute", item, item.line)
                self._check_type(inner, item.type, item.line)
            else:
                self._definition(inner, item)

    def _operation(self, scope: _Scope, node: ast.OperationDecl) -> None:
        where = self.loc(node.line)
        scope.declare(node.name, "operation", node, node.line)
        qualified = scope.qualified(node.name)
        if node.result is not None:
            self._check_type(scope, node.result, node.line)
        seen_params: dict[str, int] = {}
        for param in node.params:
            self._check_type(scope, param.type, node.line)
            if param.name in seen_params:
                self.diag.error("IDL002", where,
                                f"operation {qualified}: duplicate "
                                f"parameter {param.name!r}")
            seen_params[param.name] = node.line
        for raised in node.raises:
            entry = self._resolve(scope, raised, node.line)
            if entry is not None and entry.kind != "exception":
                self.diag.error(
                    "IDL014", where,
                    f"operation {qualified}: raises {raised.text!r} which "
                    f"is a(n) {entry.kind}, not an exception")
        if node.oneway:
            if node.result is not None:
                self.diag.error(
                    "IDL004", where,
                    f"oneway operation {qualified} must return void")
            bad = [p.name for p in node.params if p.mode != "in"]
            if bad:
                self.diag.error(
                    "IDL005", where,
                    f"oneway operation {qualified} has out/inout "
                    f"parameter(s) {', '.join(bad)}")
            if node.raises:
                self.diag.error(
                    "IDL006", where,
                    f"oneway operation {qualified} may not raise "
                    f"user exceptions")

    # -- recursion --------------------------------------------------------------
    def _check_recursion(self) -> None:
        """IDL011: aggregates containing themselves without a sequence.

        Containment edges follow members, arrays and typedef chains;
        ``sequence<...>`` breaks the edge (legal indirection in IDL).
        """
        edges: dict[int, list[_Entry]] = {}
        by_id: dict[int, _Entry] = {}
        for entry in self._aggregates:
            by_id[id(entry)] = entry
            targets: list[_Entry] = []
            node = entry.payload
            members = (node.members if not isinstance(node, ast.UnionDecl)
                       else [ast.Member(type=a.type, name=a.name)
                             for a in node.arms])
            for member in members:
                self._containment(entry.scope, member.type, targets)
            edges[id(entry)] = targets

        color: dict[int, int] = {}
        path: list[int] = []
        reported: set[frozenset] = set()

        def visit(eid: int) -> None:
            color[eid] = 0
            path.append(eid)
            for target in edges.get(eid, ()):
                tid = id(target)
                if tid not in by_id:
                    continue
                if tid not in color:
                    visit(tid)
                elif color[tid] == 0:
                    cycle = path[path.index(tid):]
                    key = frozenset(cycle)
                    if key not in reported:
                        reported.add(key)
                        head = by_id[cycle[0]]
                        names = " -> ".join(
                            by_id[c].scope.qualified(by_id[c].name)
                            for c in cycle)
                        self.diag.error(
                            "IDL011", self.loc(head.line),
                            f"illegal recursive type: {names} -> "
                            f"{head.scope.qualified(head.name)} (use a "
                            f"sequence for recursion)")
            path.pop()
            color[eid] = 1

        for entry in self._aggregates:
            if id(entry) not in color:
                visit(id(entry))

    def _containment(self, scope: _Scope, texpr,
                     out: list[_Entry], guard: Optional[set] = None) -> None:
        guard = guard if guard is not None else set()
        if isinstance(texpr, ast.SequenceType):
            return  # indirection: recursion through sequences is legal
        if isinstance(texpr, ast.ArrayOf):
            self._containment(scope, texpr.element, out, guard)
            return
        if isinstance(texpr, ast.NamedType):
            entry = self._resolve(scope, texpr, 0, quiet=True)
            if entry is None or id(entry) in guard:
                return
            guard.add(id(entry))
            if entry.kind == "typedef":
                self._containment(entry.scope, entry.payload, out, guard)
            elif entry.kind in ("struct", "union", "exception"):
                out.append(entry)


def check_specification(spec: ast.Specification,
                        diag: Optional[Diagnostics] = None,
                        source: str = "<idl>") -> CheckedSpec:
    """Semantically check *spec*, appending findings to *diag*.

    Returns the :class:`CheckedSpec` carrying the interface graph even
    when findings were emitted — partial information still lets the
    higher layers cross-check what did resolve.
    """
    diag = diag if diag is not None else Diagnostics()
    checked = _Checker(spec, diag, source).run()
    checked.diag = diag  # convenience for single-spec callers
    return checked

"""Reusable demo components and simulation rigs.

Shipping these with the library keeps tests, examples and benchmarks
honest: they all exercise the same public APIs a downstream component
developer would use (executor subclass + package build + install).
"""

from __future__ import annotations

from typing import Optional

from repro.components.executor import ComponentExecutor, StatefulMixin
from repro.container.aggregation import (
    WORKER_IFACE,
    dumps_shard,
    loads_shard,
)
from repro.idl import compile_idl
from repro.node.node import Node
from repro.orb.core import Servant
from repro.packaging.binaries import GLOBAL_BINARIES, synthetic_payload
from repro.packaging.package import ComponentPackage, PackageBuilder
from repro.sim.kernel import Environment
from repro.sim.network import Network
from repro.sim.rng import RngRegistry
from repro.sim.topology import Topology, star
from repro.xmlmeta.descriptors import (
    ComponentTypeDescriptor,
    EventPortDecl,
    ImplementationDescriptor,
    PortDecl,
    QoSSpec,
    SoftwareDescriptor,
)
from repro.xmlmeta.versions import Version

# ---------------------------------------------------------------------------
# Counter: a small stateful component with every port kind.
# ---------------------------------------------------------------------------

_COUNTER_IDL = """
#pragma prefix "corbalc"
module Demo {
  interface Counter {
    long increment(in long by);
    long read();
  };
};
"""

COUNTER_IFACE = compile_idl(_COUNTER_IDL).Demo.Counter

TICK_KIND = "demo.tick"
POKE_KIND = "demo.poke"


class _CounterFacet(Servant):
    _interface = COUNTER_IFACE

    def __init__(self, executor: "CounterExecutor") -> None:
        self._executor = executor

    def increment(self, by: int) -> int:
        self._executor.count += by
        if self._executor.context is not None:
            self._executor.context.emit("ticks", self._executor.count)
        return self._executor.count

    def read(self) -> int:
        return self._executor.count


class CounterExecutor(StatefulMixin, ComponentExecutor):
    """Counts; emits a tick event per increment; reacts to pokes."""

    STATE_ATTRS = ("count", "pokes_seen")

    def __init__(self) -> None:
        super().__init__()
        self.count = 0
        self.pokes_seen = 0

    def create_facet(self, port_name: str) -> Servant:
        assert port_name == "value"
        return _CounterFacet(self)

    def on_event(self, port_name: str, value) -> None:
        if port_name == "pokes":
            self.pokes_seen += 1


def counter_package(version: str = "1.0.0",
                    name: str = "Counter",
                    mobility: str = "mobile",
                    replication: str = "coordinated",
                    cpu_units: float = 5.0,
                    memory_mb: float = 4.0,
                    payload_size: int = 2_000) -> ComponentPackage:
    """A ready-to-install package around :class:`CounterExecutor`."""
    entry = "demo.counter"
    GLOBAL_BINARIES.register(entry, CounterExecutor)
    soft = SoftwareDescriptor(
        name=name, version=Version.parse(version), vendor="repro-demo",
        abstract="Stateful counter demo component.",
        mobility=mobility, replication=replication,
        implementations=[ImplementationDescriptor(
            "*", "*", "*", entry, "bin/any/counter")],
    )
    comp = ComponentTypeDescriptor(
        name=name,
        provides=[PortDecl("value", COUNTER_IFACE.repo_id)],
        uses=[PortDecl("peer", COUNTER_IFACE.repo_id, optional=True)],
        emits=[EventPortDecl("ticks", TICK_KIND)],
        consumes=[EventPortDecl("pokes", POKE_KIND)],
        qos=QoSSpec(cpu_units=cpu_units, memory_mb=memory_mb),
    )
    builder = PackageBuilder(soft, comp)
    builder.add_idl("counter", _COUNTER_IDL)
    builder.add_binary("bin/any/counter",
                       synthetic_payload(payload_size, seed=11))
    return ComponentPackage(builder.build())


# ---------------------------------------------------------------------------
# SumWorker: a data-parallel (aggregatable) component.
# ---------------------------------------------------------------------------

class _SumWorkerFacet(Servant):
    _interface = WORKER_IFACE

    def __init__(self, executor: "SumWorkerExecutor") -> None:
        self._executor = executor

    def process_shard(self, shard: bytes):
        work = loads_shard(shard)
        lo, hi = work["lo"], work["hi"]
        cost = work.get("cost_per_item", 0.01) * (hi - lo)
        # Charge real simulated CPU time for the work, then answer.
        ctx = self._executor.context
        if ctx is not None and cost > 0:
            yield ctx.charge_cpu(cost)
        return dumps_shard(sum(range(lo, hi)))


class SumWorkerExecutor(StatefulMixin, ComponentExecutor):
    """Sums an integer range; split()s it into contiguous shards."""

    STATE_ATTRS = ("lo", "hi", "cost_per_item")

    def __init__(self) -> None:
        super().__init__()
        self.lo = 0
        self.hi = 0
        self.cost_per_item = 0.01

    def create_facet(self, port_name: str) -> Servant:
        assert port_name == "work"
        return _SumWorkerFacet(self)

    def split(self, n_ways: int) -> list[dict]:
        total = self.hi - self.lo
        base, extra = divmod(total, n_ways)
        shards = []
        start = self.lo
        for i in range(n_ways):
            size = base + (1 if i < extra else 0)
            shards.append({"lo": start, "hi": start + size,
                           "cost_per_item": self.cost_per_item})
            start += size
        return shards

    def merge(self, partials: list) -> int:
        return sum(partials)


def sum_worker_package(version: str = "1.0.0",
                       name: str = "SumWorker",
                       cpu_units: float = 10.0) -> ComponentPackage:
    entry = "demo.sumworker"
    GLOBAL_BINARIES.register(entry, SumWorkerExecutor)
    soft = SoftwareDescriptor(
        name=name, version=Version.parse(version), vendor="repro-demo",
        abstract="Data-parallel range summer.",
        replication="stateless", aggregation="data-parallel",
        implementations=[ImplementationDescriptor(
            "*", "*", "*", entry, "bin/any/sumworker")],
    )
    comp = ComponentTypeDescriptor(
        name=name,
        provides=[PortDecl("work", WORKER_IFACE.repo_id)],
        qos=QoSSpec(cpu_units=cpu_units, memory_mb=8.0),
    )
    builder = PackageBuilder(soft, comp)
    builder.add_binary("bin/any/sumworker",
                       synthetic_payload(4_000, seed=12))
    return ComponentPackage(builder.build())


# ---------------------------------------------------------------------------
# Simulation rigs
# ---------------------------------------------------------------------------

class SimRig:
    """Environment + network + one Node per host."""

    def __init__(self, topology: Topology, seed: int = 0,
                 default_timeout: Optional[float] = 30.0) -> None:
        self.env = Environment()
        self.rngs = RngRegistry(seed)
        self.network = Network(self.env, topology, rngs=self.rngs)
        self.topology = topology
        self.metrics = self.network.metrics
        self.nodes: dict[str, Node] = {
            host_id: Node(self.env, self.network, host_id,
                          default_timeout=default_timeout)
            for host_id in topology.host_ids()
        }
        self.obs = None

    def observe(self):
        """Instrument every node's ORB; returns the Observability hub."""
        if self.obs is None:
            from repro.obs import Observability
            self.obs = Observability(self.env, self.metrics)
            self.obs.install_fleet(self.nodes)
        return self.obs

    def node(self, host_id: str) -> Node:
        return self.nodes[host_id]

    def run(self, until=None):
        return self.env.run(until=until)

    def run_process(self, generator):
        """Drive *generator* as a process to completion synchronously."""
        return self.env.run(until=self.env.process(generator))


def star_rig(n_leaves: int = 3, seed: int = 0, **star_kwargs) -> SimRig:
    """A hub-and-leaves rig, the workhorse of the test suite."""
    return SimRig(star(n_leaves, **star_kwargs), seed=seed)

"""The Node: everything Figure 1 shows, assembled on one host.

A Node owns the host's ORB, Component Repository, Resource Manager,
Container, event broker, and the servants that expose them: the
Component Registry, Component Acceptor, Resource Manager and Container
Agent, all activated in the well-known ``node`` adapter so any peer can
address them knowing only the host id.
"""

from __future__ import annotations

from typing import Optional

from repro.container.agent import (
    CONTAINER_AGENT_IFACE,
    ContainerAgentServant,
)
from repro.container.container import Container
from repro.node.acceptor import (
    COMPONENT_ACCEPTOR_IFACE,
    ComponentAcceptorServant,
)
from repro.node.events import EventBroker
from repro.node.registry import (
    COMPONENT_REGISTRY_IFACE,
    ComponentRegistryServant,
    NodeRegistry,
)
from repro.node.repository import ComponentRepository, NotInstalledError
from repro.node.resources import (
    RESOURCE_MANAGER_IFACE,
    ResourceManager,
    ResourceManagerServant,
)
from repro.orb.core import ORB, InterfaceDef, Stub
from repro.orb.exceptions import TRANSIENT
from repro.orb.ior import IOR
from repro.packaging.binaries import BinaryRegistry
from repro.packaging.package import ComponentPackage
from repro.packaging.signature import VendorKeyRegistry
from repro.sim.kernel import Environment, Event
from repro.sim.network import Network
from repro.util.errors import ConfigurationError
from repro.util.ids import IdGenerator

NODE_ADAPTER = "node"

#: service key -> interface, for well-known IOR construction.
NODE_SERVICES: dict[str, InterfaceDef] = {
    "registry": COMPONENT_REGISTRY_IFACE,
    "resources": RESOURCE_MANAGER_IFACE,
    "acceptor": COMPONENT_ACCEPTOR_IFACE,
    "container": CONTAINER_AGENT_IFACE,
}


class LocalResolver:
    """Default dependency resolution: this node only.

    The Distributed Registry replaces a node's resolver with a
    network-wide one; standalone nodes resolve against their own
    repository and container.
    """

    def __init__(self, node: "Node") -> None:
        self.node = node

    def resolve(self, repo_id: str, qos=None) -> Event:
        event = self.node.env.event()
        # Prefer an already-running provider.
        running = self.node.registry.running_providers(repo_id)
        if running:
            event.succeed(IOR.from_string(running[0]))
            return event
        providers = self.node.repository.providers_of(repo_id)
        if not providers:
            event.fail(TRANSIENT(
                f"no provider for {repo_id!r} on {self.node.host_id}"
            )).defused()
            return event
        cls = providers[0]
        instance = self.node.container.create_instance(cls.name)
        for facet in instance.ports.facets():
            if facet.repo_id == repo_id:
                event.succeed(facet.ior)
                return event
        event.fail(TRANSIENT(
            f"provider {cls.name} exposes no facet of {repo_id!r}"
        )).defused()
        return event


class Node:
    """The per-host CORBA-LC runtime."""

    def __init__(
        self,
        env: Environment,
        network: Network,
        host_id: str,
        binaries: Optional[BinaryRegistry] = None,
        vendor_keys: Optional[VendorKeyRegistry] = None,
        require_signature: bool = False,
        default_timeout: Optional[float] = None,
        obs=None,
        dispatch_workers: Optional[int] = None,
        dispatch_limit: Optional[int] = None,
        pipeline_window: Optional[float] = None,
    ) -> None:
        self.env = env
        self.network = network
        self.host_id = host_id
        self.host = network.topology.host(host_id)
        self.metrics = network.metrics
        self.ids = IdGenerator()

        self.orb = ORB(env, network, host_id,
                       default_timeout=default_timeout,
                       dispatch_workers=dispatch_workers,
                       dispatch_limit=dispatch_limit,
                       pipeline_window=pipeline_window)
        if obs is not None:
            obs.install(self.orb)
        self.resources = ResourceManager(env, self.host)
        self.orb.dispatch_listeners.append(self.resources.charge)
        self.repository = ComponentRepository(
            self.host.profile, binaries=binaries, vendor_keys=vendor_keys,
            require_signature=require_signature)
        self.events = EventBroker(self)
        self.container = Container(self)
        self.registry = NodeRegistry(self)
        #: dependency-resolution strategy; the Distributed Registry
        #: swaps in a network-wide resolver (§2.4.3).
        self.resolver = LocalResolver(self)

        poa = self.orb.adapter(NODE_ADAPTER)
        poa.activate(ComponentRegistryServant(self.registry),
                     key="registry")
        poa.activate(ResourceManagerServant(self.resources),
                     key="resources")
        poa.activate(ComponentAcceptorServant(self), key="acceptor")
        poa.activate(ContainerAgentServant(self), key="container")

    # -- well-known service addressing ------------------------------------
    @staticmethod
    def service_ior(host_id: str, service: str) -> IOR:
        """IOR of a node service on any host, without a lookup."""
        try:
            iface = NODE_SERVICES[service]
        except KeyError:
            raise ConfigurationError(
                f"unknown node service {service!r}; "
                f"one of {sorted(NODE_SERVICES)}"
            ) from None
        return IOR(iface.repo_id, host_id, NODE_ADAPTER, service)

    def service_stub(self, host_id: str, service: str) -> Stub:
        """Typed stub for a (possibly remote) node service."""
        ior = self.service_ior(host_id, service)
        return self.orb.stub(ior, NODE_SERVICES[service])

    # -- local conveniences ------------------------------------------------------
    def install_package(self, package: "ComponentPackage | bytes"):
        """Install a package held locally (no network transfer)."""
        if isinstance(package, (bytes, bytearray)):
            package = ComponentPackage(bytes(package))
        return self.repository.install(package)

    def request_component(self, repo_id: str, qos=None) -> Event:
        """Resolve a component dependency (possibly network-wide)."""
        self.metrics.counter("node.component_requests").inc()
        return self.resolver.resolve(repo_id, qos=qos)

    @property
    def alive(self) -> bool:
        return self.host.alive

    def __repr__(self) -> str:
        return (f"<Node {self.host_id} [{self.host.profile.name}] "
                f"{len(self.repository)} components, "
                f"{len(self.container)} instances>")

"""Per-node event broker: one push channel per event kind.

"For each event kind produced by a component, the framework opens a
push event channel.  Components can subscribe to this channel to
express its interest in the event kind" (§2.1.2).  Channels are created
lazily and live in the node's ``events`` adapter under the kind name,
so any node can address another node's channel for a kind directly.
"""

from __future__ import annotations

from repro.orb.ior import IOR
from repro.orb.services.events import (
    EVENT_CHANNEL_IFACE,
    EventChannelServant,
)

EVENTS_ADAPTER = "events"


class EventBroker:
    """Lazily-created event channels for one node."""

    def __init__(self, node) -> None:
        self.node = node
        self._channels: dict[str, EventChannelServant] = {}

    def channel(self, kind: str) -> EventChannelServant:
        servant = self._channels.get(kind)
        if servant is None:
            servant = EventChannelServant(self.node.orb, kind)
            self.node.orb.adapter(EVENTS_ADAPTER).activate(servant, key=kind)
            self._channels[kind] = servant
        return servant

    def channel_ior(self, kind: str) -> IOR:
        self.channel(kind)
        return self.node.orb.adapter(EVENTS_ADAPTER).ior_for(kind)

    @staticmethod
    def channel_ior_on(host_id: str, kind: str) -> IOR:
        """Well-known IOR of *kind*'s channel on another host.

        The channel must have been (or will lazily be) created there;
        subscribing to a not-yet-created remote channel raises
        OBJECT_NOT_EXIST, which callers handle by creating instances
        before wiring events (assembly order guarantees this).
        """
        return IOR(EVENT_CHANNEL_IFACE.repo_id, host_id, EVENTS_ADAPTER, kind)

    def kinds(self) -> list[str]:
        return sorted(self._channels)

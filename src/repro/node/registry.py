"""The Component Registry: the node's external reflection (§2.4.1-2.4.2).

"The Component Registry interface reflects the internal Component
Repository and helps in performing distributed component queries."  It
serves three views: installed components, running instances (with
ports/assemblies), and provider lookups by interface repository id —
used both by the Distributed Registry and by builder tools.
"""

from __future__ import annotations

from repro.components.reflection import (
    COMPONENT_INFO_TC,
    ComponentInfo,
    INSTANCE_INFO_TC,
    InstanceInfo,
)
from repro.orb.core import InterfaceDef, Servant, make_exception_class, op
from repro.orb.typecodes import (
    except_tc,
    sequence_tc,
    tc_objref,
    tc_string,
)

NOT_INSTALLED_TC = except_tc(
    "NotInstalled", [("component", tc_string)],
    repo_id="IDL:corbalc/Node/NotInstalled:1.0",
)
NotInstalled = make_exception_class("NotInstalled", NOT_INSTALLED_TC)

COMPONENT_REGISTRY_IFACE = InterfaceDef(
    "IDL:corbalc/Node/ComponentRegistry:1.0",
    "ComponentRegistry",
    operations=[
        op("installed", [], sequence_tc(COMPONENT_INFO_TC)),
        op("instances", [], sequence_tc(INSTANCE_INFO_TC)),
        op("find_providers", [("repo_id", tc_string)],
           sequence_tc(tc_string)),
        op("running_providers", [("repo_id", tc_string)],
           sequence_tc(tc_string)),
        op("factory_of", [("component", tc_string)], tc_objref,
           raises=[NOT_INSTALLED_TC]),
    ],
)


class NodeRegistry:
    """Local reflection logic over the repository and container."""

    def __init__(self, node) -> None:
        self.node = node
        #: bumped on every repository/container change — lets soft-state
        #: updates skip re-sending an unchanged view.
        self.generation = 0
        node.repository.listeners.append(self._on_repository_change)
        node.container.listeners.append(self._on_container_change)

    def _on_repository_change(self, _action, _cls) -> None:
        self.generation += 1

    def _on_container_change(self, _action, _instance) -> None:
        self.generation += 1

    # -- views -------------------------------------------------------------
    def installed(self) -> list[ComponentInfo]:
        return [ComponentInfo.from_package(cls.package)
                for cls in self.node.repository.classes()]

    def instances(self) -> list[InstanceInfo]:
        return self.node.container.instance_infos()

    def find_providers(self, repo_id: str) -> list[str]:
        """Names of installed components providing *repo_id*."""
        return sorted(cls.name
                      for cls in self.node.repository.providers_of(repo_id))

    def running_providers(self, repo_id: str) -> list[str]:
        """Stringified facet IORs of running instances providing *repo_id*."""
        iors = []
        for instance in self.node.container.instances():
            if not instance.is_active:
                continue
            for facet in instance.ports.facets():
                if facet.repo_id == repo_id and facet.ior is not None:
                    iors.append(facet.ior.to_string())
        return iors


class ComponentRegistryServant(Servant):
    """Remote face of the node registry."""

    _interface = COMPONENT_REGISTRY_IFACE

    def __init__(self, registry: NodeRegistry) -> None:
        self.registry = registry

    def installed(self) -> list[dict]:
        return [info.to_value() for info in self.registry.installed()]

    def instances(self) -> list[dict]:
        return [info.to_value() for info in self.registry.instances()]

    def find_providers(self, repo_id: str) -> list[str]:
        return self.registry.find_providers(repo_id)

    def running_providers(self, repo_id: str) -> list[str]:
        return self.registry.running_providers(repo_id)

    def factory_of(self, component: str):
        node = self.registry.node
        if not node.repository.is_installed(component):
            raise NotInstalled(component)
        return node.container.factory_ior(component)

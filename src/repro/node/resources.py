"""The Resource Manager: static traits + dynamic load of one host.

It offers "both node static characteristics (such as CPU and Operating
System Type, ORB) and dynamic system information (such as CPU and
memory load, available resources, etc.)" (§2.4.1), and "collaborates
with the Container in deciding initial placement of component
instances" (§2.4.2) by admitting or refusing QoS reservations.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.orb.core import InterfaceDef, Servant, op
from repro.orb.exceptions import NO_RESOURCES
from repro.orb.typecodes import (
    struct_tc,
    tc_boolean,
    tc_double,
    tc_string,
)
from repro.sim.kernel import Environment
from repro.sim.topology import Host
from repro.xmlmeta.descriptors import QoSSpec

#: Wire form of a resource snapshot (used by soft-state updates too).
RESOURCE_SNAPSHOT_TC = struct_tc("ResourceSnapshot", [
    ("host", tc_string),
    ("os", tc_string),
    ("arch", tc_string),
    ("orb", tc_string),
    ("is_tiny", tc_boolean),
    ("cpu_capacity", tc_double),
    ("cpu_committed", tc_double),
    ("memory_capacity", tc_double),
    ("memory_committed", tc_double),
    ("instances", tc_double),
    ("timestamp", tc_double),
], repo_id="IDL:corbalc/Node/ResourceSnapshot:1.0")


@dataclass(frozen=True)
class ResourceSnapshot:
    """Point-in-time view of a host's resources."""

    host: str
    os: str
    arch: str
    orb: str
    is_tiny: bool
    cpu_capacity: float
    cpu_committed: float
    memory_capacity: float
    memory_committed: float
    instances: float
    timestamp: float

    @property
    def cpu_available(self) -> float:
        return max(0.0, self.cpu_capacity - self.cpu_committed)

    @property
    def memory_available(self) -> float:
        return max(0.0, self.memory_capacity - self.memory_committed)

    @property
    def cpu_utilization(self) -> float:
        if self.cpu_capacity <= 0:
            return 1.0
        return min(1.0, self.cpu_committed / self.cpu_capacity)

    def to_value(self) -> dict:
        return {
            "host": self.host, "os": self.os, "arch": self.arch,
            "orb": self.orb, "is_tiny": self.is_tiny,
            "cpu_capacity": self.cpu_capacity,
            "cpu_committed": self.cpu_committed,
            "memory_capacity": self.memory_capacity,
            "memory_committed": self.memory_committed,
            "instances": self.instances,
            "timestamp": self.timestamp,
        }

    @classmethod
    def from_value(cls, value: dict) -> "ResourceSnapshot":
        return cls(**value)


class ResourceManager:
    """Reservation-based resource accounting for one host."""

    def __init__(self, env: Environment, host: Host) -> None:
        self.env = env
        self.host = host
        self.cpu_committed = 0.0
        self.memory_committed = 0.0
        self.instance_count = 0
        self.cpu_seconds_charged = 0.0

    # -- static ------------------------------------------------------------
    @property
    def profile(self):
        return self.host.profile

    def can_host_platform(self, package) -> bool:
        """Can this host's platform run any binary in *package*?"""
        p = self.profile
        return package.supports_platform(p.os, p.arch, p.orb)

    # -- admission --------------------------------------------------------------
    def fits(self, qos: QoSSpec) -> bool:
        """Would *qos* fit in the currently free capacity?"""
        return (self.cpu_committed + qos.cpu_units <= self.profile.cpu_power
                and self.memory_committed + qos.memory_mb
                <= self.profile.memory_mb)

    def reserve(self, qos: QoSSpec) -> None:
        """Commit resources for an instance; raises NO_RESOURCES."""
        if not self.fits(qos):
            raise NO_RESOURCES(
                f"host {self.host.host_id}: cannot fit cpu={qos.cpu_units} "
                f"mem={qos.memory_mb} (committed {self.cpu_committed}/"
                f"{self.profile.cpu_power}, {self.memory_committed}/"
                f"{self.profile.memory_mb})"
            )
        self.cpu_committed += qos.cpu_units
        self.memory_committed += qos.memory_mb
        self.instance_count += 1

    def release(self, qos: QoSSpec) -> None:
        self.cpu_committed = max(0.0, self.cpu_committed - qos.cpu_units)
        self.memory_committed = max(0.0, self.memory_committed - qos.memory_mb)
        self.instance_count = max(0, self.instance_count - 1)

    # -- activity accounting -----------------------------------------------------
    def charge(self, cpu_seconds: float) -> None:
        """Record actual execution time (ORB dispatches, instance work)."""
        self.cpu_seconds_charged += cpu_seconds

    def work_duration(self, work_units: float) -> float:
        """Simulated seconds to execute *work_units* on this host."""
        return work_units / self.profile.cpu_power

    # -- reflection -----------------------------------------------------------------
    def snapshot(self) -> ResourceSnapshot:
        p = self.profile
        return ResourceSnapshot(
            host=self.host.host_id,
            os=p.os, arch=p.arch, orb=p.orb, is_tiny=p.is_tiny,
            cpu_capacity=p.cpu_power,
            cpu_committed=self.cpu_committed,
            memory_capacity=float(p.memory_mb),
            memory_committed=self.memory_committed,
            instances=float(self.instance_count),
            timestamp=self.env.now,
        )


RESOURCE_MANAGER_IFACE = InterfaceDef(
    "IDL:corbalc/Node/ResourceManager:1.0",
    "ResourceManager",
    operations=[
        op("snapshot", [], RESOURCE_SNAPSHOT_TC),
        op("fits", [("cpu", tc_double), ("memory", tc_double),
                    ("bandwidth", tc_double)], tc_boolean),
    ],
)


class ResourceManagerServant(Servant):
    """Remote face of the Resource Manager."""

    _interface = RESOURCE_MANAGER_IFACE

    def __init__(self, manager: ResourceManager) -> None:
        self.manager = manager

    def snapshot(self) -> dict:
        return self.manager.snapshot().to_value()

    def fits(self, cpu: float, memory: float, bandwidth: float) -> bool:
        return self.manager.fits(QoSSpec(cpu, memory, bandwidth))

"""The Component Repository: packages installed on one node.

"All hosts (nodes) in the system maintain a set of installed components
in its Component Repository.  All of those are available to be used by
any other component" (§2.4.3).  Installation validates platform
support and (optionally) the vendor signature; observers — the node's
Component Registry, and through it the Distributed Registry — are
notified on every change ("populating the node's Component Repository
makes the Distributed Registry aware of the change").
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional

from repro.components.model import ComponentClass
from repro.packaging.binaries import BinaryRegistry
from repro.packaging.package import ComponentPackage, PackageError
from repro.packaging.signature import VendorKeyRegistry
from repro.sim.topology import HostProfile
from repro.util.errors import ValidationError
from repro.xmlmeta.versions import Version, VersionRange


class NotInstalledError(ValidationError):
    """Lookup for a component this repository does not hold."""


class ComponentRepository:
    """Versioned store of installed component classes."""

    def __init__(self, profile: HostProfile,
                 binaries: Optional[BinaryRegistry] = None,
                 vendor_keys: Optional[VendorKeyRegistry] = None,
                 require_signature: bool = False) -> None:
        self.profile = profile
        self.binaries = binaries
        self.vendor_keys = vendor_keys
        self.require_signature = require_signature
        #: (name, version) -> ComponentClass
        self._classes: dict[tuple[str, Version], ComponentClass] = {}
        #: observers called with ("installed" | "removed", ComponentClass)
        self.listeners: list[Callable[[str, ComponentClass], None]] = []

    # -- installation -------------------------------------------------------
    def install(self, package: ComponentPackage) -> ComponentClass:
        """Install *package*; returns its ComponentClass.

        Validates platform support, rejects duplicate (name, version),
        and verifies the vendor signature when the repository demands
        signatures.
        """
        if self.require_signature:
            if self.vendor_keys is None:
                raise PackageError(
                    "repository requires signatures but has no key registry"
                )
            package.verify_signature(self.vendor_keys)
        key = (package.name, package.version)
        if key in self._classes:
            raise PackageError(
                f"{package.name} v{package.version} already installed"
            )
        cls = ComponentClass(package, self.profile, binaries=self.binaries)
        self._classes[key] = cls
        self._notify("installed", cls)
        return cls

    def remove(self, name: str, version: Version) -> ComponentClass:
        try:
            cls = self._classes.pop((name, version))
        except KeyError:
            raise NotInstalledError(f"{name} v{version} not installed") from None
        self._notify("removed", cls)
        return cls

    def _notify(self, action: str, cls: ComponentClass) -> None:
        for listener in list(self.listeners):
            listener(action, cls)

    # -- lookup ----------------------------------------------------------------
    def is_installed(self, name: str,
                     versions: VersionRange = VersionRange("")) -> bool:
        return any(n == name and versions.matches(v)
                   for (n, v) in self._classes)

    def lookup(self, name: str,
               versions: VersionRange = VersionRange("")) -> ComponentClass:
        """The best (highest) installed version of *name* in range."""
        candidates = [
            (v, cls) for (n, v), cls in self._classes.items()
            if n == name and versions.matches(v)
        ]
        if not candidates:
            raise NotInstalledError(
                f"component {name!r} (versions {versions}) not installed"
            )
        return max(candidates, key=lambda pair: pair[0])[1]

    def providers_of(self, repo_id: str) -> list[ComponentClass]:
        """Installed components with a provided port of type *repo_id*."""
        return [cls for cls in self._classes.values()
                if cls.provides_repo_id(repo_id)]

    def classes(self) -> list[ComponentClass]:
        return list(self._classes.values())

    def names(self) -> list[str]:
        return sorted({n for (n, _v) in self._classes})

    def package_bytes(self, name: str,
                      versions: VersionRange = VersionRange("")) -> bytes:
        """Raw archive of the best matching package (for shipping)."""
        return self.lookup(name, versions).package.data

    def __len__(self) -> int:
        return len(self._classes)

    def __contains__(self, name: str) -> bool:
        return self.is_installed(name)

"""The Component Acceptor: run-time installation hooks (§2.4.1).

"Hooks for accepting new components at run-time for local installation
in the local Component Repository, instantiation and running."  The
acceptor also serves packages back out (``fetch``), which is how the
network moves a component's binary from the node that has it to the
node that should run it (§2.4.3: "fetch the component to be locally
installed, instantiated and run").
"""

from __future__ import annotations

from repro.node.registry import NOT_INSTALLED_TC, NotInstalled
from repro.orb.core import InterfaceDef, Servant, make_exception_class, op
from repro.orb.typecodes import (
    except_tc,
    sequence_tc,
    tc_boolean,
    tc_octetseq,
    tc_string,
)
from repro.packaging.package import ComponentPackage, PackageError
from repro.xmlmeta.versions import VersionRange

INSTALL_ERROR_TC = except_tc(
    "InstallError", [("reason", tc_string)],
    repo_id="IDL:corbalc/Node/InstallError:1.0",
)
InstallError = make_exception_class("InstallError", INSTALL_ERROR_TC)

#: Installing a package is heavier than a normal dispatch: unpack,
#: validate, link.  5 work-units ≈ 12.5 ms on a desktop.
_INSTALL_COST = 5.0

COMPONENT_ACCEPTOR_IFACE = InterfaceDef(
    "IDL:corbalc/Node/ComponentAcceptor:1.0",
    "ComponentAcceptor",
    operations=[
        op("install", [("pkg", tc_octetseq)], tc_string,
           raises=[INSTALL_ERROR_TC], cpu_cost=_INSTALL_COST),
        op("is_installed", [("component", tc_string),
                            ("versions", tc_string)], tc_boolean),
        op("fetch", [("component", tc_string), ("versions", tc_string)],
           tc_octetseq, raises=[NOT_INSTALLED_TC]),
        op("installed_names", [], sequence_tc(tc_string)),
    ],
)


class ComponentAcceptorServant(Servant):
    """Remote face of run-time installation."""

    _interface = COMPONENT_ACCEPTOR_IFACE

    def __init__(self, node) -> None:
        self.node = node

    def install(self, pkg: bytes) -> str:
        """Install a package shipped as bytes; returns 'name version'."""
        try:
            package = ComponentPackage(pkg)
            cls = self.node.repository.install(package)
        except PackageError as exc:
            raise InstallError(str(exc)) from None
        return f"{cls.name} {cls.version}"

    def is_installed(self, component: str, versions: str) -> bool:
        return self.node.repository.is_installed(
            component, VersionRange(versions))

    def fetch(self, component: str, versions: str) -> bytes:
        from repro.node.repository import NotInstalledError
        try:
            return self.node.repository.package_bytes(
                component, VersionRange(versions))
        except NotInstalledError:
            raise NotInstalled(component) from None

    def installed_names(self) -> list[str]:
        return self.node.repository.names()

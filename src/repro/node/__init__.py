"""The Node service — Figure 1 of the paper, made executable.

"Each host participating must have running a server implementing the
Node service" (§2.4.1).  A :class:`~repro.node.node.Node` assembles, on
one simulated host:

- the **Component Repository** (:mod:`repro.node.repository`): installed
  packages, version-aware lookup;
- the **Resource Manager** (:mod:`repro.node.resources`): static host
  traits and dynamic load, reservation-based admission;
- the **Component Registry** (:mod:`repro.node.registry`): the external
  reflection of the repository, running instances and their assemblies;
- the **Component Acceptor** (:mod:`repro.node.acceptor`): run-time
  installation hooks, package fetch for migration;
- the **event broker** (:mod:`repro.node.events`): one push channel per
  event kind;
- a **Container** (:mod:`repro.container`) hosting instances.

The Network Cohesion protocol that links nodes into the logical network
lives in :mod:`repro.registry` and plugs into the node.
"""

from repro.node.node import Node
from repro.node.repository import ComponentRepository
from repro.node.resources import ResourceManager, ResourceSnapshot

__all__ = ["Node", "ComponentRepository", "ResourceManager",
           "ResourceSnapshot"]

"""Data-parallel aggregation (§2.1.1).

An aggregatable component "knows how to split itself in different
instances to process a set of data (data-parallel components) and how
to gather partial results into a complete solution".  The coordinator:

1. asks a local prototype executor to :meth:`split` the work;
2. creates worker instances on the chosen hosts (shipping the package
   where needed);
3. pushes one shard to each worker's ``Worker`` facet, in parallel;
4. :meth:`merge`-s the partial results.

Aggregatable components must provide a facet implementing
:data:`WORKER_IFACE` (``process_shard``).
"""

from __future__ import annotations

import pickle
from typing import Optional

from repro.components.reflection import InstanceInfo
from repro.container.agent import dumps_state
from repro.orb.core import InterfaceDef, op
from repro.orb.exceptions import SystemException
from repro.orb.ior import IOR
from repro.orb.typecodes import tc_octetseq
from repro.sim.kernel import Event
from repro.util.errors import ReproError

WORKER_IFACE = InterfaceDef(
    "IDL:corbalc/Framework/Worker:1.0",
    "Worker",
    operations=[
        # Work cost is charged by the executor itself (charge_cpu), not
        # by the dispatch, so heterogeneous hosts show real speed ratios.
        op("process_shard", [("shard", tc_octetseq)], tc_octetseq,
           cpu_cost=0.5),
    ],
)


class AggregationError(ReproError):
    """Aggregation refused (component not data-parallel) or failed."""


def dumps_shard(shard) -> bytes:
    """Wire form of a work shard / partial result."""
    return pickle.dumps(shard, protocol=4)


def loads_shard(data: bytes):
    return pickle.loads(data)


class AggregationCoordinator:
    """Splits, scatters, gathers one data-parallel computation."""

    def __init__(self, node) -> None:
        self.node = node

    def run(self, component_name: str, worker_hosts: list[str],
            work_state: dict,
            facet_port: Optional[str] = None) -> Event:
        """Execute the component's work across *worker_hosts*.

        Returns a process event yielding the merged result.  Workers
        that die mid-shard have their shard re-run on a surviving host,
        so one crash does not lose the computation.
        """
        return self.node.env.process(
            self._run(component_name, worker_hosts, work_state, facet_port))

    def _run(self, component_name: str, worker_hosts: list[str],
             work_state: dict, facet_port: Optional[str]):
        if not worker_hosts:
            raise AggregationError("no worker hosts")
        node = self.node
        cls = node.repository.lookup(component_name)
        if not cls.aggregatable:
            raise AggregationError(
                f"component {component_name!r} is not data-parallel"
            )
        prototype = cls.new_executor()
        prototype.set_state(work_state)
        shards = prototype.split(len(worker_hosts))
        if len(shards) != len(worker_hosts):
            raise AggregationError(
                f"split() returned {len(shards)} shards for "
                f"{len(worker_hosts)} workers"
            )

        # Create one worker instance per host (install where missing).
        exact = f"=={cls.version}"
        workers: list[tuple[str, IOR, str]] = []  # (host, facet, iid)
        for host in worker_hosts:
            if host != node.host_id:
                acceptor = node.service_stub(host, "acceptor")
                if not (yield acceptor.is_installed(component_name, exact)):
                    yield acceptor.install(
                        node.repository.package_bytes(component_name))
            agent = node.service_stub(host, "container")
            info = InstanceInfo.from_value(
                (yield agent.create_instance(component_name, exact, "")))
            facet = self._worker_facet(info, facet_port)
            workers.append((host, facet, info.instance_id))

        # Scatter all shards in parallel; index results by shard.
        process_op = WORKER_IFACE.operations["process_shard"]
        calls = []
        for (host, facet, _iid), shard in zip(workers, shards):
            calls.append(node.orb.invoke(
                facet, process_op, (dumps_shard(shard),),
                timeout=None))
        partials: list = [None] * len(calls)
        failed: list[int] = []
        for index, call in enumerate(calls):
            try:
                raw = yield call
                partials[index] = loads_shard(raw)
            except SystemException:
                failed.append(index)

        # Re-run failed shards on surviving workers, round-robin.
        if failed:
            node.metrics.counter("aggregation.reruns").inc(len(failed))
            survivors = [
                w for i, w in enumerate(workers)
                if i not in failed
                and node.network.topology.host(w[0]).alive
            ]
            if not survivors:
                raise AggregationError("all workers failed")
            for j, index in enumerate(failed):
                host, facet, _iid = survivors[j % len(survivors)]
                raw = yield node.orb.invoke(
                    facet, process_op, (dumps_shard(shards[index]),))
                partials[index] = loads_shard(raw)

        # Tear down workers that are still reachable.
        for host, _facet, iid in workers:
            if node.network.topology.host(host).alive:
                agent = node.service_stub(host, "container")
                try:
                    yield agent.destroy_instance(iid)
                except SystemException:
                    pass
        node.metrics.counter("aggregation.runs").inc()
        return prototype.merge(partials)

    def _worker_facet(self, info: InstanceInfo,
                      facet_port: Optional[str]) -> IOR:
        for port in info.ports:
            if port.kind != "facet":
                continue
            if facet_port is not None and port.name != facet_port:
                continue
            if port.type_id == WORKER_IFACE.repo_id and port.peer:
                return IOR.from_string(port.peer)
        raise AggregationError(
            f"instance {info.instance_id} exposes no Worker facet"
        )

"""Component instance migration (§2.2, §2.4.3).

"The container can ask the component instance (via local agreed
interfaces) to resume its execution returning its internal state.
Then, the component can be migrated into another host (in its binary
form), instantiated, and then given the previous instance state to
continue its execution."

The engine performs exactly those steps, over the wire:

1. passivate the instance and capture its externalized state;
2. ensure the component's package is installed at the target —
   shipping the package bytes through the target's Component Acceptor
   if not (this is the expensive part on slow links);
3. evict the local shell (frees this node's resources);
4. incarnate at the target with the captured state and port wiring.

On incarnation failure the instance is restored locally (rollback), so
a refused migration never loses the instance.
"""

from __future__ import annotations

from repro.container.agent import dumps_state
from repro.container.instance import ComponentInstance, InstanceState
from repro.orb.exceptions import SystemException, UserException
from repro.components.reflection import InstanceInfo
from repro.sim.kernel import Event
from repro.util.errors import ReproError


class MigrationError(ReproError):
    """Migration refused (immobile component, bad state) or failed."""


class MigrationEngine:
    """Drives migrations out of one node."""

    def __init__(self, node) -> None:
        self.node = node

    def migrate(self, instance_id: str, target_host: str) -> Event:
        """Migrate *instance_id* to *target_host*.

        Returns a process event yielding the new
        :class:`~repro.components.reflection.InstanceInfo` at the target.
        """
        return self.node.env.process(self._migrate(instance_id, target_host))

    def _migrate(self, instance_id: str, target_host: str):
        node = self.node
        container = node.container
        instance = container.find_instance(instance_id)
        if instance is None:
            raise MigrationError(f"no instance {instance_id!r}")
        if target_host == node.host_id:
            raise MigrationError("target is the current host")
        cls = instance.component_class
        if not cls.is_mobile:
            raise MigrationError(
                f"component {cls.name!r} is pinned (mobility=pinned)"
            )
        instance.require_state(InstanceState.ACTIVE)
        node.metrics.counter("migration.started").inc()

        # 1. Passivate and externalize.
        instance.executor.passivate()
        instance.state = InstanceState.PASSIVE
        instance.interrupt_processes("migrating")
        state = instance.executor.get_state()
        wiring = _capture_wiring(instance)

        # 2. Ensure the binary exists at the target.  A target crash in
        # this window must not strand the instance passivated on the
        # source: reactivate it locally and refuse the migration.
        exact = f"=={cls.version}"
        acceptor = node.service_stub(target_host, "acceptor")
        try:
            installed = yield acceptor.is_installed(cls.name, exact)
            if not installed:
                pkg = node.repository.package_bytes(cls.name)
                node.metrics.counter("migration.package_bytes").inc(len(pkg))
                yield acceptor.install(pkg)
        except SystemException as exc:
            instance.executor.activate()
            instance.state = InstanceState.ACTIVE
            node.metrics.counter("migration.rollbacks").inc()
            raise MigrationError(
                f"target {target_host} unreachable before eviction: {exc}"
            ) from exc

        # 3. Evict the local shell.
        container._evict(instance)

        # 4. Incarnate remotely; roll back on refusal.
        agent = node.service_stub(target_host, "container")
        try:
            info_value = yield agent.incarnate(
                cls.name, exact, instance_id, dumps_state(state),
                wiring["receptacles"], wiring["subscriptions"])
        except (SystemException, UserException) as exc:
            node.metrics.counter("migration.rollbacks").inc()
            self._restore_locally(cls, instance_id, state, wiring)
            raise MigrationError(
                f"target {target_host} refused {instance_id}: {exc}"
            ) from exc
        node.metrics.counter("migration.completed").inc()
        return InstanceInfo.from_value(info_value)

    def _restore_locally(self, cls, instance_id: str, state: dict,
                         wiring: dict) -> None:
        container = self.node.container
        instance = container.create_instance(
            cls.name, requested_name=instance_id, initial_state=state)
        from repro.orb.ior import IOR
        for entry in wiring["receptacles"]:
            if entry["peer"]:
                container.connect(instance_id, entry["name"],
                                  IOR.from_string(entry["peer"]))
        for entry in wiring["subscriptions"]:
            if entry["peer"]:
                container.subscribe_sink(instance, entry["name"],
                                         IOR.from_string(entry["peer"]))


def _capture_wiring(instance: ComponentInstance) -> dict:
    """Receptacle peers and sink subscriptions, as wire-able pairs."""
    receptacles = []
    for port in instance.ports.receptacles():
        receptacles.append({
            "name": port.name,
            "peer": port.peer.to_string() if port.peer else "",
        })
    subscriptions = []
    for port in instance.ports.by_kind("event-sink"):
        for channel in port.subscriptions:
            subscriptions.append({
                "name": port.name,
                "peer": channel.to_string(),
            })
    return {"receptacles": receptacles, "subscriptions": subscriptions}

"""The container: run-time environment of component instances (§2.2).

"Component instances are run within a run-time environment called a
container.  Containers become the instances view of the world."  The
container owns instance lifecycle, wires ports, enforces QoS admission
through the Resource Manager, and implements the non-functional
aspects the paper lists: activation/de-activation, migration
(:mod:`repro.container.migration`), replication
(:mod:`repro.container.replication`) and data-parallel aggregation
(:mod:`repro.container.aggregation`).
"""

from repro.container.container import Container
from repro.container.instance import ComponentInstance, InstanceState
from repro.container.context import ContainerContext
from repro.container.migration import MigrationEngine
from repro.container.replication import ReplicaGroup, ReplicaManager
from repro.container.aggregation import AggregationCoordinator

__all__ = [
    "Container",
    "ComponentInstance",
    "InstanceState",
    "ContainerContext",
    "MigrationEngine",
    "ReplicaGroup",
    "ReplicaManager",
    "AggregationCoordinator",
]

"""ComponentInstance: one running incarnation of a component.

"The instances then become running representations of the code stored
in a component" (§2.1).
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, Optional

from repro.components.model import ComponentClass
from repro.components.ports import PortSet
from repro.components.reflection import InstanceInfo, PortInfo
from repro.sim.kernel import Process
from repro.util.errors import ReproError

if TYPE_CHECKING:  # pragma: no cover
    from repro.components.executor import ComponentExecutor


class InstanceState(enum.Enum):
    CREATED = "created"
    ACTIVE = "active"
    PASSIVE = "passive"
    MIGRATING = "migrating"
    DESTROYED = "destroyed"


class InstanceStateError(ReproError):
    """Operation invalid in the instance's current state."""


class ComponentInstance:
    """Runtime record the container keeps per instance."""

    def __init__(self, instance_id: str, component_class: ComponentClass,
                 executor: "ComponentExecutor", host_id: str) -> None:
        self.instance_id = instance_id
        self.component_class = component_class
        self.executor = executor
        self.host_id = host_id
        self.ports = PortSet()
        self.state = InstanceState.CREATED
        #: simulation processes spawned on behalf of this instance; the
        #: container interrupts them on passivation/destruction.
        self.processes: list[Process] = []

    @property
    def component_name(self) -> str:
        return self.component_class.name

    @property
    def qos(self):
        return self.component_class.component_type.qos

    @property
    def is_active(self) -> bool:
        return self.state is InstanceState.ACTIVE

    def require_state(self, *allowed: InstanceState) -> None:
        if self.state not in allowed:
            raise InstanceStateError(
                f"instance {self.instance_id} is {self.state.value}; "
                f"needs {[s.value for s in allowed]}"
            )

    def track(self, process: Process) -> Process:
        self.processes.append(process)
        return process

    def interrupt_processes(self, cause: str) -> None:
        for proc in self.processes:
            if proc.is_alive:
                proc.interrupt(cause)
                # The framework is killing the process; an executor that
                # doesn't catch the Interrupt should not crash the
                # simulation.
                proc.defused()
        self.processes = [p for p in self.processes if p.is_alive]

    # -- reflection -----------------------------------------------------------
    def info(self) -> InstanceInfo:
        port_infos = []
        for desc in self.ports.describe():
            type_id = desc.get("repo_id", desc.get("event_kind", ""))
            peer = desc.get("peer", desc.get("channel", desc.get("ior", "")))
            port_infos.append(PortInfo(
                name=desc["name"], kind=desc["kind"],
                type_id=type_id, peer=str(peer),
            ))
        return InstanceInfo(
            instance_id=self.instance_id,
            component=self.component_name,
            version=str(self.component_class.version),
            host=self.host_id,
            active=self.is_active,
            ports=tuple(port_infos),
        )

    def __repr__(self) -> str:
        return (f"<ComponentInstance {self.instance_id} "
                f"[{self.component_name}] {self.state.value} on "
                f"{self.host_id}>")

"""Component instance replication (§2.1.1).

A component descriptor declares whether its instances "can be
replicated, either because they are stateless or they know how [to]
interact with the framework to maintain replica consistency".  The
replica manager implements both flavours:

- ``stateless``: N independent instances; clients spread or fail over.
- ``coordinated``: one primary whose externalized state is pushed to
  the backups after updates (framework-mediated consistency).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.components.reflection import InstanceInfo
from repro.orb.exceptions import SystemException
from repro.orb.ior import IOR
from repro.sim.kernel import Event
from repro.util.errors import ReproError


class ReplicationError(ReproError):
    """Replication refused (non-replicable component) or failed."""


@dataclass
class ReplicaMember:
    host: str
    instance_id: str
    facet_ior: Optional[IOR]
    #: Promotion epoch whose state this member is known to carry: the
    #: group's epoch when the member was last primary or last received
    #: a sync from the primary.  A member that crashed and came back
    #: keeps its old stamp, which is what fences it out.
    epoch: int = 0


@dataclass
class ReplicaGroup:
    """The members of one replicated component."""

    component: str
    facet_repo_id: str
    mode: str                       # "stateless" | "coordinated"
    members: list[ReplicaMember] = field(default_factory=list)
    #: Monotonic fencing number, bumped on every primary promotion.
    epoch: int = 0
    #: instance_id of the current fenced primary (coordinated mode).
    primary_id: Optional[str] = None
    _rr: int = 0

    def alive_members(self, topology) -> list[ReplicaMember]:
        return [m for m in self.members
                if topology.host(m.host).alive]

    def select(self, topology) -> ReplicaMember:
        """First live member (failover order)."""
        alive = self.alive_members(topology)
        if not alive:
            raise ReplicationError(
                f"no live replicas of {self.component}"
            )
        return alive[0]

    def select_round_robin(self, topology) -> ReplicaMember:
        """Load-spreading selection for stateless groups.

        The cursor walks *positions in the full member list* and skips
        dead members, so each member keeps a stable slot in the
        rotation: a crash or restart elsewhere in the group never
        skews which member the cursor lands on next.
        """
        if not self.members:
            raise ReplicationError(f"no replicas of {self.component}")
        n = len(self.members)
        for offset in range(n):
            member = self.members[(self._rr + offset) % n]
            if topology.host(member.host).alive:
                self._rr = (self._rr + offset + 1) % n
                return member
        raise ReplicationError(
            f"no live replicas of {self.component}"
        )

    @property
    def primary(self) -> ReplicaMember:
        if not self.members:
            raise ReplicationError("empty replica group")
        for member in self.members:
            if member.instance_id == self.primary_id:
                return member
        return self.members[0]

    def promote(self, member: ReplicaMember) -> None:
        """Make *member* the fenced primary under a fresh epoch."""
        self.epoch += 1
        member.epoch = self.epoch
        self.primary_id = member.instance_id

    def select_primary(self, topology) -> ReplicaMember:
        """The fenced primary for a coordinated sync.

        The recorded primary wins while it is alive.  When it is dead
        (or nothing was ever recorded) the live member carrying the
        highest epoch is promoted — never merely the first member that
        happens to be alive, so a restarted ex-primary with a stale
        epoch cannot reclaim the role and push old state.
        """
        alive = self.alive_members(topology)
        if not alive:
            raise ReplicationError(
                f"no live replicas of {self.component}"
            )
        for member in alive:
            if member.instance_id == self.primary_id:
                return member
        best = max(alive, key=lambda m: m.epoch)
        self.promote(best)
        return best


class ReplicaManager:
    """Creates and maintains replica groups from one node."""

    def __init__(self, node) -> None:
        self.node = node

    def create_group(self, component_name: str, hosts: list[str],
                     facet_port: Optional[str] = None) -> Event:
        """Instantiate *component_name* on every host in *hosts*.

        Returns a process event yielding the :class:`ReplicaGroup`.
        Package bytes are shipped to hosts lacking the component.
        """
        return self.node.env.process(
            self._create_group(component_name, hosts, facet_port))

    def _create_group(self, component_name: str, hosts: list[str],
                      facet_port: Optional[str]):
        node = self.node
        cls = node.repository.lookup(component_name)
        if not cls.replicable:
            raise ReplicationError(
                f"component {component_name!r} declares replication=none"
            )
        provides = cls.component_type.provides
        if not provides:
            raise ReplicationError(
                f"component {component_name!r} has no facets to serve from"
            )
        port_decl = provides[0]
        if facet_port is not None:
            matches = [p for p in provides if p.name == facet_port]
            if not matches:
                raise ReplicationError(f"no facet {facet_port!r}")
            port_decl = matches[0]

        group = ReplicaGroup(component=component_name,
                             facet_repo_id=port_decl.repo_id,
                             mode=cls.software.replication)
        exact = f"=={cls.version}"
        for host in hosts:
            if host != node.host_id:
                acceptor = node.service_stub(host, "acceptor")
                installed = yield acceptor.is_installed(component_name, exact)
                if not installed:
                    yield acceptor.install(
                        node.repository.package_bytes(component_name))
            agent = node.service_stub(host, "container")
            info_value = yield agent.create_instance(component_name,
                                                     exact, "")
            info = InstanceInfo.from_value(info_value)
            facet_ior = None
            for port in info.ports:
                if port.name == port_decl.name and port.peer:
                    facet_ior = IOR.from_string(port.peer)
            group.members.append(ReplicaMember(
                host=host, instance_id=info.instance_id,
                facet_ior=facet_ior))
        if group.members:
            group.primary_id = group.members[0].instance_id
        node.metrics.counter("replication.groups").inc()
        return group

    def sync(self, group: ReplicaGroup) -> Event:
        """Push the primary's state to all backups (coordinated mode)."""
        return self.node.env.process(self._sync(group))

    def _sync(self, group: ReplicaGroup):
        if group.mode != "coordinated":
            raise ReplicationError(
                f"group {group.component} is {group.mode}; sync applies "
                "to coordinated replication"
            )
        node = self.node
        epoch_before = group.epoch
        primary = group.select_primary(node.network.topology)
        if group.epoch != epoch_before:
            node.metrics.counter("replication.promotions").inc()
        agent = node.service_stub(primary.host, "container")
        state = yield agent.get_state(primary.instance_id)
        synced = 0
        for member in group.members:
            if member is primary:
                continue
            if not node.network.topology.host(member.host).alive:
                continue
            backup = node.service_stub(member.host, "container")
            try:
                yield backup.set_state(member.instance_id, state)
                # The backup now carries the primary's state generation,
                # so it is a legitimate promotion candidate at this epoch.
                member.epoch = group.epoch
                synced += 1
            except SystemException:
                continue  # unreachable backup; next sync will catch up
        node.metrics.counter("replication.syncs").inc()
        return synced

"""The container-provided context: the instance's view of the world.

Implements :class:`repro.components.executor.ComponentContext` — the
agreed local interface of §2.2.  Every framework service an instance
uses goes through here: connections, events, network-wide component
requests, CPU accounting, timers and process spawning.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.components.ports import PortError
from repro.orb.cdr import Any as CdrAny
from repro.orb.typecodes import (
    TypeCode,
    tc_boolean,
    tc_double,
    tc_long,
    tc_octetseq,
    tc_string,
)
from repro.util.errors import ConfigurationError


def infer_typecode(value: Any) -> TypeCode:
    """Best-effort TypeCode for a bare Python value pushed as an event."""
    if isinstance(value, bool):
        return tc_boolean
    if isinstance(value, int):
        return tc_long
    if isinstance(value, float):
        return tc_double
    if isinstance(value, str):
        return tc_string
    if isinstance(value, (bytes, bytearray)):
        return tc_octetseq
    raise ConfigurationError(
        f"cannot infer a TypeCode for {type(value).__name__}; pass one"
    )


class ContainerContext:
    """Concrete ComponentContext bound to one instance."""

    def __init__(self, container, instance) -> None:
        self._container = container
        self._instance = instance

    # -- identity ----------------------------------------------------------
    @property
    def instance_id(self) -> str:
        return self._instance.instance_id

    @property
    def host_id(self) -> str:
        return self._instance.host_id

    def now(self) -> float:
        return self._container.env.now

    # -- connections ----------------------------------------------------------
    def connection(self, port_name: str):
        """Typed stub for the receptacle's peer, or None if unconnected."""
        receptacle = self._instance.ports.receptacle(port_name)
        if not receptacle.connected:
            return None
        return receptacle.stub(self._container.orb)

    # -- events ------------------------------------------------------------------
    def emit(self, port_name: str, value: Any,
             typecode: Optional[TypeCode] = None) -> None:
        source = self._instance.ports.event_source(port_name)
        if source.channel is None:
            raise PortError(
                f"event source {port_name!r} has no channel"
            )
        if isinstance(value, CdrAny):
            payload = value
        else:
            payload = CdrAny(typecode or infer_typecode(value), value)
        self._container.push_event(source, payload)
        source.emitted += 1

    # -- framework services ----------------------------------------------------------
    def request_component(self, repo_id: str, qos=None):
        """Network-wide dependency resolution (§2.4.3); returns an Event
        yielding the facet IOR of a matching instance."""
        return self._container.node.request_component(repo_id, qos=qos)

    def charge_cpu(self, work_units: float):
        """Account and 'execute' work; yields after the host-scaled time."""
        resources = self._container.node.resources
        duration = resources.work_duration(work_units)
        resources.charge(duration)
        return self._container.env.timeout(duration)

    def schedule(self, delay: float):
        return self._container.env.timeout(delay)

    def spawn(self, generator):
        proc = self._container.env.process(generator)
        self._instance.track(proc)
        return proc

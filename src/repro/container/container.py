"""The Container: instance lifecycle, port wiring, QoS admission.

One container runs per node.  It "leverages the component
implementation of dealing with the non-functional aspects" (§2.2):
creation builds the instance's ports from its descriptor, activates
facet servants in the node's ORB, opens event channels, and reserves
resources; destruction unwinds all of it.  Lifecycle transitions are
reported to listeners so the node's Component Registry (and through it
the Distributed Registry) reflects reality.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.components.factory import ComponentFactoryServant
from repro.components.model import ComponentClass
from repro.components.ports import (
    EventSinkPort,
    EventSourcePort,
    FacetPort,
    ReceptaclePort,
)
from repro.container.context import ContainerContext
from repro.container.instance import ComponentInstance, InstanceState
from repro.orb.cdr import Any as CdrAny
from repro.orb.ior import IOR
from repro.orb.services.events import (
    EVENT_CHANNEL_IFACE,
    CallbackPushConsumer,
)
from repro.util.errors import ReproError
from repro.xmlmeta.versions import VersionRange

#: ORB adapter names the container uses on its node.
COMPONENT_ADAPTER = "components"


class ContainerError(ReproError):
    """Instance management failure."""


class Container:
    """Hosts component instances on one node."""

    def __init__(self, node) -> None:
        """*node* provides: env, orb, host_id, repository, resources,
        events (EventBroker), ids (IdGenerator), request_component()."""
        self.node = node
        self.env = node.env
        self.orb = node.orb
        self.host_id = node.host_id
        self._instances: dict[str, ComponentInstance] = {}
        self._factories: dict[str, ComponentFactoryServant] = {}
        #: observers called with ("created"|"destroyed"|"migrated-out"|
        #: "changed", ComponentInstance)
        self.listeners: list[Callable[[str, ComponentInstance], None]] = []

    @property
    def poa(self):
        return self.orb.adapter(COMPONENT_ADAPTER)

    # -- factories -------------------------------------------------------------
    def factory_for(self, component_name: str) -> ComponentFactoryServant:
        """The (lazily created) factory servant for a component type."""
        servant = self._factories.get(component_name)
        if servant is None:
            if not self.node.repository.is_installed(component_name):
                raise ContainerError(
                    f"component {component_name!r} not installed on "
                    f"{self.host_id}"
                )
            servant = ComponentFactoryServant(self, component_name)
            self.orb.adapter("factories").activate(
                servant, key=component_name)
            self._factories[component_name] = servant
        return servant

    def factory_ior(self, component_name: str) -> IOR:
        self.factory_for(component_name)
        return self.orb.adapter("factories").ior_for(component_name)

    # -- creation ----------------------------------------------------------------
    def create_instance(self, component_name: str,
                        requested_name: Optional[str] = None,
                        versions: VersionRange = VersionRange(""),
                        initial_state: Optional[dict] = None,
                        ) -> ComponentInstance:
        """Create, wire and activate an instance of *component_name*."""
        cls = self.node.repository.lookup(component_name, versions)
        self.node.resources.reserve(cls.component_type.qos)
        try:
            instance = self._build_instance(cls, requested_name,
                                            initial_state)
        except Exception:
            self.node.resources.release(cls.component_type.qos)
            raise
        self._instances[instance.instance_id] = instance
        self._notify("created", instance)
        return instance

    def _build_instance(self, cls: ComponentClass,
                        requested_name: Optional[str],
                        initial_state: Optional[dict]) -> ComponentInstance:
        instance_id = requested_name or self.node.ids.next(
            f"{cls.name}.{self.host_id}")
        if instance_id in self._instances:
            raise ContainerError(f"instance id {instance_id!r} taken")
        executor = cls.new_executor()
        instance = ComponentInstance(instance_id, cls, executor,
                                     self.host_id)

        ctype = cls.component_type
        # Facets: executor supplies servants; container activates them.
        for decl in ctype.provides:
            servant = executor.create_facet(decl.name)
            ior = self.poa.activate(
                servant, key=f"{instance_id}.{decl.name}")
            instance.ports.add(FacetPort(decl.name, decl.repo_id, servant,
                                         ior))
        # Receptacles: empty until connected.
        for decl in ctype.uses:
            instance.ports.add(ReceptaclePort(decl.name, decl.repo_id,
                                              optional=decl.optional))
        # Event sources: the framework opens a push channel per kind.
        for decl in ctype.emits:
            channel = self.node.events.channel_ior(decl.event_kind)
            instance.ports.add(EventSourcePort(decl.name, decl.event_kind,
                                               channel))
        # Event sinks: a consumer servant, subscribed to the local
        # channel of that kind by default.
        for decl in ctype.consumes:
            port = EventSinkPort(decl.name, decl.event_kind)
            consumer = CallbackPushConsumer(
                lambda data, name=decl.name: executor.on_event(name, data))
            port.consumer_ior = self.poa.activate(
                consumer, key=f"{instance_id}.{decl.name}")
            instance.ports.add(port)
            self.subscribe_sink(instance, decl.name,
                                self.node.events.channel_ior(decl.event_kind))

        # Reflect port mutations out to the registry.
        instance.ports.listeners.append(
            lambda _action, _port: self._notify("changed", instance))

        executor.set_context(ContainerContext(self, instance))
        if initial_state is not None:
            executor.set_state(initial_state)
        executor.activate()
        instance.state = InstanceState.ACTIVE
        return instance

    # -- destruction ---------------------------------------------------------------
    def destroy_instance(self, instance_id: str) -> None:
        instance = self._require(instance_id)
        instance.require_state(InstanceState.ACTIVE, InstanceState.PASSIVE,
                               InstanceState.CREATED)
        instance.interrupt_processes("destroyed")
        instance.executor.remove()
        self._teardown_ports(instance)
        self.node.resources.release(instance.qos)
        instance.state = InstanceState.DESTROYED
        del self._instances[instance_id]
        factory = self._factories.get(instance.component_name)
        if factory is not None:
            factory.forget(instance_id)
        self._notify("destroyed", instance)

    def _teardown_ports(self, instance: ComponentInstance) -> None:
        for name in list(instance.ports.names()):
            port = instance.ports.get(name)
            if isinstance(port, (FacetPort, EventSinkPort)):
                key = f"{instance.instance_id}.{name}"
                if self.poa.is_active(key):
                    self.poa.deactivate(key)
            if isinstance(port, EventSinkPort):
                self._unsubscribe_all(port)

    # -- wiring ---------------------------------------------------------------------
    def connect(self, instance_id: str, receptacle_name: str,
                peer: IOR) -> None:
        instance = self._require(instance_id)
        instance.ports.receptacle(receptacle_name).connect(peer)
        instance.ports.changed(receptacle_name)
        self._notify("changed", instance)

    def disconnect(self, instance_id: str, receptacle_name: str) -> IOR:
        instance = self._require(instance_id)
        peer = instance.ports.receptacle(receptacle_name).disconnect()
        instance.ports.changed(receptacle_name)
        self._notify("changed", instance)
        return peer

    def subscribe_sink(self, instance: ComponentInstance, port_name: str,
                       channel: IOR) -> None:
        """Subscribe an event sink to a channel (local or remote)."""
        port = instance.ports.event_sink(port_name)
        if channel in port.subscriptions:
            return
        stub = self.orb.stub(channel, EVENT_CHANNEL_IFACE)
        stub.connect_push_consumer(port.consumer_ior)
        port.subscriptions.append(channel)

    def _unsubscribe_all(self, port: EventSinkPort) -> None:
        for channel in port.subscriptions:
            stub = self.orb.stub(channel, EVENT_CHANNEL_IFACE)
            stub.disconnect_push_consumer(port.consumer_ior)
        port.subscriptions = []

    def push_event(self, source: EventSourcePort, payload: CdrAny) -> None:
        """Emit through a source port's channel (oneway)."""
        stub = self.orb.stub(source.channel, EVENT_CHANNEL_IFACE)
        stub.push(payload)

    # -- queries ----------------------------------------------------------------------
    def find_instance(self, instance_id: str) -> Optional[ComponentInstance]:
        return self._instances.get(instance_id)

    def _require(self, instance_id: str) -> ComponentInstance:
        instance = self._instances.get(instance_id)
        if instance is None:
            raise ContainerError(f"no instance {instance_id!r}")
        return instance

    def instances(self) -> list[ComponentInstance]:
        return list(self._instances.values())

    def instance_infos(self) -> list:
        return [inst.info() for inst in self._instances.values()]

    def __len__(self) -> int:
        return len(self._instances)

    # -- internal -----------------------------------------------------------------------
    def _notify(self, action: str, instance: ComponentInstance) -> None:
        for listener in list(self.listeners):
            listener(action, instance)

    # Used by migration: remove the local shell without executor.remove().
    def _evict(self, instance: ComponentInstance) -> None:
        instance.interrupt_processes("migrating")
        self._teardown_ports(instance)
        self.node.resources.release(instance.qos)
        instance.state = InstanceState.MIGRATING
        del self._instances[instance.instance_id]
        factory = self._factories.get(instance.component_name)
        if factory is not None:
            factory.forget(instance.instance_id)
        self._notify("migrated-out", instance)

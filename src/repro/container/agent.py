"""The Container Agent: node-to-node instance management.

Remote face of the container used by the deployment planner (create an
instance on a chosen node, wire a connection) and by the migration
engine (incarnate a passivated instance with its externalized state).
"""

from __future__ import annotations

import pickle

from repro.components.reflection import INSTANCE_INFO_TC, PORT_INFO_TC
from repro.orb.core import InterfaceDef, Servant, make_exception_class, op
from repro.orb.exceptions import NO_RESOURCES
from repro.orb.ior import IOR
from repro.orb.typecodes import (
    except_tc,
    sequence_tc,
    struct_tc,
    tc_octetseq,
    tc_string,
)
from repro.util.errors import ValidationError
from repro.xmlmeta.versions import VersionRange

AGENT_ERROR_TC = except_tc(
    "AgentError", [("reason", tc_string)],
    repo_id="IDL:corbalc/Node/AgentError:1.0",
)
AgentError = make_exception_class("AgentError", AGENT_ERROR_TC)

#: (port name, peer reference) pairs used to transfer wiring.
WIRING_TC = struct_tc("Wiring", [
    ("name", tc_string),
    ("peer", tc_string),
], repo_id="IDL:corbalc/Node/Wiring:1.0")

CONTAINER_AGENT_IFACE = InterfaceDef(
    "IDL:corbalc/Node/ContainerAgent:1.0",
    "ContainerAgent",
    operations=[
        op("create_instance",
           [("component", tc_string), ("versions", tc_string),
            ("name", tc_string)],
           INSTANCE_INFO_TC, raises=[AGENT_ERROR_TC], cpu_cost=1.0),
        op("destroy_instance", [("instance_id", tc_string)],
           raises=[AGENT_ERROR_TC]),
        op("connect",
           [("instance_id", tc_string), ("port", tc_string),
            ("peer", tc_string)], raises=[AGENT_ERROR_TC]),
        op("disconnect",
           [("instance_id", tc_string), ("port", tc_string)],
           raises=[AGENT_ERROR_TC]),
        op("subscribe",
           [("instance_id", tc_string), ("port", tc_string),
            ("channel", tc_string)], raises=[AGENT_ERROR_TC]),
        op("incarnate",
           [("component", tc_string), ("versions", tc_string),
            ("instance_id", tc_string), ("state", tc_octetseq),
            ("receptacles", sequence_tc(WIRING_TC)),
            ("subscriptions", sequence_tc(WIRING_TC))],
           INSTANCE_INFO_TC, raises=[AGENT_ERROR_TC], cpu_cost=2.0),
        op("get_state", [("instance_id", tc_string)], tc_octetseq,
           raises=[AGENT_ERROR_TC]),
        op("set_state", [("instance_id", tc_string),
                         ("state", tc_octetseq)],
           raises=[AGENT_ERROR_TC]),
    ],
)


class StateDecodeError(ValidationError):
    """An externalized-state blob failed to decode.

    State travels the wire as an opaque octet sequence, so link-level
    corruption (or a buggy peer) can hand back bytes that are not a
    valid snapshot.  Consumers must treat that as a *bad snapshot*,
    never as a fatal error: a supervisor keeps its previous checkpoint,
    an incarnation attempt fails cleanly and is retried.
    """


def dumps_state(state: dict) -> bytes:
    """Externalized-state wire form (stands in for CDR valuetype)."""
    return pickle.dumps(state, protocol=4)


def loads_state(data: bytes) -> dict:
    try:
        state = pickle.loads(data)
    except Exception as exc:
        raise StateDecodeError(
            f"corrupt externalized state ({len(data)} bytes): "
            f"{exc}") from None
    if not isinstance(state, dict):
        raise StateDecodeError(
            f"externalized state decoded to {type(state).__name__}, "
            f"expected dict")
    return state


class ContainerAgentServant(Servant):
    """Remote instance management on one node's container."""

    _interface = CONTAINER_AGENT_IFACE

    def __init__(self, node) -> None:
        self.node = node

    @property
    def container(self):
        return self.node.container

    def create_instance(self, component: str, versions: str,
                        name: str) -> dict:
        try:
            instance = self.container.create_instance(
                component, requested_name=name or None,
                versions=VersionRange(versions))
        except NO_RESOURCES:
            raise  # system exception travels as-is
        except Exception as exc:
            raise AgentError(str(exc)) from None
        return instance.info().to_value()

    def destroy_instance(self, instance_id: str) -> None:
        try:
            self.container.destroy_instance(instance_id)
        except Exception as exc:
            raise AgentError(str(exc)) from None

    def connect(self, instance_id: str, port: str, peer: str) -> None:
        try:
            self.container.connect(instance_id, port, IOR.from_string(peer))
        except Exception as exc:
            raise AgentError(str(exc)) from None

    def disconnect(self, instance_id: str, port: str) -> None:
        try:
            self.container.disconnect(instance_id, port)
        except Exception as exc:
            raise AgentError(str(exc)) from None

    def subscribe(self, instance_id: str, port: str, channel: str) -> None:
        try:
            instance = self.container.find_instance(instance_id)
            if instance is None:
                raise AgentError(f"no instance {instance_id!r}")
            self.container.subscribe_sink(instance, port,
                                          IOR.from_string(channel))
        except AgentError:
            raise
        except Exception as exc:
            raise AgentError(str(exc)) from None

    def incarnate(self, component: str, versions: str, instance_id: str,
                  state: bytes, receptacles: list[dict],
                  subscriptions: list[dict]) -> dict:
        """Re-create a migrated instance here with its captured state."""
        try:
            instance = self.container.create_instance(
                component, requested_name=instance_id,
                versions=VersionRange(versions),
                initial_state=loads_state(state))
            for wiring in receptacles:
                if wiring["peer"]:
                    self.container.connect(
                        instance_id, wiring["name"],
                        IOR.from_string(wiring["peer"]))
            for wiring in subscriptions:
                if wiring["peer"]:
                    self.container.subscribe_sink(
                        instance, wiring["name"],
                        IOR.from_string(wiring["peer"]))
        except NO_RESOURCES:
            raise
        except Exception as exc:
            raise AgentError(str(exc)) from None
        return instance.info().to_value()

    def get_state(self, instance_id: str) -> bytes:
        """Externalize a running instance's state (replication sync)."""
        instance = self.container.find_instance(instance_id)
        if instance is None:
            raise AgentError(f"no instance {instance_id!r}")
        return dumps_state(instance.executor.get_state())

    def set_state(self, instance_id: str, state: bytes) -> None:
        instance = self.container.find_instance(instance_id)
        if instance is None:
            raise AgentError(f"no instance {instance_id!r}")
        try:
            decoded = loads_state(state)
        except StateDecodeError as exc:
            raise AgentError(str(exc)) from None
        instance.executor.set_state(decoded)

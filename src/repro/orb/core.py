"""The ORB runtime: typed invocation between hosts on the simulated net.

One :class:`ORB` runs per host and binds the host's ``giop`` port.  A
client marshals a request with the target operation's signature, the
encoded bytes travel the network, the server ORB unmarshals, charges
the operation's CPU cost (scaled by the host's power), dispatches to
the servant, and sends back a CDR-encoded reply.

Invocation is asynchronous at the kernel level: :meth:`ORB.invoke`
returns a kernel :class:`~repro.sim.kernel.Event` that a simulation
process ``yield``-s on.  Test code outside the simulation can use
:meth:`ORB.sync` to run the clock until a reply arrives.

Servant methods may return either a plain value or a generator; a
generator is driven as a simulation process, which lets servants make
nested remote calls or sleep for simulated time while serving.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from heapq import heappop, heappush
from typing import Any as TAny
from typing import Callable, Iterable, Optional, Sequence

from repro.obs import names
from repro.orb import giop
from repro.orb.cdr import CDRDecoder, CDREncoder, decode_value, encode_value
from repro.orb.compiled import get_plan, op_codec
from repro.orb.exceptions import (
    BAD_OPERATION,
    BAD_PARAM,
    COMM_FAILURE,
    COMPLETED_NO,
    INTERNAL,
    MINOR_SHED,
    NO_IMPLEMENT,
    OBJECT_NOT_EXIST,
    SYSTEM_EXCEPTIONS,
    TIMEOUT,
    TRANSIENT,
    UNKNOWN,
    SystemException,
    UserException,
)
from repro.orb.ior import IOR
from repro.orb.typecodes import TCKind, TypeCode, tc_void
from repro.sim.kernel import Environment, Event, Timeout
from repro.sim.network import Message, Network
from repro.util.errors import ConfigurationError

#: Default per-operation dispatch cost in abstract work units; a desktop
#: (cpu_power=400) spends 0.25 ms per unit-cost operation.
DEFAULT_OP_COST = 0.1

PARAM_MODES = ("in", "inout", "out")


@dataclass(frozen=True)
class ParamDef:
    """One formal parameter of an IDL operation."""

    name: str
    tc: TypeCode
    mode: str = "in"

    def __post_init__(self) -> None:
        if self.mode not in PARAM_MODES:
            raise ConfigurationError(f"bad parameter mode {self.mode!r}")


@dataclass(frozen=True)
class OperationDef:
    """Signature of one IDL operation.

    ``raises`` lists the EXCEPT TypeCodes of declared user exceptions.
    ``cpu_cost`` is the simulated work the server performs per call.
    """

    name: str
    params: tuple[ParamDef, ...] = ()
    result: TypeCode = tc_void
    raises: tuple[TypeCode, ...] = ()
    oneway: bool = False
    cpu_cost: float = DEFAULT_OP_COST

    def __post_init__(self) -> None:
        if self.oneway and (
            self.result.kind is not TCKind.VOID
            or any(p.mode != "in" for p in self.params)
            or self.raises
        ):
            raise ConfigurationError(
                f"oneway operation {self.name!r} must be void, in-only, "
                "and raise nothing"
            )

    def in_params(self) -> list[ParamDef]:
        return [p for p in self.params if p.mode in ("in", "inout")]

    def out_params(self) -> list[ParamDef]:
        return [p for p in self.params if p.mode in ("inout", "out")]


def op(name: str, params: Sequence[tuple] = (), result: TypeCode = tc_void,
       raises: Sequence[TypeCode] = (), oneway: bool = False,
       cpu_cost: float = DEFAULT_OP_COST) -> OperationDef:
    """Shorthand OperationDef constructor.

    *params* entries are ``(name, tc)`` (mode "in") or ``(name, tc, mode)``.
    """
    pdefs = []
    for entry in params:
        if len(entry) == 2:
            pdefs.append(ParamDef(entry[0], entry[1]))
        else:
            pdefs.append(ParamDef(entry[0], entry[1], entry[2]))
    return OperationDef(name=name, params=tuple(pdefs), result=result,
                        raises=tuple(raises), oneway=oneway, cpu_cost=cpu_cost)


class InterfaceDef:
    """An IDL interface: named operations plus inherited bases."""

    def __init__(self, repo_id: str, name: str,
                 operations: Iterable[OperationDef] = (),
                 bases: Sequence["InterfaceDef"] = ()) -> None:
        self.repo_id = repo_id
        self.name = name
        self.bases = tuple(bases)
        self.operations: dict[str, OperationDef] = {}
        #: flattened name -> OperationDef lookup, built lazily on the
        #: dispatch hot path and invalidated by add_operation.
        self._op_cache: Optional[dict[str, OperationDef]] = None
        for odef in operations:
            self.add_operation(odef)

    def add_operation(self, odef: OperationDef) -> None:
        if odef.name in self.operations:
            raise ConfigurationError(
                f"duplicate operation {odef.name!r} on {self.name}"
            )
        self.operations[odef.name] = odef
        self._op_cache = None

    def add_attribute(self, name: str, tc: TypeCode, readonly: bool = False,
                      cpu_cost: float = DEFAULT_OP_COST) -> None:
        """Model an IDL attribute as _get_/_set_ operations."""
        self.add_operation(OperationDef(f"_get_{name}", (), tc,
                                        cpu_cost=cpu_cost))
        if not readonly:
            self.add_operation(
                OperationDef(f"_set_{name}", (ParamDef("value", tc),),
                             tc_void, cpu_cost=cpu_cost)
            )

    def find_operation(self, name: str) -> Optional[OperationDef]:
        cache = self._op_cache
        if cache is None:
            cache = self._op_cache = self._build_op_cache()
        return cache.get(name)

    def _build_op_cache(self) -> dict[str, OperationDef]:
        # Same precedence as the old recursive scan: own operations
        # first, then bases in declaration order, first match wins.
        cache = dict(self.operations)
        for base in self.bases:
            for name, odef in base._build_op_cache().items():
                cache.setdefault(name, odef)
        return cache

    def all_operations(self) -> dict[str, OperationDef]:
        ops: dict[str, OperationDef] = {}
        for base in self.bases:
            ops.update(base.all_operations())
        ops.update(self.operations)
        return ops

    def is_a(self, repo_id: str) -> bool:
        if self.repo_id == repo_id:
            return True
        return any(base.is_a(repo_id) for base in self.bases)

    def __repr__(self) -> str:
        return f"<InterfaceDef {self.name} ({self.repo_id})>"


class Servant:
    """Base class for objects incarnated under an object adapter.

    Subclasses set ``_interface`` (an :class:`InterfaceDef`) and define
    one method per operation.  Methods receive the decoded ``in``/
    ``inout`` arguments positionally; for operations with out/inout
    parameters they return ``(result, out1, out2, ...)``; otherwise just
    the result (or None for void).
    """

    _interface: InterfaceDef

    def interface(self) -> InterfaceDef:
        iface = getattr(self, "_interface", None)
        if iface is None:
            raise ConfigurationError(
                f"{type(self).__name__} does not declare _interface"
            )
        return iface


# -- user exception registry ---------------------------------------------------

_EXC_BY_REPO_ID: dict[str, tuple[type[UserException], TypeCode]] = {}


def register_exception(cls: type[UserException], tc: TypeCode) -> None:
    """Register a UserException subclass so replies can reconstruct it."""
    if tc.kind is not TCKind.EXCEPT:
        raise ConfigurationError(f"{tc!r} is not an exception TypeCode")
    if tuple(cls.FIELDS) != tuple(n for n, _ in tc.members):
        raise ConfigurationError(
            f"{cls.__name__}.FIELDS do not match TypeCode members"
        )
    _EXC_BY_REPO_ID[cls.REPO_ID] = (cls, tc)


def exception_class(repo_id: str) -> Optional[tuple[type[UserException], TypeCode]]:
    return _EXC_BY_REPO_ID.get(repo_id)


def make_exception_class(name: str, tc: TypeCode) -> type[UserException]:
    """Create (and register) a UserException subclass from an EXCEPT tc."""
    cls = type(name, (UserException,), {
        "REPO_ID": tc.repo_id,
        "FIELDS": tuple(n for n, _ in tc.members),
    })
    register_exception(cls, tc)
    return cls


# -- request interceptors ------------------------------------------------------
#
# Portable-interceptor-style hook points around invocation.  The ORB
# calls duck-typed interceptor objects; it does not depend on any
# concrete implementation (repro.obs provides tracing/metrics ones).
#
# Client interceptors: ``send_request(info)`` in registration order
# before the request hits the wire (may add service-context slots),
# then exactly one of ``receive_reply(info)`` / ``receive_exception
# (info)`` in reverse order once the invocation completes (reply,
# user/system exception, timeout, crash — or immediately for oneways).
#
# Server interceptors: ``receive_request(info)`` in registration order
# when a dispatch starts, ``finish_request(info)`` in reverse order
# when it ends (whatever the outcome); the optional ``child_process
# (info, proc)`` is called when the servant method is a generator that
# the ORB drives as a nested simulation process.


class ClientRequestInfo:
    """Mutable view of one outgoing invocation, shared by client
    interceptors across the send/complete hook pair."""

    __slots__ = ("orb", "ior", "odef", "request_id", "oneway", "meter",
                 "service_context", "request_bytes", "reply_bytes",
                 "start", "end", "slots")

    def __init__(self, orb: "ORB", ior: IOR, odef: OperationDef,
                 request_id: int, meter: Optional[str],
                 oneway: bool) -> None:
        self.orb = orb
        self.ior = ior
        self.odef = odef
        self.request_id = request_id
        self.oneway = oneway
        self.meter = meter
        #: str -> str slots copied into the GIOP request service context.
        self.service_context: dict[str, str] = {}
        self.request_bytes = 0
        self.reply_bytes = 0
        self.start = orb.env.now
        self.end: Optional[float] = None
        #: scratch space for interceptors (e.g. the open span).
        self.slots: dict[str, TAny] = {}

    @property
    def operation(self) -> str:
        return self.odef.name

    @property
    def latency(self) -> float:
        return (self.end if self.end is not None else self.orb.env.now) \
            - self.start


class ServerRequestInfo:
    """Mutable view of one inbound dispatch, shared by server
    interceptors across the receive/finish hook pair."""

    __slots__ = ("orb", "request", "client", "process", "service_context",
                 "request_bytes", "reply_bytes", "reply_status",
                 "exception", "start", "end", "slots")

    def __init__(self, orb: "ORB", request: "giop.RequestMessage",
                 client: str, request_bytes: int) -> None:
        self.orb = orb
        self.request = request
        self.client = client
        #: the simulation process driving this dispatch.
        self.process = None
        self.service_context = dict(request.service_context)
        self.request_bytes = request_bytes
        self.reply_bytes = 0
        #: GIOP reply status actually sent, or None (oneway / dropped).
        self.reply_status: Optional[int] = None
        self.exception: Optional[BaseException] = None
        self.start = orb.env.now
        self.end: Optional[float] = None
        self.slots: dict[str, TAny] = {}

    @property
    def operation(self) -> str:
        return self.request.operation

    @property
    def latency(self) -> float:
        return (self.end if self.end is not None else self.orb.env.now) \
            - self.start


# -- stubs ---------------------------------------------------------------------

class Stub:
    """Client-side proxy: one method per operation returning kernel Events."""

    def __init__(self, orb: "ORB", ior: IOR, interface: InterfaceDef) -> None:
        self._orb = orb
        self._ior = ior
        self._iface = interface

    @property
    def ior(self) -> IOR:
        return self._ior

    @property
    def stub_interface(self) -> InterfaceDef:
        return self._iface

    def __getattr__(self, name: str):
        # Only called for attributes not found normally: operation lookup.
        odef = self._iface.find_operation(name)
        if odef is None:
            raise AttributeError(
                f"{self._iface.name} has no operation {name!r}"
            )

        def call(*args, _timeout: Optional[float] = None,
                 _meter: Optional[str] = None) -> Event:
            return self._orb.invoke(self._ior, odef, args,
                                    timeout=_timeout, meter=_meter)

        call.__name__ = name
        # Memoize on the instance so repeat calls skip __getattr__ and
        # the operation lookup entirely.
        self.__dict__[name] = call
        return call

    def __repr__(self) -> str:
        return f"<Stub {self._iface.name} -> {self._ior}>"


class _ImmediateCtx:
    """Minimal event stand-in for the zero-CPU-cost dispatch path, so
    :meth:`ORB._dispatch_finish` has a single (callback-shaped)
    signature whether or not a cost timeout was scheduled."""

    __slots__ = ("_value",)

    def __init__(self, value) -> None:
        self._value = value


class _DispatchSlots:
    """FIFO semaphore bounding concurrent servant execution.

    A host has finite CPU parallelism; when every slot is busy further
    admitted dispatches queue here in arrival order, which is what makes
    overload *visible* (queueing delay, growing inflight count) instead
    of the server pretending to be infinitely parallel.
    """

    __slots__ = ("env", "capacity", "_free", "_waiters")

    def __init__(self, env: Environment, capacity: int) -> None:
        if capacity < 1:
            raise ConfigurationError(
                f"dispatch workers must be >= 1, got {capacity}"
            )
        self.env = env
        self.capacity = capacity
        self._free = capacity
        self._waiters: deque[Event] = deque()

    def acquire(self) -> Event:
        """Event that fires (possibly immediately) once a slot is held."""
        ev = self.env.event()
        if self._free > 0:
            self._free -= 1
            ev.succeed(None)
        else:
            self._waiters.append(ev)
        return ev

    def release(self) -> None:
        if self._waiters:
            self._waiters.popleft().succeed(None)
        else:
            self._free += 1

    @property
    def queued(self) -> int:
        return len(self._waiters)


class _PipeChannel:
    """Per-destination buffer of encoded oneway frames awaiting a flush.

    ``token`` versions the armed flush timer: arming bumps it and any
    timer carrying a stale token is a no-op, so an early flush (size or
    byte threshold) can never be followed by a spurious empty flush.
    """

    __slots__ = ("frames", "nbytes", "token", "armed")

    def __init__(self) -> None:
        self.frames: list[bytes] = []
        self.nbytes = 0
        self.token = 0
        self.armed = False


class ORB:
    """One Object Request Broker per simulated host."""

    #: Reply deadline for response-expected calls made without an
    #: explicit (or default) timeout.  A lost reply must not park its
    #: pending-table entry forever; 60 simulated seconds is far beyond
    #: any legitimate reply latency in these topologies.  Pass
    #: ``reply_deadline=None`` to restore unbounded waiting.
    REPLY_DEADLINE = 60.0

    def __init__(
        self,
        env: Environment,
        network: Network,
        host_id: str,
        default_timeout: Optional[float] = None,
        reply_deadline: Optional[float] = REPLY_DEADLINE,
        dispatch_workers: Optional[int] = None,
        dispatch_limit: Optional[int] = None,
        pipeline_window: Optional[float] = None,
        pipeline_max_frames: int = 64,
        pipeline_max_bytes: int = 16384,
    ) -> None:
        self.env = env
        self.network = network
        self.host_id = host_id
        self.host = network.topology.host(host_id)
        self.metrics = network.metrics
        self.default_timeout = default_timeout
        self.reply_deadline = reply_deadline
        #: admission control: max requests admitted and not yet finished
        #: (executing + queued for a worker slot).  ``None`` = unbounded.
        self.dispatch_limit = dispatch_limit
        #: CPU parallelism: servant execution is serialized through this
        #: many worker slots.  ``None`` = infinitely parallel (legacy).
        self._slots = (_DispatchSlots(env, dispatch_workers)
                       if dispatch_workers is not None else None)
        self._inflight = 0
        self._iface = network.interface(host_id)
        self._iface.bind("giop", self._on_message)
        self._adapters: dict[str, "POA"] = {}
        self._enc_pool: list[CDREncoder] = []
        #: (host, adapter, key, operation) -> pre-encoded request routing
        #: segment; repeat invocations skip four string encodes per call.
        self._prefix_cache: dict[tuple, bytes] = {}
        #: (adapter, key, operation) -> (poa, poa_gen, servant, odef);
        #: entries are fenced by the POA generation counter so
        #: deactivation/reactivation can never serve a stale servant.
        self._resolve_cache: dict[tuple, tuple] = {}
        self._next_request_id = 0
        #: request_id -> (reply event, OperationDef, ClientRequestInfo|None)
        self._pending: dict[
            int, tuple[Event, OperationDef, Optional[ClientRequestInfo]]
        ] = {}
        #: Reply deadlines, kept out of the kernel event queue.  One
        #: kernel timer is armed for the earliest entry; answered calls
        #: are removed lazily when their slot is swept.  A per-call 60 s
        #: kernel Timeout would linger in the kernel heap long after the
        #: reply, growing it by one entry per call and taxing every
        #: subsequent push/pop with deeper sifts.
        self._deadline_heap: list[tuple] = []
        self._deadline_armed_at = float("inf")
        #: versions the armed sweeper: every (re-)arm bumps it and a
        #: firing timer whose token is stale returns immediately, so at
        #: most one live sweeper exists no matter how often an earlier
        #: deadline preempts a later one (a preempted timer must not
        #: re-arm a duplicate when it finally fires).
        self._deadline_token = 0
        #: GIOP request pipelining: when ``pipeline_window`` is set,
        #: oneway sends sharing a destination within the window are
        #: framed into one MSG_MULTI transmission (one header, one link
        #: charge) instead of one message each.
        self.pipeline_window = pipeline_window
        self.pipeline_max_frames = min(pipeline_max_frames,
                                       giop.MAX_MULTI_FRAMES)
        self.pipeline_max_bytes = pipeline_max_bytes
        self._pipe_channels: dict[str, _PipeChannel] = {}
        #: called with cpu-seconds on every dispatch (resource accounting)
        self.dispatch_listeners: list[Callable[[float], None]] = []
        #: called with the pending-table depth on every add/remove.
        self.pending_watchers: list[Callable[[int], None]] = []
        #: called with the inbound dispatch depth on every admit/finish.
        self.dispatch_watchers: list[Callable[[int], None]] = []
        self._client_interceptors: list[TAny] = []
        self._server_interceptors: list[TAny] = []
        # Hot-path counters resolved once instead of per call.
        self._ctr_requests = self.metrics.counter(names.ORB_REQUESTS)
        self._ctr_replies = self.metrics.counter(names.ORB_REPLIES)
        self._ctr_dispatches = self.metrics.counter(names.ORB_DISPATCHES)
        #: observability hub, set by repro.obs.Observability.install().
        self.obs = None
        self.host.on_crash.append(self._on_host_crash)

    # -- interceptors ------------------------------------------------------
    def add_client_interceptor(self, interceptor: TAny) -> None:
        """Register a client request interceptor (see module notes)."""
        self._client_interceptors.append(interceptor)

    def add_server_interceptor(self, interceptor: TAny) -> None:
        """Register a server request interceptor (see module notes)."""
        self._server_interceptors.append(interceptor)

    def _watch_pending(self) -> None:
        if self.pending_watchers:
            depth = len(self._pending)
            for watcher in self.pending_watchers:
                watcher(depth)

    def _watch_dispatch(self) -> None:
        if self.dispatch_watchers:
            depth = self._inflight
            for watcher in self.dispatch_watchers:
                watcher(depth)

    @property
    def inflight_dispatches(self) -> int:
        """Requests admitted and not yet finished (queued + executing)."""
        return self._inflight

    # -- adapters ----------------------------------------------------------
    def adapter(self, name: str) -> "POA":
        """Return (creating on first use) the named object adapter."""
        poa = self._adapters.get(name)
        if poa is None:
            from repro.orb.poa import POA  # deferred: poa imports core

            poa = POA(self, name)
            self._adapters[name] = poa
        return poa

    def adapters(self) -> dict[str, "POA"]:
        return dict(self._adapters)

    # -- encoder pooling ---------------------------------------------------
    def _acquire_encoder(self) -> CDREncoder:
        pool = self._enc_pool
        return pool.pop() if pool else CDREncoder()

    def _release_encoder(self, enc: CDREncoder) -> None:
        # Callers release only after take() or reset(), so the pooled
        # buffer is always empty (reset keeps its capacity, so steady
        # traffic stops reallocating).
        if len(self._enc_pool) < 8:
            self._enc_pool.append(enc)

    # -- client side -------------------------------------------------------
    def stub(self, ior: IOR, interface: InterfaceDef) -> Stub:
        """Create a typed proxy for *ior* narrowed to *interface*."""
        return Stub(self, ior, interface)

    def _request_prefix(self, ior: IOR, operation: str) -> bytes:
        """Cached pre-encoded routing segment for (target, operation)."""
        key = (ior.host_id, ior.adapter, ior.object_key, operation)
        cache = self._prefix_cache
        prefix = cache.get(key)
        if prefix is None:
            if len(cache) >= 1024:
                cache.clear()
            prefix = giop.encode_request_prefix(
                ior.host_id, ior.adapter, ior.object_key, operation)
            cache[key] = prefix
        return prefix

    def _marshal_args_pooled(self, odef: OperationDef,
                             args: Sequence[TAny]) -> CDREncoder:
        """Marshal *args* into a pooled encoder and return it.

        The caller reads ``enc._buf`` directly (zero-copy into the
        framing layer), then must ``reset()`` and release the encoder.
        """
        try:
            codec = odef._codec
        except AttributeError:
            codec = op_codec(odef)
        if len(args) != len(codec.in_plans):
            raise BAD_PARAM(
                f"{odef.name} expects {len(codec.in_plans)} args, "
                f"got {len(args)}"
            )
        pool = self._enc_pool
        enc = pool.pop() if pool else CDREncoder()
        enc1 = codec.in1_encode
        if enc1 is not None:
            enc1(enc, args[0])
        else:
            codec.encode_in(enc, args)
        return enc

    def _marshal_args(self, odef: OperationDef, args: Sequence[TAny]) -> bytes:
        enc = self._marshal_args_pooled(odef, args)
        args_bytes = enc.take()
        self._release_encoder(enc)
        return args_bytes

    def _client_send_hooks(
        self, ior: IOR, odef: OperationDef, request_id: int,
        meter: Optional[str], oneway: bool,
    ) -> tuple[Optional[ClientRequestInfo], tuple[tuple[str, str], ...]]:
        """Run send_request interceptors; returns (info, service_context)."""
        if not self._client_interceptors:
            return None, ()
        info = ClientRequestInfo(self, ior, odef, request_id, meter, oneway)
        for icpt in self._client_interceptors:
            icpt.send_request(info)
        return info, tuple(sorted(info.service_context.items()))

    def _finish_client(self, info: ClientRequestInfo, event: Event) -> None:
        info.end = self.env.now
        if event.ok:
            for icpt in reversed(self._client_interceptors):
                icpt.receive_reply(info)
        else:
            exc = event.value
            for icpt in reversed(self._client_interceptors):
                icpt.receive_exception(info, exc)

    def send_oneway(
        self,
        ior: IOR,
        odef: OperationDef,
        args: Sequence[TAny],
        meter: Optional[str] = None,
    ) -> int:
        """True fire-and-forget send of a oneway operation.

        Marshals and ships the request with ``response_expected=False``
        and *no* reply machinery: no kernel event is allocated and the
        pending-reply table is never touched, so callers (periodic
        reporters above all) cannot leak state no matter how many
        reports they send or whether the peer is reachable.  Returns
        the wire size in bytes.
        """
        if not odef.oneway:
            raise BAD_PARAM(
                f"{odef.name} expects a response; use invoke() instead"
            )
        enc = self._marshal_args_pooled(odef, args)
        self._next_request_id += 1
        request_id = self._next_request_id
        info, service_context = self._client_send_hooks(
            ior, odef, request_id, meter, oneway=True)
        wire = giop.encode_request(
            request_id, False, self._request_prefix(ior, odef.name),
            enc._buf, service_context)
        enc.reset()
        self._release_encoder(enc)
        self._ctr_requests.inc()
        self.metrics.counter(names.ORB_ONEWAYS).inc()
        if meter is not None:
            # Per-protocol bandwidth attribution (benchmarks rely on it).
            self.metrics.counter(f"{meter}.msgs").inc()
            self.metrics.counter(f"{meter}.bytes").inc(len(wire))
        if self.pipeline_window is not None:
            self._pipe_send(ior.host_id, wire)
        else:
            self.network.send(self.host_id, ior.host_id, "giop", wire,
                              len(wire))
        if info is not None:
            info.request_bytes = len(wire)
            info.end = self.env.now
            for icpt in reversed(self._client_interceptors):
                icpt.receive_reply(info)
        return len(wire)

    def send_oneway_fanout(
        self,
        iors: Sequence[IOR],
        odef: OperationDef,
        args: Sequence[TAny],
        meter: Optional[str] = None,
    ) -> int:
        """Fan one oneway out to many targets, marshalling args once.

        The argument body is encoded a single time and shared by every
        per-destination frame — only the routing prefix and request id
        differ — so wide fan-outs (batched event forwarding above all)
        stop paying the marshal cost once per subscriber.  Semantics
        per target are exactly :meth:`send_oneway`.  Returns total wire
        bytes.
        """
        if not odef.oneway:
            raise BAD_PARAM(
                f"{odef.name} expects a response; use invoke() instead"
            )
        enc = self._marshal_args_pooled(odef, args)
        ctr_oneways = self.metrics.counter(names.ORB_ONEWAYS)
        pipelined = self.pipeline_window is not None
        total = 0
        for ior in iors:
            self._next_request_id += 1
            request_id = self._next_request_id
            info, service_context = self._client_send_hooks(
                ior, odef, request_id, meter, oneway=True)
            wire = giop.encode_request(
                request_id, False, self._request_prefix(ior, odef.name),
                enc._buf, service_context)
            self._ctr_requests.inc()
            ctr_oneways.inc()
            if meter is not None:
                self.metrics.counter(f"{meter}.msgs").inc()
                self.metrics.counter(f"{meter}.bytes").inc(len(wire))
            if pipelined:
                self._pipe_send(ior.host_id, wire)
            else:
                self.network.send(self.host_id, ior.host_id, "giop",
                                  wire, len(wire))
            total += len(wire)
            if info is not None:
                info.request_bytes = len(wire)
                info.end = self.env.now
                for icpt in reversed(self._client_interceptors):
                    icpt.receive_reply(info)
        enc.reset()
        self._release_encoder(enc)
        return total

    # -- GIOP request pipelining -------------------------------------------
    def _pipe_send(self, dst: str, wire: bytes) -> None:
        """Buffer one encoded oneway for *dst*; flush on thresholds.

        Frames accumulate until ``pipeline_max_frames`` / ``_max_bytes``
        force an immediate flush, or the ``pipeline_window`` age timer
        fires — whichever comes first.  Send order is preserved: frames
        are appended here and unpacked in order by the receiving ORB.
        """
        chan = self._pipe_channels.get(dst)
        if chan is None:
            chan = self._pipe_channels[dst] = _PipeChannel()
        chan.frames.append(wire)
        chan.nbytes += len(wire)
        if (len(chan.frames) >= self.pipeline_max_frames
                or chan.nbytes >= self.pipeline_max_bytes):
            self._flush_channel(dst, chan)
        elif not chan.armed:
            chan.armed = True
            chan.token += 1
            Timeout(self.env, self.pipeline_window,
                    (dst, chan.token)).callbacks.append(self._pipe_timer)

    def _pipe_timer(self, ev) -> None:
        dst, token = ev._value
        chan = self._pipe_channels.get(dst)
        if chan is None or chan.token != token:
            return  # superseded by an earlier threshold flush
        self._flush_channel(dst, chan)

    def _flush_channel(self, dst: str, chan: _PipeChannel) -> None:
        frames = chan.frames
        if not frames:
            chan.armed = False
            return
        chan.frames = []
        chan.nbytes = 0
        chan.armed = False
        chan.token += 1  # invalidate any armed window timer
        if len(frames) == 1:
            wire = frames[0]
            self.network.send(self.host_id, dst, "giop", wire, len(wire))
            return
        wire = giop.encode_multi(frames)
        self.metrics.counter(names.ORB_PIPELINE_FLUSHES).inc()
        self.metrics.counter(names.ORB_PIPELINE_FRAMES).inc(len(frames))
        self.network.send(self.host_id, dst, "giop", wire, len(wire),
                          frames=len(frames))

    def flush_pipelines(self) -> None:
        """Force-flush every buffered pipeline channel now."""
        for dst, chan in self._pipe_channels.items():
            self._flush_channel(dst, chan)

    def invoke(
        self,
        ior: IOR,
        odef: OperationDef,
        args: Sequence[TAny],
        timeout: Optional[float] = None,
        meter: Optional[str] = None,
    ) -> Event:
        """Invoke *odef* on *ior*; returns an Event with the result.

        Result shape: the operation result, or a tuple
        ``(result, *out_values)`` when out/inout parameters exist
        (result omitted entirely when void and outs exist).
        ORB-level failures (timeout, unreachable peer) fail the event
        with a pre-defused SystemException.  Oneway operations are
        delegated to :meth:`send_oneway` and complete immediately.
        """
        if odef.oneway:
            self.send_oneway(ior, odef, args, meter=meter)
            reply_event = self.env.event()
            reply_event.succeed(None)
            return reply_event

        if timeout is None:
            timeout = self.default_timeout
        # _marshal_args_pooled and _request_prefix inlined below: invoke
        # is the one client path every two-way call takes, and the saved
        # frames are a measurable share of per-call overhead.
        try:
            codec = odef._codec
        except AttributeError:
            codec = op_codec(odef)
        if len(args) != len(codec.in_plans):
            raise BAD_PARAM(
                f"{odef.name} expects {len(codec.in_plans)} args, "
                f"got {len(args)}"
            )
        pool = self._enc_pool
        enc = pool.pop() if pool else CDREncoder()
        enc1 = codec.in1_encode
        if enc1 is not None:
            enc1(enc, args[0])
        else:
            codec.encode_in(enc, args)

        self._next_request_id += 1
        request_id = self._next_request_id
        if self._client_interceptors:
            info, service_context = self._client_send_hooks(
                ior, odef, request_id, meter, oneway=False)
        else:
            info, service_context = None, ()
        prefix = self._prefix_cache.get(
            (ior.host_id, ior.adapter, ior.object_key, odef.name))
        if prefix is None:
            prefix = self._request_prefix(ior, odef.name)
        wire = giop.encode_request(
            request_id, True, prefix, enc._buf, service_context)
        enc.reset()
        pool = self._enc_pool
        if len(pool) < 8:
            pool.append(enc)
        self._ctr_requests.value += 1
        if meter is not None:
            # Per-protocol bandwidth attribution (benchmarks rely on it).
            self.metrics.counter(f"{meter}.msgs").inc()
            self.metrics.counter(f"{meter}.bytes").inc(len(wire))

        reply_event = Event(self.env)
        if info is not None:
            info.request_bytes = len(wire)
            # First callback, so interceptors observe completion before
            # the waiting process resumes.
            reply_event.callbacks.append(
                lambda ev, i=info: self._finish_client(i, ev))
        self._pending[request_id] = (reply_event, odef, info)
        if self.pending_watchers:
            self._watch_pending()
        self.network.send(self.host_id, ior.host_id, "giop", wire, len(wire))

        # Even "no timeout" callers get a generous reply deadline:
        # a reply lost to a crash or partition must not park the
        # pending-table entry forever.
        deadline = timeout if timeout is not None else self.reply_deadline
        if deadline is not None:
            when = self.env._now + deadline
            heappush(self._deadline_heap,
                     (when, request_id, odef.name, ior.host_id, deadline))
            if when < self._deadline_armed_at:
                # Preempt the armed sweeper: bumping the token turns the
                # old (later) timer into a no-op, so exactly one live
                # sweeper exists — the old one must not fire a duplicate
                # re-arm, which would grow the kernel heap by one stale
                # timer per preemption (the per-call-timer leak this
                # heap exists to avoid).
                self._deadline_armed_at = when
                self._deadline_token += 1
                Timeout(self.env, deadline,
                        self._deadline_token).callbacks.append(
                    self._sweep_deadlines)
        return reply_event

    def _sweep_deadlines(self, ev) -> None:
        """Expire every overdue pending call, then re-arm for the next
        deadline.  Entries whose call already completed were removed
        from ``_pending`` and are simply dropped here.  A timer whose
        token is stale was preempted by an earlier-armed sweeper and
        must do nothing: sweeping is harmless, but its re-arm would
        duplicate the live sweeper."""
        if ev._value != self._deadline_token:
            return  # preempted: the live sweeper covers the heap
        heap = self._deadline_heap
        now = self.env.now
        while heap and heap[0][0] <= now:
            _when, rid, op_name, host_id, deadline = heappop(heap)
            entry = self._pending.pop(rid, None)
            if entry is None:
                continue  # already answered
            self._watch_pending()
            event, _odef, _info = entry
            self.metrics.counter(names.ORB_TIMEOUTS).inc()
            event.fail(TIMEOUT(
                f"no reply to {op_name} on {host_id} "
                f"within {deadline}s"
            )).defused()
        if heap:
            nxt = heap[0][0]
            self._deadline_armed_at = nxt
            self._deadline_token += 1
            Timeout(self.env, nxt - now,
                    self._deadline_token).callbacks.append(
                self._sweep_deadlines)
        else:
            self._deadline_armed_at = float("inf")

    def sync(self, event: Event):
        """Run the simulation until *event* completes; return its value.

        Only valid from outside the simulation (tests, examples).
        """
        return self.env.run(until=event)

    def call(self, ior: IOR, odef: OperationDef, args: Sequence[TAny],
             timeout: Optional[float] = None):
        """Synchronous invoke: :meth:`invoke` + :meth:`sync`."""
        return self.sync(self.invoke(ior, odef, args, timeout=timeout))

    # -- message handling ------------------------------------------------------
    def _on_message(self, msg: Message) -> None:
        try:
            # decode_message's struct.error wrapper is redundant here:
            # both except arms below already count a bad message.
            decoded = giop._decode_message_body(msg.payload)
        except SystemException:
            self.metrics.counter(names.ORB_BAD_MESSAGES).inc()
            return
        except Exception:
            # decode_message converts decoder errors to MARSHAL; this
            # is the last line of defence — a corrupted wire must never
            # crash the node's message handler.
            self.metrics.counter(names.ORB_BAD_MESSAGES).inc()
            return
        if type(decoded) is giop.MultiMessage:
            # Unpack a pipelined transmission: every logical message
            # takes the same admission/dispatch path it would have taken
            # arriving alone, so coalescing can never smuggle a request
            # past the dispatch-table bound.  A corrupted frame is
            # counted and skipped without losing its neighbours.
            for frame in decoded.frames:
                try:
                    sub = giop._decode_message_body(frame)
                except Exception:
                    self.metrics.counter(names.ORB_BAD_MESSAGES).inc()
                    continue
                if type(sub) is giop.MultiMessage:  # no nesting
                    self.metrics.counter(names.ORB_BAD_MESSAGES).inc()
                    continue
                self._handle_decoded(sub, msg.src, len(frame))
            return
        self._handle_decoded(decoded, msg.src, len(msg.payload))

    def _handle_decoded(self, decoded, src: str, wire_size: int) -> None:
        """Admit and dispatch one logical message (request or reply)."""
        if isinstance(decoded, giop.RequestMessage):
            if (self.dispatch_limit is not None
                    and self._inflight >= self.dispatch_limit):
                self._shed(decoded, src)
                return
            self._inflight += 1
            if self.dispatch_watchers:
                self._watch_dispatch()
            if (self._slots is None and not self._server_interceptors
                    and self._dispatch_fast(decoded, src)):
                return
            self.env.process(self._dispatch(decoded, src, wire_size))
        else:
            self._complete(decoded, wire_size)

    def _shed(self, request: giop.RequestMessage, client: str) -> None:
        """Load-shed an inbound request: the dispatch table is full.

        The reply is a tiny TRANSIENT (minor = shed) sent without
        running interceptors or touching a worker slot, so a saturated
        node spends almost nothing per rejected call — the property
        that keeps goodput up under overload.  A oneway is shed
        silently (its sender expects no reply) but separately counted:
        bus-driven fan-out floods must stay visible to operators.
        """
        self.metrics.counter(names.ORB_SHED).inc()
        if request.response_expected:
            self._reply_system(client, request, TRANSIENT(
                f"dispatch table full ({self.dispatch_limit}) "
                f"on {self.host_id}",
                minor=MINOR_SHED, completed=COMPLETED_NO,
            ))
        else:
            self.metrics.counter(names.ORB_SHED_ONEWAY).inc()

    # -- server side -------------------------------------------------------------
    def _dispatch(self, request: giop.RequestMessage, client: str,
                  wire_size: int = 0):
        """Process one inbound request (runs as a simulation process)."""
        info: Optional[ServerRequestInfo] = None
        if self._server_interceptors:
            info = ServerRequestInfo(self, request, client, wire_size)
            info.process = self.env.active_process
            for icpt in self._server_interceptors:
                icpt.receive_request(info)
        try:
            yield from self._dispatch_body(request, client, info)
        finally:
            self._inflight -= 1
            self._watch_dispatch()
            if info is not None:
                info.end = self.env.now
                for icpt in reversed(self._server_interceptors):
                    icpt.finish_request(info)

    def _resolve_target(self, request: giop.RequestMessage):
        """Resolve (servant, odef) for *request*, with a fenced cache.

        Cache entries carry the owning POA's generation counter; any
        activate/deactivate bumps it, so a stale entry can never route
        around the adapter's fencing — it just falls through to the
        slow path and re-resolves.
        """
        key = (request.adapter, request.object_key, request.operation)
        cache = self._resolve_cache
        entry = cache.get(key)
        if entry is not None:
            poa, gen, servant, odef = entry
            if gen == poa._gen:
                return servant, odef
        poa = self._adapters.get(request.adapter)
        if poa is None:
            raise OBJECT_NOT_EXIST(f"no adapter {request.adapter!r}")
        servant = poa.servant_for(request.object_key)
        iface = servant.interface()
        odef = iface.find_operation(request.operation)
        if odef is None:
            raise BAD_OPERATION(
                f"{iface.name} has no operation {request.operation!r}"
            )
        if len(cache) >= 4096:
            cache.clear()
        cache[key] = (poa, poa._gen, servant, odef)
        return servant, odef

    def _dispatch_body(self, request: giop.RequestMessage, client: str,
                       info: Optional[ServerRequestInfo]):
        odef: Optional[OperationDef] = None
        try:
            servant, odef = self._resolve_target(request)
            method = getattr(servant, request.operation, None)
            if method is None:
                raise NO_IMPLEMENT(
                    f"{type(servant).__name__} lacks {request.operation!r}"
                )
            dec = CDRDecoder(request.args)
            args = op_codec(odef).decode_in(dec)

            slots = self._slots
            if slots is not None:
                # Wait (FIFO) for a worker slot: servant execution is
                # serialized through the host's CPU parallelism.
                yield slots.acquire()
            try:
                # Charge the operation's CPU cost at this host's speed.
                cost_s = odef.cpu_cost / self.host.profile.cpu_power
                for listener in self.dispatch_listeners:
                    listener(cost_s)
                if cost_s > 0:
                    yield self.env.timeout(cost_s)

                result = method(*args)
                if hasattr(result, "send") and hasattr(result, "throw"):
                    # Servant method is a generator: drive it to completion.
                    proc = self.env.process(result)
                    if info is not None:
                        for icpt in self._server_interceptors:
                            hook = getattr(icpt, "child_process", None)
                            if hook is not None:
                                hook(info, proc)
                    result = yield proc
            finally:
                if slots is not None:
                    slots.release()

            self._complete_dispatch(request, client, odef, result, info)
        except Exception as exc:
            self._dispatch_error(request, client, odef, exc, info)

    def _complete_dispatch(self, request: giop.RequestMessage, client: str,
                           odef: OperationDef, result,
                           info: Optional[ServerRequestInfo]) -> None:
        """Count the dispatch and send the success reply (shared tail of
        the process and synchronous dispatch paths).  ``_reply`` is
        inlined: this is the one reply path every successful call takes."""
        self._ctr_dispatches.value += 1
        if not request.response_expected:
            return
        try:
            codec = odef._codec
        except AttributeError:
            codec = op_codec(odef)
        if not codec.out_plans:
            # No out params (the common shape): _encode_result inlined.
            pool = self._enc_pool
            enc = pool.pop() if pool else CDREncoder()
            codec.result_plan.encode(enc, result)
        else:
            enc = self._encode_result(odef, result)
        wire = giop.encode_reply(request.request_id, giop.NO_EXCEPTION,
                                 enc._buf)
        self._ctr_replies.value += 1
        if info is not None:
            info.reply_status = giop.NO_EXCEPTION
            info.reply_bytes = len(wire)
        self.network.send(self.host_id, client, "giop", wire, len(wire))
        enc.reset()
        pool = self._enc_pool
        if len(pool) < 8:
            pool.append(enc)

    def _dispatch_error(self, request: giop.RequestMessage, client: str,
                        odef: Optional[OperationDef], exc: Exception,
                        info: Optional[ServerRequestInfo]) -> None:
        """Map a dispatch-time exception to the reply it owes the client."""
        if isinstance(exc, UserException):
            if info is not None:
                info.exception = exc
            if not request.response_expected or odef is None:
                return
            if not any(tc.repo_id == exc.REPO_ID for tc in odef.raises):
                self._reply_system(client, request, UNKNOWN(
                    f"undeclared user exception {exc.REPO_ID}"
                ), info)
                return
            entry = exception_class(exc.REPO_ID)
            if entry is None:
                self._reply_system(client, request, UNKNOWN(
                    f"unregistered exception {exc.REPO_ID}"
                ), info)
                return
            _cls, tc = entry
            enc = self._acquire_encoder()
            enc.write_string(exc.REPO_ID)
            get_plan(tc).encode(enc, dict(zip(exc.FIELDS, exc.field_values())))
            self._reply(client, request, giop.USER_EXCEPTION, enc._buf, info)
            enc.reset()
            self._release_encoder(enc)
        elif isinstance(exc, SystemException):
            if info is not None:
                info.exception = exc
            if request.response_expected:
                self._reply_system(client, request, exc, info)
        else:  # servant bug -> UNKNOWN, as CORBA mandates
            self.metrics.counter(names.ORB_SERVANT_ERRORS).inc()
            if info is not None:
                info.exception = exc
            if request.response_expected:
                self._reply_system(client, request, UNKNOWN(repr(exc)), info)

    def _dispatch_fast(self, request: giop.RequestMessage,
                       client: str) -> bool:
        """Serve one request without a kernel process when nothing needs
        one: no worker slots, no interceptors (both checked by the
        caller) and a plain (non-generator) servant method.  Zero-cost
        operations complete inside the delivery callback; operations
        with CPU cost run off a single timeout callback.  Either way the
        per-call process creation and its kernel steps are skipped.

        Returns False — before running any servant code — when the
        request must take the process path instead.  When it returns
        True the request is (or will be) fully handled, including the
        in-flight accounting the caller incremented.
        """
        odef: Optional[OperationDef] = None
        try:
            servant, odef = self._resolve_target(request)
            method = getattr(servant, request.operation, None)
            if method is None:
                raise NO_IMPLEMENT(
                    f"{type(servant).__name__} lacks {request.operation!r}"
                )
            code = getattr(method, "__code__", None)
            if code is None or code.co_flags & 0x20:
                return False  # CO_GENERATOR or unknowable: process path
            try:
                codec = odef._codec
            except AttributeError:
                codec = op_codec(odef)
            dec1 = codec.in1_decode
            if dec1 is not None:
                args = (dec1(CDRDecoder(request.args)),)
            else:
                args = codec.decode_in(CDRDecoder(request.args))
        except Exception as exc:
            self._dispatch_error(request, client, odef, exc, None)
            self._inflight -= 1
            self._watch_dispatch()
            return True
        # Charge the operation's CPU cost at this host's speed (same
        # accounting point as the process path: after decode, before
        # the servant runs).
        cost_s = odef.cpu_cost / self.host.profile.cpu_power
        for listener in self.dispatch_listeners:
            listener(cost_s)
        if cost_s > 0:
            # The dispatch context rides as the timeout's value — no
            # per-call closure allocation, and _dispatch_finish is the
            # callback itself (no unpacking shim frame in between).
            Timeout(self.env, cost_s,
                    (request, client, odef, method, args)
                    ).callbacks.append(self._dispatch_finish)
        else:
            self._dispatch_finish(
                _ImmediateCtx((request, client, odef, method, args)))
        return True

    def _dispatch_finish(self, ev) -> None:
        """Run the servant and reply; tail of the processless path.

        Runs as the cost-timeout's callback; the dispatch context
        ``(request, client, odef, method, args)`` rides in ``ev._value``.
        """
        request, client, odef, method, args = ev._value
        try:
            result = method(*args)
            if hasattr(result, "send") and hasattr(result, "throw"):
                # A plain method handed back a generator object: drive
                # it to completion on the kernel like the process path.
                self.env.process(
                    self._dispatch_tail(request, client, odef, result))
                return
            self._complete_dispatch(request, client, odef, result, None)
        except Exception as exc:
            self._dispatch_error(request, client, odef, exc, None)
        self._inflight -= 1
        if self.dispatch_watchers:
            self._watch_dispatch()

    def _dispatch_tail(self, request: giop.RequestMessage, client: str,
                       odef: OperationDef, gen):
        """Finish a fast-path dispatch whose servant returned a generator."""
        try:
            result = yield self.env.process(gen)
            self._complete_dispatch(request, client, odef, result, None)
        except Exception as exc:
            self._dispatch_error(request, client, odef, exc, None)
        finally:
            self._inflight -= 1
            self._watch_dispatch()

    def _encode_result(self, odef: OperationDef, result) -> CDREncoder:
        """Marshal the reply body into a pooled encoder and return it.

        The caller frames ``enc._buf`` directly, then resets and
        releases the encoder — the body bytes are never snapshotted.
        """
        try:
            codec = odef._codec
        except AttributeError:
            codec = op_codec(odef)
        outs = codec.out_plans
        pool = self._enc_pool
        enc = pool.pop() if pool else CDREncoder()
        if not outs:
            codec.result_plan.encode(enc, result)
            return enc
        # Normalize to (result?, *outs)
        if codec.result_void:
            values = result if isinstance(result, tuple) else (result,)
            if len(values) != len(outs):
                raise INTERNAL(
                    f"{odef.name} must return {len(outs)} out values"
                )
            codec.result_plan.encode(enc, None)
        else:
            if not isinstance(result, tuple) or len(result) != 1 + len(outs):
                raise INTERNAL(
                    f"{odef.name} must return (result, {len(outs)} outs)"
                )
            codec.result_plan.encode(enc, result[0])
            values = result[1:]
        for plan, value in zip(outs, values):
            plan.encode(enc, value)
        return enc

    def _reply(self, client: str, request: giop.RequestMessage,
               status: int, body,
               info: Optional[ServerRequestInfo] = None) -> None:
        wire = giop.encode_reply(request.request_id, status, body)
        self._ctr_replies.value += 1
        if info is not None:
            info.reply_status = status
            info.reply_bytes = len(wire)
        self.network.send(self.host_id, client, "giop", wire, len(wire))

    def _reply_system(self, client: str, request: giop.RequestMessage,
                      exc: SystemException,
                      info: Optional[ServerRequestInfo] = None) -> None:
        enc = self._acquire_encoder()
        enc.write_string(exc.repo_id)
        enc.write_string(exc.reason or "")
        enc.write_ulong(exc.minor)
        enc.write_ulong(exc.completed)
        self._reply(client, request, giop.SYSTEM_EXCEPTION, enc._buf, info)
        enc.reset()
        self._release_encoder(enc)

    # -- client-side completion ---------------------------------------------------
    def _complete(self, reply: giop.ReplyMessage, wire_size: int = 0) -> None:
        entry = self._pending.pop(reply.request_id, None)
        if entry is None:
            self.metrics.counter(names.ORB_LATE_REPLIES).inc()
            return
        if self.pending_watchers:
            self._watch_pending()
        event, odef, info = entry
        if info is not None:
            info.reply_bytes = wire_size
        try:
            if reply.status == giop.NO_EXCEPTION:
                # No-out-params result decode inlined (the common shape).
                try:
                    codec = odef._codec
                except AttributeError:
                    codec = op_codec(odef)
                if not codec.out_plans:
                    event.succeed(codec.result_decode(CDRDecoder(reply.body)))
                else:
                    event.succeed(self._decode_result(odef, reply.body))
            elif reply.status == giop.USER_EXCEPTION:
                dec = CDRDecoder(reply.body)
                repo_id = dec.read_string()
                entry2 = exception_class(repo_id)
                if entry2 is None:
                    event.fail(UNKNOWN(
                        f"unknown user exception {repo_id}"
                    )).defused()
                    return
                cls, tc = entry2
                fields = decode_value(dec, tc)
                event.fail(cls(**fields)).defused()
            else:
                dec = CDRDecoder(reply.body)
                repo_id = dec.read_string()
                reason = dec.read_string()
                minor = dec.read_ulong()
                completed = dec.read_ulong()
                exc_cls = SYSTEM_EXCEPTIONS.get(repo_id, UNKNOWN)
                event.fail(exc_cls(reason, minor, completed)).defused()
        except SystemException as exc:
            event.fail(exc).defused()

    def _decode_result(self, odef: OperationDef, body: bytes):
        try:
            codec = odef._codec
        except AttributeError:
            codec = op_codec(odef)
        dec = CDRDecoder(body)
        result = codec.result_plan.decode(dec)
        outs = codec.out_plans
        if not outs:
            return result
        values = tuple(plan.decode(dec) for plan in outs)
        if codec.result_void:
            return values if len(values) > 1 else values[0]
        return (result,) + values

    # -- failure handling -----------------------------------------------------------
    def _on_host_crash(self, _host) -> None:
        """Fail every outstanding client request; the host is gone."""
        pending, self._pending = self._pending, {}
        if pending:
            self._watch_pending()
        for event, _odef, _info in pending.values():
            if not event.triggered:
                event.fail(COMM_FAILURE("host crashed")).defused()
        # Buffered pipeline frames die with the host: a crashed sender
        # must not flush stale oneways after restart.
        for chan in self._pipe_channels.values():
            chan.frames.clear()
            chan.nbytes = 0
            chan.armed = False
            chan.token += 1

"""Client-side retry policies over ORB invocations.

CORBA's TRANSIENT/TIMEOUT semantics say "retrying may succeed"; this
module packages the standard client loop (bounded attempts, exponential
backoff) so protocol code and applications don't hand-roll it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional, Sequence

from repro.orb.core import ORB, OperationDef
from repro.orb.exceptions import (
    COMM_FAILURE,
    SystemException,
    TIMEOUT,
    TRANSIENT,
)
from repro.orb.ior import IOR

#: Exception types it makes sense to retry; anything else (BAD_PARAM,
#: user exceptions...) is a real answer and propagates immediately.
RETRYABLE = (TRANSIENT, TIMEOUT, COMM_FAILURE)


@dataclass(frozen=True)
class RetryPolicy:
    """How persistently to retry a remote call."""

    attempts: int = 3
    timeout: float = 2.0          # per attempt
    backoff: float = 0.5          # sleep before retry #1
    backoff_factor: float = 2.0   # multiplied per further retry

    def __post_init__(self) -> None:
        if self.attempts < 1:
            raise ValueError("need at least one attempt")

    def delay_before(self, retry_index: int) -> float:
        """Backoff before the given retry (retry_index >= 1)."""
        return self.backoff * (self.backoff_factor ** (retry_index - 1))


def invoke_with_retry(orb: ORB, ior: IOR, odef: OperationDef,
                      args: Sequence[Any],
                      policy: Optional[RetryPolicy] = None,
                      meter: Optional[str] = None):
    """Generator: invoke with retries; yields events, returns the result.

    Use from simulation processes::

        result = yield from invoke_with_retry(orb, ior, odef, args)

    Raises the last retryable exception once attempts are exhausted.
    """
    policy = policy or RetryPolicy()
    last_exc: Optional[SystemException] = None
    for attempt in range(policy.attempts):
        if attempt > 0:
            orb.metrics.counter("orb.retries").inc()
            yield orb.env.timeout(policy.delay_before(attempt))
        try:
            result = yield orb.invoke(ior, odef, args,
                                      timeout=policy.timeout,
                                      meter=meter)
            return result
        except RETRYABLE as exc:
            last_exc = exc
            continue
    assert last_exc is not None
    raise last_exc


def call_with_retry(orb: ORB, ior: IOR, odef: OperationDef,
                    args: Sequence[Any],
                    policy: Optional[RetryPolicy] = None):
    """Synchronous variant for test/driver code outside the simulation."""
    return orb.sync(orb.env.process(
        invoke_with_retry(orb, ior, odef, args, policy=policy)))

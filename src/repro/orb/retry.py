"""Client-side retry policies over ORB invocations.

CORBA's TRANSIENT/TIMEOUT semantics say "retrying may succeed"; this
module packages the standard client loop (bounded attempts, exponential
backoff with full jitter, an optional total deadline) so protocol code
and applications don't hand-roll it.

Jitter draws from the simulation's seeded RNG registry — never from
``random`` — so retry schedules are de-synchronized across the fleet
yet identical across runs of the same seed.  When an observability hub
is installed on the ORB, the whole retry loop becomes one ``retry:``
span whose per-attempt client spans (including the failed ones) parent
under it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional, Sequence

from repro.orb.core import ORB, OperationDef
from repro.orb.exceptions import (
    COMM_FAILURE,
    MINOR_BREAKER_OPEN,
    SystemException,
    TIMEOUT,
    TRANSIENT,
    UserException,
)
from repro.orb.ior import IOR

#: Exception types it makes sense to retry; anything else (BAD_PARAM,
#: user exceptions...) is a real answer and propagates immediately.
RETRYABLE = (TRANSIENT, TIMEOUT, COMM_FAILURE)

#: Named RNG stream the jittered backoff draws from.
JITTER_STREAM = "orb.retry.jitter"


@dataclass(frozen=True)
class RetryPolicy:
    """How persistently to retry a remote call.

    ``deadline`` caps the *total* simulated time the loop may consume
    (attempt timeouts are clipped to the remaining budget); without it,
    ``attempts × (timeout + backoff)`` silently decides the caller's
    worst case.  ``jitter`` turns each backoff into a uniform draw from
    ``[0, scheduled_backoff]`` ("full jitter"), preventing a fleet that
    failed together from retrying together.
    """

    attempts: int = 3
    timeout: float = 2.0          # per attempt
    backoff: float = 0.5          # sleep before retry #1
    backoff_factor: float = 2.0   # multiplied per further retry
    deadline: Optional[float] = None  # total budget across all attempts
    jitter: bool = True

    def __post_init__(self) -> None:
        if self.attempts < 1:
            raise ValueError("need at least one attempt")
        if self.timeout <= 0:
            raise ValueError(f"per-attempt timeout must be > 0, "
                             f"got {self.timeout}")
        if self.backoff <= 0:
            raise ValueError(f"backoff must be > 0, got {self.backoff}")
        if self.backoff_factor <= 0:
            raise ValueError(f"backoff_factor must be > 0, "
                             f"got {self.backoff_factor}")
        if self.deadline is not None and self.deadline <= 0:
            raise ValueError(f"deadline must be > 0, got {self.deadline}")

    def delay_before(self, retry_index: int, rng=None) -> float:
        """Backoff before the given retry (retry_index >= 1).

        Deterministic schedule when *rng* is None; full jitter —
        ``uniform(0, scheduled)`` drawn from *rng* — otherwise.
        """
        scheduled = self.backoff * (self.backoff_factor ** (retry_index - 1))
        if rng is None:
            return scheduled
        return float(rng.uniform(0.0, scheduled))


class RetryBudget:
    """Global retry-amplification cap shared by a client's retry loops.

    A retry loop multiplies load exactly when the system can least
    afford it: a partition that times out every first attempt turns N
    requests/s into ``N × attempts`` requests/s of pure amplification.
    The budget is a token bucket over *retries* (first attempts are
    never charged): each first attempt deposits ``ratio`` tokens, each
    retry withdraws one, and the bucket refills at ``refill_rate``
    tokens per simulated second up to ``max_tokens``.  While the bucket
    is dry, retries are *shed* — the loop surfaces its last failure
    immediately instead of hammering a melting network — and counted
    under ``orb.retries.shed``.

    With the default ``ratio`` a sustained failure storm settles at
    roughly ``ratio`` retries per first attempt plus the trickle the
    refill allows, instead of ``attempts - 1`` per first attempt.
    """

    def __init__(self, env, metrics, ratio: float = 0.1,
                 refill_rate: float = 0.5,
                 max_tokens: float = 50.0,
                 initial: Optional[float] = None) -> None:
        if ratio < 0:
            raise ValueError(f"ratio must be >= 0, got {ratio}")
        if refill_rate < 0:
            raise ValueError(f"refill_rate must be >= 0, "
                             f"got {refill_rate}")
        if max_tokens < 1:
            raise ValueError(f"max_tokens must be >= 1, got {max_tokens}")
        self.env = env
        self.metrics = metrics
        self.ratio = ratio
        self.refill_rate = refill_rate
        self.max_tokens = max_tokens
        self.tokens = max_tokens if initial is None else float(initial)
        self.shed = 0
        self.spent = 0
        self._last_refill = env.now

    def _refill(self) -> None:
        now = self.env.now
        if now > self._last_refill:
            self.tokens = min(self.max_tokens, self.tokens +
                              (now - self._last_refill) * self.refill_rate)
            self._last_refill = now

    def available(self) -> float:
        """Current token balance (after time-based refill)."""
        self._refill()
        return self.tokens

    def on_attempt(self) -> None:
        """A first attempt went out: deposit its retry allowance."""
        self._refill()
        self.tokens = min(self.max_tokens, self.tokens + self.ratio)

    def try_spend(self) -> bool:
        """Withdraw one retry token; False (and counted) when dry."""
        self._refill()
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            self.spent += 1
            return True
        self.shed += 1
        if self.metrics is not None:
            self.metrics.counter("orb.retries.shed").inc()
        return False


class CircuitBreaker:
    """Client-side circuit breaker for one sick peer.

    Standard three-state machine: CLOSED counts consecutive retryable
    failures; at ``failure_threshold`` the breaker OPENs and every call
    fast-fails locally (TRANSIENT, minor = breaker-open, no wire
    traffic) until ``reset_timeout`` simulated seconds pass; then it
    goes HALF_OPEN and admits up to ``half_open_probes`` probe calls —
    one success re-CLOSEs it, one failure re-OPENs it and re-arms the
    timer.  Used via :func:`invoke_with_retry`'s ``breaker`` argument,
    which stops a retry loop from hammering a node that is down,
    partitioned or shedding.

    Every state transition is counted (``breaker.opened`` /
    ``breaker.closed`` / ``breaker.half_open``), appended to
    :attr:`transitions` as ``(time, from_state, to_state)``, and — when
    the owning ORB has an observability hub installed — emitted as a
    zero-length ``breaker:`` span so traces show exactly when a client
    gave up on (and came back to) a peer.
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"

    def __init__(self, orb: ORB, peer: str,
                 failure_threshold: int = 5,
                 reset_timeout: float = 10.0,
                 half_open_probes: int = 1) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if reset_timeout <= 0:
            raise ValueError("reset_timeout must be > 0")
        if half_open_probes < 1:
            raise ValueError("half_open_probes must be >= 1")
        self.orb = orb
        self.peer = peer
        self.failure_threshold = failure_threshold
        self.reset_timeout = reset_timeout
        self.half_open_probes = half_open_probes
        self.state = self.CLOSED
        self.failures = 0          # consecutive retryable failures
        self.fast_fails = 0        # calls rejected while OPEN
        self._opened_at = 0.0
        self._probes_in_flight = 0
        self._oneway_probes = 0
        #: (sim time, from_state, to_state) for every transition.
        self.transitions: list[tuple[float, str, str]] = []

    # -- state machine -----------------------------------------------------
    def _transition(self, to_state: str) -> None:
        from_state = self.state
        if from_state == to_state:
            return
        self.state = to_state
        now = self.orb.env.now
        self.transitions.append((now, from_state, to_state))
        self.orb.metrics.counter(f"breaker.{to_state}"
                                 if to_state != self.OPEN
                                 else "breaker.opened").inc()
        hub = self.orb.obs
        if hub is not None:
            span = hub.tracer.start_span(
                f"breaker:{from_state}->{to_state}", kind="internal",
                parent=hub.context.current(self.orb.env),
                host=self.orb.host_id,
                attrs={"peer": self.peer, "failures": self.failures})
            hub.tracer.end_span(span, status="ok")

    def allow(self) -> bool:
        """May a call be attempted right now?  (Counts a probe slot.)"""
        if self.state == self.OPEN:
            if self.orb.env.now - self._opened_at >= self.reset_timeout:
                self._probes_in_flight = 0
                self._oneway_probes = 0
                self._transition(self.HALF_OPEN)
            else:
                self.fast_fails += 1
                self.orb.metrics.counter("breaker.fast_fails").inc()
                return False
        if self.state == self.HALF_OPEN:
            if self._probes_in_flight >= self.half_open_probes:
                self.fast_fails += 1
                self.orb.metrics.counter("breaker.fast_fails").inc()
                return False
            self._probes_in_flight += 1
        return True

    def on_success(self) -> None:
        """The peer answered (any reply, even a user exception)."""
        self.failures = 0
        if self.state == self.HALF_OPEN:
            self._transition(self.CLOSED)

    def on_oneway_sent(self) -> None:
        """An admitted oneway was handed to the wire.

        Oneways carry no reply, so a path that becomes oneway-only
        (bus-migrated reporters) would otherwise leave a HALF_OPEN
        breaker starved of proof-of-life forever.  A oneway accepted by
        :meth:`allow` is weaker evidence than a reply, so re-CLOSE only
        after a full probe budget of sends went out without the sim
        delivering any failure signal in between (a crash of the peer
        surfaces as nothing at all on oneways — which is exactly why
        the count is the best signal available).
        """
        self.failures = 0
        if self.state != self.HALF_OPEN:
            return
        self._oneway_probes += 1
        if self._oneway_probes >= self.half_open_probes:
            self._transition(self.CLOSED)

    def on_failure(self) -> None:
        """A retryable failure (timeout, unreachable, shed) occurred."""
        if self.state == self.HALF_OPEN:
            self._opened_at = self.orb.env.now
            self._transition(self.OPEN)
            return
        self.failures += 1
        if self.state == self.CLOSED and \
                self.failures >= self.failure_threshold:
            self._opened_at = self.orb.env.now
            self._transition(self.OPEN)

    def reject_exception(self) -> TRANSIENT:
        """The exception a fast-failed call surfaces to its caller."""
        return TRANSIENT(
            f"circuit breaker open to {self.peer} "
            f"({self.failures} consecutive failures)",
            minor=MINOR_BREAKER_OPEN,
        )


class BreakerRegistry:
    """One :class:`CircuitBreaker` per peer host, created on first use.

    Clients that talk to many peers keep one registry; breaker state is
    per-peer, so one sick node never blocks calls to healthy ones.
    """

    def __init__(self, orb: ORB,
                 retry_budget: Optional[RetryBudget] = None,
                 **breaker_kwargs) -> None:
        self.orb = orb
        self.breaker_kwargs = breaker_kwargs
        #: optional shared :class:`RetryBudget` capping the aggregate
        #: retry amplification of every loop using this registry.
        self.retry_budget = retry_budget
        self._breakers: dict[str, CircuitBreaker] = {}

    def breaker_for(self, peer: str) -> CircuitBreaker:
        breaker = self._breakers.get(peer)
        if breaker is None:
            breaker = CircuitBreaker(self.orb, peer, **self.breaker_kwargs)
            self._breakers[peer] = breaker
        return breaker

    def breakers(self) -> dict[str, CircuitBreaker]:
        return dict(self._breakers)


def send_oneway_with_breaker(orb: ORB, ior: IOR, odef: OperationDef,
                             args: Sequence[Any],
                             breaker: Optional[CircuitBreaker] = None,
                             meter: Optional[str] = None) -> bool:
    """Breaker-guarded fire-and-forget send; True if handed to the wire.

    An OPEN breaker swallows the send locally (fire-and-forget callers
    have no reply to wait on anyway); an admitted send counts toward
    half-open probing via :meth:`CircuitBreaker.on_oneway_sent`, so a
    oneway-only path can re-close its breaker without a single reply.
    """
    if breaker is not None and not breaker.allow():
        return False
    orb.send_oneway(ior, odef, args, meter=meter)
    if breaker is not None:
        breaker.on_oneway_sent()
    return True


def invoke_with_retry(orb: ORB, ior: IOR, odef: OperationDef,
                      args: Sequence[Any],
                      policy: Optional[RetryPolicy] = None,
                      meter: Optional[str] = None,
                      breaker: Optional[CircuitBreaker] = None,
                      budget: Optional[RetryBudget] = None):
    """Generator: invoke with retries; yields events, returns the result.

    Use from simulation processes::

        result = yield from invoke_with_retry(orb, ior, odef, args)

    Raises the last retryable exception once attempts (or the policy
    deadline) are exhausted.  When *budget* is given, every retry must
    first win a token from it; a dry budget sheds the remaining
    retries (the last failure surfaces immediately), capping the
    fleet-wide amplification a correlated failure can cause.
    """
    policy = policy or RetryPolicy()
    env = orb.env
    if budget is not None:
        budget.on_attempt()
    rng = (orb.network.rngs.stream(JITTER_STREAM) if policy.jitter
           else None)
    start = env.now

    # Open a retry span so every attempt (and the server work it causes)
    # lands in one causally-linked trace.
    hub = orb.obs
    span = None
    prev_ctx = None
    bound_proc = None
    if hub is not None:
        span = hub.tracer.start_span(
            f"retry:{odef.name}", kind="internal",
            parent=hub.context.current(env), host=orb.host_id,
            attrs={"max_attempts": policy.attempts, "peer": ior.host_id})
        bound_proc = env.active_process
        prev_ctx = hub.context.bind(bound_proc, span.context)

    last_exc: Optional[SystemException] = None
    attempts_made = 0
    try:
        for attempt in range(policy.attempts):
            remaining = (None if policy.deadline is None
                         else policy.deadline - (env.now - start))
            if attempt > 0:
                if budget is not None and not budget.try_spend():
                    break  # retry budget dry: shed instead of amplify
                delay = policy.delay_before(attempt, rng=rng)
                if remaining is not None and delay >= remaining:
                    break  # sleeping would blow the budget; give up now
                orb.metrics.counter("orb.retries").inc()
                orb.metrics.counter(f"orb.retries.{odef.name}").inc()
                yield env.timeout(delay)
                if remaining is not None:
                    remaining = policy.deadline - (env.now - start)
            attempt_timeout = policy.timeout
            if remaining is not None:
                if remaining <= 0:
                    break
                attempt_timeout = min(attempt_timeout, remaining)
            if breaker is not None and not breaker.allow():
                # Fast-fail locally: no marshalling, no wire bytes, no
                # pending-table entry — the whole point of the breaker.
                last_exc = breaker.reject_exception()
                continue
            attempts_made += 1
            try:
                result = yield orb.invoke(ior, odef, args,
                                          timeout=attempt_timeout,
                                          meter=meter)
                if breaker is not None:
                    breaker.on_success()
                if span is not None:
                    span.attrs["attempts"] = attempts_made
                    hub.tracer.end_span(span, status="ok")
                return result
            except RETRYABLE as exc:
                if breaker is not None:
                    breaker.on_failure()
                last_exc = exc
                continue
            except (SystemException, UserException):
                # A definitive (non-retryable) answer still proves the
                # peer is alive; it must not keep the breaker open.
                if breaker is not None:
                    breaker.on_success()
                raise
        if last_exc is None:
            last_exc = TIMEOUT(
                f"retry deadline {policy.deadline}s exhausted before "
                f"any attempt of {odef.name} could run"
            )
        raise last_exc
    except BaseException as exc:
        if span is not None:
            span.attrs["attempts"] = attempts_made
            hub.tracer.end_span(span, status="error",
                                error=getattr(exc, "repo_id", None)
                                or type(exc).__name__)
        raise
    finally:
        if hub is not None:
            hub.context.bind(bound_proc, prev_ctx)
            if span is not None and not span.finished:
                span.attrs["attempts"] = attempts_made
                hub.tracer.end_span(span, status="ok")


def call_with_retry(orb: ORB, ior: IOR, odef: OperationDef,
                    args: Sequence[Any],
                    policy: Optional[RetryPolicy] = None,
                    breaker: Optional[CircuitBreaker] = None,
                    budget: Optional[RetryBudget] = None):
    """Synchronous variant for test/driver code outside the simulation."""
    return orb.sync(orb.env.process(
        invoke_with_retry(orb, ior, odef, args, policy=policy,
                          breaker=breaker, budget=budget)))

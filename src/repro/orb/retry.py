"""Client-side retry policies over ORB invocations.

CORBA's TRANSIENT/TIMEOUT semantics say "retrying may succeed"; this
module packages the standard client loop (bounded attempts, exponential
backoff with full jitter, an optional total deadline) so protocol code
and applications don't hand-roll it.

Jitter draws from the simulation's seeded RNG registry — never from
``random`` — so retry schedules are de-synchronized across the fleet
yet identical across runs of the same seed.  When an observability hub
is installed on the ORB, the whole retry loop becomes one ``retry:``
span whose per-attempt client spans (including the failed ones) parent
under it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional, Sequence

from repro.orb.core import ORB, OperationDef
from repro.orb.exceptions import (
    COMM_FAILURE,
    SystemException,
    TIMEOUT,
    TRANSIENT,
)
from repro.orb.ior import IOR

#: Exception types it makes sense to retry; anything else (BAD_PARAM,
#: user exceptions...) is a real answer and propagates immediately.
RETRYABLE = (TRANSIENT, TIMEOUT, COMM_FAILURE)

#: Named RNG stream the jittered backoff draws from.
JITTER_STREAM = "orb.retry.jitter"


@dataclass(frozen=True)
class RetryPolicy:
    """How persistently to retry a remote call.

    ``deadline`` caps the *total* simulated time the loop may consume
    (attempt timeouts are clipped to the remaining budget); without it,
    ``attempts × (timeout + backoff)`` silently decides the caller's
    worst case.  ``jitter`` turns each backoff into a uniform draw from
    ``[0, scheduled_backoff]`` ("full jitter"), preventing a fleet that
    failed together from retrying together.
    """

    attempts: int = 3
    timeout: float = 2.0          # per attempt
    backoff: float = 0.5          # sleep before retry #1
    backoff_factor: float = 2.0   # multiplied per further retry
    deadline: Optional[float] = None  # total budget across all attempts
    jitter: bool = True

    def __post_init__(self) -> None:
        if self.attempts < 1:
            raise ValueError("need at least one attempt")
        if self.timeout <= 0:
            raise ValueError(f"per-attempt timeout must be > 0, "
                             f"got {self.timeout}")
        if self.backoff <= 0:
            raise ValueError(f"backoff must be > 0, got {self.backoff}")
        if self.backoff_factor <= 0:
            raise ValueError(f"backoff_factor must be > 0, "
                             f"got {self.backoff_factor}")
        if self.deadline is not None and self.deadline <= 0:
            raise ValueError(f"deadline must be > 0, got {self.deadline}")

    def delay_before(self, retry_index: int, rng=None) -> float:
        """Backoff before the given retry (retry_index >= 1).

        Deterministic schedule when *rng* is None; full jitter —
        ``uniform(0, scheduled)`` drawn from *rng* — otherwise.
        """
        scheduled = self.backoff * (self.backoff_factor ** (retry_index - 1))
        if rng is None:
            return scheduled
        return float(rng.uniform(0.0, scheduled))


def invoke_with_retry(orb: ORB, ior: IOR, odef: OperationDef,
                      args: Sequence[Any],
                      policy: Optional[RetryPolicy] = None,
                      meter: Optional[str] = None):
    """Generator: invoke with retries; yields events, returns the result.

    Use from simulation processes::

        result = yield from invoke_with_retry(orb, ior, odef, args)

    Raises the last retryable exception once attempts (or the policy
    deadline) are exhausted.
    """
    policy = policy or RetryPolicy()
    env = orb.env
    rng = (orb.network.rngs.stream(JITTER_STREAM) if policy.jitter
           else None)
    start = env.now

    # Open a retry span so every attempt (and the server work it causes)
    # lands in one causally-linked trace.
    hub = orb.obs
    span = None
    prev_ctx = None
    bound_proc = None
    if hub is not None:
        span = hub.tracer.start_span(
            f"retry:{odef.name}", kind="internal",
            parent=hub.context.current(env), host=orb.host_id,
            attrs={"max_attempts": policy.attempts, "peer": ior.host_id})
        bound_proc = env.active_process
        prev_ctx = hub.context.bind(bound_proc, span.context)

    last_exc: Optional[SystemException] = None
    attempts_made = 0
    try:
        for attempt in range(policy.attempts):
            remaining = (None if policy.deadline is None
                         else policy.deadline - (env.now - start))
            if attempt > 0:
                delay = policy.delay_before(attempt, rng=rng)
                if remaining is not None and delay >= remaining:
                    break  # sleeping would blow the budget; give up now
                orb.metrics.counter("orb.retries").inc()
                orb.metrics.counter(f"orb.retries.{odef.name}").inc()
                yield env.timeout(delay)
                if remaining is not None:
                    remaining = policy.deadline - (env.now - start)
            attempt_timeout = policy.timeout
            if remaining is not None:
                if remaining <= 0:
                    break
                attempt_timeout = min(attempt_timeout, remaining)
            attempts_made += 1
            try:
                result = yield orb.invoke(ior, odef, args,
                                          timeout=attempt_timeout,
                                          meter=meter)
                if span is not None:
                    span.attrs["attempts"] = attempts_made
                    hub.tracer.end_span(span, status="ok")
                return result
            except RETRYABLE as exc:
                last_exc = exc
                continue
        if last_exc is None:
            last_exc = TIMEOUT(
                f"retry deadline {policy.deadline}s exhausted before "
                f"any attempt of {odef.name} could run"
            )
        raise last_exc
    except BaseException as exc:
        if span is not None:
            span.attrs["attempts"] = attempts_made
            hub.tracer.end_span(span, status="error",
                                error=getattr(exc, "repo_id", None)
                                or type(exc).__name__)
        raise
    finally:
        if hub is not None:
            hub.context.bind(bound_proc, prev_ctx)
            if span is not None and not span.finished:
                span.attrs["attempts"] = attempts_made
                hub.tracer.end_span(span, status="ok")


def call_with_retry(orb: ORB, ior: IOR, odef: OperationDef,
                    args: Sequence[Any],
                    policy: Optional[RetryPolicy] = None):
    """Synchronous variant for test/driver code outside the simulation."""
    return orb.sync(orb.env.process(
        invoke_with_retry(orb, ior, odef, args, policy=policy)))

"""TypeCodes: runtime descriptions of IDL types.

A :class:`TypeCode` drives both CDR marshalling (:mod:`repro.orb.cdr`)
and value validation.  The constructors at the bottom mirror the ORB
``create_*_tc`` operations of the CORBA specification.
"""

from __future__ import annotations

import enum
from typing import Any, Optional, Sequence

from repro.orb.exceptions import BAD_PARAM


class TCKind(enum.Enum):
    """The kind tags of the CORBA TypeCode model (the subset we support)."""

    NULL = 0
    VOID = 1
    SHORT = 2
    LONG = 3
    USHORT = 4
    ULONG = 5
    FLOAT = 6
    DOUBLE = 7
    BOOLEAN = 8
    CHAR = 9
    OCTET = 10
    ANY = 11
    STRING = 18
    STRUCT = 15
    UNION = 16
    ENUM = 17
    SEQUENCE = 19
    ARRAY = 20
    ALIAS = 21
    EXCEPT = 22
    LONGLONG = 23
    ULONGLONG = 24
    OBJREF = 14
    OCTETSEQ = 100  # fast path: sequence<octet> as Python bytes


_PRIMITIVE_KINDS = {
    TCKind.NULL, TCKind.VOID, TCKind.SHORT, TCKind.LONG, TCKind.USHORT,
    TCKind.ULONG, TCKind.FLOAT, TCKind.DOUBLE, TCKind.BOOLEAN, TCKind.CHAR,
    TCKind.OCTET, TCKind.STRING, TCKind.LONGLONG, TCKind.ULONGLONG,
    TCKind.ANY, TCKind.OCTETSEQ,
}


class TypeCode:
    """Immutable description of an IDL type.

    Structure-bearing kinds populate:

    - STRUCT / EXCEPT: ``name``, ``repo_id``, ``members`` =
      [(member_name, TypeCode), ...]
    - ENUM: ``name``, ``repo_id``, ``labels`` = [str, ...]
    - SEQUENCE / ARRAY: ``content_type`` (+ ``length`` for ARRAY)
    - ALIAS: ``name``, ``repo_id``, ``content_type``
    - OBJREF: ``name``, ``repo_id``
    - UNION: ``name``, ``repo_id``, ``discriminator_type``,
      ``members`` = [(label_value, member_name, TypeCode), ...],
      ``default_index`` (or -1)
    """

    __slots__ = (
        "kind", "name", "repo_id", "members", "labels", "content_type",
        "length", "discriminator_type", "default_index", "_hash",
    )

    def __init__(
        self,
        kind: TCKind,
        name: str = "",
        repo_id: str = "",
        members: Optional[Sequence] = None,
        labels: Optional[Sequence[str]] = None,
        content_type: Optional["TypeCode"] = None,
        length: int = 0,
        discriminator_type: Optional["TypeCode"] = None,
        default_index: int = -1,
    ) -> None:
        self.kind = kind
        self.name = name
        self.repo_id = repo_id
        self.members = tuple(members) if members is not None else ()
        self.labels = tuple(labels) if labels is not None else ()
        self.content_type = content_type
        self.length = length
        self.discriminator_type = discriminator_type
        self.default_index = default_index
        self._hash: Optional[int] = None

    # -- identity ---------------------------------------------------------
    def _key(self) -> tuple:
        return (
            self.kind, self.name, self.repo_id, self.members, self.labels,
            self.content_type, self.length, self.discriminator_type,
            self.default_index,
        )

    def __eq__(self, other: object) -> bool:
        return isinstance(other, TypeCode) and self._key() == other._key()

    def __hash__(self) -> int:
        # TypeCodes key the codec-plan cache, so hashing is on the ORB
        # hot path; the deep structural hash is computed once.
        h = self._hash
        if h is None:
            h = self._hash = hash(self._key())
        return h

    def __repr__(self) -> str:
        if self.kind in _PRIMITIVE_KINDS:
            return f"TC:{self.kind.name.lower()}"
        if self.kind in (TCKind.SEQUENCE, TCKind.ARRAY):
            suffix = f"[{self.length}]" if self.kind is TCKind.ARRAY else ""
            return f"TC:{self.kind.name.lower()}<{self.content_type!r}>{suffix}"
        return f"TC:{self.kind.name.lower()}({self.name})"

    @property
    def is_primitive(self) -> bool:
        return self.kind in _PRIMITIVE_KINDS

    def member_names(self) -> list[str]:
        if self.kind in (TCKind.STRUCT, TCKind.EXCEPT):
            return [n for n, _tc in self.members]
        if self.kind is TCKind.UNION:
            return [n for _lbl, n, _tc in self.members]
        raise BAD_PARAM(f"{self!r} has no members")


# -- canonical primitive instances -------------------------------------------
tc_null = TypeCode(TCKind.NULL)
tc_void = TypeCode(TCKind.VOID)
tc_short = TypeCode(TCKind.SHORT)
tc_long = TypeCode(TCKind.LONG)
tc_ushort = TypeCode(TCKind.USHORT)
tc_ulong = TypeCode(TCKind.ULONG)
tc_longlong = TypeCode(TCKind.LONGLONG)
tc_ulonglong = TypeCode(TCKind.ULONGLONG)
tc_float = TypeCode(TCKind.FLOAT)
tc_double = TypeCode(TCKind.DOUBLE)
tc_boolean = TypeCode(TCKind.BOOLEAN)
tc_char = TypeCode(TCKind.CHAR)
tc_octet = TypeCode(TCKind.OCTET)
tc_string = TypeCode(TCKind.STRING)
tc_any = TypeCode(TCKind.ANY)
tc_octetseq = TypeCode(TCKind.OCTETSEQ)

#: Generic object reference ("Object" in IDL).
tc_objref = TypeCode(TCKind.OBJREF, name="Object",
                     repo_id="IDL:omg.org/CORBA/Object:1.0")

_BY_NAME: dict[str, TypeCode] = {
    "void": tc_void,
    "short": tc_short,
    "long": tc_long,
    "unsigned short": tc_ushort,
    "unsigned long": tc_ulong,
    "long long": tc_longlong,
    "unsigned long long": tc_ulonglong,
    "float": tc_float,
    "double": tc_double,
    "boolean": tc_boolean,
    "char": tc_char,
    "octet": tc_octet,
    "string": tc_string,
    "any": tc_any,
    "Object": tc_objref,
}


def primitive(name: str) -> TypeCode:
    """Look up a primitive TypeCode by its IDL spelling."""
    try:
        return _BY_NAME[name]
    except KeyError:
        raise BAD_PARAM(f"not a primitive IDL type: {name!r}") from None


# -- constructors ------------------------------------------------------------

def struct_tc(name: str, members: Sequence[tuple[str, TypeCode]],
              repo_id: str = "") -> TypeCode:
    """Create a struct TypeCode with ordered ``(name, type)`` members."""
    _check_members(members)
    return TypeCode(TCKind.STRUCT, name=name,
                    repo_id=repo_id or f"IDL:repro/{name}:1.0",
                    members=members)


def except_tc(name: str, members: Sequence[tuple[str, TypeCode]],
              repo_id: str = "") -> TypeCode:
    """Create an exception TypeCode (same shape as a struct)."""
    _check_members(members)
    return TypeCode(TCKind.EXCEPT, name=name,
                    repo_id=repo_id or f"IDL:repro/{name}:1.0",
                    members=members)


def enum_tc(name: str, labels: Sequence[str], repo_id: str = "") -> TypeCode:
    """Create an enum TypeCode; values travel as their label index."""
    if not labels:
        raise BAD_PARAM("enum needs at least one label")
    if len(set(labels)) != len(labels):
        raise BAD_PARAM(f"duplicate enum labels in {name!r}")
    return TypeCode(TCKind.ENUM, name=name,
                    repo_id=repo_id or f"IDL:repro/{name}:1.0",
                    labels=labels)


def sequence_tc(content: TypeCode, bound: int = 0) -> TypeCode:
    """Create a sequence TypeCode (``bound=0`` means unbounded)."""
    if content.kind is TCKind.OCTET:
        return tc_octetseq
    return TypeCode(TCKind.SEQUENCE, content_type=content, length=bound)


def array_tc(content: TypeCode, length: int) -> TypeCode:
    """Create a fixed-length array TypeCode."""
    if length <= 0:
        raise BAD_PARAM(f"array length must be positive, got {length}")
    return TypeCode(TCKind.ARRAY, content_type=content, length=length)


def alias_tc(name: str, content: TypeCode, repo_id: str = "") -> TypeCode:
    """Create a typedef alias TypeCode."""
    return TypeCode(TCKind.ALIAS, name=name,
                    repo_id=repo_id or f"IDL:repro/{name}:1.0",
                    content_type=content)


def objref_tc(repo_id: str, name: str) -> TypeCode:
    """Create an object-reference TypeCode for a specific interface."""
    return TypeCode(TCKind.OBJREF, name=name, repo_id=repo_id)


def union_tc(name: str, discriminator: TypeCode,
             members: Sequence[tuple[Any, str, TypeCode]],
             default_index: int = -1, repo_id: str = "") -> TypeCode:
    """Create a union TypeCode with ``(label, name, type)`` arms."""
    if not members:
        raise BAD_PARAM("union needs at least one arm")
    return TypeCode(TCKind.UNION, name=name,
                    repo_id=repo_id or f"IDL:repro/{name}:1.0",
                    members=members, discriminator_type=discriminator,
                    default_index=default_index)


def _check_members(members: Sequence[tuple[str, TypeCode]]) -> None:
    names = [n for n, _ in members]
    if len(set(names)) != len(names):
        raise BAD_PARAM(f"duplicate member names: {names}")
    for _, tc in members:
        if not isinstance(tc, TypeCode):
            raise BAD_PARAM(f"member type must be a TypeCode, got {tc!r}")


def unalias(tc: TypeCode) -> TypeCode:
    """Strip ALIAS wrappers down to the underlying TypeCode."""
    while tc.kind is TCKind.ALIAS:
        assert tc.content_type is not None
        tc = tc.content_type
    return tc

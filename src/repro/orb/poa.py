"""Object adapters (a pragmatic POA).

A :class:`POA` maps object keys to servants within one ORB.  Activation
returns the object's :class:`~repro.orb.ior.IOR`.  Servant activators
(lazy incarnation) are supported because the component container uses
them to activate component instances on first use.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.orb.core import ORB, Servant, Stub
from repro.orb.exceptions import BAD_PARAM, OBJECT_NOT_EXIST
from repro.orb.ior import IOR
from repro.util.errors import ConfigurationError
from repro.util.ids import IdGenerator


class POA:
    """One object adapter: a namespace of activated servants."""

    def __init__(self, orb: ORB, name: str) -> None:
        self.orb = orb
        self.name = name
        self._servants: dict[str, Servant] = {}
        self._ids = IdGenerator()
        #: Generation counter, bumped on every servant-table mutation.
        #: The ORB's dispatch-resolution cache fences its entries on it,
        #: so deactivation invalidates cached routes immediately.
        self._gen = 0
        #: Optional lazy activator: key -> Servant (or None to reject).
        self.servant_activator: Optional[Callable[[str], Optional[Servant]]] = None

    # -- activation ----------------------------------------------------------
    def activate(self, servant: Servant, key: Optional[str] = None) -> IOR:
        """Activate *servant*; returns its IOR.

        With no explicit *key*, a fresh ``obj-N`` key is generated.
        """
        if key is None:
            key = self._ids.next("obj")
        if key in self._servants:
            raise ConfigurationError(
                f"object key {key!r} already active in adapter {self.name!r}"
            )
        iface = servant.interface()
        self._servants[key] = servant
        self._gen += 1
        return IOR(repo_id=iface.repo_id, host_id=self.orb.host_id,
                   adapter=self.name, object_key=key)

    def deactivate(self, key: str) -> Servant:
        """Deactivate and return the servant at *key*."""
        try:
            servant = self._servants.pop(key)
        except KeyError:
            raise OBJECT_NOT_EXIST(
                f"no object {key!r} in adapter {self.name!r}"
            ) from None
        self._gen += 1
        return servant

    def ior_for(self, key: str) -> IOR:
        servant = self._servants.get(key)
        if servant is None:
            raise OBJECT_NOT_EXIST(f"no object {key!r}")
        return IOR(repo_id=servant.interface().repo_id,
                   host_id=self.orb.host_id, adapter=self.name, object_key=key)

    # -- lookup ----------------------------------------------------------------
    def servant_for(self, key: str) -> Servant:
        servant = self._servants.get(key)
        if servant is None and self.servant_activator is not None:
            servant = self.servant_activator(key)
            if servant is not None:
                self._servants[key] = servant
                self._gen += 1
        if servant is None:
            raise OBJECT_NOT_EXIST(
                f"no object {key!r} in adapter {self.name!r}"
            )
        return servant

    def is_active(self, key: str) -> bool:
        return key in self._servants

    def active_keys(self) -> list[str]:
        return list(self._servants)

    def __len__(self) -> int:
        return len(self._servants)

    # -- convenience -------------------------------------------------------------
    def serve(self, servant: Servant, key: Optional[str] = None) -> Stub:
        """Activate *servant* and return a local stub for it."""
        ior = self.activate(servant, key)
        return self.orb.stub(ior, servant.interface())

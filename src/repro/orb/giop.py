"""GIOP-style message framing for the ORB.

Requests and replies are fully CDR-encoded; the encoded byte string is
what travels across the simulated network, so wire sizes are real and
the decoder is exercised on every message.

Message grammar (all CDR, big-endian):

    message   := octet msg_type, body
    request   := ulong request_id, boolean response_expected,
                 string host, string adapter, string object_key,
                 string operation, octetseq args, service_context
    reply     := ulong request_id, ulong status, octetseq body
    service_context := ulong count, { string key, string value }*

The service context is a small, ordered set of string key/value slots
carried with every request — the GIOP mechanism interceptors use to
propagate out-of-band state (trace/span ids) along a call chain.

Reply status is one of NO_EXCEPTION / USER_EXCEPTION / SYSTEM_EXCEPTION;
user exception bodies carry ``string repo_id`` then the members, system
exception bodies carry ``string repo_id, string reason, ulong minor,
ulong completed``.
"""

from __future__ import annotations

import struct as _struct

from repro.orb.cdr import CDRDecoder
from repro.orb.exceptions import BAD_PARAM, MARSHAL

MSG_REQUEST = 0
MSG_REPLY = 1
MSG_MULTI = 2

#: Hard cap on service-context slots accepted from the wire.  Legitimate
#: senders carry a handful (trace/span ids); a corrupted count must not
#: drive thousands of decode attempts or allocations.
MAX_SERVICE_CONTEXT_SLOTS = 32

#: Hard cap on logical frames accepted inside one MSG_MULTI transmission.
#: Senders flush well below this (the ORB's pipeline thresholds); a
#: corrupted count must not drive thousands of frame allocations.
MAX_MULTI_FRAMES = 512

NO_EXCEPTION = 0
USER_EXCEPTION = 1
SYSTEM_EXCEPTION = 2

_VALID_STATUS = (NO_EXCEPTION, USER_EXCEPTION, SYSTEM_EXCEPTION)

# Fixed header prefixes, packed in one shot instead of re-running the
# generic CDR encoder per message.  Layouts are byte-identical to the
# original octet/ulong/boolean writes (octet, 3 pad for ulong
# alignment, then the header fields).
_REQ_HEAD = _struct.Struct(">B3xI?")   # msg_type, request_id, response_expected
_REPLY_HEAD = _struct.Struct(">B3xII")  # msg_type, request_id, status
_MULTI_HEAD = _struct.Struct(">B3xI")   # msg_type, frame count
_ULONG = _struct.Struct(">I")


def _append_string(buf: bytearray, s: str) -> None:
    data = s.encode("utf-8")
    pad = (-len(buf)) & 3
    if pad:
        buf += b"\x00" * pad
    buf += _ULONG.pack(len(data) + 1)
    buf += data
    buf.append(0)


class RequestMessage:
    """A GIOP Request: invoke *operation* on (host, adapter, object_key).

    A plain ``__slots__`` class rather than a frozen dataclass: one is
    built per inbound request, and a frozen dataclass pays an
    ``object.__setattr__`` per field in ``__init__`` (~5x the cost of
    plain attribute stores for these eight fields).
    """

    __slots__ = ("request_id", "response_expected", "host", "adapter",
                 "object_key", "operation", "args", "service_context")

    def __init__(self, request_id: int, response_expected: bool, host: str,
                 adapter: str, object_key: str, operation: str,
                 args: bytes,
                 service_context: tuple[tuple[str, str], ...] = ()) -> None:
        self.request_id = request_id
        self.response_expected = response_expected
        self.host = host
        self.adapter = adapter
        self.object_key = object_key
        self.operation = operation
        #: CDR encapsulation of in/inout parameters.
        self.args = args
        #: interceptor-propagated (key, value) slots, e.g. trace context.
        self.service_context = service_context

    def _key(self):
        return (self.request_id, self.response_expected, self.host,
                self.adapter, self.object_key, self.operation, self.args,
                self.service_context)

    def __eq__(self, other) -> bool:
        if type(other) is not RequestMessage:
            return NotImplemented
        return self._key() == other._key()

    def __hash__(self) -> int:
        return hash(self._key())

    def __repr__(self) -> str:
        return (f"RequestMessage(request_id={self.request_id!r}, "
                f"operation={self.operation!r}, host={self.host!r}, "
                f"adapter={self.adapter!r}, "
                f"object_key={self.object_key!r})")

    def encode(self) -> bytes:
        prefix = encode_request_prefix(
            self.host, self.adapter, self.object_key, self.operation)
        return encode_request(self.request_id, self.response_expected,
                              prefix, self.args, self.service_context)


class ReplyMessage:
    """A GIOP Reply matching a request by id.

    Same ``__slots__`` treatment as :class:`RequestMessage`: one is
    built per reply received, so construction cost is hot-path cost.
    """

    __slots__ = ("request_id", "status", "body")

    def __init__(self, request_id: int, status: int, body: bytes) -> None:
        if status not in _VALID_STATUS:
            raise BAD_PARAM(f"invalid reply status {status}")
        self.request_id = request_id
        self.status = status
        self.body = body

    def __eq__(self, other) -> bool:
        if type(other) is not ReplyMessage:
            return NotImplemented
        return (self.request_id == other.request_id
                and self.status == other.status
                and self.body == other.body)

    def __hash__(self) -> int:
        return hash((self.request_id, self.status, self.body))

    def __repr__(self) -> str:
        return (f"ReplyMessage(request_id={self.request_id!r}, "
                f"status={self.status!r}, body=<{len(self.body)} bytes>)")

    def encode(self) -> bytes:
        return encode_reply(self.request_id, self.status, self.body)


class MultiMessage:
    """A pipelined GIOP transmission: many logical messages, one frame.

    Small requests sharing a link within a flush window are coalesced
    into one MSG_MULTI so the simulated network charges one header and
    one per-message delivery for the whole burst.  ``frames`` holds the
    *encoded* sub-messages in send order; the receiving ORB decodes and
    dispatches each one through its normal per-message path, so a
    corrupted frame can be rejected without losing its neighbours.
    """

    __slots__ = ("frames",)

    def __init__(self, frames: tuple) -> None:
        self.frames = tuple(frames)

    def __eq__(self, other) -> bool:
        if type(other) is not MultiMessage:
            return NotImplemented
        return self.frames == other.frames

    def __hash__(self) -> int:
        return hash(self.frames)

    def __repr__(self) -> str:
        return f"MultiMessage({len(self.frames)} frames)"

    def encode(self) -> bytes:
        return encode_multi(self.frames)


def encode_multi(frames) -> bytes:
    """Frame *frames* (encoded GIOP messages) as one MSG_MULTI.

    Wire form: ``octet MSG_MULTI, 3 pad, ulong count`` then per frame
    ``ulong length, bytes, pad to 4``.  Each element may be ``bytes``,
    ``bytearray`` or ``memoryview``.
    """
    if not frames:
        raise BAD_PARAM("cannot encode an empty MSG_MULTI")
    if len(frames) > MAX_MULTI_FRAMES:
        raise BAD_PARAM(f"{len(frames)} frames exceed the MSG_MULTI cap "
                        f"{MAX_MULTI_FRAMES}")
    buf = bytearray(_MULTI_HEAD.pack(MSG_MULTI, len(frames)))
    for frame in frames:
        buf += _ULONG.pack(len(frame))
        buf += frame
        pad = (-len(buf)) & 3
        if pad:
            buf += b"\x00" * pad
    return bytes(buf)


def encode_request_prefix(host: str, adapter: str, object_key: str,
                          operation: str) -> bytes:
    """Pre-encode the four routing strings of a request body.

    The segment assumes it follows the 9-byte fixed request header, so
    it begins with the 3 pad bytes that 4-align the first length word.
    Repeat invocations of the same operation on the same target reuse
    the cached segment and skip four string encodes per call.
    """
    buf = bytearray()
    for s in (host, adapter, object_key, operation):
        data = s.encode("utf-8")
        pad = (-(_REQ_HEAD.size + len(buf))) & 3
        if pad:
            buf += b"\x00" * pad
        buf += _ULONG.pack(len(data) + 1)
        buf += data
        buf.append(0)
    return bytes(buf)


def encode_request(request_id: int, response_expected: bool, prefix: bytes,
                   args, service_context: tuple = ()) -> bytes:
    """One-pass request encode from a pre-built routing *prefix*.

    *args* may be ``bytes``, ``bytearray`` or ``memoryview`` — callers
    holding a pooled encoder buffer can pass it without snapshotting.
    """
    try:
        buf = bytearray(_REQ_HEAD.pack(
            MSG_REQUEST, request_id, response_expected))
    except (_struct.error, TypeError) as exc:
        raise BAD_PARAM(f"cannot marshal request header: {exc}") from None
    buf += prefix
    # _append_octetseq inlined: this append runs once per request sent.
    pad = (-len(buf)) & 3
    if pad:
        buf += b"\x00" * pad
    buf += _ULONG.pack(len(args))
    buf += args
    pad = (-len(buf)) & 3
    if pad:
        buf += b"\x00" * pad
    buf += _ULONG.pack(len(service_context))
    for key, value in service_context:
        _append_string(buf, key)
        _append_string(buf, value)
    return bytes(buf)


def encode_reply(request_id: int, status: int, body) -> bytes:
    """One-pass reply encode.

    *body* may be ``bytes``, ``bytearray`` or ``memoryview``; the reply
    header is a fixed 12-byte, 4-aligned prefix so the body follows
    with no pad.
    """
    if status not in _VALID_STATUS:
        raise BAD_PARAM(f"invalid reply status {status}")
    try:
        buf = bytearray(_REPLY_HEAD.pack(MSG_REPLY, request_id, status))
    except (_struct.error, TypeError) as exc:
        raise BAD_PARAM(f"cannot marshal reply header: {exc}") from None
    buf += _ULONG.pack(len(body))
    buf += body
    return bytes(buf)


#: Python exceptions a hostile byte stream can provoke inside the
#: decoder; all of them must surface as MARSHAL, never raw.
_DECODE_ERRORS = (
    _struct.error, UnicodeDecodeError, OverflowError, ValueError,
    IndexError, TypeError,
)


#: Parsed request routing segments (host, adapter, object_key,
#: operation), keyed by their exact wire bytes.  Repeat invocations of
#: the same operation carry an identical segment, and the segment is
#: self-delimiting — parsing is a prefix-deterministic function of the
#: bytes from offset 9, so equal bytes imply the same four strings and
#: the same end offset.  A hit skips four string decodes; any mutation
#: inside the segment misses and takes the validating slow path.
_SEG_CACHE: dict[bytes, tuple[str, str, str, str]] = {}
_SEG_LENS: list[int] = []
_SEG_CACHE_MAX = 512


def decode_message(data: bytes) -> "RequestMessage | ReplyMessage":
    """Decode either message kind from its wire form.

    Defensive: length and count fields are validated against the bytes
    actually present *before* anything is allocated or iterated, and
    every decode-time Python error is converted to :class:`MARSHAL`.
    The only exceptions this function ever raises are
    :class:`~repro.orb.exceptions.SystemException` subclasses.
    """
    try:
        return _decode_message_body(data)
    except _DECODE_ERRORS as exc:
        raise MARSHAL(f"malformed GIOP message: {exc!r}") from None


def _decode_message_body(data) -> "RequestMessage | ReplyMessage":
    # Work on a plain bytes object: slices hash (for the segment cache)
    # and unpack_from is fastest on it.  Short frames fail inside
    # unpack_from with struct.error, which decode_message maps to
    # MARSHAL; explicit bounds checks guard every slice, because a
    # Python slice past the end truncates silently instead of raising.
    if type(data) is not bytes:
        data = bytes(data)
    if not data:
        raise BAD_PARAM("empty GIOP message")
    msg_type = data[0]
    if msg_type == MSG_REQUEST:
        _, request_id, response_expected = _REQ_HEAD.unpack_from(data, 0)
        head = _REQ_HEAD.size
        for seg_len in _SEG_LENS:
            entry = _SEG_CACHE.get(data[head:head + seg_len])
            if entry is not None:
                host, adapter, object_key, operation = entry
                pos = head + seg_len
                break
        else:
            dec = CDRDecoder(data)
            dec._pos = head
            host = dec.read_string()
            adapter = dec.read_string()
            object_key = dec.read_string()
            operation = dec.read_string()
            pos = dec._pos
            seg_len = pos - head
            if len(_SEG_CACHE) >= _SEG_CACHE_MAX:
                _SEG_CACHE.clear()
                del _SEG_LENS[:]
            _SEG_CACHE[data[head:head + seg_len]] = (
                host, adapter, object_key, operation)
            if seg_len not in _SEG_LENS:
                _SEG_LENS.append(seg_len)
        pos += (-pos) & 3
        (alen,) = _ULONG.unpack_from(data, pos)
        pos += 4
        if alen > len(data) - pos:
            raise BAD_PARAM(f"CDR underflow: need {alen} bytes at {pos}, "
                            f"have {len(data) - pos}")
        args = data[pos:pos + alen]
        pos += alen
        pos += (-pos) & 3
        (n_slots,) = _ULONG.unpack_from(data, pos)
        pos += 4
        if n_slots:
            if n_slots > MAX_SERVICE_CONTEXT_SLOTS:
                raise MARSHAL(f"service context count {n_slots} exceeds cap "
                              f"{MAX_SERVICE_CONTEXT_SLOTS}")
            # Each slot is two strings of >= 4 bytes (length word) each;
            # bound the loop by the bytes that are actually there.
            remaining = len(data) - pos
            if n_slots * 8 > remaining:
                raise MARSHAL(f"service context count {n_slots} exceeds "
                              f"{remaining} remaining bytes")
            dec = CDRDecoder(data)
            dec._pos = pos
            service_context = tuple(
                (dec.read_string(), dec.read_string())
                for _ in range(n_slots)
            )
        else:
            service_context = ()
        return RequestMessage(
            request_id, response_expected, host, adapter, object_key,
            operation, args, service_context,
        )
    if msg_type == MSG_REPLY:
        _, request_id, status = _REPLY_HEAD.unpack_from(data, 0)
        pos = _REPLY_HEAD.size
        (blen,) = _ULONG.unpack_from(data, pos)
        pos += 4
        if blen > len(data) - pos:
            raise BAD_PARAM(f"CDR underflow: need {blen} bytes at {pos}, "
                            f"have {len(data) - pos}")
        return ReplyMessage(request_id, status, data[pos:pos + blen])
    if msg_type == MSG_MULTI:
        _, count = _MULTI_HEAD.unpack_from(data, 0)
        pos = _MULTI_HEAD.size
        if count == 0:
            raise MARSHAL("MSG_MULTI with zero frames")
        if count > MAX_MULTI_FRAMES:
            raise MARSHAL(f"MSG_MULTI frame count {count} exceeds cap "
                          f"{MAX_MULTI_FRAMES}")
        # Each frame needs at least its 4-byte length word; bound the
        # loop by the bytes actually present before allocating anything.
        if count * 4 > len(data) - pos:
            raise MARSHAL(f"MSG_MULTI frame count {count} exceeds "
                          f"{len(data) - pos} remaining bytes")
        frames = []
        for _ in range(count):
            (flen,) = _ULONG.unpack_from(data, pos)
            pos += 4
            if flen > len(data) - pos:
                raise BAD_PARAM(f"CDR underflow: need {flen} bytes at "
                                f"{pos}, have {len(data) - pos}")
            frames.append(data[pos:pos + flen])
            pos += flen
            pos += (-pos) & 3
        return MultiMessage(tuple(frames))
    raise BAD_PARAM(f"unknown GIOP message type {msg_type}")

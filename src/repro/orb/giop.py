"""GIOP-style message framing for the ORB.

Requests and replies are fully CDR-encoded; the encoded byte string is
what travels across the simulated network, so wire sizes are real and
the decoder is exercised on every message.

Message grammar (all CDR, big-endian):

    message   := octet msg_type, body
    request   := ulong request_id, boolean response_expected,
                 string host, string adapter, string object_key,
                 string operation, octetseq args, service_context
    reply     := ulong request_id, ulong status, octetseq body
    service_context := ulong count, { string key, string value }*

The service context is a small, ordered set of string key/value slots
carried with every request — the GIOP mechanism interceptors use to
propagate out-of-band state (trace/span ids) along a call chain.

Reply status is one of NO_EXCEPTION / USER_EXCEPTION / SYSTEM_EXCEPTION;
user exception bodies carry ``string repo_id`` then the members, system
exception bodies carry ``string repo_id, string reason, ulong minor,
ulong completed``.
"""

from __future__ import annotations

import struct as _struct
from dataclasses import dataclass

from repro.orb.cdr import CDRDecoder
from repro.orb.exceptions import BAD_PARAM, MARSHAL

MSG_REQUEST = 0
MSG_REPLY = 1

#: Hard cap on service-context slots accepted from the wire.  Legitimate
#: senders carry a handful (trace/span ids); a corrupted count must not
#: drive thousands of decode attempts or allocations.
MAX_SERVICE_CONTEXT_SLOTS = 32

NO_EXCEPTION = 0
USER_EXCEPTION = 1
SYSTEM_EXCEPTION = 2

_VALID_STATUS = (NO_EXCEPTION, USER_EXCEPTION, SYSTEM_EXCEPTION)

# Fixed header prefixes, packed in one shot instead of re-running the
# generic CDR encoder per message.  Layouts are byte-identical to the
# original octet/ulong/boolean writes (octet, 3 pad for ulong
# alignment, then the header fields).
_REQ_HEAD = _struct.Struct(">B3xI?")   # msg_type, request_id, response_expected
_REPLY_HEAD = _struct.Struct(">B3xII")  # msg_type, request_id, status
_ULONG = _struct.Struct(">I")


def _append_string(buf: bytearray, s: str) -> None:
    data = s.encode("utf-8")
    pad = (-len(buf)) & 3
    if pad:
        buf += b"\x00" * pad
    buf += _ULONG.pack(len(data) + 1)
    buf += data
    buf.append(0)


def _append_octetseq(buf: bytearray, data: bytes) -> None:
    pad = (-len(buf)) & 3
    if pad:
        buf += b"\x00" * pad
    buf += _ULONG.pack(len(data))
    buf += data


@dataclass(frozen=True)
class RequestMessage:
    """A GIOP Request: invoke *operation* on (host, adapter, object_key)."""

    request_id: int
    response_expected: bool
    host: str
    adapter: str
    object_key: str
    operation: str
    args: bytes  # CDR encapsulation of in/inout parameters
    #: interceptor-propagated (key, value) slots, e.g. trace context.
    service_context: tuple[tuple[str, str], ...] = ()

    def encode(self) -> bytes:
        try:
            buf = bytearray(_REQ_HEAD.pack(
                MSG_REQUEST, self.request_id, self.response_expected
            ))
        except (_struct.error, TypeError) as exc:
            raise BAD_PARAM(f"cannot marshal request header: {exc}") from None
        _append_string(buf, self.host)
        _append_string(buf, self.adapter)
        _append_string(buf, self.object_key)
        _append_string(buf, self.operation)
        _append_octetseq(buf, self.args)
        pad = (-len(buf)) & 3
        if pad:
            buf += b"\x00" * pad
        buf += _ULONG.pack(len(self.service_context))
        for key, value in self.service_context:
            _append_string(buf, key)
            _append_string(buf, value)
        return bytes(buf)


@dataclass(frozen=True)
class ReplyMessage:
    """A GIOP Reply matching a request by id."""

    request_id: int
    status: int
    body: bytes

    def __post_init__(self) -> None:
        if self.status not in _VALID_STATUS:
            raise BAD_PARAM(f"invalid reply status {self.status}")

    def encode(self) -> bytes:
        try:
            buf = bytearray(_REPLY_HEAD.pack(
                MSG_REPLY, self.request_id, self.status
            ))
        except (_struct.error, TypeError) as exc:
            raise BAD_PARAM(f"cannot marshal reply header: {exc}") from None
        _append_octetseq(buf, self.body)
        return bytes(buf)


#: Python exceptions a hostile byte stream can provoke inside the
#: decoder; all of them must surface as MARSHAL, never raw.
_DECODE_ERRORS = (
    _struct.error, UnicodeDecodeError, OverflowError, ValueError,
    IndexError, TypeError,
)


def decode_message(data: bytes) -> "RequestMessage | ReplyMessage":
    """Decode either message kind from its wire form.

    Defensive: length and count fields are validated against the bytes
    actually present *before* anything is allocated or iterated, and
    every decode-time Python error is converted to :class:`MARSHAL`.
    The only exceptions this function ever raises are
    :class:`~repro.orb.exceptions.SystemException` subclasses.
    """
    try:
        return _decode_message_body(CDRDecoder(data))
    except _DECODE_ERRORS as exc:
        raise MARSHAL(f"malformed GIOP message: {exc!r}") from None


def _decode_message_body(dec: CDRDecoder) -> "RequestMessage | ReplyMessage":
    msg_type = dec.read_octet()
    if msg_type == MSG_REQUEST:
        request_id = dec.read_ulong()
        response_expected = dec.read_boolean()
        host = dec.read_string()
        adapter = dec.read_string()
        object_key = dec.read_string()
        operation = dec.read_string()
        args = dec.read_octet_sequence()
        n_slots = dec.read_ulong()
        if n_slots > MAX_SERVICE_CONTEXT_SLOTS:
            raise MARSHAL(f"service context count {n_slots} exceeds cap "
                          f"{MAX_SERVICE_CONTEXT_SLOTS}")
        # Each slot is two strings of >= 4 bytes (length word) each;
        # bound the loop by the bytes that are actually there.
        if n_slots * 8 > dec.remaining:
            raise MARSHAL(f"service context count {n_slots} exceeds "
                          f"{dec.remaining} remaining bytes")
        service_context = tuple(
            (dec.read_string(), dec.read_string()) for _ in range(n_slots)
        )
        return RequestMessage(
            request_id=request_id,
            response_expected=response_expected,
            host=host,
            adapter=adapter,
            object_key=object_key,
            operation=operation,
            args=args,
            service_context=service_context,
        )
    if msg_type == MSG_REPLY:
        return ReplyMessage(
            request_id=dec.read_ulong(),
            status=dec.read_ulong(),
            body=dec.read_octet_sequence(),
        )
    raise BAD_PARAM(f"unknown GIOP message type {msg_type}")

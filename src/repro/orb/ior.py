"""Interoperable Object References.

An IOR names a CORBA object: the interface it implements (repository
id), the host it lives on, the object adapter within that host's ORB,
and the object key within that adapter.  IORs are value objects —
hashable, comparable and round-trippable through a stringified form, so
they can be passed through CDR, stored in registries and published in
XML descriptors.
"""

from __future__ import annotations

from dataclasses import dataclass

_FORBIDDEN = set("/@\n")


def _check_part(label: str, value: str) -> str:
    if not value:
        raise ValueError(f"IOR {label} must be non-empty")
    if any(c in _FORBIDDEN for c in value):
        raise ValueError(f"IOR {label} {value!r} contains a reserved character")
    return value


@dataclass(frozen=True)
class IOR:
    """A reference to one CORBA object."""

    repo_id: str      # e.g. "IDL:corbalc/Node:1.0"
    host_id: str      # simulated host the servant lives on
    adapter: str      # object adapter name within that host's ORB
    object_key: str   # key within the adapter

    def __post_init__(self) -> None:
        if not self.repo_id:
            raise ValueError("IOR repo_id must be non-empty")
        if any(c in "@\n" for c in self.repo_id):
            raise ValueError(f"IOR repo_id {self.repo_id!r} has reserved chars")
        _check_part("host_id", self.host_id)
        _check_part("adapter", self.adapter)
        _check_part("object_key", self.object_key)

    def to_string(self) -> str:
        """Stringified form, parseable by :meth:`from_string`."""
        return f"IOR:{self.repo_id}@{self.host_id}/{self.adapter}/{self.object_key}"

    @classmethod
    def from_string(cls, text: str) -> "IOR":
        """Parse a stringified IOR; raises ValueError on malformed input."""
        if not text.startswith("IOR:"):
            raise ValueError(f"not a stringified IOR: {text!r}")
        rest = text[4:]
        try:
            repo_id, location = rest.split("@", 1)
            host_id, adapter, object_key = location.split("/", 2)
        except ValueError:
            raise ValueError(f"malformed IOR: {text!r}") from None
        return cls(repo_id=repo_id, host_id=host_id, adapter=adapter,
                   object_key=object_key)

    def __str__(self) -> str:
        return self.to_string()

"""Generated-source CDR codecs: the third (fastest) marshalling tier.

Where :mod:`repro.orb.compiled` interprets a closure-based *plan* per
TypeCode, this module emits actual Python source for a fused encoder
and decoder, compiles it once with :func:`exec`, and hands the pair to
the plan cache (``compiled.get_plan`` attaches it when the TypeCode is
supported — see ``compiled._attach_codegen``).

What the generated code buys over the plan tier:

- **no per-call plan walking**: member extraction, alignment residue
  selection, struct.pack/unpack batching and value rebuilding are all
  straight-line statements specialized to the one TypeCode;
- **constant-folded alignment**: every fused run binds its 8
  per-residue Struct variants (``x`` pads standing in for alignment
  gaps) and selects by ``len(buf) & 7`` / ``pos & 7`` at run time;
- **zero-copy decode**: the decoder reads through the decoder's
  ``memoryview`` with ``unpack_from`` and decodes strings straight
  from memoryview slices — no intermediate ``bytes`` copies;
- **batched homogeneous sequences**: a sequence of fixed-size elements
  flattens through a plain append loop and marshals count + all
  elements in a single ``pack`` (``make_batcher(..., lead_ulong=True)``).

Tier-selection rules: ``Any`` and object references are *declined*
(``generate`` returns None) because their wire shape depends on the
value, as are types past the nesting limit (the plan tier owns the
depth-enforcement semantics) and shapes that would nest generated
blocks too deeply.  Declined TypeCodes simply stay on the plan tier.

Error containment: generated bodies run inside ``try`` blocks whose
handlers convert any raw Python error into ``BAD_PARAM`` (encode,
plus decode underflow) or ``MARSHAL`` (decode corruption).  The
repo's SystemExceptions derive from plain ``Exception`` only, so a
deliberate ``BAD_PARAM``/``MARSHAL`` raised inside a generated body
passes through the handlers untouched.

Byte-for-byte equivalence with the interpreter and the plan tier is
enforced by ``tests/property/test_trimodal_properties.py``; hostile
input containment by the codec-tier fuzz in ``repro.orb.fuzz``.
"""

from __future__ import annotations

import struct as _struct
from typing import Optional

from repro.orb import compiled as _c
from repro.orb.exceptions import BAD_PARAM, MARSHAL
from repro.orb.typecodes import TCKind, TypeCode

_MAX_NESTING = _c._MAX_NESTING
_FUSE_LIMIT = _c._FUSE_LIMIT

#: Generated block-nesting budget (unions/loops); keeps emitted source
#: well clear of any nested-block or indentation compile limits.
_MAX_BLOCKS = 8

#: Observability: ``generated``/``unsupported`` count generate() work,
#: ``cache_hits``/``cache_misses`` count lookups of already-generated
#: codecs (the "codegen cache hits > 0" perf-floor signal).
stats = {"generated": 0, "unsupported": 0, "cache_hits": 0,
         "cache_misses": 0}

#: Call counters shared by every generated function: [encode, decode].
_CALLS = [0, 0]


def reset_stats() -> None:
    stats["generated"] = stats["unsupported"] = 0
    stats["cache_hits"] = stats["cache_misses"] = 0
    _CALLS[0] = _CALLS[1] = 0


def stats_snapshot() -> dict:
    """stats plus the generated-function call counters (benchmarks)."""
    snap = dict(stats)
    snap["encode_calls"] = _CALLS[0]
    snap["decode_calls"] = _CALLS[1]
    return snap


#: Exceptions a generated *encoder* converts to BAD_PARAM: everything a
#: bad value can plausibly raise.  SystemException is NOT derived from
#: any of these, so deliberate CORBA errors pass through.
_EERR = (_struct.error, TypeError, KeyError, AttributeError, ValueError,
         IndexError, OverflowError)
#: Exceptions a generated *decoder* converts to MARSHAL (struct.error is
#: handled first and separately as BAD_PARAM underflow, matching the
#: plan tier's pre-checked underflow class).
_DERR = (TypeError, KeyError, AttributeError, ValueError, IndexError,
         OverflowError)


# -- caches -------------------------------------------------------------------

_CACHE_MAX = 2048
#: repository id -> (tc, pair); the per-operation front cache named in
#: the design: operation signatures resolve by repo id without hashing
#: the whole TypeCode graph.
_REPO_CACHE: dict[str, tuple[TypeCode, object]] = {}
#: structural cache, including negative entries (None = unsupported).
_TC_CACHE: dict[TypeCode, object] = {}


def clear_cache() -> None:
    _REPO_CACHE.clear()
    _TC_CACHE.clear()


def cache_size() -> int:
    return len(_TC_CACHE)


# -- supportability -----------------------------------------------------------

def _ok(tc: TypeCode, depth: int, blocks: int) -> bool:
    if depth > _MAX_NESTING or blocks > _MAX_BLOCKS:
        return False
    kind = tc.kind
    if kind is TCKind.ALIAS:
        return _ok(tc.content_type, depth + 1, blocks)
    if kind in (TCKind.ANY, TCKind.OBJREF):
        # Wire shape depends on the runtime value: interpreter/plan tier.
        return False
    if kind in (TCKind.NULL, TCKind.VOID, TCKind.STRING, TCKind.OCTETSEQ,
                TCKind.CHAR, TCKind.ENUM) or kind in _c._PRIM_LEAF:
        return True
    if kind in (TCKind.STRUCT, TCKind.EXCEPT):
        return all(_ok(mtc, depth + 1, blocks) for _n, mtc in tc.members)
    if kind is TCKind.UNION:
        if not _ok(tc.discriminator_type, depth + 1, blocks):
            return False
        return all(_ok(arm_tc, depth + 1, blocks + 1)
                   for _l, _n, arm_tc in tc.members)
    if kind in (TCKind.SEQUENCE, TCKind.ARRAY):
        content = tc.content_type
        if _c._fixed_info(content, depth + 1) is not None:
            return True  # batched: no generated loop nesting
        return _ok(content, depth + 1, blocks + 1)
    return False


# -- source builder -----------------------------------------------------------

class _Builder:
    """Accumulates source lines plus the exec-globals they reference."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.lines: list[str] = []
        self.n = 0
        self.g = {
            "BAD_PARAM": BAD_PARAM,
            "MARSHAL": MARSHAL,
            "_SERR": _struct.error,
            "_EERR": _EERR,
            "_DERR": _DERR,
            "_char": _c._char_enc,
            "_N": _CALLS,
            "len": len, "isinstance": isinstance, "type": type,
            "str": str, "bytes": bytes, "bytearray": bytearray,
            "memoryview": memoryview, "chr": chr, "list": list,
            "dict": dict,
            "range": range, "sorted": sorted, "repr": repr,
            "getattr": getattr,
            "TypeError": TypeError, "ValueError": ValueError,
            "KeyError": KeyError, "IndexError": IndexError,
            "AttributeError": AttributeError,
            "__builtins__": {},
        }

    def sym(self, prefix: str, obj) -> str:
        self.n += 1
        name = f"_{prefix}{self.n}"
        self.g[name] = obj
        return name

    def tmp(self, prefix: str = "t") -> str:
        self.n += 1
        return f"_{prefix}{self.n}"

    def emit(self, ind: int, line: str) -> None:
        self.lines.append("    " * ind + line)


# -- encoder emission ---------------------------------------------------------
# A pending "run" is a list of ((fmt_char, size, align), value_expr)
# pairs; flushing emits one pack through the per-residue Struct variants.

def _flush_enc(b: _Builder, run: list, ind: int) -> None:
    if not run:
        return
    leaves = tuple(leaf for leaf, _e in run)
    vs = b.sym("vs", _c._variant_structs(leaves))
    exprs = ", ".join(e for _l, e in run)
    b.emit(ind, f"buf += {vs}[len(buf) & 7].pack({exprs})")
    del run[:]


def _seq_fast_item(b: _Builder, tc: TypeCode):
    """Per-element append-expression templates for the batched-sequence
    fast flatten loop, or None when the element needs the strict
    plan-tier flatten.  Returns (templates, first_item_dict_len).

    The bound-append loop is deliberate: C-level alternatives measured
    slower here (itemgetter+map+chain pays a tuple per element and the
    ``*generator`` splat materializes item by item; strided slice
    assignment pays two passes), so two appends per element wins."""
    while tc.kind is TCKind.ALIAS:
        tc = tc.content_type
    kind = tc.kind
    if kind in _c._PRIM_LEAF:
        return ["{e}"], None
    if kind is TCKind.CHAR:
        return ["_char({e})"], None
    if kind is TCKind.ENUM:
        ce = b.sym("ec", _c._enum_convs(tc)[0])
        return [ce + "({e})"], None
    if kind in (TCKind.STRUCT, TCKind.EXCEPT) and tc.members:
        templates = []
        for name, mtc in tc.members:
            while mtc.kind is TCKind.ALIAS:
                mtc = mtc.content_type
            mk = mtc.kind
            item = "{e}[" + repr(name) + "]"
            if mk in _c._PRIM_LEAF:
                templates.append(item)
            elif mk is TCKind.CHAR:
                templates.append("_char(" + item + ")")
            elif mk is TCKind.ENUM:
                ce = b.sym("ec", _c._enum_convs(mtc)[0])
                templates.append(ce + "(" + item + ")")
            else:
                return None
        return templates, len(tc.members)
    return None


def _emit_batched_enc(b: _Builder, content: TypeCode, finfo, items: str,
                      nv: str, run: list, ind: int,
                      lead_count: bool) -> None:
    """Flatten *items* and emit one batched pack (count-fused when
    ``lead_count``)."""
    leaves, flatten, _uf = finfo
    bc = b.sym("bc", _c.make_batcher(leaves, lead_ulong=lead_count))
    ctc = content
    while ctc.kind is TCKind.ALIAS:
        ctc = ctc.content_type
    if ctc.kind in _c._PRIM_LEAF:
        # Plain primitive elements: splat the items list straight into
        # pack — no flatten pass at all.  Bad values fail inside pack
        # (struct.error) and surface as BAD_PARAM via the wrapper.
        _flush_enc(b, run, ind)
        if lead_count:
            b.emit(ind, f"buf += {bc}(len(buf) & 7, {nv})"
                        f".pack({nv}, *{items})")
        else:
            b.emit(ind, f"buf += {bc}(len(buf) & 7, {nv}).pack(*{items})")
        return
    ov = b.tmp("w")
    ev = b.tmp("e")
    if ctc.kind is TCKind.CHAR:
        _flush_enc(b, run, ind)
        b.emit(ind, f"{ov} = [_char({ev}) for {ev} in {items}]")
        if lead_count:
            b.emit(ind, f"buf += {bc}(len(buf) & 7, {nv})"
                        f".pack({nv}, *{ov})")
        else:
            b.emit(ind, f"buf += {bc}(len(buf) & 7, {nv}).pack(*{ov})")
        return
    if ctc.kind is TCKind.ENUM:
        ce = b.sym("ec", _c._enum_convs(ctc)[0])
        _flush_enc(b, run, ind)
        b.emit(ind, f"{ov} = [{ce}({ev}) for {ev} in {items}]")
        if lead_count:
            b.emit(ind, f"buf += {bc}(len(buf) & 7, {nv})"
                        f".pack({nv}, *{ov})")
        else:
            b.emit(ind, f"buf += {bc}(len(buf) & 7, {nv}).pack(*{ov})")
        return
    fast = _seq_fast_item(b, content)
    b.emit(ind, f"{ov} = []")
    if fast is None:
        fl = b.sym("fl", flatten)
        b.emit(ind, f"for {ev} in {items}: {fl}({ev}, {ov})")
    else:
        templates, gate = fast
        ap = b.tmp("ap")
        b.emit(ind, f"{ap} = {ov}.append")
        b.emit(ind, "try:")
        if gate is not None:
            # Dict-shaped elements: vet the first item's shape, then run
            # the unchecked loop; any non-conforming later item raises
            # into the strict fallback below.
            b.emit(ind + 1,
                   f"if {items} and (type({items}[0]) is not dict"
                   f" or len({items}[0]) != {gate}):")
            b.emit(ind + 2, "raise TypeError")
        body = "; ".join(
            f"{ap}({tpl.format(e=ev)})" for tpl in templates)
        b.emit(ind + 1, f"for {ev} in {items}: {body}")
        b.emit(ind, "except (TypeError, KeyError, IndexError,"
                    " AttributeError):")
        fl = b.sym("fl", flatten)
        b.emit(ind + 1, f"del {ov}[:]")
        b.emit(ind + 1, f"for {ev} in {items}: {fl}({ev}, {ov})")
    _flush_enc(b, run, ind)
    if lead_count:
        b.emit(ind, f"buf += {bc}(len(buf) & 7, {nv}).pack({nv}, *{ov})")
    else:
        b.emit(ind, f"buf += {bc}(len(buf) & 7, {nv}).pack(*{ov})")


def _emit_encode(b: _Builder, tc: TypeCode, expr: str, run: list,
                 ind: int) -> None:
    kind = tc.kind
    if kind is TCKind.ALIAS:
        _emit_encode(b, tc.content_type, expr, run, ind)
        return
    if kind in (TCKind.NULL, TCKind.VOID):
        msg = b.sym("ms", "void carries no value, got ")
        b.emit(ind, f"if {expr} is not None:")
        b.emit(ind + 1, f"raise BAD_PARAM({msg} + repr({expr}))")
        return
    leaf = _c._PRIM_LEAF.get(kind)
    if leaf is not None:
        ch, size = leaf
        run.append(((ch, size, size), expr))
        return
    if kind is TCKind.CHAR:
        run.append((("B", 1, 1), f"_char({expr})"))
        return
    if kind is TCKind.ENUM:
        ce = b.sym("ec", _c._enum_convs(tc)[0])
        run.append((("I", 4, 4), f"{ce}({expr})"))
        return
    if kind is TCKind.STRING:
        t = b.tmp("s")
        d = b.tmp("d")
        msg = b.sym("ms", "expected str, got ")
        b.emit(ind, f"{t} = {expr}")
        b.emit(ind, f"if not isinstance({t}, str):")
        b.emit(ind + 1, f"raise BAD_PARAM({msg} + type({t}).__name__)")
        b.emit(ind, f"{d} = {t}.encode('utf-8')")
        run.append((("I", 4, 4), f"len({d}) + 1"))
        _flush_enc(b, run, ind)
        b.emit(ind, f"buf += {d}")
        b.emit(ind, "buf.append(0)")
        return
    if kind is TCKind.OCTETSEQ:
        t = b.tmp("o")
        msg = b.sym("ms", "expected bytes, got ")
        b.emit(ind, f"{t} = {expr}")
        b.emit(ind, f"if not isinstance({t}, (bytes, bytearray,"
                    f" memoryview)):")
        b.emit(ind + 1, f"raise BAD_PARAM({msg} + type({t}).__name__)")
        run.append((("I", 4, 4), f"len({t})"))
        _flush_enc(b, run, ind)
        b.emit(ind, f"buf += {t}")
        return
    if kind in (TCKind.STRUCT, TCKind.EXCEPT):
        names = [n for n, _ in tc.members]
        if expr.isidentifier():
            t = expr
        else:
            t = b.tmp("v")
            b.emit(ind, f"{t} = {expr}")
        mtemps = [b.tmp("m") for _ in names]
        msg = b.sym("ms", f"struct {tc.name} wrong members: ")
        b.emit(ind, f"if isinstance({t}, dict):")
        b.emit(ind + 1, f"if len({t}) != {len(names)}:")
        b.emit(ind + 2, f"raise BAD_PARAM({msg} + repr(sorted({t})))")
        if names:
            b.emit(ind + 1, "; ".join(
                f"{mt} = {t}[{nm!r}]" for mt, nm in zip(mtemps, names)))
        else:
            b.emit(ind + 1, "pass")
        b.emit(ind, "else:")
        if not names:
            b.emit(ind + 1, "pass")
        elif all(nm.isidentifier() for nm in names):
            b.emit(ind + 1, "; ".join(
                f"{mt} = {t}.{nm}" for mt, nm in zip(mtemps, names)))
        else:  # pragma: no cover - IDL member names are identifiers
            b.emit(ind + 1, "; ".join(
                f"{mt} = getattr({t}, {nm!r})"
                for mt, nm in zip(mtemps, names)))
        for mt, (_nm, mtc) in zip(mtemps, tc.members):
            _emit_encode(b, mtc, mt, run, ind)
        return
    if kind is TCKind.UNION:
        dt = b.tmp("d")
        it = b.tmp("i")
        msg = b.sym(
            "ms", f"union {tc.name} value must be (discriminator, value)")
        b.emit(ind, "try:")
        b.emit(ind + 1, f"{dt}, {it} = {expr}")
        b.emit(ind, "except (TypeError, ValueError):")
        b.emit(ind + 1, f"raise BAD_PARAM({msg}) from None")
        _emit_encode(b, tc.discriminator_type, dt, run, ind)
        _flush_enc(b, run, ind)
        nomsg = b.sym(
            "ms", f"union {tc.name}: no arm for discriminator ")
        default = None
        if 0 <= tc.default_index < len(tc.members):
            default = tc.members[tc.default_index][2]

        def _arm_body(arm_tc: TypeCode, aind: int) -> None:
            mark = len(b.lines)
            arm_run: list = []
            _emit_encode(b, arm_tc, it, arm_run, aind)
            _flush_enc(b, arm_run, aind)
            if len(b.lines) == mark:
                b.emit(aind, "pass")

        kw = "if"
        for label, _name, arm_tc in tc.members:
            if label is None:
                continue
            lab = b.sym("lb", label)
            b.emit(ind, f"{kw} {dt} == {lab}:")
            _arm_body(arm_tc, ind + 1)
            kw = "elif"
        if kw == "if":  # no labelled arms at all
            if default is not None:
                _arm_body(default, ind)
            else:
                b.emit(ind, f"raise BAD_PARAM({nomsg} + repr({dt}))")
        else:
            b.emit(ind, "else:")
            if default is not None:
                _arm_body(default, ind + 1)
            else:
                b.emit(ind + 1, f"raise BAD_PARAM({nomsg} + repr({dt}))")
        return
    if kind is TCKind.SEQUENCE:
        content = tc.content_type
        t = b.tmp("q")
        nv = b.tmp("n")
        b.emit(ind, f"{t} = {expr} if type({expr}) is list"
                    f" else list({expr})")
        b.emit(ind, f"{nv} = len({t})")
        if tc.length:
            msg = b.sym("ms", f"sequence bound {tc.length} exceeded ")
            b.emit(ind, f"if {nv} > {tc.length}:")
            b.emit(ind + 1, f"raise BAD_PARAM({msg} + repr({nv}))")
        finfo = _c._fixed_info(content, 1)
        if finfo is not None and finfo[0]:
            _emit_batched_enc(b, content, finfo, t, nv, run, ind,
                              lead_count=True)
        else:
            run.append((("I", 4, 4), nv))
            _flush_enc(b, run, ind)
            ev = b.tmp("e")
            b.emit(ind, f"for {ev} in {t}:")
            mark = len(b.lines)
            item_run: list = []
            _emit_encode(b, content, ev, item_run, ind + 1)
            _flush_enc(b, item_run, ind + 1)
            if len(b.lines) == mark:
                b.emit(ind + 1, "pass")
        return
    if kind is TCKind.ARRAY:
        content = tc.content_type
        length = tc.length
        t = b.tmp("a")
        b.emit(ind, f"{t} = {expr} if type({expr}) is list"
                    f" else list({expr})")
        msg = b.sym("ms", f"array of length {length} got ")
        b.emit(ind, f"if len({t}) != {length}:")
        b.emit(ind + 1, f"raise BAD_PARAM({msg} + repr(len({t}))"
                        " + ' items')")
        whole = _c._fixed_info(tc, 1)
        if whole is not None and whole[0]:
            # Small fixed array: unroll elements straight into the run.
            for i in range(length):
                _emit_encode(b, content, f"{t}[{i}]", run, ind)
            return
        finfo = _c._fixed_info(content, 1)
        if finfo is not None and finfo[0]:
            _emit_batched_enc(b, content, finfo, t, str(length), run, ind,
                              lead_count=False)
        else:
            _flush_enc(b, run, ind)
            ev = b.tmp("e")
            b.emit(ind, f"for {ev} in {t}:")
            mark = len(b.lines)
            item_run = []
            _emit_encode(b, content, ev, item_run, ind + 1)
            _flush_enc(b, item_run, ind + 1)
            if len(b.lines) == mark:
                b.emit(ind + 1, "pass")
        return
    raise _Unsupported(kind)  # pragma: no cover - guarded by _ok


class _Unsupported(Exception):
    pass


# -- decoder emission ---------------------------------------------------------

def _ix(v: str, base, off: int) -> str:
    """Index expression into unpack tuple *v* at *base* + *off*."""
    if isinstance(base, int):
        return f"{v}[{base + off}]"
    if off == 0:
        return f"{v}[{base}]"
    return f"{v}[{base} + {off}]"


def _dec_expr(b: _Builder, tc: TypeCode, v: str, base):
    """Value-rebuilding expression over unpack tuple *v* for a wholly
    fixed-size *tc*; returns (expr, leaves_consumed)."""
    kind = tc.kind
    if kind is TCKind.ALIAS:
        return _dec_expr(b, tc.content_type, v, base)
    if kind in (TCKind.NULL, TCKind.VOID):
        return "None", 0
    if kind in _c._PRIM_LEAF:
        return _ix(v, base, 0), 1
    if kind is TCKind.CHAR:
        return f"chr({_ix(v, base, 0)})", 1
    if kind is TCKind.ENUM:
        cd = b.sym("dc", _c._enum_convs(tc)[1])
        return f"{cd}({_ix(v, base, 0)})", 1
    if kind in (TCKind.STRUCT, TCKind.EXCEPT):
        parts = []
        off = 0
        for name, mtc in tc.members:
            e, n = _dec_expr(
                b, mtc, v,
                base + off if isinstance(base, int) else f"{base} + {off}"
                if off else base)
            parts.append(f"{name!r}: {e}")
            off += n
        return "{" + ", ".join(parts) + "}", off
    if kind is TCKind.ARRAY:
        parts = []
        off = 0
        for _ in range(tc.length):
            e, n = _dec_expr(
                b, tc.content_type, v,
                base + off if isinstance(base, int) else f"{base} + {off}"
                if off else base)
            parts.append(e)
            off += n
        return "[" + ", ".join(parts) + "]", off
    raise _Unsupported(kind)  # pragma: no cover - guarded by _fixed_info


class _DecRun:
    """Pending fixed-leaf run for the decoder: leaves accumulate until a
    variable-size step forces one fused unpack, at which point deferred
    value assignments are emitted against the unpack tuple."""

    def __init__(self, b: _Builder) -> None:
        self.b = b
        self.leaves: list = []
        self.pending: list = []  # (target, tc, start_index)

    def add(self, tc: TypeCode, leaves, target: str) -> None:
        self.pending.append((target, tc, len(self.leaves)))
        self.leaves.extend(leaves)

    def add_count(self) -> int:
        i = len(self.leaves)
        self.leaves.append(("I", 4, 4))
        return i

    def flush(self, ind: int) -> Optional[str]:
        b = self.b
        var = None
        if self.leaves:
            vs = b.sym("vs", _c._variant_structs(tuple(self.leaves)))
            sv = b.tmp("sv")
            var = b.tmp("v")
            b.emit(ind, f"{sv} = {vs}[pos & 7]")
            b.emit(ind, f"{var} = {sv}.unpack_from(buf, pos);"
                        f" pos += {sv}.size")
        for target, tc, start in self.pending:
            expr, _n = _dec_expr(b, tc, var, start)
            b.emit(ind, f"{target} = {expr}")
        self.leaves = []
        self.pending = []
        return var


def _emit_batched_dec(b: _Builder, content: TypeCode, finfo, nv, target: str,
                      ind: int, guard: bool) -> None:
    """Unpack *nv* fixed-size elements in one batch into *target*."""
    leaves = finfo[0]
    k = len(leaves)
    min_elem = sum(size for _ch, size, _a in leaves)
    bc = b.sym("bc", _c.make_batcher(leaves))
    if guard:
        # Bound allocation before building an O(n) format for garbage
        # counts — same contract as the plan tier.
        msg = b.sym("ms", "CDR underflow: batched sequence needs ")
        b.emit(ind, f"if {nv} * {min_elem} > end - pos:")
        b.emit(ind + 1,
               f"raise BAD_PARAM({msg} + repr({nv} * {min_elem})"
               " + ' bytes')")
    b.emit(ind, f"if {nv}:")
    sv = b.tmp("bs")
    bv = b.tmp("bv")
    b.emit(ind + 1, f"{sv} = {bc}(pos & 7, {nv})")
    b.emit(ind + 1, f"{bv} = {sv}.unpack_from(buf, pos);"
                    f" pos += {sv}.size")
    if k == 1:
        expr, _n = _dec_expr(b, content, bv, "__x__")
        if expr == f"{bv}[__x__]":
            b.emit(ind + 1, f"{target} = list({bv})")
        else:
            xv = b.tmp("x")
            b.emit(ind + 1,
                   f"{target} = [{expr.replace(f'{bv}[__x__]', xv)}"
                   f" for {xv} in {bv}]")
    else:
        iv = b.tmp("i")
        expr, _n = _dec_expr(b, content, bv, iv)
        b.emit(ind + 1, f"{target} = [{expr}"
                        f" for {iv} in range(0, {k} * {nv}, {k})]")
    b.emit(ind, "else:")
    b.emit(ind + 1, f"{target} = []")


def _emit_decode(b: _Builder, st: _DecRun, tc: TypeCode, target: str,
                 ind: int) -> None:
    kind = tc.kind
    if kind is TCKind.ALIAS:
        _emit_decode(b, st, tc.content_type, target, ind)
        return
    finfo = _c._fixed_info(tc, 1)
    if finfo is not None:
        st.add(tc, finfo[0], target)
        return
    if kind is TCKind.STRING:
        ci = st.add_count()
        v = st.flush(ind)
        lv = b.tmp("l")
        npv = b.tmp("p")
        msg = b.sym("ms", "CDR underflow or missing NUL reading string")
        b.emit(ind, f"{lv} = {v}[{ci}]")
        b.emit(ind, f"{npv} = pos + {lv}")
        b.emit(ind, f"if {lv} == 0 or {npv} > end or buf[{npv} - 1]:")
        b.emit(ind + 1, f"raise BAD_PARAM({msg})")
        b.emit(ind, f"{target} = str(buf[pos:{npv} - 1], 'utf-8')")
        b.emit(ind, f"pos = {npv}")
        return
    if kind is TCKind.OCTETSEQ:
        ci = st.add_count()
        v = st.flush(ind)
        npv = b.tmp("p")
        msg = b.sym("ms", "CDR underflow reading octet sequence")
        b.emit(ind, f"{npv} = pos + {v}[{ci}]")
        b.emit(ind, f"if {npv} > end:")
        b.emit(ind + 1, f"raise BAD_PARAM({msg})")
        b.emit(ind, f"{target} = bytes(buf[pos:{npv}])")
        b.emit(ind, f"pos = {npv}")
        return
    if kind is TCKind.SEQUENCE:
        content = tc.content_type
        ci = st.add_count()
        v = st.flush(ind)
        nv = b.tmp("n")
        b.emit(ind, f"{nv} = {v}[{ci}]")
        cf = _c._fixed_info(content, 1)
        if cf is not None and cf[0]:
            _emit_batched_dec(b, content, cf, nv, target, ind, guard=True)
        else:
            msg = b.sym("ms", "sequence count exceeds remaining bytes: ")
            b.emit(ind, f"if {nv} > end - pos:")
            b.emit(ind + 1, f"raise MARSHAL({msg} + repr({nv}))")
            b.emit(ind, f"{target} = []")
            ap = b.tmp("ap")
            ev = b.tmp("e")
            et = b.tmp("x")
            b.emit(ind, f"{ap} = {target}.append")
            b.emit(ind, f"for {ev} in range({nv}):")
            inner = _DecRun(b)
            _emit_decode(b, inner, content, et, ind + 1)
            inner.flush(ind + 1)
            b.emit(ind + 1, f"{ap}({et})")
        return
    if kind is TCKind.ARRAY:
        content = tc.content_type
        length = tc.length
        st.flush(ind)
        cf = _c._fixed_info(content, 1)
        if cf is not None and cf[0]:
            _emit_batched_dec(b, content, cf, length, target, ind,
                              guard=False)
        else:
            b.emit(ind, f"{target} = []")
            ap = b.tmp("ap")
            ev = b.tmp("e")
            et = b.tmp("x")
            b.emit(ind, f"{ap} = {target}.append")
            b.emit(ind, f"for {ev} in range({length}):")
            inner = _DecRun(b)
            _emit_decode(b, inner, content, et, ind + 1)
            inner.flush(ind + 1)
            b.emit(ind + 1, f"{ap}({et})")
        return
    if kind in (TCKind.STRUCT, TCKind.EXCEPT):
        mtemps = []
        for name, mtc in tc.members:
            mt = b.tmp("m")
            _emit_decode(b, st, mtc, mt, ind)
            mtemps.append((name, mt))
        st.flush(ind)
        display = ", ".join(f"{nm!r}: {mt}" for nm, mt in mtemps)
        b.emit(ind, f"{target} = {{{display}}}")
        return
    if kind is TCKind.UNION:
        dt = b.tmp("d")
        at = b.tmp("w")
        _emit_decode(b, st, tc.discriminator_type, dt, ind)
        st.flush(ind)
        nomsg = b.sym(
            "ms", f"union {tc.name}: no arm for discriminator ")
        default = None
        if 0 <= tc.default_index < len(tc.members):
            default = tc.members[tc.default_index][2]

        def _arm_body(arm_tc: TypeCode, aind: int) -> None:
            inner = _DecRun(b)
            _emit_decode(b, inner, arm_tc, at, aind)
            inner.flush(aind)

        kw = "if"
        for label, _name, arm_tc in tc.members:
            if label is None:
                continue
            lab = b.sym("lb", label)
            b.emit(ind, f"{kw} {dt} == {lab}:")
            _arm_body(arm_tc, ind + 1)
            kw = "elif"
        if kw == "if":
            if default is not None:
                _arm_body(default, ind)
            else:
                b.emit(ind, f"raise BAD_PARAM({nomsg} + repr({dt}))")
        else:
            b.emit(ind, "else:")
            if default is not None:
                _arm_body(default, ind + 1)
            else:
                b.emit(ind + 1, f"raise BAD_PARAM({nomsg} + repr({dt}))")
        b.emit(ind, f"{target} = ({dt}, {at})")
        return
    raise _Unsupported(kind)  # pragma: no cover - guarded by _ok


# -- top-level assembly -------------------------------------------------------

def _generate(tc: TypeCode):
    name = tc.name or tc.kind.name.lower()
    b = _Builder(name)
    emsg = b.sym("ms", f"cannot marshal value as {name}: ")
    umsg = b.sym("ms", f"CDR underflow decoding {name}: ")
    dmsg = b.sym("ms", f"cannot unmarshal {name}: ")

    b.emit(0, "def _enc(enc, value):")
    b.emit(1, "_N[0] += 1")
    b.emit(1, "buf = enc._buf")
    b.emit(1, "try:")
    mark = len(b.lines)
    run: list = []
    _emit_encode(b, tc, "value", run, 2)
    _flush_enc(b, run, 2)
    if len(b.lines) == mark:
        b.emit(2, "pass")
    b.emit(1, "except _EERR as exc:")
    b.emit(2, f"raise BAD_PARAM({emsg} + repr(exc)) from None")

    b.emit(0, "def _dec(dec):")
    b.emit(1, "_N[1] += 1")
    b.emit(1, "buf = dec._buf")
    b.emit(1, "pos = dec._pos")
    b.emit(1, "end = len(buf)")
    b.emit(1, "try:")
    st = _DecRun(b)
    _emit_decode(b, st, tc, "_r", 2)
    st.flush(2)
    b.emit(1, "except _SERR as exc:")
    b.emit(2, f"raise BAD_PARAM({umsg} + repr(exc)) from None")
    b.emit(1, "except _DERR as exc:")
    b.emit(2, f"raise MARSHAL({dmsg} + repr(exc)) from None")
    b.emit(1, "dec._pos = pos")
    b.emit(1, "return _r")

    source = "\n".join(b.lines) + "\n"
    code = compile(source, f"<codegen:{name}>", "exec")
    exec(code, b.g)
    enc_fn = b.g["_enc"]
    dec_fn = b.g["_dec"]
    enc_fn.__codegen_source__ = dec_fn.__codegen_source__ = source
    return enc_fn, dec_fn


def generate(tc: TypeCode):
    """Return a generated (encode, decode) pair for *tc*, or None when
    the TypeCode stays on the plan/interpreter tiers.  Results are
    cached by repository id (fast front) and by structural equality."""
    rid = tc.repo_id
    if rid:
        entry = _REPO_CACHE.get(rid)
        if entry is not None and entry[0] == tc:
            stats["cache_hits"] += 1
            return entry[1]
    if tc in _TC_CACHE:
        pair = _TC_CACHE[tc]
        stats["cache_hits"] += 1
    else:
        stats["cache_misses"] += 1
        if not _ok(tc, 0, 0):
            pair = None
            stats["unsupported"] += 1
        else:
            try:
                pair = _generate(tc)
                stats["generated"] += 1
            except Exception:
                # A generation bug must never take down marshalling —
                # the plan tier is always a correct fallback.  The
                # tri-modal property tests keep this path honest.
                pair = None
                stats["unsupported"] += 1
        if len(_TC_CACHE) >= _CACHE_MAX:
            _TC_CACHE.clear()
        _TC_CACHE[tc] = pair
    if rid:
        if len(_REPO_CACHE) >= _CACHE_MAX:
            _REPO_CACHE.clear()
        _REPO_CACHE[rid] = (tc, pair)
    return pair

"""Dynamic invocation and the Interface Repository.

The Interface Repository stores :class:`~repro.orb.core.InterfaceDef`
objects by repository id — the ORB-wide type knowledge that CORBA-LC's
reflection architecture builds on.  :class:`Request` lets a caller
invoke an operation knowing only TypeCodes, without a generated stub
(used by the visual-builder-style tooling and the component framework's
generic port wiring).
"""

from __future__ import annotations

from typing import Any, Optional, Sequence

from repro.orb.core import ORB, InterfaceDef, OperationDef, ParamDef
from repro.orb.exceptions import BAD_OPERATION, BAD_PARAM
from repro.orb.ior import IOR
from repro.orb.typecodes import TypeCode, tc_void
from repro.util.errors import ConfigurationError


class InterfaceRepository:
    """Process-wide registry of interface definitions by repository id."""

    def __init__(self) -> None:
        self._by_id: dict[str, InterfaceDef] = {}

    def register(self, iface: InterfaceDef, replace: bool = False) -> InterfaceDef:
        existing = self._by_id.get(iface.repo_id)
        if existing is not None and not replace:
            if existing is iface:
                return iface
            raise ConfigurationError(
                f"interface {iface.repo_id!r} already registered"
            )
        self._by_id[iface.repo_id] = iface
        return iface

    def lookup(self, repo_id: str) -> Optional[InterfaceDef]:
        return self._by_id.get(repo_id)

    def require(self, repo_id: str) -> InterfaceDef:
        iface = self.lookup(repo_id)
        if iface is None:
            raise BAD_PARAM(f"unknown interface {repo_id!r}")
        return iface

    def ids(self) -> list[str]:
        return sorted(self._by_id)

    def __contains__(self, repo_id: str) -> bool:
        return repo_id in self._by_id


#: The default, process-wide repository.  Simulations may create their
#: own, but interface definitions are immutable type data so sharing one
#: across simulations is safe and matches how real IDL stubs are global.
GLOBAL_IFR = InterfaceRepository()


class Request:
    """A dynamically-assembled invocation (CORBA DII ``Request``)."""

    def __init__(self, orb: ORB, target: IOR, operation: str) -> None:
        self.orb = orb
        self.target = target
        self.operation = operation
        self._params: list[ParamDef] = []
        self._args: list[Any] = []
        self._result_tc: TypeCode = tc_void
        self._raises: list[TypeCode] = []
        self._oneway = False

    def add_in_arg(self, name: str, tc: TypeCode, value: Any) -> "Request":
        self._params.append(ParamDef(name, tc, "in"))
        self._args.append(value)
        return self

    def add_inout_arg(self, name: str, tc: TypeCode, value: Any) -> "Request":
        self._params.append(ParamDef(name, tc, "inout"))
        self._args.append(value)
        return self

    def add_out_arg(self, name: str, tc: TypeCode) -> "Request":
        self._params.append(ParamDef(name, tc, "out"))
        return self

    def set_return_type(self, tc: TypeCode) -> "Request":
        self._result_tc = tc
        return self

    def add_exception(self, tc: TypeCode) -> "Request":
        self._raises.append(tc)
        return self

    def set_oneway(self, oneway: bool = True) -> "Request":
        self._oneway = oneway
        return self

    def _odef(self) -> OperationDef:
        return OperationDef(
            name=self.operation,
            params=tuple(self._params),
            result=self._result_tc,
            raises=tuple(self._raises),
            oneway=self._oneway,
        )

    def invoke(self, timeout: Optional[float] = None):
        """Send the request; returns the kernel Event with the result."""
        return self.orb.invoke(self.target, self._odef(), tuple(self._args),
                               timeout=timeout)

    def invoke_sync(self, timeout: Optional[float] = None):
        """Send and run the simulation until the reply arrives."""
        return self.orb.sync(self.invoke(timeout=timeout))


def request_from_ifr(orb: ORB, ifr: InterfaceRepository, target: IOR,
                     operation: str, args: Sequence[Any]) -> Request:
    """Build a Request using the signature stored in the repository.

    This is what generic tooling does: look the target's interface up by
    the repo id embedded in its IOR, find the operation, and marshal
    accordingly.
    """
    iface = ifr.require(target.repo_id)
    odef = iface.find_operation(operation)
    if odef is None:
        raise BAD_OPERATION(f"{iface.name} has no operation {operation!r}")
    req = Request(orb, target, operation)
    in_params = odef.in_params()
    if len(args) != len(in_params):
        raise BAD_PARAM(
            f"{operation} expects {len(in_params)} args, got {len(args)}"
        )
    arg_iter = iter(args)
    for pdef in odef.params:
        if pdef.mode == "in":
            req.add_in_arg(pdef.name, pdef.tc, next(arg_iter))
        elif pdef.mode == "inout":
            req.add_inout_arg(pdef.name, pdef.tc, next(arg_iter))
        else:
            req.add_out_arg(pdef.name, pdef.tc)
    req.set_return_type(odef.result)
    for tc in odef.raises:
        req.add_exception(tc)
    req.set_oneway(odef.oneway)
    return req

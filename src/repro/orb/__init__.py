"""A CORBA-like Object Request Broker over the simulated network.

The paper builds CORBA-LC directly on CORBA 2.x ("use CORBA 2 standard,
mature IDL compilers and tools", §2.1.2).  Since no ORB is available in
this offline environment, this package implements the CORBA semantics
the component model needs, from scratch:

- :mod:`repro.orb.typecodes` / :mod:`repro.orb.cdr` — TypeCodes and
  byte-accurate CDR marshalling (message sizes on the simulated wire are
  the real encoded sizes).
- :mod:`repro.orb.ior` — interoperable object references.
- :mod:`repro.orb.giop` — GIOP-style request/reply framing.
- :mod:`repro.orb.core` / :mod:`repro.orb.poa` — the ORB runtime and
  object adapters; servants dispatch inside the simulation, charging
  per-operation CPU cost scaled by the host's power.
- :mod:`repro.orb.dii` — interface repository + dynamic invocation.
- :mod:`repro.orb.services` — Naming service and push-model event
  channels (the substrate for component event ports).
"""

from repro.orb.exceptions import (
    BAD_OPERATION,
    BAD_PARAM,
    COMM_FAILURE,
    INTERNAL,
    INV_OBJREF,
    MARSHAL,
    NO_IMPLEMENT,
    NO_RESOURCES,
    OBJECT_NOT_EXIST,
    TIMEOUT,
    TRANSIENT,
    UNKNOWN,
    SystemException,
    UserException,
)
from repro.orb.typecodes import TypeCode, TCKind
from repro.orb.ior import IOR
from repro.orb.core import ORB, Servant, OperationDef, ParamDef, InterfaceDef
from repro.orb.poa import POA

__all__ = [
    "SystemException",
    "UserException",
    "UNKNOWN",
    "BAD_PARAM",
    "BAD_OPERATION",
    "NO_IMPLEMENT",
    "COMM_FAILURE",
    "OBJECT_NOT_EXIST",
    "TRANSIENT",
    "TIMEOUT",
    "INV_OBJREF",
    "MARSHAL",
    "NO_RESOURCES",
    "INTERNAL",
    "TypeCode",
    "TCKind",
    "IOR",
    "ORB",
    "POA",
    "Servant",
    "OperationDef",
    "ParamDef",
    "InterfaceDef",
]

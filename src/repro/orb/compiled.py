"""Compiled CDR codec plans: the ORB's marshalling fast path.

The interpreter in :mod:`repro.orb.cdr` walks the TypeCode graph on
every encode/decode.  This module walks each TypeCode **once** and
emits a flat, closure-based *plan*:

- runs of fixed-size primitives (including whole fixed-size structs,
  arrays and enums) are fused into a single :class:`struct.Struct`
  pack/unpack.  CDR alignment is relative to the stream start, so a
  fused run precomputes one format string per possible start residue
  (mod 8), with ``x`` pad bytes standing in for alignment gaps —
  byte-for-byte identical to the interpreter's output at any offset;
- ``string`` and ``sequence<octet>`` get direct buffer appends;
- homogeneous fixed-size sequences/arrays batch all elements into one
  ``struct.pack``/``unpack_from`` call;
- ``Any`` and deeply-nested values fall back to the interpreter, which
  stays the reference implementation.

Plans are cached per TypeCode identity (an ``id()`` front cache) and
per structural equality, so repeated invocations never re-traverse the
TypeCode graph.  :data:`stats` counts hits/misses for observability.

Equivalence with the interpreter — identical bytes out, identical
values back, matching ``BAD_PARAM`` on bad input — is enforced by
``tests/property/test_cdr_properties.py``.
"""

from __future__ import annotations

import struct as _struct
import weakref
from collections import OrderedDict
from typing import Callable, Optional

from repro.orb import cdr as _cdr
from repro.orb.cdr import CDRDecoder, CDREncoder
from repro.orb.exceptions import BAD_PARAM, MARSHAL
from repro.orb.typecodes import TCKind, TypeCode

_MAX_NESTING = _cdr._MAX_NESTING

#: Fused runs and absorbed structs/arrays are capped at this many leaf
#: primitives; larger shapes use the batched-sequence path instead.
_FUSE_LIMIT = 64

_ULONG = _struct.Struct(">I")
_PAD = tuple(b"\x00" * n for n in range(8))

#: Plan-cache observability: standard invocations must show hits > 0.
stats = {"hits": 0, "misses": 0, "compiled": 0}


def reset_stats() -> None:
    stats["hits"] = stats["misses"] = stats["compiled"] = 0


class CodecPlan:
    """A compiled encode/decode pair for one TypeCode.

    ``fixed`` is the (leaves, flatten, unflatten) triple when the whole
    type is a fixed-size primitive run (absorbable by parent plans),
    else None.  ``static_depth`` is the recursion depth the interpreter
    would need for a conforming value; ``dynamic`` marks plans whose
    depth depends on the value (contains ``Any``).
    """

    __slots__ = ("tc", "encode", "decode", "fixed", "static_depth", "dynamic",
                 "tier")

    def __init__(self, tc: TypeCode,
                 encode: Callable[[CDREncoder, object], None],
                 decode: Callable[[CDRDecoder], object],
                 fixed=None, static_depth: int = 0,
                 dynamic: bool = False) -> None:
        self.tc = tc
        self.encode = encode
        self.decode = decode
        self.fixed = fixed
        self.static_depth = static_depth
        self.dynamic = dynamic
        self.tier = "plan"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<CodecPlan {self.tc!r} depth={self.static_depth} " \
               f"tier={self.tier}>"


# -- fixed-size leaf model ----------------------------------------------------
# A "leaf" is one struct-module field: (fmt_char, size, align).  Flatten
# appends pack-ready leaf values for one conforming value; unflatten
# rebuilds the value from an unpacked tuple starting at index i.

_PRIM_LEAF = {
    TCKind.SHORT: ("h", 2),
    TCKind.USHORT: ("H", 2),
    TCKind.LONG: ("i", 4),
    TCKind.ULONG: ("I", 4),
    TCKind.LONGLONG: ("q", 8),
    TCKind.ULONGLONG: ("Q", 8),
    TCKind.FLOAT: ("f", 4),
    TCKind.DOUBLE: ("d", 8),
    # '?' packs by truth value and unpacks to bool, matching the
    # interpreter's ``1 if v else 0`` / ``bool(octet)``.
    TCKind.BOOLEAN: ("?", 1),
    TCKind.OCTET: ("B", 1),
}


def _char_enc(v) -> int:
    if not isinstance(v, str) or len(v) != 1:
        raise BAD_PARAM(f"char must be a 1-character str, got {v!r}")
    return ord(v) & 0xFF


def _enum_convs(tc: TypeCode):
    labels = tc.labels
    name = tc.name
    n = len(labels)

    def conv_enc(value) -> int:
        try:
            index = labels.index(value) if isinstance(value, str) else int(value)
        except ValueError:
            raise BAD_PARAM(
                f"{value!r} is not a label of enum {name}"
            ) from None
        if not 0 <= index < n:
            raise BAD_PARAM(f"enum index {index} out of range for {name}")
        return index

    def conv_dec(index: int) -> str:
        if index >= n:
            raise BAD_PARAM(f"enum index {index} out of range for {name}")
        return labels[index]

    return conv_enc, conv_dec


def _leaf_fns(conv_enc, conv_dec):
    if conv_enc is None:
        def flatten(v, out) -> None:
            out.append(v)
    else:
        def flatten(v, out) -> None:
            out.append(conv_enc(v))
    if conv_dec is None:
        def unflatten(vals, i):
            return vals[i], i + 1
    else:
        def unflatten(vals, i):
            return conv_dec(vals[i]), i + 1
    return flatten, unflatten


def _fixed_info(tc: TypeCode, depth: int):
    """Return (leaves, flatten, unflatten) if *tc* is wholly fixed-size.

    Returns None for variable-size types, for types past the nesting
    limit (so the parent falls back to a depth-enforcing sub-plan), and
    for shapes bigger than :data:`_FUSE_LIMIT` leaves.
    """
    if depth > _MAX_NESTING:
        return None
    kind = tc.kind
    if kind is TCKind.ALIAS:
        assert tc.content_type is not None
        return _fixed_info(tc.content_type, depth + 1)
    if kind in (TCKind.NULL, TCKind.VOID):
        def flatten(v, out) -> None:
            if v is not None:
                raise BAD_PARAM(f"void carries no value, got {v!r}")

        def unflatten(vals, i):
            return None, i
        return (), flatten, unflatten
    leaf = _PRIM_LEAF.get(kind)
    if leaf is not None:
        ch, size = leaf
        flatten, unflatten = _leaf_fns(None, None)
        return ((ch, size, size),), flatten, unflatten
    if kind is TCKind.CHAR:
        flatten, unflatten = _leaf_fns(_char_enc, chr)
        return (("B", 1, 1),), flatten, unflatten
    if kind is TCKind.ENUM:
        conv_enc, conv_dec = _enum_convs(tc)
        flatten, unflatten = _leaf_fns(conv_enc, conv_dec)
        return (("I", 4, 4),), flatten, unflatten
    if kind in (TCKind.STRUCT, TCKind.EXCEPT):
        parts = []
        for _name, mtc in tc.members:
            sub = _fixed_info(mtc, depth + 1)
            if sub is None:
                return None
            parts.append(sub)
        leaves = tuple(lf for sub in parts for lf in sub[0])
        if len(leaves) > _FUSE_LIMIT:
            return None
        names = tuple(n for n, _ in tc.members)
        nameset = frozenset(names)
        flattens = tuple(sub[1] for sub in parts)
        unflattens = tuple(sub[2] for sub in parts)
        tname = tc.name

        def flatten(v, out) -> None:
            if isinstance(v, dict):
                for name, fl in zip(names, flattens):
                    try:
                        member = v[name]
                    except KeyError:
                        raise BAD_PARAM(
                            f"struct {tname} missing member {name!r}"
                        ) from None
                    fl(member, out)
                extra = v.keys() - nameset
                if extra:
                    raise BAD_PARAM(
                        f"struct {tname} has unknown members {sorted(extra)}"
                    )
            else:
                for name, fl in zip(names, flattens):
                    try:
                        member = getattr(v, name)
                    except AttributeError:
                        raise BAD_PARAM(
                            f"struct {tname} value lacks member {name!r}"
                        ) from None
                    fl(member, out)

        def unflatten(vals, i):
            d = {}
            for name, uf in zip(names, unflattens):
                d[name], i = uf(vals, i)
            return d, i
        return leaves, flatten, unflatten
    if kind is TCKind.ARRAY:
        assert tc.content_type is not None
        sub = _fixed_info(tc.content_type, depth + 1)
        if sub is None:
            return None
        sub_leaves, sub_fl, sub_uf = sub
        length = tc.length
        if len(sub_leaves) * length > _FUSE_LIMIT or not sub_leaves:
            return None
        leaves = sub_leaves * length

        def flatten(v, out) -> None:
            items = list(v)
            if len(items) != length:
                raise BAD_PARAM(
                    f"array of length {length} got {len(items)} items"
                )
            for item in items:
                sub_fl(item, out)

        def unflatten(vals, i):
            res = []
            for _ in range(length):
                obj, i = sub_uf(vals, i)
                res.append(obj)
            return res, i
        return leaves, flatten, unflatten
    return None


# -- fused-run format construction --------------------------------------------

def _variant_fmts(leaves):
    """Per start-residue (mod 8) format bodies for one leaf run.

    Returns a list of 8 ``(fmt_body, consumed_bytes)`` pairs; alignment
    gaps become ``x`` pad fields so one pack reproduces the
    interpreter's align-then-write byte stream exactly.
    """
    variants = []
    for r in range(8):
        pos = r
        parts = []
        for ch, size, align in leaves:
            pad = (-pos) % align
            if pad:
                parts.append("x" if pad == 1 else "%dx" % pad)
            parts.append(ch)
            pos += pad + size
        variants.append(("".join(parts), pos - r))
    return variants


def _variant_structs(leaves):
    """Like :func:`_variant_fmts` but with compiled Struct objects."""
    cache: dict[str, _struct.Struct] = {}
    out = []
    for fmt, consumed in _variant_fmts(leaves):
        st = cache.get(fmt)
        if st is None:
            st = cache[fmt] = _struct.Struct(">" + fmt)
        out.append(st)
    return out


def _fused_codec(tc: TypeCode, fixed):
    """Build encode/decode closures for a wholly-fixed TypeCode."""
    leaves, flatten, unflatten = fixed
    if not leaves:
        def encode(enc: CDREncoder, value) -> None:
            flatten(value, [])

        def decode(dec: CDRDecoder):
            return unflatten((), 0)[0]
        return encode, decode
    variants = _variant_structs(leaves)

    def encode(enc: CDREncoder, value) -> None:
        out: list = []
        flatten(value, out)
        buf = enc._buf
        st = variants[len(buf) & 7]
        try:
            buf += st.pack(*out)
        except (_struct.error, TypeError) as exc:
            raise BAD_PARAM(
                f"cannot marshal {value!r} as {tc!r}: {exc}"
            ) from None

    def decode(dec: CDRDecoder):
        pos = dec._pos
        st = variants[pos & 7]
        size = st.size
        buf = dec._buf
        if pos + size > len(buf):
            raise BAD_PARAM(
                f"CDR underflow: need {size} bytes at {pos}, have {len(buf)}"
            )
        vals = st.unpack_from(buf, pos)
        dec._pos = pos + size
        return unflatten(vals, 0)[0]

    return encode, decode


# -- specialized plans --------------------------------------------------------

def _string_codec():
    def encode(enc: CDREncoder, v) -> None:
        if not isinstance(v, str):
            raise BAD_PARAM(f"expected str, got {type(v).__name__}")
        data = v.encode("utf-8")
        buf = enc._buf
        pad = (-len(buf)) & 3
        if pad:
            buf += _PAD[pad]
        buf += _ULONG.pack(len(data) + 1)
        buf += data
        buf.append(0)

    def decode(dec: CDRDecoder) -> str:
        buf = dec._buf
        pos = dec._pos + ((-dec._pos) & 3)
        end = len(buf)
        if pos + 4 > end:
            raise BAD_PARAM(
                f"CDR underflow: need 4 bytes at {pos}, have {end}"
            )
        (length,) = _ULONG.unpack_from(buf, pos)
        pos += 4
        stop = pos + length
        if stop > end:
            raise BAD_PARAM("CDR underflow reading string")
        if length == 0 or buf[stop - 1]:
            raise BAD_PARAM("string not NUL-terminated")
        dec._pos = stop
        try:
            # Decode straight from the memoryview slice — no bytes copy.
            return str(buf[pos:stop - 1], "utf-8")
        except UnicodeDecodeError as exc:
            raise MARSHAL(f"invalid UTF-8 in string: {exc}") from None

    return encode, decode


def _octetseq_codec():
    def encode(enc: CDREncoder, data) -> None:
        if not isinstance(data, (bytes, bytearray, memoryview)):
            raise BAD_PARAM(f"expected bytes, got {type(data).__name__}")
        buf = enc._buf
        pad = (-len(buf)) & 3
        if pad:
            buf += _PAD[pad]
        buf += _ULONG.pack(len(data))
        buf += data

    def decode(dec: CDRDecoder) -> bytes:
        buf = dec._buf
        pos = dec._pos + ((-dec._pos) & 3)
        end = len(buf)
        if pos + 4 > end:
            raise BAD_PARAM(
                f"CDR underflow: need 4 bytes at {pos}, have {end}"
            )
        (length,) = _ULONG.unpack_from(buf, pos)
        pos += 4
        if pos + length > end:
            raise BAD_PARAM("CDR underflow reading octet sequence")
        raw = bytes(buf[pos:pos + length])
        dec._pos = pos + length
        return raw

    return encode, decode


#: Batch-format cache capacity per batcher (LRU-evicted, never cleared
#: wholesale, so hot (residue, count) formats survive diverse workloads).
_BATCH_CACHE_MAX = 128


def make_batcher(leaves, lead_ulong: bool = False):
    """Return ``batch_struct(r0, n) -> Struct`` for a fixed leaf run.

    The returned callable builds (and LRU-caches, keyed by start residue
    and element count) one big-endian Struct packing *n* repetitions of
    the leaf run starting at stream residue ``r0`` (mod 8), with
    alignment gaps folded in as ``x`` pad fields.  With ``lead_ulong``
    the format is prefixed by a 4-aligned ulong (the sequence count), so
    count and elements marshal in a single ``pack``.

    The cache is exposed as ``batch_struct.cache`` for tests.
    """
    elem_variants = _variant_fmts(leaves)
    consumed = [c for _f, c in elem_variants]
    cache: OrderedDict[tuple[int, int], _struct.Struct] = OrderedDict()
    last_key: Optional[tuple[int, int]] = None
    last_st: Optional[_struct.Struct] = None

    def batch_struct(r0: int, n: int) -> _struct.Struct:
        nonlocal last_key, last_st
        key = (r0, n)
        # Single-entry memo: steady-state callers hit one (residue,
        # count) shape, skipping the LRU bookkeeping entirely.
        if key == last_key:
            return last_st
        st = cache.get(key)
        if st is not None:
            cache.move_to_end(key)
            last_key, last_st = key, st
            return st
        # Element layout depends on the start residue; walk the residue
        # chain, collapsing as soon as it reaches a fixed point.
        parts = []
        r = r0
        if lead_ulong:
            pad = (-r0) & 3
            if pad:
                parts.append("x" if pad == 1 else "%dx" % pad)
            parts.append("I")
            r = (r0 + pad + 4) & 7
        remaining = n
        while remaining:
            fmt = elem_variants[r][0]
            r2 = (r + consumed[r]) & 7
            if r2 == r:
                parts.append(fmt * remaining)
                break
            parts.append(fmt)
            remaining -= 1
            r = r2
        st = _struct.Struct(">" + "".join(parts))
        if len(cache) >= _BATCH_CACHE_MAX:
            cache.popitem(last=False)
        cache[key] = st
        last_key, last_st = key, st
        return st

    batch_struct.cache = cache
    return batch_struct


def _batched_elems_codec(tc: TypeCode, fixed, bound: int,
                         with_count: bool, fixed_count: int = 0):
    """Batch a fixed-size element type: one pack/unpack for all items.

    ``with_count`` selects sequence framing (ulong count prefix) versus
    array framing (exactly ``fixed_count`` items, no prefix).
    """
    leaves, flatten, unflatten = fixed
    min_elem = sum(size for _ch, size, _a in leaves)
    _batch_struct = make_batcher(leaves)

    def encode(enc: CDREncoder, value) -> None:
        items = value if isinstance(value, list) else list(value)
        n = len(items)
        buf = enc._buf
        if with_count:
            if bound and n > bound:
                raise BAD_PARAM(
                    f"sequence bound {bound} exceeded ({n} items)"
                )
            pad = (-len(buf)) & 3
            if pad:
                buf += _PAD[pad]
            buf += _ULONG.pack(n)
            if not n:
                return
        else:
            if n != fixed_count:
                raise BAD_PARAM(
                    f"array of length {fixed_count} got {n} items"
                )
        out: list = []
        for item in items:
            flatten(item, out)
        st = _batch_struct(len(buf) & 7, n)
        try:
            buf += st.pack(*out)
        except (_struct.error, TypeError) as exc:
            raise BAD_PARAM(
                f"cannot marshal {value!r} as {tc!r}: {exc}"
            ) from None

    def decode(dec: CDRDecoder):
        buf = dec._buf
        end = len(buf)
        if with_count:
            pos = dec._pos + ((-dec._pos) & 3)
            if pos + 4 > end:
                raise BAD_PARAM(
                    f"CDR underflow: need 4 bytes at {pos}, have {end}"
                )
            (n,) = _ULONG.unpack_from(buf, pos)
            dec._pos = pos = pos + 4
            if not n:
                return []
        else:
            n = fixed_count
            pos = dec._pos
        # Guard before building an O(n) format for garbage counts.
        if pos + n * min_elem > end:
            raise BAD_PARAM(
                f"CDR underflow: need {n * min_elem} bytes at {pos}, "
                f"have {end}"
            )
        st = _batch_struct(pos & 7, n)
        size = st.size
        if pos + size > end:
            raise BAD_PARAM(
                f"CDR underflow: need {size} bytes at {pos}, have {end}"
            )
        vals = st.unpack_from(buf, pos)
        dec._pos = pos + size
        res = []
        i = 0
        for _ in range(n):
            obj, i = unflatten(vals, i)
            res.append(obj)
        return res

    return encode, decode


def _loop_seq_codec(tc: TypeCode, content: "CodecPlan"):
    bound = tc.length
    tname = tc.name
    c_encode = content.encode
    c_decode = content.decode

    def encode(enc: CDREncoder, value) -> None:
        items = value if isinstance(value, list) else list(value)
        n = len(items)
        if bound and n > bound:
            raise BAD_PARAM(f"sequence bound {bound} exceeded ({n} items)")
        buf = enc._buf
        pad = (-len(buf)) & 3
        if pad:
            buf += _PAD[pad]
        buf += _ULONG.pack(n)
        for item in items:
            c_encode(enc, item)

    def decode(dec: CDRDecoder):
        buf = dec._buf
        pos = dec._pos + ((-dec._pos) & 3)
        if pos + 4 > len(buf):
            raise BAD_PARAM(
                f"CDR underflow: need 4 bytes at {pos}, have {len(buf)}"
            )
        (n,) = _ULONG.unpack_from(buf, pos)
        dec._pos = pos + 4
        # Every element consumes at least one byte; reject garbage
        # counts before looping anything proportional to them.
        if n > len(buf) - dec._pos:
            raise MARSHAL(
                f"sequence count {n} exceeds {len(buf) - dec._pos} "
                "remaining bytes"
            )
        return [c_decode(dec) for _ in range(n)]

    return encode, decode


def _loop_array_codec(tc: TypeCode, content: "CodecPlan"):
    length = tc.length
    c_encode = content.encode
    c_decode = content.decode

    def encode(enc: CDREncoder, value) -> None:
        items = value if isinstance(value, list) else list(value)
        if len(items) != length:
            raise BAD_PARAM(
                f"array of length {length} got {len(items)} items"
            )
        for item in items:
            c_encode(enc, item)

    def decode(dec: CDRDecoder):
        return [c_decode(dec) for _ in range(length)]

    return encode, decode


def _struct_codec(tc: TypeCode, depth: int):
    """Mixed-member struct: fuse consecutive fixed members, plan the rest."""
    names = tuple(n for n, _ in tc.members)
    nameset = frozenset(names)
    tname = tc.name
    member_tcs = [mtc for _n, mtc in tc.members]

    # steps: ("fused", variants, flattens, unflattens, start)
    #      | ("plan", index, sub_plan)
    steps: list[tuple] = []
    run: list[tuple] = []  # (index, fixed_info)

    def _flush_run() -> None:
        if not run:
            return
        start = run[0][0]
        leaves = tuple(lf for _i, sub in run for lf in sub[0])
        flattens = tuple(sub[1] for _i, sub in run)
        unflattens = tuple(sub[2] for _i, sub in run)
        steps.append(
            ("fused", _variant_structs(leaves), flattens, unflattens, start)
        )
        run.clear()

    run_leaves = 0
    for i, mtc in enumerate(member_tcs):
        sub = _fixed_info(mtc, depth + 1)
        if sub is not None and run_leaves + len(sub[0]) <= _FUSE_LIMIT:
            run.append((i, sub))
            run_leaves += len(sub[0])
            continue
        _flush_run()
        run_leaves = 0
        if sub is not None:
            run.append((i, sub))
            run_leaves = len(sub[0])
        else:
            steps.append(("plan", i, _compile(mtc, depth + 1)))
    _flush_run()
    steps_t = tuple(steps)

    def encode(enc: CDREncoder, value) -> None:
        is_dict = isinstance(value, dict)
        vals = []
        if is_dict:
            for name in names:
                try:
                    vals.append(value[name])
                except KeyError:
                    raise BAD_PARAM(
                        f"struct {tname} missing member {name!r}"
                    ) from None
        else:
            for name in names:
                try:
                    vals.append(getattr(value, name))
                except AttributeError:
                    raise BAD_PARAM(
                        f"struct {tname} value lacks member {name!r}"
                    ) from None
        for step in steps_t:
            if step[0] == "fused":
                _tag, variants, flattens, _ufs, start = step
                out: list = []
                for off, fl in enumerate(flattens):
                    fl(vals[start + off], out)
                buf = enc._buf
                st = variants[len(buf) & 7]
                try:
                    buf += st.pack(*out)
                except (_struct.error, TypeError) as exc:
                    raise BAD_PARAM(
                        f"cannot marshal struct {tname}: {exc}"
                    ) from None
            else:
                _tag, i, plan = step
                plan.encode(enc, vals[i])
        if is_dict:
            extra = value.keys() - nameset
            if extra:
                raise BAD_PARAM(
                    f"struct {tname} has unknown members {sorted(extra)}"
                )

    def decode(dec: CDRDecoder):
        result: dict = {}
        for step in steps_t:
            if step[0] == "fused":
                _tag, variants, _fls, unflattens, start = step
                buf = dec._buf
                pos = dec._pos
                st = variants[pos & 7]
                size = st.size
                if pos + size > len(buf):
                    raise BAD_PARAM(
                        f"CDR underflow: need {size} bytes at {pos}, "
                        f"have {len(buf)}"
                    )
                vals = st.unpack_from(buf, pos)
                dec._pos = pos + size
                i = 0
                for off, uf in enumerate(unflattens):
                    result[names[start + off]], i = uf(vals, i)
            else:
                _tag, i, plan = step
                result[names[i]] = plan.decode(dec)
        return result

    return encode, decode


def _union_codec(tc: TypeCode, depth: int):
    tname = tc.name
    assert tc.discriminator_type is not None
    disc_plan = _compile(tc.discriminator_type, depth + 1)
    arms = tuple(
        (label, _compile(arm_tc, depth + 1))
        for label, _name, arm_tc in tc.members
    )
    default_plan = None
    if 0 <= tc.default_index < len(arms):
        default_plan = arms[tc.default_index][1]

    def _arm_for(disc):
        # Mirror the interpreter: first matching non-default label wins,
        # then the default arm.
        for label, plan in arms:
            if label is not None and label == disc:
                return plan
        return default_plan

    def encode(enc: CDREncoder, value) -> None:
        try:
            disc, inner = value
        except (TypeError, ValueError):
            raise BAD_PARAM(
                f"union {tname} value must be (discriminator, value)"
            ) from None
        disc_plan.encode(enc, disc)
        plan = _arm_for(disc)
        if plan is None:
            raise BAD_PARAM(f"union {tname}: no arm for discriminator {disc!r}")
        plan.encode(enc, inner)

    def decode(dec: CDRDecoder):
        disc = disc_plan.decode(dec)
        plan = _arm_for(disc)
        if plan is None:
            raise BAD_PARAM(f"union {tname}: no arm for discriminator {disc!r}")
        return (disc, plan.decode(dec))

    return encode, decode


def _any_codec(depth: int):
    """``Any``: TypeCode then value.  The inner value's nesting budget
    starts at *depth* + 1, so reuse a compiled plan only when its static
    depth provably fits; otherwise fall back to the depth-enforcing
    interpreter."""

    def encode(enc: CDREncoder, value) -> None:
        if not isinstance(value, _cdr.Any):
            raise BAD_PARAM(f"expected Any, got {type(value).__name__}")
        _cdr.encode_typecode(enc, value.typecode)
        plan = get_plan(value.typecode)
        if not plan.dynamic and depth + 1 + plan.static_depth <= _MAX_NESTING:
            plan.encode(enc, value.value)
        else:
            _cdr.encode_value_interp(enc, value.typecode, value.value,
                                     depth + 1)

    def decode(dec: CDRDecoder):
        inner_tc = _cdr.decode_typecode(dec)
        plan = get_plan(inner_tc)
        if not plan.dynamic and depth + 1 + plan.static_depth <= _MAX_NESTING:
            return _cdr.Any(inner_tc, plan.decode(dec))
        return _cdr.Any(
            inner_tc, _cdr.decode_value_interp(dec, inner_tc, depth + 1)
        )

    return encode, decode


def _objref_codec():
    def encode(enc: CDREncoder, value) -> None:
        _cdr._encode_objref(enc, value)

    def decode(dec: CDRDecoder):
        return _cdr._decode_objref(dec)

    return encode, decode


def _error_plan(tc: TypeCode) -> CodecPlan:
    def encode(enc: CDREncoder, value) -> None:
        raise BAD_PARAM("value nesting too deep")

    def decode(dec: CDRDecoder):
        raise BAD_PARAM("value nesting too deep")
    return CodecPlan(tc, encode, decode, static_depth=_MAX_NESTING + 1)


# -- the compiler -------------------------------------------------------------

def _compile(tc: TypeCode, depth: int) -> CodecPlan:
    if depth > _MAX_NESTING:
        return _error_plan(tc)
    kind = tc.kind
    if kind is TCKind.ALIAS:
        assert tc.content_type is not None
        inner = _compile(tc.content_type, depth + 1)
        return CodecPlan(tc, inner.encode, inner.decode, inner.fixed,
                         inner.static_depth + 1, inner.dynamic)

    fixed = _fixed_info(tc, depth)
    if fixed is not None:
        encode, decode = _fused_codec(tc, fixed)
        return CodecPlan(tc, encode, decode, fixed,
                         _static_depth(tc), False)

    if kind is TCKind.STRING:
        encode, decode = _string_codec()
        return CodecPlan(tc, encode, decode)
    if kind is TCKind.OCTETSEQ:
        encode, decode = _octetseq_codec()
        return CodecPlan(tc, encode, decode)
    if kind is TCKind.SEQUENCE:
        assert tc.content_type is not None
        content = _compile(tc.content_type, depth + 1)
        cfixed = content.fixed
        if cfixed is not None and cfixed[0]:
            encode, decode = _batched_elems_codec(
                tc, cfixed, tc.length, with_count=True
            )
        else:
            encode, decode = _loop_seq_codec(tc, content)
        return CodecPlan(tc, encode, decode, None,
                         content.static_depth + 1, content.dynamic)
    if kind is TCKind.ARRAY:
        assert tc.content_type is not None
        content = _compile(tc.content_type, depth + 1)
        cfixed = content.fixed
        if cfixed is not None and cfixed[0]:
            encode, decode = _batched_elems_codec(
                tc, cfixed, 0, with_count=False, fixed_count=tc.length
            )
        else:
            encode, decode = _loop_array_codec(tc, content)
        return CodecPlan(tc, encode, decode, None,
                         content.static_depth + 1, content.dynamic)
    if kind in (TCKind.STRUCT, TCKind.EXCEPT):
        encode, decode = _struct_codec(tc, depth)
        sd = 1 + max(
            (_plan_depth(mtc, depth) for _n, mtc in tc.members), default=0
        )
        dyn = any(_contains_any(mtc) for _n, mtc in tc.members)
        return CodecPlan(tc, encode, decode, None, sd, dyn)
    if kind is TCKind.UNION:
        encode, decode = _union_codec(tc, depth)
        parts = [tc.discriminator_type] + [m[2] for m in tc.members]
        sd = 1 + max(_plan_depth(p, depth) for p in parts)
        dyn = any(_contains_any(p) for p in parts)
        return CodecPlan(tc, encode, decode, None, sd, dyn)
    if kind is TCKind.ANY:
        encode, decode = _any_codec(depth)
        return CodecPlan(tc, encode, decode, None, 1, True)
    if kind is TCKind.OBJREF:
        encode, decode = _objref_codec()
        return CodecPlan(tc, encode, decode)
    raise BAD_PARAM(f"cannot compile TypeCode kind {kind}")


def _static_depth(tc: TypeCode, _depth: int = 0) -> int:
    """Interpreter recursion depth needed for a value of *tc*."""
    if _depth > _MAX_NESTING:
        return _MAX_NESTING + 1
    kind = tc.kind
    if kind in (TCKind.ALIAS, TCKind.SEQUENCE, TCKind.ARRAY):
        assert tc.content_type is not None
        return 1 + _static_depth(tc.content_type, _depth + 1)
    if kind in (TCKind.STRUCT, TCKind.EXCEPT):
        return 1 + max(
            (_static_depth(mtc, _depth + 1) for _n, mtc in tc.members),
            default=0,
        )
    if kind is TCKind.UNION:
        parts = [tc.discriminator_type] + [m[2] for m in tc.members]
        return 1 + max(_static_depth(p, _depth + 1) for p in parts)
    if kind is TCKind.ANY:
        return 1
    return 0


def _plan_depth(tc: TypeCode, depth: int) -> int:
    return _static_depth(tc, depth)


def _contains_any(tc: TypeCode, _depth: int = 0) -> bool:
    if _depth > _MAX_NESTING:
        return False
    kind = tc.kind
    if kind is TCKind.ANY:
        return True
    if kind in (TCKind.ALIAS, TCKind.SEQUENCE, TCKind.ARRAY):
        assert tc.content_type is not None
        return _contains_any(tc.content_type, _depth + 1)
    if kind in (TCKind.STRUCT, TCKind.EXCEPT):
        return any(_contains_any(mtc, _depth + 1) for _n, mtc in tc.members)
    if kind is TCKind.UNION:
        parts = [tc.discriminator_type] + [m[2] for m in tc.members]
        return any(_contains_any(p, _depth + 1) for p in parts)
    return False


# -- plan cache ---------------------------------------------------------------

#: When enabled, plans cached by :func:`get_plan` are upgraded to the
#: generated-source tier (repro.orb.codegen) where the TypeCode
#: supports it; the closure-based plan stays the fallback and
#: :func:`compile_plan` always returns the pure plan tier.
_CODEGEN = True


def set_codegen(enabled: bool) -> None:
    """Toggle the generated-source tier (tests); drops cached plans."""
    global _CODEGEN
    _CODEGEN = bool(enabled)
    clear_cache()


def codegen_enabled() -> bool:
    return _CODEGEN


def _attach_codegen(tc: TypeCode, plan: CodecPlan) -> None:
    # Deferred import: codegen depends on this module's leaf model.
    from repro.orb import codegen
    pair = codegen.generate(tc)
    if pair is not None:
        plan.encode, plan.decode = pair
        plan.tier = "codegen"


_CACHE_MAX = 4096
#: id(tc) -> (tc, plan); holding tc keeps the id stable.
_ID_CACHE: dict[int, tuple[TypeCode, CodecPlan]] = {}
#: structural-equality cache so equal TypeCode instances share one plan.
_EQ_CACHE: dict[TypeCode, CodecPlan] = {}


def compile_plan(tc: TypeCode) -> CodecPlan:
    """Compile a fresh plan for *tc*, bypassing the cache (tests)."""
    stats["compiled"] += 1
    return _compile(tc, 0)


def get_plan(tc: TypeCode) -> CodecPlan:
    """Return the cached codec plan for *tc*, compiling on first use."""
    entry = _ID_CACHE.get(id(tc))
    if entry is not None and entry[0] is tc:
        stats["hits"] += 1
        return entry[1]
    plan = _EQ_CACHE.get(tc)
    if plan is None:
        if len(_EQ_CACHE) >= _CACHE_MAX:
            _EQ_CACHE.clear()
            _ID_CACHE.clear()
        stats["misses"] += 1
        stats["compiled"] += 1
        plan = _compile(tc, 0)
        if _CODEGEN:
            _attach_codegen(tc, plan)
        _EQ_CACHE[tc] = plan
    else:
        stats["hits"] += 1
    if len(_ID_CACHE) >= _CACHE_MAX:
        _ID_CACHE.clear()
    _ID_CACHE[id(tc)] = (tc, plan)
    return plan


def clear_cache() -> None:
    """Drop all cached plans (tests / memory pressure).

    Also invalidates every :class:`OperationCodec` memoized on an
    OperationDef: those codecs hold pre-bound plan handles compiled at
    the old tier, and keeping them alive across a tier switch
    (``set_codegen``) would let ablation runs silently keep executing
    generated code.  The hot-path readers fall back to :func:`op_codec`
    on AttributeError and re-memoize at the current tier.
    """
    _ID_CACHE.clear()
    _EQ_CACHE.clear()
    for odef in tuple(_MEMOIZED_ODEFS):
        try:
            object.__delattr__(odef, "_codec")
        except AttributeError:
            pass
    _MEMOIZED_ODEFS.clear()


def cache_size() -> int:
    return len(_EQ_CACHE)


# -- per-operation codecs -----------------------------------------------------

class OperationCodec:
    """Pre-resolved plans for one OperationDef's request/reply bodies."""

    __slots__ = ("in_plans", "out_plans", "result_plan", "result_void",
                 "in1_encode", "in1_decode", "result_decode")

    def __init__(self, odef) -> None:
        self.in_plans = tuple(get_plan(p.tc) for p in odef.in_params())
        self.out_plans = tuple(get_plan(p.tc) for p in odef.out_params())
        self.result_plan = get_plan(odef.result)
        self.result_void = odef.result.kind is TCKind.VOID
        # Single-in-parameter operations are the common RPC shape; the
        # pre-bound plan methods let hot paths skip the generic
        # encode_in/decode_in frames (and their zip/listcomp) entirely.
        one = len(self.in_plans) == 1
        self.in1_encode = self.in_plans[0].encode if one else None
        self.in1_decode = self.in_plans[0].decode if one else None
        self.result_decode = self.result_plan.decode

    def encode_in(self, enc: CDREncoder, args) -> None:
        for plan, value in zip(self.in_plans, args):
            plan.encode(enc, value)

    def decode_in(self, dec: CDRDecoder) -> list:
        return [plan.decode(dec) for plan in self.in_plans]


#: OperationDefs carrying a memoized ``_codec``, tracked weakly so
#: :func:`clear_cache` can strip stale codecs on a tier switch without
#: pinning definitions in memory.
_MEMOIZED_ODEFS: "weakref.WeakSet" = weakref.WeakSet()


def op_codec(odef) -> OperationCodec:
    """Cached per-operation codec, stored on the OperationDef itself.

    OperationDef is a frozen dataclass, so the memo goes in via
    ``object.__setattr__``; the definition is immutable, but the memo is
    dropped by :func:`clear_cache` (and thus :func:`set_codegen`)
    because the codec binds tier-specific plan handles.  Hot paths may
    read ``odef._codec`` directly (guarded by AttributeError) to skip
    even this call."""
    try:
        return odef._codec
    except AttributeError:
        codec = OperationCodec(odef)
        object.__setattr__(odef, "_codec", codec)
        _MEMOIZED_ODEFS.add(odef)
        return codec

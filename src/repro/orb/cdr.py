"""CDR (Common Data Representation) marshalling.

Big-endian CDR with the standard alignment rules: every primitive is
aligned to its own size relative to the start of the stream.  Values
are encoded/decoded under the direction of a :class:`TypeCode`, so the
bytes that cross the simulated wire are the actual CORBA encoding and
message-size metrics are realistic.

Supported constructed types: string, sequence, array, struct, enum,
union, alias, exception, Any (with full recursive TypeCode
marshalling), object references (as stringified IORs), and a fast-path
``sequence<octet>`` carried as Python ``bytes``.

Two execution paths share this wire format:

- :func:`encode_value` / :func:`decode_value` consult the compiled
  codec-plan cache (:mod:`repro.orb.compiled`) — the hot path;
- :func:`encode_value_interp` / :func:`decode_value_interp` walk the
  TypeCode graph directly — the reference interpreter, kept as the
  fallback for ``Any`` payloads near the nesting limit and as the
  ground truth the property tests compare the plans against.
"""

from __future__ import annotations

import struct as _struct
from typing import Any, Optional

from repro.orb.exceptions import BAD_PARAM, INV_OBJREF, MARSHAL
from repro.orb.typecodes import TCKind, TypeCode

_MAX_NESTING = 64


class CDREncoder:
    """Appends CDR-encoded values to a growing buffer."""

    __slots__ = ("_buf",)

    def __init__(self) -> None:
        self._buf = bytearray()

    def __len__(self) -> int:
        return len(self._buf)

    def getvalue(self) -> bytes:
        return bytes(self._buf)

    def take(self) -> bytes:
        """Return the encoded bytes and detach the internal buffer.

        Unlike :meth:`getvalue` this leaves the encoder empty and ready
        for reuse (the ORB pools encoders on its request path), so the
        bytes are materialized exactly once per message.
        """
        buf = self._buf
        self._buf = bytearray()
        return bytes(buf)

    def reset(self) -> None:
        """Clear the buffer so the encoder can be reused."""
        self._buf.clear()

    # -- alignment ---------------------------------------------------------
    def align(self, n: int) -> None:
        pad = (-len(self._buf)) % n
        if pad:
            self._buf.extend(b"\x00" * pad)

    def _pack(self, fmt: str, size: int, value) -> None:
        self.align(size)
        try:
            self._buf.extend(_struct.pack(fmt, value))
        except (_struct.error, TypeError) as exc:
            raise BAD_PARAM(f"cannot marshal {value!r} as {fmt}: {exc}") from None

    # -- primitives ----------------------------------------------------------
    def write_octet(self, v: int) -> None:
        self._pack(">B", 1, v)

    def write_boolean(self, v: bool) -> None:
        self._pack(">B", 1, 1 if v else 0)

    def write_char(self, v: str) -> None:
        if not isinstance(v, str) or len(v) != 1:
            raise BAD_PARAM(f"char must be a 1-character str, got {v!r}")
        self._pack(">B", 1, ord(v) & 0xFF)

    def write_short(self, v: int) -> None:
        self._pack(">h", 2, v)

    def write_ushort(self, v: int) -> None:
        self._pack(">H", 2, v)

    def write_long(self, v: int) -> None:
        self._pack(">i", 4, v)

    def write_ulong(self, v: int) -> None:
        self._pack(">I", 4, v)

    def write_longlong(self, v: int) -> None:
        self._pack(">q", 8, v)

    def write_ulonglong(self, v: int) -> None:
        self._pack(">Q", 8, v)

    def write_float(self, v: float) -> None:
        # struct.pack accepts ints for float formats; any other type
        # fails inside _pack with a proper BAD_PARAM.
        self._pack(">f", 4, v)

    def write_double(self, v: float) -> None:
        self._pack(">d", 8, v)

    def write_string(self, v: str) -> None:
        if not isinstance(v, str):
            raise BAD_PARAM(f"expected str, got {type(v).__name__}")
        data = v.encode("utf-8") + b"\x00"
        self.write_ulong(len(data))
        self._buf.extend(data)

    def write_bytes_raw(self, data: bytes) -> None:
        self._buf.extend(data)

    def write_octet_sequence(self, data: bytes) -> None:
        # bytearray/memoryview are appended directly — no bytes() copy.
        if not isinstance(data, (bytes, bytearray, memoryview)):
            raise BAD_PARAM(f"expected bytes, got {type(data).__name__}")
        self.write_ulong(len(data))
        self._buf.extend(data)

    def write_encapsulation(self, data: bytes) -> None:
        """Write *data* as a CDR encapsulation (ulong length + bytes)."""
        self.write_octet_sequence(data)


class CDRDecoder:
    """Reads CDR-encoded values from a buffer."""

    __slots__ = ("_buf", "_pos")

    def __init__(self, data: bytes) -> None:
        # A zero-copy view: bytes and memoryview inputs are wrapped
        # directly; only a mutable bytearray is snapshotted.
        if isinstance(data, bytearray):
            data = bytes(data)
        self._buf = memoryview(data)
        self._pos = 0

    @property
    def remaining(self) -> int:
        return len(self._buf) - self._pos

    def at_end(self) -> bool:
        return self._pos >= len(self._buf)

    def align(self, n: int) -> None:
        self._pos += (-self._pos) % n

    def _unpack(self, fmt: str, size: int):
        self.align(size)
        if self._pos + size > len(self._buf):
            raise BAD_PARAM(
                f"CDR underflow: need {size} bytes at {self._pos}, "
                f"have {len(self._buf)}"
            )
        (value,) = _struct.unpack_from(fmt, self._buf, self._pos)
        self._pos += size
        return value

    def read_octet(self) -> int:
        return self._unpack(">B", 1)

    def read_boolean(self) -> bool:
        return bool(self._unpack(">B", 1))

    def read_char(self) -> str:
        return chr(self._unpack(">B", 1))

    def read_short(self) -> int:
        return self._unpack(">h", 2)

    def read_ushort(self) -> int:
        return self._unpack(">H", 2)

    def read_long(self) -> int:
        return self._unpack(">i", 4)

    def read_ulong(self) -> int:
        return self._unpack(">I", 4)

    def read_longlong(self) -> int:
        return self._unpack(">q", 8)

    def read_ulonglong(self) -> int:
        return self._unpack(">Q", 8)

    def read_float(self) -> float:
        return self._unpack(">f", 4)

    def read_double(self) -> float:
        return self._unpack(">d", 8)

    def read_string(self) -> str:
        length = self.read_ulong()
        buf = self._buf
        pos = self._pos
        stop = pos + length
        if stop > len(buf):
            raise BAD_PARAM("CDR underflow reading string")
        if length == 0 or buf[stop - 1]:
            raise BAD_PARAM("string not NUL-terminated")
        self._pos = stop
        try:
            # Decode straight from the memoryview slice — no bytes copy.
            return str(buf[pos:stop - 1], "utf-8")
        except UnicodeDecodeError as exc:
            # A corrupted wire must surface as a SystemException, never
            # as a raw Python error escaping the decoder.
            raise MARSHAL(f"invalid UTF-8 in string: {exc}") from None

    def read_octet_sequence(self) -> bytes:
        length = self.read_ulong()
        if self._pos + length > len(self._buf):
            raise BAD_PARAM("CDR underflow reading octet sequence")
        raw = bytes(self._buf[self._pos:self._pos + length])
        self._pos += length
        return raw

    read_encapsulation = read_octet_sequence


class Any:
    """A self-describing value: (TypeCode, value)."""

    __slots__ = ("typecode", "value")

    def __init__(self, typecode: TypeCode, value) -> None:
        self.typecode = typecode
        self.value = value

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Any)
            and self.typecode == other.typecode
            and self.value == other.value
        )

    def __hash__(self) -> int:  # pragma: no cover - rarely hashed
        return hash((self.typecode, repr(self.value)))

    def __repr__(self) -> str:
        return f"Any({self.typecode!r}, {self.value!r})"


# -- value (un)marshalling -----------------------------------------------------

_get_plan = None  # resolved lazily; avoids a circular import with compiled


def encode_value(enc: CDREncoder, tc: TypeCode, value, _depth: int = 0) -> None:
    """CDR-encode *value* as type *tc* into *enc*.

    Top-level calls (``_depth == 0``) run through the compiled codec
    plan cache; nested calls stay on the reference interpreter.
    """
    if _depth:
        encode_value_interp(enc, tc, value, _depth)
        return
    global _get_plan
    if _get_plan is None:
        from repro.orb.compiled import get_plan as _get_plan_fn
        _get_plan = _get_plan_fn
    _get_plan(tc).encode(enc, value)


def decode_value(dec: CDRDecoder, tc: TypeCode, _depth: int = 0):
    """Decode a value of type *tc* from *dec* (compiled fast path)."""
    if _depth:
        return decode_value_interp(dec, tc, _depth)
    global _get_plan
    if _get_plan is None:
        from repro.orb.compiled import get_plan as _get_plan_fn
        _get_plan = _get_plan_fn
    return _get_plan(tc).decode(dec)


def encode_value_interp(enc: CDREncoder, tc: TypeCode, value,
                        _depth: int = 0) -> None:
    """Reference interpreter: CDR-encode *value* by walking *tc*."""
    if _depth > _MAX_NESTING:
        raise BAD_PARAM("value nesting too deep")
    kind = tc.kind
    if kind is TCKind.ALIAS:
        assert tc.content_type is not None
        encode_value_interp(enc, tc.content_type, value, _depth + 1)
    elif kind in (TCKind.NULL, TCKind.VOID):
        if value is not None:
            raise BAD_PARAM(f"void carries no value, got {value!r}")
    elif kind is TCKind.SHORT:
        enc.write_short(value)
    elif kind is TCKind.LONG:
        enc.write_long(value)
    elif kind is TCKind.USHORT:
        enc.write_ushort(value)
    elif kind is TCKind.ULONG:
        enc.write_ulong(value)
    elif kind is TCKind.LONGLONG:
        enc.write_longlong(value)
    elif kind is TCKind.ULONGLONG:
        enc.write_ulonglong(value)
    elif kind is TCKind.FLOAT:
        enc.write_float(value)
    elif kind is TCKind.DOUBLE:
        enc.write_double(value)
    elif kind is TCKind.BOOLEAN:
        enc.write_boolean(value)
    elif kind is TCKind.CHAR:
        enc.write_char(value)
    elif kind is TCKind.OCTET:
        enc.write_octet(value)
    elif kind is TCKind.STRING:
        enc.write_string(value)
    elif kind is TCKind.OCTETSEQ:
        enc.write_octet_sequence(value)
    elif kind is TCKind.ENUM:
        try:
            index = tc.labels.index(value) if isinstance(value, str) else int(value)
        except ValueError:
            raise BAD_PARAM(
                f"{value!r} is not a label of enum {tc.name}"
            ) from None
        if not 0 <= index < len(tc.labels):
            raise BAD_PARAM(f"enum index {index} out of range for {tc.name}")
        enc.write_ulong(index)
    elif kind is TCKind.SEQUENCE:
        items = list(value)
        if tc.length and len(items) > tc.length:
            raise BAD_PARAM(
                f"sequence bound {tc.length} exceeded ({len(items)} items)"
            )
        enc.write_ulong(len(items))
        assert tc.content_type is not None
        for item in items:
            encode_value_interp(enc, tc.content_type, item, _depth + 1)
    elif kind is TCKind.ARRAY:
        items = list(value)
        if len(items) != tc.length:
            raise BAD_PARAM(
                f"array of length {tc.length} got {len(items)} items"
            )
        assert tc.content_type is not None
        for item in items:
            encode_value_interp(enc, tc.content_type, item, _depth + 1)
    elif kind in (TCKind.STRUCT, TCKind.EXCEPT):
        _encode_struct(enc, tc, value, _depth)
    elif kind is TCKind.UNION:
        _encode_union(enc, tc, value, _depth)
    elif kind is TCKind.ANY:
        if not isinstance(value, Any):
            raise BAD_PARAM(f"expected Any, got {type(value).__name__}")
        encode_typecode(enc, value.typecode)
        encode_value_interp(enc, value.typecode, value.value, _depth + 1)
    elif kind is TCKind.OBJREF:
        _encode_objref(enc, value)
    else:  # pragma: no cover - exhaustive over TCKind
        raise BAD_PARAM(f"cannot marshal kind {kind}")


def decode_value_interp(dec: CDRDecoder, tc: TypeCode, _depth: int = 0):
    """Reference interpreter: decode a value of type *tc* from *dec*."""
    if _depth > _MAX_NESTING:
        raise BAD_PARAM("value nesting too deep")
    kind = tc.kind
    if kind is TCKind.ALIAS:
        assert tc.content_type is not None
        return decode_value_interp(dec, tc.content_type, _depth + 1)
    if kind in (TCKind.NULL, TCKind.VOID):
        return None
    if kind is TCKind.SHORT:
        return dec.read_short()
    if kind is TCKind.LONG:
        return dec.read_long()
    if kind is TCKind.USHORT:
        return dec.read_ushort()
    if kind is TCKind.ULONG:
        return dec.read_ulong()
    if kind is TCKind.LONGLONG:
        return dec.read_longlong()
    if kind is TCKind.ULONGLONG:
        return dec.read_ulonglong()
    if kind is TCKind.FLOAT:
        return dec.read_float()
    if kind is TCKind.DOUBLE:
        return dec.read_double()
    if kind is TCKind.BOOLEAN:
        return dec.read_boolean()
    if kind is TCKind.CHAR:
        return dec.read_char()
    if kind is TCKind.OCTET:
        return dec.read_octet()
    if kind is TCKind.STRING:
        return dec.read_string()
    if kind is TCKind.OCTETSEQ:
        return dec.read_octet_sequence()
    if kind is TCKind.ENUM:
        index = dec.read_ulong()
        if index >= len(tc.labels):
            raise BAD_PARAM(f"enum index {index} out of range for {tc.name}")
        return tc.labels[index]
    if kind is TCKind.SEQUENCE:
        n = dec.read_ulong()
        # Every element consumes at least one byte, so a count beyond
        # the remaining bytes is garbage; reject it before looping (or
        # allocating) anything proportional to it.
        if n > dec.remaining:
            raise MARSHAL(
                f"sequence count {n} exceeds {dec.remaining} remaining bytes"
            )
        assert tc.content_type is not None
        return [decode_value_interp(dec, tc.content_type, _depth + 1)
                for _ in range(n)]
    if kind is TCKind.ARRAY:
        assert tc.content_type is not None
        return [
            decode_value_interp(dec, tc.content_type, _depth + 1)
            for _ in range(tc.length)
        ]
    if kind in (TCKind.STRUCT, TCKind.EXCEPT):
        return {
            name: decode_value_interp(dec, mtc, _depth + 1)
            for name, mtc in tc.members
        }
    if kind is TCKind.UNION:
        return _decode_union(dec, tc, _depth)
    if kind is TCKind.ANY:
        inner_tc = decode_typecode(dec)
        return Any(inner_tc, decode_value_interp(dec, inner_tc, _depth + 1))
    if kind is TCKind.OBJREF:
        return _decode_objref(dec)
    raise BAD_PARAM(f"cannot unmarshal kind {kind}")  # pragma: no cover


def _encode_struct(enc: CDREncoder, tc: TypeCode, value, depth: int) -> None:
    # Accept dicts keyed by member name, or objects with attributes.
    for name, mtc in tc.members:
        if isinstance(value, dict):
            if name not in value:
                raise BAD_PARAM(f"struct {tc.name} missing member {name!r}")
            member = value[name]
        else:
            try:
                member = getattr(value, name)
            except AttributeError:
                raise BAD_PARAM(
                    f"struct {tc.name} value lacks member {name!r}"
                ) from None
        encode_value_interp(enc, mtc, member, depth + 1)
    if isinstance(value, dict):
        extra = set(value) - {n for n, _ in tc.members}
        if extra:
            raise BAD_PARAM(f"struct {tc.name} has unknown members {sorted(extra)}")


def _encode_union(enc: CDREncoder, tc: TypeCode, value, depth: int) -> None:
    # Union values are (discriminator, value) pairs.
    try:
        disc, inner = value
    except (TypeError, ValueError):
        raise BAD_PARAM(
            f"union {tc.name} value must be (discriminator, value)"
        ) from None
    assert tc.discriminator_type is not None
    encode_value_interp(enc, tc.discriminator_type, disc, depth + 1)
    arm = _union_arm(tc, disc)
    if arm is None:
        raise BAD_PARAM(f"union {tc.name}: no arm for discriminator {disc!r}")
    _label, _name, arm_tc = arm
    encode_value_interp(enc, arm_tc, inner, depth + 1)


def _decode_union(dec: CDRDecoder, tc: TypeCode, depth: int):
    assert tc.discriminator_type is not None
    disc = decode_value_interp(dec, tc.discriminator_type, depth + 1)
    arm = _union_arm(tc, disc)
    if arm is None:
        raise BAD_PARAM(f"union {tc.name}: no arm for discriminator {disc!r}")
    _label, _name, arm_tc = arm
    return (disc, decode_value_interp(dec, arm_tc, depth + 1))


def _union_arm(tc: TypeCode, disc):
    # A ``None`` label marks the default arm and never matches a
    # discriminator directly.
    for label, name, arm_tc in tc.members:
        if label is not None and label == disc:
            return (label, name, arm_tc)
    if 0 <= tc.default_index < len(tc.members):
        return tc.members[tc.default_index]
    return None


def _encode_objref(enc: CDREncoder, value) -> None:
    # Deferred import: ior.py has no dependency back on cdr.
    from repro.orb.ior import IOR

    if value is None:  # nil reference
        enc.write_string("")
        return
    ior = getattr(value, "_ior", value)  # stubs carry ._ior
    if not isinstance(ior, IOR):
        raise BAD_PARAM(f"expected IOR or stub, got {type(value).__name__}")
    enc.write_string(ior.to_string())


def _decode_objref(dec: CDRDecoder):
    from repro.orb.ior import IOR

    text = dec.read_string()
    if not text:
        return None
    try:
        return IOR.from_string(text)
    except ValueError as exc:
        raise INV_OBJREF(str(exc)) from None


# -- TypeCode (un)marshalling --------------------------------------------------
# Simple kinds travel as a ulong kind tag; parameterized kinds add their
# parameters in a CDR encapsulation, mirroring real CDR TypeCode encoding.

_SIMPLE_KINDS = {
    TCKind.NULL, TCKind.VOID, TCKind.SHORT, TCKind.LONG, TCKind.USHORT,
    TCKind.ULONG, TCKind.FLOAT, TCKind.DOUBLE, TCKind.BOOLEAN, TCKind.CHAR,
    TCKind.OCTET, TCKind.ANY, TCKind.STRING, TCKind.LONGLONG,
    TCKind.ULONGLONG, TCKind.OCTETSEQ,
}


def encode_typecode(enc: CDREncoder, tc: TypeCode, _depth: int = 0) -> None:
    if _depth > _MAX_NESTING:
        raise BAD_PARAM("TypeCode nesting too deep")
    enc.write_ulong(tc.kind.value)
    if tc.kind in _SIMPLE_KINDS:
        return
    body = CDREncoder()
    if tc.kind is TCKind.OBJREF:
        body.write_string(tc.repo_id)
        body.write_string(tc.name)
    elif tc.kind in (TCKind.STRUCT, TCKind.EXCEPT):
        body.write_string(tc.repo_id)
        body.write_string(tc.name)
        body.write_ulong(len(tc.members))
        for name, mtc in tc.members:
            body.write_string(name)
            encode_typecode(body, mtc, _depth + 1)
    elif tc.kind is TCKind.ENUM:
        body.write_string(tc.repo_id)
        body.write_string(tc.name)
        body.write_ulong(len(tc.labels))
        for label in tc.labels:
            body.write_string(label)
    elif tc.kind in (TCKind.SEQUENCE, TCKind.ARRAY):
        assert tc.content_type is not None
        encode_typecode(body, tc.content_type, _depth + 1)
        body.write_ulong(tc.length)
    elif tc.kind is TCKind.ALIAS:
        body.write_string(tc.repo_id)
        body.write_string(tc.name)
        assert tc.content_type is not None
        encode_typecode(body, tc.content_type, _depth + 1)
    elif tc.kind is TCKind.UNION:
        body.write_string(tc.repo_id)
        body.write_string(tc.name)
        assert tc.discriminator_type is not None
        encode_typecode(body, tc.discriminator_type, _depth + 1)
        body.write_long(tc.default_index)
        body.write_ulong(len(tc.members))
        for label, name, mtc in tc.members:
            # Default arms carry label None; flag them instead of
            # marshalling a discriminator value.
            if label is None:
                body.write_boolean(True)
            else:
                body.write_boolean(False)
                encode_value_interp(body, tc.discriminator_type, label,
                                    _depth + 1)
            body.write_string(name)
            encode_typecode(body, mtc, _depth + 1)
    else:  # pragma: no cover
        raise BAD_PARAM(f"cannot marshal TypeCode kind {tc.kind}")
    enc.write_encapsulation(body.take())


def _checked_count(dec: CDRDecoder, what: str) -> int:
    """Read a ulong member/label count, bounded by the remaining bytes."""
    n = dec.read_ulong()
    if n > dec.remaining:
        raise MARSHAL(
            f"{what} count {n} exceeds {dec.remaining} remaining bytes"
        )
    return n


def decode_typecode(dec: CDRDecoder, _depth: int = 0) -> TypeCode:
    if _depth > _MAX_NESTING:
        raise BAD_PARAM("TypeCode nesting too deep")
    try:
        kind = TCKind(dec.read_ulong())
    except ValueError as exc:
        raise BAD_PARAM(f"unknown TypeCode kind: {exc}") from None
    if kind in _SIMPLE_KINDS:
        return TypeCode(kind)
    body = CDRDecoder(dec.read_encapsulation())
    if kind is TCKind.OBJREF:
        repo_id = body.read_string()
        name = body.read_string()
        return TypeCode(kind, name=name, repo_id=repo_id)
    if kind in (TCKind.STRUCT, TCKind.EXCEPT):
        repo_id = body.read_string()
        name = body.read_string()
        n = _checked_count(body, "struct member")
        members = []
        for _ in range(n):
            mname = body.read_string()
            members.append((mname, decode_typecode(body, _depth + 1)))
        return TypeCode(kind, name=name, repo_id=repo_id, members=members)
    if kind is TCKind.ENUM:
        repo_id = body.read_string()
        name = body.read_string()
        n = _checked_count(body, "enum label")
        labels = [body.read_string() for _ in range(n)]
        return TypeCode(kind, name=name, repo_id=repo_id, labels=labels)
    if kind in (TCKind.SEQUENCE, TCKind.ARRAY):
        content = decode_typecode(body, _depth + 1)
        length = body.read_ulong()
        return TypeCode(kind, content_type=content, length=length)
    if kind is TCKind.ALIAS:
        repo_id = body.read_string()
        name = body.read_string()
        content = decode_typecode(body, _depth + 1)
        return TypeCode(kind, name=name, repo_id=repo_id, content_type=content)
    if kind is TCKind.UNION:
        repo_id = body.read_string()
        name = body.read_string()
        disc = decode_typecode(body, _depth + 1)
        default_index = body.read_long()
        n = _checked_count(body, "union arm")
        members = []
        for _ in range(n):
            is_default = body.read_boolean()
            label = None if is_default else decode_value_interp(body, disc)
            mname = body.read_string()
            members.append((label, mname, decode_typecode(body, _depth + 1)))
        return TypeCode(kind, name=name, repo_id=repo_id, members=members,
                        discriminator_type=disc, default_index=default_index)
    raise BAD_PARAM(f"cannot unmarshal TypeCode kind {kind}")  # pragma: no cover


# -- convenience ---------------------------------------------------------------

def encode_one(tc: TypeCode, value) -> bytes:
    """Encode a single value to bytes."""
    enc = CDREncoder()
    encode_value(enc, tc, value)
    return enc.getvalue()


def decode_one(tc: TypeCode, data: bytes):
    """Decode a single value from bytes."""
    return decode_value(CDRDecoder(data), tc)

"""Deterministic wire-fuzz harness for the GIOP/CDR decoder.

The robustness contract of :func:`repro.orb.giop.decode_message` is:
for *any* byte string, it either returns a message or raises a
:class:`~repro.orb.exceptions.SystemException` — never a raw Python
exception, and never an allocation larger than the input justifies.
This module checks that contract mechanically: take valid request and
reply frames, mutate them with seeded byte-level operators (the same
damage a hostile or flaky wire inflicts), and decode every mutant.

Everything is driven by ``numpy`` generators seeded per run, so a
failing seed/iteration pair reproduces exactly.  Used by
``tests/orb/test_wire_fuzz.py`` (``fuzz`` marker, ``make fuzz``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.orb import codegen, giop
from repro.orb.cdr import CDRDecoder, CDREncoder, encode_value
from repro.orb.exceptions import SystemException
from repro.orb.typecodes import (
    array_tc,
    enum_tc,
    sequence_tc,
    struct_tc,
    tc_boolean,
    tc_double,
    tc_long,
    tc_octet,
    tc_octetseq,
    tc_short,
    tc_string,
    union_tc,
)


def corpus() -> list[bytes]:
    """Canonical valid wire frames covering both message kinds."""
    requests = [
        giop.RequestMessage(
            request_id=7, response_expected=True, host="h1",
            adapter="node", object_key="registry", operation="lookup",
            args=b"\x00\x00\x00\x04ping",
            service_context=(("trace-id", "t000001"),
                             ("span-id", "s000001")),
        ),
        giop.RequestMessage(
            request_id=2 ** 31, response_expected=False, host="hub",
            adapter="app", object_key="k" * 40, operation="_get_value",
            args=bytes(range(256)), service_context=(),
        ),
    ]
    replies = [
        giop.ReplyMessage(request_id=7, status=giop.NO_EXCEPTION,
                          body=b"\x00\x00\x00\x2a"),
        giop.ReplyMessage(request_id=9, status=giop.SYSTEM_EXCEPTION,
                          body=b"\x00\x00\x00\x01x\x00" * 6),
    ]
    return [m.encode() for m in requests] + [m.encode() for m in replies]


# -- mutation operators --------------------------------------------------------
# Each takes (bytearray, rng) and returns mutated bytes.  They model the
# damage classes of WireFaultModel plus adversarial field stomps.

def _bit_flips(data: bytearray, rng) -> bytes:
    for _ in range(1 + int(rng.integers(0, 8))):
        pos = int(rng.integers(0, len(data)))
        data[pos] ^= 1 << int(rng.integers(0, 8))
    return bytes(data)


def _truncate(data: bytearray, rng) -> bytes:
    return bytes(data[: int(rng.integers(0, len(data)))])


def _extend(data: bytearray, rng) -> bytes:
    tail = rng.integers(0, 256, size=int(rng.integers(1, 64)), dtype=np.uint8)
    return bytes(data) + tail.tobytes()


def _zero_run(data: bytearray, rng) -> bytes:
    start = int(rng.integers(0, len(data)))
    end = min(len(data), start + int(rng.integers(1, 16)))
    data[start:end] = b"\x00" * (end - start)
    return bytes(data)


def _ff_run(data: bytearray, rng) -> bytes:
    start = int(rng.integers(0, len(data)))
    end = min(len(data), start + int(rng.integers(1, 16)))
    data[start:end] = b"\xff" * (end - start)
    return bytes(data)


def _ulong_stomp(data: bytearray, rng) -> bytes:
    """Overwrite an aligned ulong with an adversarial count/length."""
    if len(data) < 8:
        return bytes(data)
    pos = 4 * int(rng.integers(0, len(data) // 4))
    value = int(rng.choice([0, 1, 2 ** 16, 2 ** 31 - 1, 2 ** 32 - 1]))
    data[pos:pos + 4] = value.to_bytes(4, "big")
    return bytes(data)


def _splice(data: bytearray, rng) -> bytes:
    """Copy one random slice of the frame over another."""
    n = int(rng.integers(1, max(2, len(data) // 2)))
    src = int(rng.integers(0, len(data) - n + 1))
    dst = int(rng.integers(0, len(data) - n + 1))
    data[dst:dst + n] = data[src:src + n]
    return bytes(data)


def _garbage(data: bytearray, rng) -> bytes:
    """Replace the whole frame with random bytes of similar size."""
    n = int(rng.integers(1, 2 * len(data)))
    return rng.integers(0, 256, size=n, dtype=np.uint8).tobytes()


MUTATORS = (_bit_flips, _truncate, _extend, _zero_run, _ff_run,
            _ulong_stomp, _splice, _garbage)


def mutate(data: bytes, rng) -> bytes:
    """Apply 1-3 random mutation operators to *data*."""
    out = data
    for _ in range(1 + int(rng.integers(0, 3))):
        if not out:
            break
        mutator = MUTATORS[int(rng.integers(0, len(MUTATORS)))]
        out = mutator(bytearray(out), rng)
    return out


# -- the harness ---------------------------------------------------------------

@dataclass
class FuzzReport:
    """Outcome tally of one fuzz run."""

    seed: int
    iterations: int = 0
    decoded: int = 0            # mutant still parsed as a message
    rejected: int = 0           # clean SystemException
    #: (iteration, mutant bytes, exception) for every contract breach:
    #: a non-SystemException escape or an over-allocation.
    failures: list = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures


def check_bounded(message, data: bytes) -> None:
    """Assert the decoder never allocated more than the input justifies.

    Every decoded byte string and every collection slot was read from
    the wire, so its size is bounded by the frame length.
    """
    limit = len(data)
    if isinstance(message, giop.RequestMessage):
        strings = [message.host, message.adapter, message.object_key,
                   message.operation]
        for key, value in message.service_context:
            strings.extend((key, value))
        for s in strings:
            if len(s.encode("utf-8")) > limit:
                raise AssertionError(
                    f"decoded string of {len(s)} chars from a "
                    f"{limit}-byte frame"
                )
        if len(message.args) > limit:
            raise AssertionError(
                f"decoded {len(message.args)}-byte args from a "
                f"{limit}-byte frame"
            )
        if len(message.service_context) > giop.MAX_SERVICE_CONTEXT_SLOTS:
            raise AssertionError(
                f"{len(message.service_context)} service-context slots "
                f"exceed the cap"
            )
    else:
        if len(message.body) > limit:
            raise AssertionError(
                f"decoded {len(message.body)}-byte body from a "
                f"{limit}-byte frame"
            )


#: Representative TypeCodes for the codegen decode tier, with a valid
#: sample value each.  Every one of these MUST be supported by
#: :func:`repro.orb.codegen.generate` — ``codec_corpus`` asserts it, so
#: the fuzz genuinely drives the generated decoders, not a fallback.
_CODEC_SAMPLES = [
    (struct_tc("FzSample", [
        ("id", tc_long),
        ("name", tc_string),
        ("path", sequence_tc(struct_tc("FzPoint", [
            ("x", tc_double), ("y", tc_double)]))),
    ]), {"id": 7, "name": "probe", "path": [{"x": 1.0, "y": 2.0},
                                            {"x": 3.0, "y": 4.0}]}),
    (struct_tc("FzMixed", [
        ("flag", tc_boolean),
        ("tag", enum_tc("FzColor", ["red", "green", "blue"])),
        ("blob", tc_octetseq),
        ("grid", array_tc(tc_short, 4)),
        ("names", sequence_tc(tc_string)),
    ]), {"flag": True, "tag": 2, "blob": b"\x01\x02\x03",
         "grid": [1, -2, 3, -4], "names": ["a", "bb"]}),
    (union_tc("FzEither", tc_long, [
        (1, "num", tc_long),
        (2, "text", tc_string),
        (None, "raw", tc_octetseq),
    ], default_index=2), (2, "hello")),
    (sequence_tc(sequence_tc(tc_octet)), [b"ab", b"", b"xyz"]),
]


def codec_corpus() -> list[tuple]:
    """(decode_fn, valid encoded bytes) pairs for the codegen tier."""
    pairs = []
    for tc, value in _CODEC_SAMPLES:
        generated = codegen.generate(tc)
        if generated is None:  # pragma: no cover - corpus bug
            raise AssertionError(
                f"codec fuzz corpus entry {tc!r} is not codegen-supported"
            )
        enc = CDREncoder()
        encode_value(enc, tc, value)
        pairs.append((generated[1], enc.getvalue()))
    return pairs


def _leaf_budget(value, limit: int) -> int:
    """Spend ``limit`` down by the size of *value*; raises when the
    decoded value is larger than the input frame could justify.

    Every decoded leaf consumed at least one wire byte (the smallest
    CDR leaf is an octet/boolean/char) and every string or byte slab
    consumed at least its own length, so a valid decode can never
    exhaust a budget equal to the frame length.
    """
    if isinstance(value, (bytes, bytearray, str)):
        limit -= max(1, len(value))
    elif isinstance(value, dict):
        for member in value.values():
            limit = _leaf_budget(member, limit)
    elif isinstance(value, (list, tuple)):
        for member in value:
            limit = _leaf_budget(member, limit)
    else:
        limit -= 1
    if limit < 0:
        raise AssertionError("decoded value larger than its input frame")
    return limit


def check_value_bounded(value, data: bytes) -> None:
    """Assert a codegen-decoded *value* is bounded by the frame size."""
    # +8 slack: the outermost value may decode from a frame whose
    # fixed leaves were packed tighter than one byte per leaf bound.
    _leaf_budget(value, len(data) + 8)


def run_codec_fuzz(seed: int, iterations: int = 2000) -> FuzzReport:
    """Fuzz the *generated* decoders the way :func:`run_fuzz` fuzzes
    the GIOP layer: mutate valid encodings, decode through the codegen
    tier, demand SystemException-or-bounded-value for every mutant."""
    rng = np.random.default_rng(seed)
    pairs = codec_corpus()
    report = FuzzReport(seed=seed)
    for i in range(iterations):
        dec_fn, base = pairs[int(rng.integers(0, len(pairs)))]
        mutant = mutate(base, rng)
        report.iterations += 1
        try:
            value = dec_fn(CDRDecoder(mutant))
        except SystemException:
            report.rejected += 1
            continue
        except BaseException as exc:  # contract breach: raw escape
            report.failures.append((i, mutant, exc))
            continue
        try:
            check_value_bounded(value, mutant)
        except AssertionError as exc:
            report.failures.append((i, mutant, exc))
            continue
        report.decoded += 1
    return report


def run_fuzz(seed: int, iterations: int = 2000) -> FuzzReport:
    """Mutate-and-decode *iterations* frames; tally the outcomes.

    Never raises for decoder misbehaviour — contract breaches are
    collected in :attr:`FuzzReport.failures` so a test can show every
    offending byte string at once.
    """
    rng = np.random.default_rng(seed)
    frames = corpus()
    report = FuzzReport(seed=seed)
    for i in range(iterations):
        base = frames[int(rng.integers(0, len(frames)))]
        mutant = mutate(base, rng)
        report.iterations += 1
        try:
            message = giop.decode_message(mutant)
        except SystemException:
            report.rejected += 1
            continue
        except BaseException as exc:  # contract breach: raw escape
            report.failures.append((i, mutant, exc))
            continue
        try:
            check_bounded(message, mutant)
        except AssertionError as exc:
            report.failures.append((i, mutant, exc))
            continue
        report.decoded += 1
    return report

"""Common Object Services the component framework relies on:

- :mod:`repro.orb.services.naming` — a CosNaming-style naming service.
- :mod:`repro.orb.services.events` — push-model event channels, the
  transport behind component event ports (§2.1.2: "for each event kind
  produced by a component, the framework opens a push event channel").
"""

from repro.orb.services.naming import NamingServant, NAMING_IFACE
from repro.orb.services.events import EventChannelServant, EVENT_CHANNEL_IFACE

__all__ = [
    "NamingServant",
    "NAMING_IFACE",
    "EventChannelServant",
    "EVENT_CHANNEL_IFACE",
]

"""Push-model event channels (CosEvents/CosNotification flavour).

One channel exists per event *kind* produced by a component (§2.1.2).
Suppliers push an ``any``; the channel fans it out to every connected
push consumer with oneway calls.  Consumers implement the
``PushConsumer`` interface (a single ``push(any)`` operation).
"""

from __future__ import annotations

from repro.orb.cdr import Any
from repro.orb.core import InterfaceDef, ORB, Servant, op
from repro.orb.exceptions import BAD_PARAM
from repro.orb.ior import IOR
from repro.orb.typecodes import sequence_tc, tc_any, tc_objref, tc_string

PUSH_CONSUMER_IFACE = InterfaceDef(
    "IDL:omg.org/CosEventComm/PushConsumer:1.0",
    "PushConsumer",
    operations=[
        op("push", [("data", tc_any)], oneway=True),
    ],
)

EVENT_CHANNEL_IFACE = InterfaceDef(
    "IDL:omg.org/CosEventChannelAdmin/EventChannel:1.0",
    "EventChannel",
    operations=[
        op("connect_push_consumer", [("consumer", tc_objref)]),
        op("disconnect_push_consumer", [("consumer", tc_objref)]),
        op("push", [("data", tc_any)], oneway=True),
        op("consumer_count", [], result=tc_string),
    ],
)


class EventChannelServant(Servant):
    """Fan-out hub for one event kind."""

    _interface = EVENT_CHANNEL_IFACE

    def __init__(self, orb: ORB, kind: str = "") -> None:
        self.orb = orb
        self.kind = kind
        self._consumers: list[IOR] = []
        self.delivered = 0

    def connect_push_consumer(self, consumer) -> None:
        if consumer is None:
            raise BAD_PARAM("nil consumer reference")
        if consumer not in self._consumers:
            self._consumers.append(consumer)

    def disconnect_push_consumer(self, consumer) -> None:
        try:
            self._consumers.remove(consumer)
        except ValueError:
            pass

    def push(self, data) -> None:
        push_op = PUSH_CONSUMER_IFACE.operations["push"]
        for consumer in list(self._consumers):
            self.orb.invoke(consumer, push_op, (data,))
            self.delivered += 1

    def consumer_count(self) -> str:
        # Returned as a string to keep the interface tiny; callers parse.
        return str(len(self._consumers))


class CallbackPushConsumer(Servant):
    """A PushConsumer servant delivering events to a Python callable."""

    _interface = PUSH_CONSUMER_IFACE

    def __init__(self, callback) -> None:
        self._callback = callback
        self.received: int = 0

    def push(self, data: Any) -> None:
        self.received += 1
        self._callback(data)

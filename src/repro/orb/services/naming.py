"""A CosNaming-flavoured naming service.

Names are ``/``-separated paths bound to stringified IORs.  The service
is an ordinary servant, so looking up a name is a remote invocation with
real marshalling cost — exactly like resolving against a CosNaming
context.
"""

from __future__ import annotations

from repro.orb.core import InterfaceDef, Servant, make_exception_class, op
from repro.orb.typecodes import (
    except_tc,
    sequence_tc,
    tc_objref,
    tc_string,
)

_NOT_FOUND_TC = except_tc(
    "NotFound", [("rest_of_name", tc_string)],
    repo_id="IDL:omg.org/CosNaming/NamingContext/NotFound:1.0",
)
_ALREADY_BOUND_TC = except_tc(
    "AlreadyBound", [("name", tc_string)],
    repo_id="IDL:omg.org/CosNaming/NamingContext/AlreadyBound:1.0",
)

NotFound = make_exception_class("NotFound", _NOT_FOUND_TC)
AlreadyBound = make_exception_class("AlreadyBound", _ALREADY_BOUND_TC)

NAMING_IFACE = InterfaceDef(
    "IDL:omg.org/CosNaming/NamingContext:1.0",
    "NamingContext",
    operations=[
        op("bind", [("name", tc_string), ("obj", tc_objref)],
           raises=[_ALREADY_BOUND_TC]),
        op("rebind", [("name", tc_string), ("obj", tc_objref)]),
        op("resolve", [("name", tc_string)], tc_objref,
           raises=[_NOT_FOUND_TC]),
        op("unbind", [("name", tc_string)], raises=[_NOT_FOUND_TC]),
        op("list", [("prefix", tc_string)], sequence_tc(tc_string)),
    ],
)


class NamingServant(Servant):
    """In-memory name -> object-reference table."""

    _interface = NAMING_IFACE

    def __init__(self) -> None:
        self._bindings: dict[str, object] = {}

    def bind(self, name: str, obj) -> None:
        if name in self._bindings:
            raise AlreadyBound(name)
        self._bindings[name] = obj

    def rebind(self, name: str, obj) -> None:
        self._bindings[name] = obj

    def resolve(self, name: str):
        try:
            return self._bindings[name]
        except KeyError:
            raise NotFound(name) from None

    def unbind(self, name: str) -> None:
        try:
            del self._bindings[name]
        except KeyError:
            raise NotFound(name) from None

    def list(self, prefix: str) -> list[str]:
        return sorted(n for n in self._bindings if n.startswith(prefix))

"""CORBA exception model: system exceptions and user exceptions.

System exceptions mirror the standard CORBA minor-code/completion-status
shape; user exceptions are IDL-declared and marshalled by repository id.
"""

from __future__ import annotations

from repro.util.errors import ReproError

# Completion status values (CORBA::CompletionStatus).
COMPLETED_YES = 0
COMPLETED_NO = 1
COMPLETED_MAYBE = 2

_STATUS_NAMES = {COMPLETED_YES: "YES", COMPLETED_NO: "NO", COMPLETED_MAYBE: "MAYBE"}

# Minor codes carried by system exceptions so clients can distinguish
# mechanically-different causes of the same exception type.
#: TRANSIENT: the server's admission controller shed the request.
MINOR_SHED = 1
#: TRANSIENT: the client-side circuit breaker is open; no wire traffic
#: was generated for this attempt.
MINOR_BREAKER_OPEN = 2


class SystemException(ReproError):
    """Base of the CORBA standard system exceptions."""

    def __init__(self, reason: str = "", minor: int = 0,
                 completed: int = COMPLETED_NO) -> None:
        super().__init__(reason)
        self.reason = reason
        self.minor = minor
        self.completed = completed

    @property
    def repo_id(self) -> str:
        return f"IDL:omg.org/CORBA/{type(self).__name__}:1.0"

    def __str__(self) -> str:
        status = _STATUS_NAMES.get(self.completed, "?")
        base = f"{type(self).__name__}(minor={self.minor}, completed={status})"
        return f"{base}: {self.reason}" if self.reason else base


class UNKNOWN(SystemException):
    """The server raised something that is not a declared exception."""


class BAD_PARAM(SystemException):
    """An invalid parameter was passed."""


class BAD_OPERATION(SystemException):
    """The operation does not exist on the target interface."""


class NO_IMPLEMENT(SystemException):
    """The operation exists but is not implemented by the servant."""


class COMM_FAILURE(SystemException):
    """Communication was lost while the request was in flight."""


class OBJECT_NOT_EXIST(SystemException):
    """The object denoted by the reference has been destroyed."""


class TRANSIENT(SystemException):
    """The request could not be delivered; retrying may succeed."""


class TIMEOUT(SystemException):
    """The client-imposed deadline expired before a reply arrived."""


class INV_OBJREF(SystemException):
    """The object reference is malformed."""


class MARSHAL(SystemException):
    """A request or reply could not be (un)marshalled.

    Every decode-time defect — underflows, oversized counts, invalid
    UTF-8, unknown tags — surfaces as MARSHAL, never as a raw Python
    exception: a corrupted wire must not be able to crash an ORB.
    """


class NO_RESOURCES(SystemException):
    """The target lacks the resources to honour the request."""


class INTERNAL(SystemException):
    """ORB-internal inconsistency."""


#: repo-id -> class, for unmarshalling replies.
SYSTEM_EXCEPTIONS: dict[str, type[SystemException]] = {
    cls().repo_id: cls
    for cls in (
        UNKNOWN, BAD_PARAM, BAD_OPERATION, NO_IMPLEMENT, COMM_FAILURE,
        OBJECT_NOT_EXIST, TRANSIENT, TIMEOUT, INV_OBJREF, NO_RESOURCES,
        INTERNAL, MARSHAL,
    )
}


class UserException(ReproError):
    """Base of IDL-declared exceptions.

    Subclasses set ``REPO_ID`` and ``FIELDS`` (tuple of member names);
    the IDL compiler generates such subclasses, and hand-written service
    code can declare them directly.
    """

    REPO_ID: str = "IDL:repro/UserException:1.0"
    FIELDS: tuple[str, ...] = ()

    def __init__(self, *args, **kwargs) -> None:
        names = list(self.FIELDS)
        if len(args) > len(names):
            raise TypeError(
                f"{type(self).__name__} takes at most {len(names)} args"
            )
        values = dict(zip(names, args))
        for key, val in kwargs.items():
            if key not in names:
                raise TypeError(f"unexpected field {key!r}")
            if key in values:
                raise TypeError(f"duplicate field {key!r}")
            values[key] = val
        for name in names:
            setattr(self, name, values.get(name))
        super().__init__(
            ", ".join(f"{n}={values.get(n)!r}" for n in names)
        )

    def field_values(self) -> list:
        return [getattr(self, n) for n in self.FIELDS]

"""Distributed tracing over the simulated ORB.

One logical call — client process, server dispatch, nested calls the
servant makes, retries of failed attempts — becomes one *trace*: a set
of :class:`Span` records linked parent-to-child by span ids and stamped
with simulated time.  Trace context crosses the wire in the GIOP
service-context slots (:data:`TRACE_ID_KEY` / :data:`SPAN_ID_KEY`) and
crosses *process* boundaries inside one host through the
:class:`ContextStore`, which binds a context to the simulation process
that is currently executing on behalf of the call.

Ids are drawn from per-tracer counters, so a given simulation produces
an identical trace set on every run (the determinism rule of
:mod:`repro.sim.kernel` extends to observability).
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass
from typing import Any, Optional

#: GIOP service-context slot names used for propagation.
TRACE_ID_KEY = "trace-id"
SPAN_ID_KEY = "span-id"


@dataclass(frozen=True)
class TraceContext:
    """The propagated part of a span: enough to parent a child span."""

    trace_id: str
    span_id: str


class Span:
    """One timed operation within a trace."""

    __slots__ = ("trace_id", "span_id", "parent_id", "name", "kind",
                 "host", "start", "end", "status", "error", "attrs")

    def __init__(self, trace_id: str, span_id: str,
                 parent_id: Optional[str], name: str, kind: str,
                 host: Optional[str], start: float) -> None:
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        #: "client", "server" or "internal" (retry envelopes etc.).
        self.kind = kind
        self.host = host
        self.start = start
        self.end: Optional[float] = None
        self.status = "open"
        self.error: Optional[str] = None
        self.attrs: dict[str, Any] = {}

    @property
    def context(self) -> TraceContext:
        return TraceContext(self.trace_id, self.span_id)

    @property
    def finished(self) -> bool:
        return self.end is not None

    @property
    def duration(self) -> float:
        if self.end is None:
            raise RuntimeError(f"span {self.span_id} not finished")
        return self.end - self.start

    def __repr__(self) -> str:
        return (f"<Span {self.span_id} {self.name} [{self.kind}] "
                f"{self.status}>")


class Tracer:
    """Creates, finishes and stores spans for one simulation."""

    def __init__(self, env) -> None:
        self.env = env
        self.spans: list[Span] = []
        self._next_trace = 0
        self._next_span = 0

    def start_span(self, name: str, kind: str = "internal",
                   parent: Optional[TraceContext] = None,
                   host: Optional[str] = None,
                   attrs: Optional[dict] = None) -> Span:
        """Open a span; a new trace is started when *parent* is None."""
        if parent is None:
            self._next_trace += 1
            trace_id = f"t{self._next_trace:06d}"
            parent_id = None
        else:
            trace_id = parent.trace_id
            parent_id = parent.span_id
        self._next_span += 1
        span = Span(trace_id, f"s{self._next_span:06d}", parent_id,
                    name, kind, host, self.env.now)
        if attrs:
            span.attrs.update(attrs)
        self.spans.append(span)
        return span

    def end_span(self, span: Span, status: str = "ok",
                 error: Optional[str] = None) -> None:
        if span.end is not None:
            return
        span.end = self.env.now
        span.status = status
        span.error = error

    # -- queries -----------------------------------------------------------
    def traces(self) -> dict[str, list[Span]]:
        """Spans grouped by trace id, in creation order."""
        out: dict[str, list[Span]] = {}
        for span in self.spans:
            out.setdefault(span.trace_id, []).append(span)
        return out

    def trace_is_connected(self, trace_id: str) -> bool:
        """True when every non-root span's parent is in the same trace."""
        spans = [s for s in self.spans if s.trace_id == trace_id]
        ids = {s.span_id for s in spans}
        return bool(spans) and all(
            s.parent_id is None or s.parent_id in ids for s in spans
        )


class ContextStore:
    """Trace context bound to simulation processes.

    The kernel is single-threaded but interleaves many processes; a
    global "current context" would leak across unrelated calls.  The
    store keys contexts by :class:`~repro.sim.kernel.Process` instead
    (weakly, so finished processes do not accumulate), and the lookup
    asks the environment which process is executing right now.
    """

    def __init__(self) -> None:
        self._by_proc: "weakref.WeakKeyDictionary[Any, TraceContext]" = (
            weakref.WeakKeyDictionary())

    def bind(self, process, ctx: Optional[TraceContext]
             ) -> Optional[TraceContext]:
        """Bind *ctx* to *process*; returns the previous binding."""
        if process is None:
            return None
        prev = self._by_proc.get(process)
        if ctx is None:
            self._by_proc.pop(process, None)
        else:
            self._by_proc[process] = ctx
        return prev

    def current(self, env) -> Optional[TraceContext]:
        """Context of the process executing right now, if any."""
        proc = env.active_process
        if proc is None:
            return None
        return self._by_proc.get(proc)

"""Declared metric and span names — the single source of truth.

Every metric or span name the system emits is declared here, either
exactly (:data:`METRIC_NAMES`, :data:`SPAN_NAMES`) or as a family
pattern with ``*`` standing for a dynamic segment
(:data:`METRIC_PATTERNS`, e.g. ``chaos.action.*``).  The simlint
SIM030/SIM031 rules hold every emit-site string literal to this
registry at analysis time, and :func:`undeclared_metrics` /
:func:`undeclared_spans` let tests assert the same containment on a
*live* run — together they make name drift (a typo'd counter silently
splitting a series) a lint error instead of a dashboard mystery.

High-traffic emit sites import their names from here rather than
repeating the literal; single definition points cannot drift.  The
registry deliberately stays a plain module of frozensets: importable
by the analyzer without pulling in simulation machinery.
"""

from __future__ import annotations

from fnmatch import fnmatchcase

# -- constants for converted high-traffic emit sites ----------------------

# deployment/supervisor.py
SUPERVISOR_CHECKPOINTS = "supervisor.checkpoints"
SUPERVISOR_CHECKPOINTS_CORRUPT = "supervisor.checkpoints.corrupt"
SUPERVISOR_ORPHANS_SWEPT = "supervisor.orphans_swept"
SUPERVISOR_PROMOTIONS = "supervisor.promotions"
SUPERVISOR_RECOVERIES = "supervisor.recoveries"
SUPERVISOR_RECOVERY_DEFERRED = "supervisor.recovery.deferred"
SUPERVISOR_REPAIR_FENCED = "supervisor.repair.fenced"
SUPERVISOR_STRANDED = "supervisor.stranded"
SPAN_SUPERVISOR_PROMOTE = "supervisor.promote"
SPAN_SUPERVISOR_RECOVER = "supervisor.recover"

# orb/core.py
ORB_BAD_MESSAGES = "orb.bad_messages"
ORB_DISPATCHES = "orb.dispatches"
ORB_LATE_REPLIES = "orb.late_replies"
ORB_ONEWAYS = "orb.oneways"
ORB_PIPELINE_FLUSHES = "orb.pipeline.flushes"
ORB_PIPELINE_FRAMES = "orb.pipeline.frames"
ORB_REPLIES = "orb.replies"
ORB_REQUESTS = "orb.requests"
ORB_SERVANT_ERRORS = "orb.servant_errors"
ORB_SHED = "orb.shed"
ORB_SHED_ONEWAY = "orb.shed.oneway"
ORB_TIMEOUTS = "orb.timeouts"

# registry/federation/
FEDERATION_EPOCH_CLAMPED = "federation.epoch_clamped"
FEDERATION_LOOKUP_FAILOVER = "federation.lookup.failover"
FEDERATION_LOOKUP_FLOOD_FALLBACK = "federation.lookup.flood_fallback"
FEDERATION_LOOKUP_RING_FALLBACK = "federation.lookup.ring_fallback"
FEDERATION_REJECTED_UNKNOWN_HOST = "federation.rejected.unknown_host"
FEDERATION_ROUNDS = "federation.rounds"

# events/
BUS_DELIVERED = "bus.delivered"
BUS_NO_SUBSCRIBER = "bus.no_subscriber"
BUS_PUBLISHED = "bus.published"
BUS_REMOTE_BATCHES = "bus.remote.batches"
BUS_REMOTE_ERRORS = "bus.remote.errors"
BUS_REMOTE_EVENTS = "bus.remote.events"
BUS_REMOTE_SUPPRESSED = "bus.remote.suppressed"

#: exact metric names (counters, series, histograms, labelled
#: families) the system may emit.
METRIC_NAMES: frozenset[str] = frozenset({
    # aggregation / grid
    "aggregation.reruns",
    "aggregation.runs",
    "volunteer.registrations",
    "volunteer.requeues",
    # analysis gate
    "analysis.rejected",
    # load balancing / migration
    "balance.failures",
    "balance.migrations",
    "migration.completed",
    "migration.package_bytes",
    "migration.rollbacks",
    "migration.started",
    # circuit breakers / retries
    "breaker.closed",
    "breaker.fast_fails",
    "breaker.half_open",
    "breaker.opened",
    "orb.retries",
    "orb.retries.shed",
    # chaos
    "chaos.actions",
    "chaos.heals",
    "chaos.skipped",
    "chaos.violations",
    # deployment
    "deploy.applications",
    "deploy.packages_shipped",
    SUPERVISOR_CHECKPOINTS,
    SUPERVISOR_CHECKPOINTS_CORRUPT,
    SUPERVISOR_ORPHANS_SWEPT,
    SUPERVISOR_PROMOTIONS,
    SUPERVISOR_RECOVERIES,
    SUPERVISOR_RECOVERY_DEFERRED,
    SUPERVISOR_REPAIR_FENCED,
    SUPERVISOR_STRANDED,
    "supervisor.recovery.latency",
    # events
    BUS_DELIVERED,
    BUS_NO_SUBSCRIBER,
    BUS_PUBLISHED,
    BUS_REMOTE_BATCHES,
    BUS_REMOTE_ERRORS,
    BUS_REMOTE_EVENTS,
    BUS_REMOTE_SUPPRESSED,
    # federation
    FEDERATION_EPOCH_CLAMPED,
    FEDERATION_LOOKUP_FAILOVER,
    FEDERATION_LOOKUP_FLOOD_FALLBACK,
    FEDERATION_LOOKUP_RING_FALLBACK,
    FEDERATION_REJECTED_UNKNOWN_HOST,
    FEDERATION_ROUNDS,
    # network
    "net.bytes",
    "net.bytes.backbone",
    "net.corrupted.bitflip",
    "net.corrupted.duplicate",
    "net.corrupted.reorder",
    "net.corrupted.truncate",
    "net.delivered",
    "net.dropped.dst_dead",
    "net.dropped.link_down",
    "net.dropped.loss",
    "net.dropped.src_dead",
    "net.dropped.unknown_dst",
    "net.dropped.unreachable",
    "net.hops",
    "net.link_bytes",
    "net.local",
    "net.logical",
    "net.messages",
    "net.unrouted",
    # node / orb
    "node.component_requests",
    ORB_BAD_MESSAGES,
    ORB_DISPATCHES,
    ORB_LATE_REPLIES,
    ORB_ONEWAYS,
    ORB_PIPELINE_FLUSHES,
    ORB_PIPELINE_FRAMES,
    ORB_REPLIES,
    ORB_REQUESTS,
    ORB_SERVANT_ERRORS,
    ORB_SHED,
    ORB_SHED_ONEWAY,
    ORB_TIMEOUTS,
    "orb.pending.depth",
    "orb.dispatch.depth",
    # registry
    "registry.promotions",
    "registry.queries.served",
    "replication.groups",
    "replication.promotions",
    "replication.syncs",
    "resolver.closure_installs",
    "resolver.fetched",
    "resolver.local_hits",
    "resolver.mrm_failover",
    "resolver.remote_instances",
    "resolver.requests",
    "resolver.reused_running",
})

#: metric name families with ``*`` for a dynamic segment.
METRIC_PATTERNS: frozenset[str] = frozenset({
    # per-meter traffic accounting (softstate/strongstate/query/...)
    "*.bytes",
    "*.msgs",
    "*.errors",
    # worker pools and batch writers are instantiated per name
    "*.dropped",
    "*.flushed",
    "*.flushes",
    "*.handled",
    # request-path latency/size histograms (per subsystem / operation)
    "*.latency",
    "orb.client.latency.*",
    "orb.client.reply_bytes.*",
    "orb.client.request_bytes.*",
    "orb.server.latency.*",
    # per-state / per-operation / per-kind counter families
    "breaker.*",
    "chaos.action.*",
    "orb.client.errors.*",
    "orb.retries.*",
    "orb.server.errors.*",
})

#: exact span labels.
SPAN_NAMES: frozenset[str] = frozenset({
    SPAN_SUPERVISOR_PROMOTE,
    SPAN_SUPERVISOR_RECOVER,
})

#: span label families with ``*`` for a dynamic segment.
SPAN_PATTERNS: frozenset[str] = frozenset({
    "breaker:*->*",
    "call:*",
    "chaos:*",
    "retry:*",
    "serve:*",
})


def metric_declared(name: str) -> bool:
    """Is *name* (a literal, or a ``*``-canonical pattern) declared?"""
    if "*" in name:
        return name in METRIC_PATTERNS
    return name in METRIC_NAMES or any(
        fnmatchcase(name, pattern) for pattern in METRIC_PATTERNS)


def span_declared(name: str) -> bool:
    if "*" in name:
        return name in SPAN_PATTERNS
    return name in SPAN_NAMES or any(
        fnmatchcase(name, pattern) for pattern in SPAN_PATTERNS)


def undeclared_metrics(registry) -> set[str]:
    """Names a live :class:`~repro.sim.stats.MetricRegistry` holds
    that are not declared here — for runtime-containment tests."""
    emitted: set[str] = set()
    emitted.update(registry._counters)
    emitted.update(registry._series)
    emitted.update(registry._histograms)
    emitted.update(registry._labelled)
    return {name for name in emitted if not metric_declared(name)}


def undeclared_spans(tracer) -> set[str]:
    """Span names a live tracer recorded that are not declared here."""
    out: set[str] = set()
    for trace in tracer.traces().values():
        for span in trace:
            if not span_declared(span.name):
                out.add(span.name)
    return out

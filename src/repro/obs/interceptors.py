"""Tracing and metrics request interceptors.

These are the concrete implementations the ORB's portable-interceptor
hook points were made for: :class:`TracingInterceptor` builds causally
linked spans (propagating context through the GIOP service context and
the per-process :class:`~repro.obs.trace.ContextStore`), and
:class:`MetricsInterceptor` feeds the log-bucket histograms that the
``obs_report`` tool summarizes.
"""

from __future__ import annotations

from repro.obs.trace import SPAN_ID_KEY, TRACE_ID_KEY, TraceContext

#: histogram shapes: latency in sim-seconds from 1 µs up, sizes in
#: bytes from 16 B up.  Fixed across the whole fleet so per-operation
#: histograms are comparable.
LATENCY_BUCKETS = dict(lo=1e-6, growth=2.0, buckets=40)
SIZE_BUCKETS = dict(lo=16.0, growth=2.0, buckets=28)


def _error_label(exc: BaseException) -> str:
    repo_id = getattr(exc, "repo_id", None) or getattr(exc, "REPO_ID", None)
    return repo_id or type(exc).__name__


class TracingInterceptor:
    """Client + server interceptor producing one span per call leg."""

    def __init__(self, hub) -> None:
        self.hub = hub

    # -- client side -------------------------------------------------------
    def send_request(self, info) -> None:
        hub = self.hub
        parent = hub.context.current(info.orb.env)
        span = hub.tracer.start_span(
            f"call:{info.operation}", kind="client", parent=parent,
            host=info.orb.host_id,
            attrs={"peer": info.ior.host_id,
                   "request_id": info.request_id,
                   "oneway": info.oneway})
        info.service_context[TRACE_ID_KEY] = span.trace_id
        info.service_context[SPAN_ID_KEY] = span.span_id
        info.slots["span"] = span

    def receive_reply(self, info) -> None:
        span = info.slots.get("span")
        if span is not None:
            span.attrs["bytes_out"] = info.request_bytes
            span.attrs["bytes_in"] = info.reply_bytes
            self.hub.tracer.end_span(span, status="ok")

    def receive_exception(self, info, exc) -> None:
        span = info.slots.get("span")
        if span is not None:
            span.attrs["bytes_out"] = info.request_bytes
            self.hub.tracer.end_span(span, status="error",
                                     error=_error_label(exc))

    # -- server side -------------------------------------------------------
    def receive_request(self, info) -> None:
        hub = self.hub
        trace_id = info.service_context.get(TRACE_ID_KEY)
        span_id = info.service_context.get(SPAN_ID_KEY)
        parent = (TraceContext(trace_id, span_id)
                  if trace_id and span_id else None)
        span = hub.tracer.start_span(
            f"serve:{info.operation}", kind="server", parent=parent,
            host=info.orb.host_id,
            attrs={"client": info.client, "bytes_in": info.request_bytes})
        info.slots["span"] = span
        info.slots["prev_ctx"] = hub.context.bind(info.process,
                                                  span.context)

    def child_process(self, info, proc) -> None:
        # Servant generators run as nested processes; calls they make
        # must parent under this dispatch's server span.
        span = info.slots.get("span")
        if span is not None:
            self.hub.context.bind(proc, span.context)

    def finish_request(self, info) -> None:
        hub = self.hub
        span = info.slots.get("span")
        if span is not None:
            span.attrs["bytes_out"] = info.reply_bytes
            if info.exception is not None:
                hub.tracer.end_span(span, status="error",
                                    error=_error_label(info.exception))
            else:
                hub.tracer.end_span(span, status="ok")
        hub.context.bind(info.process, info.slots.get("prev_ctx"))


class MetricsInterceptor:
    """Client + server interceptor recording per-operation histograms."""

    def __init__(self, hub) -> None:
        self.metrics = hub.metrics

    def _latency(self, name: str):
        return self.metrics.histogram(name, **LATENCY_BUCKETS)

    def _size(self, name: str):
        return self.metrics.histogram(name, **SIZE_BUCKETS)

    # -- client side -------------------------------------------------------
    def send_request(self, info) -> None:
        pass

    def _record_client(self, info) -> None:
        operation = info.operation
        self._size(f"orb.client.request_bytes.{operation}").record(
            info.request_bytes)
        if not info.oneway:
            self._latency(f"orb.client.latency.{operation}").record(
                info.latency)
            if info.reply_bytes:
                self._size(f"orb.client.reply_bytes.{operation}").record(
                    info.reply_bytes)
            # oneway sends complete instantly; a 0-latency sample would
            # only distort the meter's percentiles.
            if info.meter is not None:
                self._latency(f"{info.meter}.latency").record(info.latency)

    def receive_reply(self, info) -> None:
        self._record_client(info)

    def receive_exception(self, info, exc) -> None:
        self._record_client(info)
        self.metrics.counter(
            f"orb.client.errors.{info.operation}").inc()
        if info.meter is not None:
            self.metrics.counter(f"{info.meter}.errors").inc()

    # -- server side -------------------------------------------------------
    def receive_request(self, info) -> None:
        pass

    def finish_request(self, info) -> None:
        operation = info.operation
        self._latency(f"orb.server.latency.{operation}").record(
            info.latency)
        if info.exception is not None:
            self.metrics.counter(
                f"orb.server.errors.{operation}").inc()

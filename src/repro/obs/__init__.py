"""Observability: request tracing, latency/size histograms, reports.

The paper's soft-vs-strong consistency argument (§2.4.3) is a claim
about *measured* bandwidth and latency; this package is the measuring
instrument.  One :class:`Observability` hub per simulation owns a
:class:`~repro.obs.trace.Tracer`, a per-process
:class:`~repro.obs.trace.ContextStore` and the interceptor pair, and
installs them on any number of ORBs:

    rig = SimRig(star(8))
    hub = rig.observe()            # instruments every node's ORB
    ... run the scenario ...
    from repro.tools.obs_report import build_report, render_text
    print(render_text(build_report(hub)))

Everything is simulated-time and seeded-RNG based, so instrumented
runs stay deterministic; uninstrumented ORBs pay nothing (the hook
points are skipped when no interceptor is registered).
"""

from __future__ import annotations

from repro.obs.interceptors import MetricsInterceptor, TracingInterceptor
from repro.obs.trace import (
    ContextStore,
    SPAN_ID_KEY,
    Span,
    TRACE_ID_KEY,
    TraceContext,
    Tracer,
)

__all__ = [
    "ContextStore",
    "MetricsInterceptor",
    "Observability",
    "SPAN_ID_KEY",
    "Span",
    "TRACE_ID_KEY",
    "TraceContext",
    "Tracer",
    "TracingInterceptor",
]

#: metric name of the per-ORB pending-reply-table depth time series.
PENDING_DEPTH_SERIES = "orb.pending.depth"

#: metric name of the per-ORB inbound-dispatch depth (admission gauge).
DISPATCH_DEPTH_SERIES = "orb.dispatch.depth"

#: histogram of detection-to-recovered latency per supervisor recovery.
RECOVERY_LATENCY_HIST = "supervisor.recovery.latency"


class Observability:
    """One hub per simulation: tracer + context store + interceptors."""

    def __init__(self, env, metrics) -> None:
        self.env = env
        self.metrics = metrics
        self.tracer = Tracer(env)
        self.context = ContextStore()
        self.tracing = TracingInterceptor(self)
        self.metrics_interceptor = MetricsInterceptor(self)
        self.orbs: list = []

    def install(self, orb) -> None:
        """Instrument *orb* with tracing, metrics and a pending gauge."""
        if orb in self.orbs:
            return
        orb.obs = self
        orb.add_client_interceptor(self.tracing)
        orb.add_client_interceptor(self.metrics_interceptor)
        orb.add_server_interceptor(self.tracing)
        orb.add_server_interceptor(self.metrics_interceptor)
        depth_series = self.metrics.series(PENDING_DEPTH_SERIES)
        orb.pending_watchers.append(
            lambda depth: depth_series.record(self.env.now, depth))
        dispatch_series = self.metrics.series(DISPATCH_DEPTH_SERIES)
        orb.dispatch_watchers.append(
            lambda depth: dispatch_series.record(self.env.now, depth))
        self.orbs.append(orb)

    def install_node(self, node) -> None:
        self.install(node.orb)

    def install_fleet(self, nodes) -> None:
        """Instrument every node in a dict or iterable of nodes."""
        values = nodes.values() if hasattr(nodes, "values") else nodes
        for node in values:
            self.install_node(node)

    def span(self, name: str, parent=None, host=None, attrs=None):
        """Open an internal span for a framework activity (recovery,
        promotion, sweep); the caller ends it via ``tracer.end_span``."""
        return self.tracer.start_span(name, kind="internal",
                                      parent=parent, host=host,
                                      attrs=attrs)

    def traces(self):
        return self.tracer.traces()

"""The Display component: local painting functions (Fig. 2).

"Each GUI component is in charge of a portion of the window ... GUI
components ... use the local Display component providing painting
functions."  The display is **pinned** — it abstracts the host's frame
buffer, so it can never migrate; everyone else calls it remotely or
locally through its ``graphics`` facet.
"""

from __future__ import annotations

from repro.components.executor import ComponentExecutor
from repro.idl import compile_idl
from repro.orb.core import Servant
from repro.packaging.binaries import GLOBAL_BINARIES, synthetic_payload
from repro.packaging.package import ComponentPackage, PackageBuilder
from repro.xmlmeta.descriptors import (
    ComponentTypeDescriptor,
    ImplementationDescriptor,
    PortDecl,
    QoSSpec,
    SoftwareDescriptor,
)
from repro.xmlmeta.versions import Version

_DISPLAY_IDL = """
#pragma prefix "corbalc"
module Cscw {
  interface Display {
    // Vector drawing: small wire footprint.
    void draw(in string window, in string primitive);
    // Raster delivery: the pixels cross the wire (big).
    void blit(in string window, in sequence<octet> pixels);
    long drawn_count();
    long blitted_bytes();
  };
};
"""

DISPLAY_IFACE = compile_idl(_DISPLAY_IDL).Cscw.Display

#: Painting costs a little CPU per call.
_DRAW_COST = 0.05


class _DisplayFacet(Servant):
    _interface = DISPLAY_IFACE

    def __init__(self, executor: "DisplayExecutor") -> None:
        self._executor = executor

    def draw(self, window: str, primitive: str) -> None:
        ex = self._executor
        ex.drawn += 1
        ex.windows.setdefault(window, []).append(primitive)

    def blit(self, window: str, pixels: bytes):
        ex = self._executor
        if ex.context is not None:
            yield ex.context.charge_cpu(_DRAW_COST)
        ex.drawn += 1
        ex.blitted += len(pixels)
        ex.windows.setdefault(window, []).append(f"<blit {len(pixels)}B>")

    def drawn_count(self) -> int:
        return self._executor.drawn

    def blitted_bytes(self) -> int:
        return self._executor.blitted


class DisplayExecutor(ComponentExecutor):
    """Frame-buffer stand-in: counts what was painted per window."""

    def __init__(self) -> None:
        super().__init__()
        self.drawn = 0
        self.blitted = 0
        self.windows: dict[str, list[str]] = {}

    def create_facet(self, port_name: str) -> Servant:
        assert port_name == "graphics"
        return _DisplayFacet(self)


def display_package(version: str = "1.0.0",
                    multi_platform: bool = False) -> ComponentPackage:
    """Package for the Display component (pinned, tiny footprint).

    With ``multi_platform=True`` the package carries separate binaries
    per platform (the §2.3 "same component ... Windows DLL, a Java
    .class file, and a TCL script" case), so
    :meth:`~repro.packaging.package.ComponentPackage.extract_subset`
    has something real to strip for a PDA.
    """
    entry = "cscw.display"
    GLOBAL_BINARIES.register(entry, DisplayExecutor)
    if multi_platform:
        impls = [
            ImplementationDescriptor("linux", "x86", "corba-lc", entry,
                                     "bin/linux-x86/display"),
            ImplementationDescriptor("win32", "x86", "corba-lc", entry,
                                     "bin/win32-x86/display"),
            ImplementationDescriptor("palmos", "arm", "corba-lc-micro",
                                     entry, "bin/palmos-arm/display"),
        ]
        binaries = {
            "bin/linux-x86/display": synthetic_payload(60_000, seed=21),
            "bin/win32-x86/display": synthetic_payload(80_000, seed=26),
            "bin/palmos-arm/display": synthetic_payload(6_000, seed=27),
        }
    else:
        impls = [ImplementationDescriptor("*", "*", "*", entry,
                                          "bin/any/display")]
        binaries = {"bin/any/display": synthetic_payload(3_000, seed=21)}
    soft = SoftwareDescriptor(
        name="Display", version=Version.parse(version), vendor="cscw",
        abstract="Local painting functions (frame buffer facade).",
        mobility="pinned",
        implementations=impls,
    )
    comp = ComponentTypeDescriptor(
        name="Display",
        provides=[PortDecl("graphics", DISPLAY_IFACE.repo_id)],
        # Cheap enough for a PDA: tiny devices drive their own screens.
        qos=QoSSpec(cpu_units=5.0, memory_mb=2.0),
        lifecycle="service",
    )
    builder = PackageBuilder(soft, comp)
    builder.add_idl("display", _DISPLAY_IDL)
    for path, payload in binaries.items():
        builder.add_binary(path, payload)
    return ComponentPackage(builder.build())

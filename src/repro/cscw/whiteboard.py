"""Shared whiteboard: model component + replaceable GUI parts (Fig. 2).

The whiteboard model holds the shared stroke list and emits one
``cscw.stroke`` event per change; GUI-part components subscribe to the
stream and render their portion of the application window through the
(local or remote) Display.  "Applications can change how the data is
shown by replacing the GUI components with others at run-time" — GUI
parts come in two render styles to exercise exactly that.
"""

from __future__ import annotations

from repro.components.executor import ComponentExecutor, StatefulMixin
from repro.cscw.display import DISPLAY_IFACE
from repro.idl import compile_idl
from repro.orb.core import Servant
from repro.packaging.binaries import GLOBAL_BINARIES, synthetic_payload
from repro.packaging.package import ComponentPackage, PackageBuilder
from repro.xmlmeta.descriptors import (
    ComponentTypeDescriptor,
    EventPortDecl,
    ImplementationDescriptor,
    PortDecl,
    QoSSpec,
    SoftwareDescriptor,
)
from repro.xmlmeta.versions import Version

_SURFACE_IDL = """
#pragma prefix "corbalc"
module Cscw {
  struct Stroke {
    string author;
    double x0; double y0; double x1; double y1;
    string color;
  };
  interface Surface {
    void add_stroke(in Stroke s);
    sequence<Stroke> strokes();
    void clear();
    long revision();
  };
};
"""

_mod = compile_idl(_SURFACE_IDL).Cscw
SURFACE_IFACE = _mod.Surface
STROKE_TC = _mod.Stroke

STROKE_EVENT = "cscw.stroke"


class _SurfaceFacet(Servant):
    _interface = SURFACE_IFACE

    def __init__(self, executor: "WhiteboardExecutor") -> None:
        self._executor = executor

    def add_stroke(self, stroke: dict) -> None:
        ex = self._executor
        ex.stroke_list.append(stroke)
        ex.rev += 1
        if ex.context is not None:
            from repro.orb.cdr import Any
            ex.context.emit("changes", Any(STROKE_TC, stroke))

    def strokes(self) -> list[dict]:
        return list(self._executor.stroke_list)

    def clear(self) -> None:
        self._executor.stroke_list.clear()
        self._executor.rev += 1

    def revision(self) -> int:
        return self._executor.rev


class WhiteboardExecutor(StatefulMixin, ComponentExecutor):
    """The shared model: stroke list + change events."""

    STATE_ATTRS = ("stroke_list", "rev")

    def __init__(self) -> None:
        super().__init__()
        self.stroke_list: list[dict] = []
        self.rev = 0

    def create_facet(self, port_name: str) -> Servant:
        assert port_name == "surface"
        return _SurfaceFacet(self)


def whiteboard_package(version: str = "1.0.0") -> ComponentPackage:
    entry = "cscw.whiteboard"
    GLOBAL_BINARIES.register(entry, WhiteboardExecutor)
    soft = SoftwareDescriptor(
        name="Whiteboard", version=Version.parse(version), vendor="cscw",
        abstract="Shared stroke model with change events.",
        mobility="mobile", replication="coordinated",
        implementations=[ImplementationDescriptor(
            "*", "*", "*", entry, "bin/any/whiteboard")],
    )
    comp = ComponentTypeDescriptor(
        name="Whiteboard",
        provides=[PortDecl("surface", SURFACE_IFACE.repo_id)],
        emits=[EventPortDecl("changes", STROKE_EVENT)],
        qos=QoSSpec(cpu_units=20.0, memory_mb=16.0),
    )
    builder = PackageBuilder(soft, comp)
    builder.add_idl("surface", _SURFACE_IDL)
    builder.add_binary("bin/any/whiteboard",
                       synthetic_payload(8_000, seed=22))
    return ComponentPackage(builder.build())


class GuiPartExecutor(ComponentExecutor):
    """One portion of the application window (Fig. 2 "GUI part N").

    Consumes stroke events and paints them on the Display wired to its
    ``display`` receptacle.  ``RENDER_STYLE`` is what a replacement GUI
    part would change.
    """

    RENDER_STYLE = "wireframe"

    def __init__(self) -> None:
        super().__init__()
        self.rendered = 0

    def on_event(self, port_name: str, value) -> None:
        if port_name != "board":
            return
        self.rendered += 1
        display = self.context.connection("display")
        if display is None:
            return
        stroke = value.value
        primitive = (f"{self.RENDER_STYLE}:{stroke['color']} "
                     f"({stroke['x0']},{stroke['y0']})->"
                     f"({stroke['x1']},{stroke['y1']})")
        # Fire-and-forget paint; the display counts it.
        display.draw(f"window.{self.context.instance_id}", primitive)


class FilledGuiPartExecutor(GuiPartExecutor):
    """The drop-in replacement look ("replacing the presentation layer
    to suit additional user or application needs")."""

    RENDER_STYLE = "filled"


def gui_part_package(version: str = "1.0.0",
                     style: str = "wireframe",
                     name: str = "BoardGui") -> ComponentPackage:
    executor_cls = (GuiPartExecutor if style == "wireframe"
                    else FilledGuiPartExecutor)
    entry = f"cscw.gui.{style}"
    GLOBAL_BINARIES.register(entry, executor_cls)
    soft = SoftwareDescriptor(
        name=name, version=Version.parse(version), vendor="cscw",
        abstract=f"Whiteboard GUI part ({style} renderer).",
        mobility="mobile", replication="stateless",
        implementations=[ImplementationDescriptor(
            "*", "*", "*", entry, "bin/any/gui")],
    )
    comp = ComponentTypeDescriptor(
        name=name,
        uses=[PortDecl("display", DISPLAY_IFACE.repo_id)],
        consumes=[EventPortDecl("board", STROKE_EVENT)],
        qos=QoSSpec(cpu_units=30.0, memory_mb=24.0),
    )
    builder = PackageBuilder(soft, comp)
    builder.add_idl("display", "// uses Cscw::Display, see display.idl")
    builder.add_binary("bin/any/gui", synthetic_payload(12_000, seed=23))
    return ComponentPackage(builder.build())

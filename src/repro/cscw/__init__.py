"""CSCW components (§3.1, Figure 2).

The paper's synchronous-collaboration scenario, executable:

- :mod:`repro.cscw.display` — the ``Display`` component "providing
  painting functions"; **pinned** to its host (it is the hardware).
- :mod:`repro.cscw.whiteboard` — a shared whiteboard model that emits a
  stroke event per update, plus the replaceable GUI-part components of
  Figure 2 that render portions of the application window.
- :mod:`repro.cscw.video` — the motivating bandwidth-heavy pair: a
  pinned stream source and a **mobile** decoder whose placement
  (remote vs. migrated next to its display) the C6 benchmark measures.
"""

from repro.cscw.display import (
    DISPLAY_IFACE,
    DisplayExecutor,
    display_package,
)
from repro.cscw.whiteboard import (
    SURFACE_IFACE,
    GuiPartExecutor,
    WhiteboardExecutor,
    gui_part_package,
    whiteboard_package,
    STROKE_EVENT,
)
from repro.cscw.video import (
    STREAM_SOURCE_IFACE,
    StreamSourceExecutor,
    VideoDecoderExecutor,
    stream_source_package,
    video_decoder_package,
)

__all__ = [
    "DISPLAY_IFACE",
    "DisplayExecutor",
    "display_package",
    "SURFACE_IFACE",
    "WhiteboardExecutor",
    "GuiPartExecutor",
    "whiteboard_package",
    "gui_part_package",
    "STROKE_EVENT",
    "STREAM_SOURCE_IFACE",
    "StreamSourceExecutor",
    "VideoDecoderExecutor",
    "stream_source_package",
    "video_decoder_package",
]

"""The motivating video pipeline (§2.4.3, §3.1).

"A component decoding a MPEG video stream would work much faster if it
is installed locally."

Three stages:

- **StreamSource** (pinned): serves encoded frames — small on the wire.
- **VideoDecoder** (mobile): pulls encoded frames, burns CPU decoding,
  and blits the *decoded* pixels (``expansion`` × larger) to a Display.
- **Display** (pinned, :mod:`repro.cscw.display`): the viewer's screen.

Placement decides which of the two flows crosses the network: decoder
next to the display ships only the small encoded frames; decoder
anywhere else ships the fat decoded pixels.  Benchmark C6 measures
exactly that difference, before and after migrating the decoder.
"""

from __future__ import annotations

from repro.components.executor import ComponentExecutor, StatefulMixin
from repro.cscw.display import DISPLAY_IFACE
from repro.idl import compile_idl
from repro.orb.core import Servant
from repro.orb.exceptions import SystemException
from repro.packaging.binaries import GLOBAL_BINARIES, synthetic_payload
from repro.packaging.package import ComponentPackage, PackageBuilder
from repro.sim.kernel import Interrupt
from repro.xmlmeta.descriptors import (
    ComponentTypeDescriptor,
    ImplementationDescriptor,
    PortDecl,
    QoSSpec,
    SoftwareDescriptor,
)
from repro.xmlmeta.versions import Version

_STREAM_IDL = """
#pragma prefix "corbalc"
module Cscw {
  interface StreamSource {
    // One encoded frame; sequential frame numbers.
    sequence<octet> next_frame(in long frame_no);
    double frame_rate();
  };
};
"""

STREAM_SOURCE_IFACE = compile_idl(_STREAM_IDL).Cscw.StreamSource

#: Synthetic stream shape (roughly VCD-class video).
ENCODED_FRAME_BYTES = 20_000
DECODE_EXPANSION = 8           # decoded pixels / encoded bytes
FRAME_RATE = 10.0              # frames per second
DECODE_COST = 8.0              # work units per frame


class _StreamFacet(Servant):
    _interface = STREAM_SOURCE_IFACE

    def __init__(self, executor: "StreamSourceExecutor") -> None:
        self._executor = executor

    def next_frame(self, frame_no: int) -> bytes:
        self._executor.served += 1
        return synthetic_payload(self._executor.frame_bytes,
                                 seed=frame_no % 64,
                                 compressibility=0.3)

    def frame_rate(self) -> float:
        return self._executor.fps


class StreamSourceExecutor(ComponentExecutor):
    """Serves the encoded stream; pinned next to the capture hardware."""

    def __init__(self) -> None:
        super().__init__()
        self.frame_bytes = ENCODED_FRAME_BYTES
        self.fps = FRAME_RATE
        self.served = 0

    def create_facet(self, port_name: str) -> Servant:
        assert port_name == "stream"
        return _StreamFacet(self)


def stream_source_package(version: str = "1.0.0") -> ComponentPackage:
    entry = "cscw.streamsource"
    GLOBAL_BINARIES.register(entry, StreamSourceExecutor)
    soft = SoftwareDescriptor(
        name="StreamSource", version=Version.parse(version), vendor="cscw",
        abstract="Encoded media stream server (capture side).",
        mobility="pinned",
        implementations=[ImplementationDescriptor(
            "*", "*", "*", entry, "bin/any/source")],
    )
    comp = ComponentTypeDescriptor(
        name="StreamSource",
        provides=[PortDecl("stream", STREAM_SOURCE_IFACE.repo_id)],
        qos=QoSSpec(cpu_units=20.0, memory_mb=16.0,
                    bandwidth_bps=ENCODED_FRAME_BYTES * FRAME_RATE),
    )
    builder = PackageBuilder(soft, comp)
    builder.add_idl("stream", _STREAM_IDL)
    builder.add_binary("bin/any/source", synthetic_payload(15_000, seed=24))
    return ComponentPackage(builder.build())


class VideoDecoderExecutor(StatefulMixin, ComponentExecutor):
    """Pulls, decodes and blits frames while active.

    The decode loop survives migration: frame position is part of the
    externalized state, and activation restarts the loop wherever the
    instance lands.
    """

    STATE_ATTRS = ("frame_no", "decoded")

    def __init__(self) -> None:
        super().__init__()
        self.frame_no = 0
        self.decoded = 0
        self.stalled = 0

    def on_activate(self) -> None:
        self.context.spawn(self._decode_loop())

    def _decode_loop(self):
        ctx = self.context
        try:
            while True:
                source = ctx.connection("source")
                display = ctx.connection("display")
                if source is None or display is None:
                    yield ctx.schedule(0.5)
                    continue
                period = 1.0 / FRAME_RATE
                started = ctx.now()
                try:
                    encoded = yield source.next_frame(self.frame_no,
                                                      _timeout=5.0)
                except SystemException:
                    self.stalled += 1
                    yield ctx.schedule(period)
                    continue
                yield ctx.charge_cpu(DECODE_COST)
                pixels = encoded * DECODE_EXPANSION
                try:
                    yield display.blit(
                        f"video.{ctx.instance_id}", pixels, _timeout=5.0)
                except SystemException:
                    self.stalled += 1
                self.frame_no += 1
                self.decoded += 1
                # Pace to the stream's frame rate.
                elapsed = ctx.now() - started
                if elapsed < period:
                    yield ctx.schedule(period - elapsed)
        except Interrupt:
            return

    def create_facet(self, port_name: str) -> Servant:  # pragma: no cover
        raise AssertionError("VideoDecoder provides no facets")


def video_decoder_package(version: str = "1.0.0") -> ComponentPackage:
    entry = "cscw.videodecoder"
    GLOBAL_BINARIES.register(entry, VideoDecoderExecutor)
    soft = SoftwareDescriptor(
        name="VideoDecoder", version=Version.parse(version), vendor="cscw",
        abstract="Mobile stream decoder (the paper's MPEG example).",
        mobility="mobile", replication="stateless",
        implementations=[ImplementationDescriptor(
            "*", "*", "*", entry, "bin/any/decoder")],
    )
    comp = ComponentTypeDescriptor(
        name="VideoDecoder",
        uses=[PortDecl("source", STREAM_SOURCE_IFACE.repo_id),
              PortDecl("display", DISPLAY_IFACE.repo_id)],
        qos=QoSSpec(cpu_units=DECODE_COST * FRAME_RATE, memory_mb=32.0,
                    bandwidth_bps=ENCODED_FRAME_BYTES * FRAME_RATE
                    * DECODE_EXPANSION),
    )
    builder = PackageBuilder(soft, comp)
    builder.add_idl("stream", _STREAM_IDL)
    builder.add_binary("bin/any/decoder",
                       synthetic_payload(25_000, seed=25))
    return ComponentPackage(builder.build())

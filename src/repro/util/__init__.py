"""Shared utilities: identifiers, errors, and small helpers.

Nothing in this package depends on any other ``repro`` subpackage; it is
the bottom of the dependency graph.
"""

from repro.util.errors import (
    ReproError,
    ConfigurationError,
    ProtocolError,
    ValidationError,
)
from repro.util.ids import IdGenerator, uid

__all__ = [
    "ReproError",
    "ConfigurationError",
    "ProtocolError",
    "ValidationError",
    "IdGenerator",
    "uid",
]

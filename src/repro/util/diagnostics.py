"""Typed findings shared by every static-analysis layer.

A :class:`Finding` is one diagnostic a checker produced: a stable code
(``IDL005``, ``ASM007``...), a severity, a location string pointing at
the offending source ("demo.idl:12", "/softpkg/license",
"assembly app, connection i0.peer -> i1.value"), and a human message.

This lives in :mod:`repro.util` (not :mod:`repro.analysis`) so that
low-level modules — the XML schema validator, descriptor parsing — can
report structured violations without importing the analysis package
that itself builds on them.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class Severity(enum.IntEnum):
    """Finding severities; the numeric value is the lint exit code."""

    INFO = 0
    WARNING = 1
    ERROR = 2

    def __str__(self) -> str:  # 'error', not 'Severity.ERROR'
        return self.name.lower()


@dataclass(frozen=True)
class Finding:
    """One diagnostic produced by a static check."""

    code: str
    severity: Severity
    location: str
    message: str

    def as_dict(self) -> dict:
        return {
            "code": self.code,
            "severity": str(self.severity),
            "location": self.location,
            "message": self.message,
        }

    def render(self) -> str:
        where = f"{self.location}: " if self.location else ""
        return f"{str(self.severity):7s} {self.code} {where}{self.message}"


def max_severity(findings) -> int:
    """Highest severity in *findings* as an int (0 when empty)."""
    return max((int(f.severity) for f in findings), default=0)

"""Base exception hierarchy for the whole library.

Every subsystem derives its own exceptions from :class:`ReproError` so a
caller can catch library failures without catching unrelated bugs.
"""


class ReproError(Exception):
    """Root of the library's exception hierarchy."""


class ConfigurationError(ReproError):
    """A component/system was configured with inconsistent parameters."""


class ProtocolError(ReproError):
    """A distributed-protocol invariant was violated (bad message, bad
    state transition, unexpected peer behaviour)."""


class ValidationError(ReproError):
    """A descriptor, package, or document failed validation."""

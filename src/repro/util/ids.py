"""Deterministic identifier generation.

Random UUIDs would break simulation reproducibility, so identifiers are
drawn from per-prefix counters.  :func:`uid` uses a module-level
generator, which is convenient for code that does not carry an explicit
:class:`IdGenerator`; simulations that need full isolation create their
own instance.
"""

from __future__ import annotations

import itertools
from collections import defaultdict


class IdGenerator:
    """Produces identifiers like ``node-0``, ``node-1``, ``msg-0``...

    A fresh generator always starts each prefix at zero, so two
    simulations constructed the same way emit identical id streams.
    """

    def __init__(self) -> None:
        self._counters: dict[str, itertools.count] = defaultdict(itertools.count)

    def next(self, prefix: str) -> str:
        """Return the next identifier for *prefix*."""
        return f"{prefix}-{next(self._counters[prefix])}"

    def next_int(self, prefix: str) -> int:
        """Return the next integer in the *prefix* counter."""
        return next(self._counters[prefix])

    def reset(self) -> None:
        """Restart every counter at zero."""
        self._counters.clear()


_GLOBAL = IdGenerator()


def uid(prefix: str) -> str:
    """Return an identifier from the process-wide generator.

    Only use this for objects whose identity never crosses a determinism
    boundary (e.g. log records); simulation entities should use the
    engine's own :class:`IdGenerator`.
    """
    return _GLOBAL.next(prefix)

"""Vendor signatures over package content.

The paper requires that "the installer must be sure of who really made
this component by verifying the component's cryptographic signature"
(§2.1.1).  We implement the workflow with HMAC-SHA256 over the package's
canonical content digest; the key registry stands in for the vendor's
published verification key.
"""

from __future__ import annotations

import hashlib
import hmac

from repro.util.errors import ValidationError


class SignatureError(ValidationError):
    """Signature missing, unknown vendor, or digest mismatch."""


class VendorKeyRegistry:
    """vendor name -> signing key.

    Keys are derived deterministically from the vendor name and a
    registry secret, which keeps simulations reproducible while still
    distinguishing vendors.
    """

    def __init__(self, secret: bytes = b"corbalc-registry") -> None:
        self._secret = secret
        self._vendors: dict[str, bytes] = {}

    def register_vendor(self, vendor: str) -> bytes:
        key = self._vendors.get(vendor)
        if key is None:
            key = hashlib.sha256(self._secret + b"|" + vendor.encode()).digest()
            self._vendors[vendor] = key
        return key

    def known(self, vendor: str) -> bool:
        return vendor in self._vendors

    def sign(self, vendor: str, content_digest: bytes) -> str:
        """Produce the hex signature a vendor puts in its packages."""
        key = self.register_vendor(vendor)
        return hmac.new(key, content_digest, hashlib.sha256).hexdigest()

    def verify(self, vendor: str, content_digest: bytes,
               signature: str) -> None:
        """Raise :class:`SignatureError` unless the signature checks out."""
        if not self.known(vendor):
            raise SignatureError(f"unknown vendor {vendor!r}")
        expected = self.sign(vendor, content_digest)
        if not hmac.compare_digest(expected, signature):
            raise SignatureError(
                f"signature mismatch for vendor {vendor!r}"
            )

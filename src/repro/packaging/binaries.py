"""Executable content behind package binaries.

A real CORBA-LC node dlopen()s the DLL found in a package.  Here the
executable content is a Python factory callable registered under the
entry-point name the implementation descriptor carries; "loading" a
binary is a registry lookup, and the payload bytes in the archive give
the package its realistic size on the wire.
"""

from __future__ import annotations

import zlib
from typing import Callable, Optional

import numpy as np

from repro.sim.rng import derived_stream
from repro.util.errors import ConfigurationError


class BinaryRegistry:
    """entry-point name -> executable-implementation factory.

    The factory signature is deliberately opaque here (the container
    defines what it calls it with); packaging only needs identity.
    """

    def __init__(self) -> None:
        self._factories: dict[str, Callable] = {}

    def register(self, entry_point: str, factory: Callable,
                 replace: bool = False) -> Callable:
        if not replace and entry_point in self._factories:
            if self._factories[entry_point] is factory:
                return factory
            raise ConfigurationError(
                f"entry point {entry_point!r} already registered"
            )
        self._factories[entry_point] = factory
        return factory

    def resolve(self, entry_point: str) -> Callable:
        try:
            return self._factories[entry_point]
        except KeyError:
            raise ConfigurationError(
                f"unknown entry point {entry_point!r} (binary not loadable)"
            ) from None

    def __contains__(self, entry_point: str) -> bool:
        return entry_point in self._factories

    def entry_points(self) -> list[str]:
        return sorted(self._factories)


#: Shared default registry; components register their factories at
#: import time, mirroring how linking puts symbols in a process image.
GLOBAL_BINARIES = BinaryRegistry()


def synthetic_payload(size: int, seed: int = 0,
                      compressibility: float = 0.5) -> bytes:
    """Deterministic payload bytes of *size* with tunable redundancy.

    ``compressibility`` 0.0 produces incompressible (random) bytes, 1.0
    produces a constant run; in between mixes the two, so packaging
    benchmarks can show realistic compression ratios.
    """
    if size < 0:
        raise ConfigurationError(f"negative payload size {size}")
    if not 0.0 <= compressibility <= 1.0:
        raise ConfigurationError(
            f"compressibility must be in [0,1], got {compressibility}"
        )
    n_random = int(size * (1.0 - compressibility))
    rng = derived_stream("packaging.synthetic_payload", seed)
    random_part = rng.integers(0, 256, size=n_random, dtype=np.uint8).tobytes()
    return random_part + b"\x2a" * (size - n_random)


def compressed_size(data: bytes, level: int = 6) -> int:
    """Deflate size of *data* — what a compressed archive member costs."""
    return len(zlib.compress(data, level))

"""Building and reading component packages (real ZIP archives).

Layout of a package archive::

    META-INF/softpkg.xml        software (static/binary) descriptor
    META-INF/component.xml      component type (dynamic) descriptor
    META-INF/signature          "<vendor>\\n<hex hmac>" (optional)
    idl/<name>.idl              IDL sources
    bin/<os>-<arch>-<orb>/...   per-platform binary payloads

Requirements implemented from §2.3:

- binary + meta-information together (descriptors travel in the zip);
- compression for "possibly long and slow communication lines"
  (``compress=`` chooses DEFLATE vs STORED, and sizes differ for real);
- modularity: several platform binaries in one package, with
  :meth:`ComponentPackage.extract_subset` producing a smaller archive
  holding only the binaries one device needs (PDA case).
"""

from __future__ import annotations

import hashlib
import io
import zipfile
from typing import Iterable, Optional

from repro.packaging.signature import SignatureError, VendorKeyRegistry
from repro.util.errors import ValidationError
from repro.xmlmeta.descriptors import (
    ComponentTypeDescriptor,
    SoftwareDescriptor,
)

SOFTPKG_PATH = "META-INF/softpkg.xml"
COMPONENT_PATH = "META-INF/component.xml"
SIGNATURE_PATH = "META-INF/signature"


class PackageError(ValidationError):
    """Malformed or inconsistent component package."""


class PackageBuilder:
    """Assembles a component package archive."""

    def __init__(self, software: SoftwareDescriptor,
                 component: ComponentTypeDescriptor) -> None:
        if software.name != component.name:
            raise PackageError(
                f"descriptor names differ: {software.name!r} vs "
                f"{component.name!r}"
            )
        self.software = software
        self.component = component
        self._idl: dict[str, str] = {}
        self._binaries: dict[str, bytes] = {}

    def add_idl(self, name: str, source: str) -> "PackageBuilder":
        self._idl[f"idl/{name}.idl"] = source
        return self

    def add_binary(self, path: str, payload: bytes) -> "PackageBuilder":
        if not path.startswith("bin/"):
            raise PackageError(f"binary path must start with 'bin/': {path!r}")
        self._binaries[path] = payload
        return self

    def _check_binaries_declared(self) -> None:
        declared = {impl.binary_path for impl in self.software.implementations}
        present = set(self._binaries)
        missing = declared - present
        if missing:
            raise PackageError(f"declared binaries missing: {sorted(missing)}")
        undeclared = present - declared
        if undeclared:
            raise PackageError(
                f"binaries not declared by any implementation: "
                f"{sorted(undeclared)}"
            )

    def build(self, compress: bool = True,
              signer: Optional[VendorKeyRegistry] = None) -> bytes:
        """Produce the archive bytes; optionally vendor-sign the content."""
        self._check_binaries_declared()
        members: dict[str, bytes] = {
            SOFTPKG_PATH: self.software.to_xml().encode(),
            COMPONENT_PATH: self.component.to_xml().encode(),
        }
        for path, text in self._idl.items():
            members[path] = text.encode()
        members.update(self._binaries)

        if signer is not None:
            digest = _content_digest(members)
            sig = signer.sign(self.software.vendor, digest)
            members[SIGNATURE_PATH] = (
                f"{self.software.vendor}\n{sig}\n".encode()
            )

        method = zipfile.ZIP_DEFLATED if compress else zipfile.ZIP_STORED
        buf = io.BytesIO()
        with zipfile.ZipFile(buf, "w", compression=method) as zf:
            for path in sorted(members):
                zf.writestr(path, members[path])
        return buf.getvalue()


def _content_digest(members: dict[str, bytes]) -> bytes:
    """Canonical digest over member names and contents (sans signature)."""
    h = hashlib.sha256()
    for path in sorted(members):
        if path == SIGNATURE_PATH:
            continue
        h.update(path.encode())
        h.update(b"\x00")
        h.update(members[path])
        h.update(b"\x00")
    return h.digest()


class ComponentPackage:
    """A parsed, validated component package."""

    def __init__(self, data: bytes) -> None:
        self.data = data
        try:
            with zipfile.ZipFile(io.BytesIO(data)) as zf:
                names = zf.namelist()
                self._members = {name: zf.read(name) for name in names}
        except zipfile.BadZipFile as exc:
            raise PackageError(f"not a zip archive: {exc}") from None
        if SOFTPKG_PATH not in self._members:
            raise PackageError(f"package lacks {SOFTPKG_PATH}")
        if COMPONENT_PATH not in self._members:
            raise PackageError(f"package lacks {COMPONENT_PATH}")
        self.software = SoftwareDescriptor.from_xml(
            self._members[SOFTPKG_PATH].decode())
        self.component = ComponentTypeDescriptor.from_xml(
            self._members[COMPONENT_PATH].decode())
        if self.software.name != self.component.name:
            raise PackageError("descriptor names disagree inside package")
        for impl in self.software.implementations:
            if impl.binary_path not in self._members:
                raise PackageError(
                    f"implementation binary {impl.binary_path!r} missing"
                )

    # -- identity -----------------------------------------------------------
    @property
    def name(self) -> str:
        return self.software.name

    @property
    def version(self):
        return self.software.version

    @property
    def size(self) -> int:
        """Archive size on the wire, in bytes."""
        return len(self.data)

    def members(self) -> list[str]:
        return sorted(self._members)

    def member(self, path: str) -> bytes:
        try:
            return self._members[path]
        except KeyError:
            raise PackageError(f"no member {path!r}") from None

    def idl_sources(self) -> dict[str, str]:
        return {
            path: self._members[path].decode()
            for path in self._members if path.startswith("idl/")
        }

    # -- platform selection ----------------------------------------------------
    def implementation_for(self, os: str, arch: str, orb: str):
        return self.software.implementation_for(os, arch, orb)

    def supports_platform(self, os: str, arch: str, orb: str) -> bool:
        return self.implementation_for(os, arch, orb) is not None

    def binary_payload(self, os: str, arch: str, orb: str) -> bytes:
        impl = self.implementation_for(os, arch, orb)
        if impl is None:
            raise PackageError(
                f"no implementation for platform ({os}, {arch}, {orb})"
            )
        return self._members[impl.binary_path]

    # -- partial extraction (tiny devices) ----------------------------------------
    def extract_subset(self, os: str, arch: str, orb: str,
                       compress: bool = True) -> "ComponentPackage":
        """A new package holding only the binaries this platform needs.

        Metadata (descriptors, IDL, signature) is preserved; the
        software descriptor keeps only matching implementations.  This
        is the §2.3 requirement of shipping a PDA just its slice of a
        multi-platform package.  Note the subset's signature no longer
        covers the removed binaries, so it verifies only against its own
        reduced content — subsets are for local installs, not re-export.
        """
        impls = [i for i in self.software.implementations
                 if i.matches(os, arch, orb)]
        if not impls:
            raise PackageError(
                f"no implementation for platform ({os}, {arch}, {orb})"
            )
        import dataclasses
        sub_soft = dataclasses.replace(self.software, implementations=impls)
        builder = PackageBuilder(sub_soft, self.component)
        for path, text in self.idl_sources().items():
            name = path[len("idl/"):-len(".idl")]
            builder.add_idl(name, text)
        for impl in impls:
            builder.add_binary(impl.binary_path,
                               self._members[impl.binary_path])
        return ComponentPackage(builder.build(compress=compress))

    # -- signatures ------------------------------------------------------------------
    def is_signed(self) -> bool:
        return SIGNATURE_PATH in self._members

    def verify_signature(self, registry: VendorKeyRegistry) -> str:
        """Verify the vendor signature; returns the vendor name.

        Raises :class:`SignatureError` when unsigned, from an unknown
        vendor, or when content was tampered with.
        """
        if not self.is_signed():
            raise SignatureError(f"package {self.name!r} is unsigned")
        try:
            vendor, sig = (
                self._members[SIGNATURE_PATH].decode().strip().split("\n")
            )
        except ValueError:
            raise SignatureError("malformed signature member") from None
        registry.verify(vendor, _content_digest(self._members), sig)
        if vendor != self.software.vendor:
            raise SignatureError(
                f"signature vendor {vendor!r} does not match descriptor "
                f"vendor {self.software.vendor!r}"
            )
        return vendor

    def __repr__(self) -> str:
        return (f"<ComponentPackage {self.name} v{self.version} "
                f"{self.size} bytes>")

"""Component packaging: self-contained binary units (§2.3).

Components ship as real ZIP archives holding the component "binaries"
(one per platform), the IDL sources, and the XML descriptors:

- :mod:`repro.packaging.binaries` — the executable-content registry (the
  stand-in for OS dynamic loading of DLLs / .class files / TCL scripts)
  and synthetic payload generation.
- :mod:`repro.packaging.signature` — vendor signing and verification
  ("the installer must be sure of who really made this component",
  §2.1.1).
- :mod:`repro.packaging.package` — building, reading, validating,
  compressing and *partially extracting* packages ("extracting only a
  set of binaries from the whole component ... to be installed in
  devices with a tiny memory, such as PDAs", §2.3).
"""

from repro.packaging.binaries import BinaryRegistry, synthetic_payload
from repro.packaging.package import (
    ComponentPackage,
    PackageBuilder,
    PackageError,
)
from repro.packaging.signature import SignatureError, VendorKeyRegistry

__all__ = [
    "BinaryRegistry",
    "synthetic_payload",
    "ComponentPackage",
    "PackageBuilder",
    "PackageError",
    "VendorKeyRegistry",
    "SignatureError",
]

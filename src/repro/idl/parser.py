"""Recursive-descent parser for the supported IDL subset.

Grammar (roughly)::

    spec        := (pragma | definition)*
    definition  := module | interface | type_dcl ';'
    module      := 'module' ID '{' definition* '}' ';'
    interface   := 'interface' ID [':' scoped (',' scoped)*]
                   '{' export* '}' ';'
    export      := op_dcl | attr_dcl | type_dcl ';'
    type_dcl    := struct | enum | union | typedef | exception | const
    op_dcl      := ['oneway'] (type|'void') ID '(' params ')'
                   ['raises' '(' scoped (',' scoped)* ')'] ';'
    attr_dcl    := ['readonly'] 'attribute' type ID (',' ID)* ';'
    type        := primitive | 'string' | 'sequence' '<' type [',' int] '>'
                 | scoped
"""

from __future__ import annotations

from typing import Optional

from repro.idl import idlast as ast
from repro.idl.lexer import EOF, Token, tokenize
from repro.util.errors import ValidationError


class IdlSyntaxError(ValidationError):
    """Unexpected token while parsing IDL."""


_PRIMITIVE_STARTERS = {
    "void", "short", "long", "unsigned", "float", "double", "boolean",
    "char", "octet", "any", "Object", "string",
}


class _Parser:
    def __init__(self, tokens: list[Token]) -> None:
        self._tokens = tokens
        self._pos = 0

    # -- token helpers ------------------------------------------------------
    @property
    def _cur(self) -> Token:
        return self._tokens[self._pos]

    def _advance(self) -> Token:
        tok = self._cur
        if tok.kind != EOF:
            self._pos += 1
        return tok

    def _error(self, what: str) -> IdlSyntaxError:
        tok = self._cur
        return IdlSyntaxError(
            f"line {tok.line}: expected {what}, got {tok.kind} {tok.value!r}"
        )

    def _accept(self, kind: str, value: Optional[str] = None) -> Optional[Token]:
        tok = self._cur
        if tok.kind == kind and (value is None or tok.value == value):
            return self._advance()
        return None

    def _expect(self, kind: str, value: Optional[str] = None) -> Token:
        tok = self._accept(kind, value)
        if tok is None:
            raise self._error(value or kind)
        return tok

    def _expect_ident(self) -> str:
        return self._expect("ident").value

    def _at_kw(self, *names: str) -> bool:
        return self._cur.kind == "kw" and self._cur.value in names

    # -- entry ------------------------------------------------------------------
    def parse_spec(self) -> ast.Specification:
        prefix = ""
        definitions = []
        while self._cur.kind != EOF:
            if self._cur.kind == "pragma":
                text = self._advance().value
                parts = text.split()
                if len(parts) >= 3 and parts[0] == "#pragma" and parts[1] == "prefix":
                    prefix = parts[2].strip('"')
                continue
            definitions.append(self._definition())
        return ast.Specification(definitions=definitions, prefix=prefix)

    # -- definitions -----------------------------------------------------------
    def _definition(self):
        if self._at_kw("module"):
            return self._module()
        if self._at_kw("interface"):
            return self._interface()
        decl = self._type_dcl()
        self._expect("punct", ";")
        return decl

    def _module(self) -> ast.ModuleDecl:
        line = self._expect("kw", "module").line
        name = self._expect_ident()
        self._expect("punct", "{")
        body = []
        while not self._accept("punct", "}"):
            if self._cur.kind == EOF:
                raise self._error("'}' closing module")
            if self._cur.kind == "pragma":
                self._advance()
                continue
            body.append(self._definition())
        self._expect("punct", ";")
        return ast.ModuleDecl(name=name, body=body, line=line)

    def _interface(self) -> ast.InterfaceDecl:
        line = self._expect("kw", "interface").line
        name = self._expect_ident()
        bases: list[ast.NamedType] = []
        if self._accept("punct", ":"):
            bases.append(self._scoped_name())
            while self._accept("punct", ","):
                bases.append(self._scoped_name())
        self._expect("punct", "{")
        body = []
        while not self._accept("punct", "}"):
            if self._cur.kind == EOF:
                raise self._error("'}' closing interface")
            if self._cur.kind == "pragma":
                self._advance()
                continue
            body.append(self._export())
        self._expect("punct", ";")
        return ast.InterfaceDecl(name=name, bases=bases, body=body,
                                 line=line)

    def _export(self):
        if self._at_kw("struct", "enum", "union", "typedef", "exception",
                       "const"):
            decl = self._type_dcl()
            self._expect("punct", ";")
            return decl
        if self._at_kw("readonly", "attribute"):
            return self._attribute()
        return self._operation()

    # -- type declarations ---------------------------------------------------------
    def _type_dcl(self):
        if self._at_kw("struct"):
            return self._struct()
        if self._at_kw("enum"):
            return self._enum()
        if self._at_kw("union"):
            return self._union()
        if self._at_kw("typedef"):
            return self._typedef()
        if self._at_kw("exception"):
            return self._exception()
        if self._at_kw("const"):
            return self._const()
        raise self._error("a declaration")

    def _struct(self) -> ast.StructDecl:
        line = self._expect("kw", "struct").line
        name = self._expect_ident()
        self._expect("punct", "{")
        members = self._members("}")
        self._expect("punct", "}")
        return ast.StructDecl(name=name, members=members, line=line)

    def _exception(self) -> ast.ExceptionDecl:
        line = self._expect("kw", "exception").line
        name = self._expect_ident()
        self._expect("punct", "{")
        members = self._members("}")
        self._expect("punct", "}")
        return ast.ExceptionDecl(name=name, members=members, line=line)

    def _members(self, closer: str) -> list[ast.Member]:
        members: list[ast.Member] = []
        while not (self._cur.kind == "punct" and self._cur.value == closer):
            if self._cur.kind == EOF:
                raise self._error(f"{closer!r}")
            mline = self._cur.line
            mtype = self._type_spec()
            while True:
                mname, full_type = self._declarator(mtype)
                members.append(ast.Member(type=full_type, name=mname,
                                          line=mline))
                if not self._accept("punct", ","):
                    break
            self._expect("punct", ";")
        return members

    def _declarator(self, base: ast.TypeExpr) -> tuple[str, ast.TypeExpr]:
        name = self._expect_ident()
        dims: list[int] = []
        while self._accept("punct", "["):
            dims.append(self._int_literal())
            self._expect("punct", "]")
        if dims:
            return name, ast.ArrayOf(element=base, dims=tuple(dims))
        return name, base

    def _enum(self) -> ast.EnumDecl:
        line = self._expect("kw", "enum").line
        name = self._expect_ident()
        self._expect("punct", "{")
        labels = [self._expect_ident()]
        while self._accept("punct", ","):
            if self._cur.kind == "punct" and self._cur.value == "}":
                break  # trailing comma
            labels.append(self._expect_ident())
        self._expect("punct", "}")
        return ast.EnumDecl(name=name, labels=labels, line=line)

    def _union(self) -> ast.UnionDecl:
        line = self._expect("kw", "union").line
        name = self._expect_ident()
        self._expect("kw", "switch")
        self._expect("punct", "(")
        disc = self._type_spec()
        self._expect("punct", ")")
        self._expect("punct", "{")
        arms: list[ast.UnionArm] = []
        while not self._accept("punct", "}"):
            if self._cur.kind == EOF:
                raise self._error("'}' closing union")
            labels: list[object] = []
            while True:
                if self._accept("kw", "case"):
                    labels.append(self._case_label())
                    self._expect("punct", ":")
                elif self._accept("kw", "default"):
                    labels.append(None)
                    self._expect("punct", ":")
                else:
                    break
            if not labels:
                raise self._error("'case' or 'default'")
            atype = self._type_spec()
            aname, full_type = self._declarator(atype)
            self._expect("punct", ";")
            arms.append(ast.UnionArm(labels=labels, type=full_type, name=aname))
        return ast.UnionDecl(name=name, discriminator=disc, arms=arms,
                             line=line)

    def _case_label(self):
        tok = self._cur
        if tok.kind == "punct" and tok.value == "-":
            self._advance()
            return -self._int_literal()
        if tok.kind == "int":
            self._advance()
            return int(tok.value, 0)
        if tok.kind == "char":
            self._advance()
            return tok.value[1:-1]
        if tok.kind == "kw" and tok.value in ("TRUE", "FALSE"):
            self._advance()
            return tok.value == "TRUE"
        if tok.kind == "ident":  # enum label
            self._advance()
            return tok.value
        raise self._error("a case label")

    def _typedef(self) -> ast.TypedefDecl:
        line = self._expect("kw", "typedef").line
        base = self._type_spec()
        name, full_type = self._declarator(base)
        return ast.TypedefDecl(name=name, type=full_type, line=line)

    def _const(self) -> ast.ConstDecl:
        line = self._expect("kw", "const").line
        ctype = self._type_spec()
        name = self._expect_ident()
        self._expect("punct", "=")
        value = self._const_value()
        return ast.ConstDecl(name=name, type=ctype, value=value, line=line)

    def _const_value(self):
        tok = self._cur
        if tok.kind == "int":
            self._advance()
            return int(tok.value, 0)
        if tok.kind == "float":
            self._advance()
            return float(tok.value)
        if tok.kind == "string":
            self._advance()
            return tok.value[1:-1]
        if tok.kind == "char":
            self._advance()
            return tok.value[1:-1]
        if tok.kind == "kw" and tok.value in ("TRUE", "FALSE"):
            self._advance()
            return tok.value == "TRUE"
        if tok.kind == "punct" and tok.value == "-":
            self._advance()
            inner = self._const_value()
            if not isinstance(inner, (int, float)):
                raise self._error("a numeric literal after '-'")
            return -inner
        raise self._error("a literal")

    def _int_literal(self) -> int:
        tok = self._expect("int")
        return int(tok.value, 0)

    # -- interface members --------------------------------------------------------
    def _attribute(self) -> ast.AttributeDecl:
        line = self._cur.line
        readonly = self._accept("kw", "readonly") is not None
        self._expect("kw", "attribute")
        atype = self._type_spec()
        name = self._expect_ident()
        # Multiple declarators share the type; return a list-like via
        # chained attribute decls is awkward — the grammar allows it, so
        # expand here by peeking for commas.
        names = [name]
        while self._accept("punct", ","):
            names.append(self._expect_ident())
        self._expect("punct", ";")
        if len(names) == 1:
            return ast.AttributeDecl(name=name, type=atype, readonly=readonly,
                                     line=line)
        # Represent multi-declarator attributes as a synthetic module-less
        # list; the caller flattens.
        return _MultiAttribute(
            [ast.AttributeDecl(name=n, type=atype, readonly=readonly,
                               line=line)
             for n in names]
        )

    def _operation(self) -> ast.OperationDecl:
        line = self._cur.line
        oneway = self._accept("kw", "oneway") is not None
        if self._accept("kw", "void"):
            result: Optional[ast.TypeExpr] = None
        else:
            result = self._type_spec()
        name = self._expect_ident()
        self._expect("punct", "(")
        params: list[ast.ParamDecl] = []
        if not self._accept("punct", ")"):
            while True:
                mode_tok = self._cur
                if not (mode_tok.kind == "kw"
                        and mode_tok.value in ("in", "out", "inout")):
                    raise self._error("'in', 'out' or 'inout'")
                self._advance()
                ptype = self._type_spec()
                pname = self._expect_ident()
                params.append(ast.ParamDecl(mode=mode_tok.value, type=ptype,
                                            name=pname))
                if self._accept("punct", ")"):
                    break
                self._expect("punct", ",")
        raises: list[ast.NamedType] = []
        if self._accept("kw", "raises"):
            self._expect("punct", "(")
            raises.append(self._scoped_name())
            while self._accept("punct", ","):
                raises.append(self._scoped_name())
            self._expect("punct", ")")
        self._expect("punct", ";")
        return ast.OperationDecl(name=name, result=result, params=params,
                                 raises=raises, oneway=oneway, line=line)

    # -- types -------------------------------------------------------------------
    def _type_spec(self) -> ast.TypeExpr:
        tok = self._cur
        if tok.kind == "kw" and tok.value in _PRIMITIVE_STARTERS:
            return self._primitive()
        if tok.kind == "kw" and tok.value == "sequence":
            self._advance()
            self._expect("punct", "<")
            element = self._type_spec()
            bound = 0
            if self._accept("punct", ","):
                bound = self._int_literal()
            self._expect("punct", ">")
            return ast.SequenceType(element=element, bound=bound)
        if tok.kind == "ident":
            return self._scoped_name()
        raise self._error("a type")

    def _primitive(self) -> ast.PrimitiveType:
        tok = self._advance()
        name = tok.value
        if name == "unsigned":
            nxt = self._expect("kw").value
            if nxt == "short":
                return ast.PrimitiveType("unsigned short")
            if nxt == "long":
                if self._at_kw("long"):
                    self._advance()
                    return ast.PrimitiveType("unsigned long long")
                return ast.PrimitiveType("unsigned long")
            raise self._error("'short' or 'long' after 'unsigned'")
        if name == "long":
            if self._at_kw("long"):
                self._advance()
                return ast.PrimitiveType("long long")
            if self._at_kw("double"):
                self._advance()
                return ast.PrimitiveType("double")  # long double -> double
            return ast.PrimitiveType("long")
        if name == "string":
            # bounded strings: string<N> — bound recorded but not enforced
            if self._accept("punct", "<"):
                self._int_literal()
                self._expect("punct", ">")
            return ast.PrimitiveType("string")
        return ast.PrimitiveType(name)

    def _scoped_name(self) -> ast.NamedType:
        parts = []
        if self._accept("punct", "::"):
            pass  # absolute name; resolution is identical for our scopes
        parts.append(self._expect_ident())
        while self._accept("punct", "::"):
            parts.append(self._expect_ident())
        return ast.NamedType(parts=tuple(parts))


class _MultiAttribute(list):
    """Internal: several AttributeDecls produced by one declaration."""


def parse(source: str) -> ast.Specification:
    """Parse IDL *source* into a :class:`~repro.idl.idlast.Specification`."""
    spec = _Parser(tokenize(source)).parse_spec()
    _flatten_multi_attrs(spec.definitions)
    return spec


def _flatten_multi_attrs(body: list) -> None:
    for node in body:
        if isinstance(node, ast.ModuleDecl):
            _flatten_multi_attrs(node.body)
        elif isinstance(node, ast.InterfaceDecl):
            flattened = []
            for item in node.body:
                if isinstance(item, _MultiAttribute):
                    flattened.extend(item)
                else:
                    flattened.append(item)
            node.body = flattened

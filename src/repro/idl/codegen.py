"""IDL code generation: AST -> runtime artifacts.

Walks a parsed :class:`~repro.idl.idlast.Specification` and produces,
per declaration:

- struct/enum/union/typedef/array -> :class:`~repro.orb.typecodes.TypeCode`
- exception -> a registered :class:`~repro.orb.exceptions.UserException`
  subclass (plus its TypeCode)
- interface -> an :class:`~repro.orb.core.InterfaceDef` registered in the
  interface repository (plus an object-reference TypeCode so interfaces
  can be used as types)
- const -> its Python value

Results are exposed as nested :class:`CompiledModule` namespaces
mirroring the IDL module structure.
"""

from __future__ import annotations

from typing import Optional

from repro.idl import idlast as ast
from repro.idl.parser import parse
from repro.orb.core import (
    DEFAULT_OP_COST,
    InterfaceDef,
    OperationDef,
    ParamDef,
    make_exception_class,
)
from repro.orb.dii import GLOBAL_IFR, InterfaceRepository
from repro.orb.exceptions import UserException
from repro.orb.typecodes import (
    TCKind,
    TypeCode,
    alias_tc,
    array_tc,
    enum_tc,
    except_tc,
    objref_tc,
    primitive,
    sequence_tc,
    struct_tc,
    tc_void,
    union_tc,
)
from repro.util.errors import ValidationError


class IdlSemanticError(ValidationError):
    """Undefined name, duplicate declaration, or invalid construct."""


class CompiledModule:
    """Attribute-access namespace of compiled IDL symbols."""

    def __init__(self, name: str) -> None:
        self._name = name
        self._symbols: dict[str, object] = {}

    def _add(self, name: str, value: object) -> None:
        if name in self._symbols:
            raise IdlSemanticError(
                f"duplicate declaration {name!r} in {self._name or '<global>'}"
            )
        self._symbols[name] = value

    def __getattr__(self, name: str):
        try:
            return self._symbols[name]
        except KeyError:
            raise AttributeError(
                f"IDL scope {self._name or '<global>'} has no symbol {name!r}"
            ) from None

    def __contains__(self, name: str) -> bool:
        return name in self._symbols

    def symbols(self) -> dict[str, object]:
        return dict(self._symbols)

    def __repr__(self) -> str:
        return f"<CompiledModule {self._name or '<global>'}: {sorted(self._symbols)}>"


class _Scope:
    """Lexical scope used during compilation."""

    def __init__(self, name: str, parent: Optional["_Scope"],
                 namespace: CompiledModule) -> None:
        self.name = name
        self.parent = parent
        self.namespace = namespace
        self.entries: dict[str, tuple[str, object]] = {}  # name -> (kind, value)

    def path(self) -> list[str]:
        parts: list[str] = []
        scope: Optional[_Scope] = self
        while scope is not None and scope.name:
            parts.append(scope.name)
            scope = scope.parent
        return list(reversed(parts))

    def declare(self, name: str, kind: str, value: object,
                public: object = None) -> None:
        if name in self.entries:
            raise IdlSemanticError(
                f"duplicate declaration {name!r} in scope "
                f"{'::'.join(self.path()) or '<global>'}"
            )
        self.entries[name] = (kind, value)
        self.namespace._add(name, public if public is not None else value)

    def find_local(self, name: str) -> Optional[tuple[str, object]]:
        return self.entries.get(name)

    def find(self, name: str) -> Optional[tuple[str, object]]:
        scope: Optional[_Scope] = self
        while scope is not None:
            entry = scope.entries.get(name)
            if entry is not None:
                return entry
            scope = scope.parent
        return None


class _Compiler:
    def __init__(self, spec: ast.Specification, ifr: InterfaceRepository,
                 default_cpu_cost: float) -> None:
        self.spec = spec
        self.ifr = ifr
        self.default_cpu_cost = default_cpu_cost
        self.root = _Scope("", None, CompiledModule(""))

    # -- repo ids ------------------------------------------------------------
    def _repo_id(self, scope: _Scope, name: str) -> str:
        parts = scope.path() + [name]
        if self.spec.prefix:
            parts = [self.spec.prefix] + parts
        return "IDL:" + "/".join(parts) + ":1.0"

    # -- name resolution -------------------------------------------------------
    def _resolve(self, scope: _Scope, named: ast.NamedType) -> tuple[str, object]:
        first, *rest = named.parts
        entry = scope.find(first)
        if entry is None:
            raise IdlSemanticError(f"undefined name {named.text!r}")
        for part in rest:
            kind, value = entry
            if kind != "module":
                raise IdlSemanticError(
                    f"{named.text!r}: {part!r} looked up inside non-module"
                )
            inner = value.find_local(part)  # value is a _Scope
            if inner is None:
                raise IdlSemanticError(f"undefined name {named.text!r}")
            entry = inner
        return entry

    def _resolve_type(self, scope: _Scope, texpr: ast.TypeExpr) -> TypeCode:
        if isinstance(texpr, ast.PrimitiveType):
            return primitive(texpr.name)
        if isinstance(texpr, ast.SequenceType):
            return sequence_tc(self._resolve_type(scope, texpr.element),
                               texpr.bound)
        if isinstance(texpr, ast.ArrayOf):
            tc = self._resolve_type(scope, texpr.element)
            for dim in reversed(texpr.dims):
                tc = array_tc(tc, dim)
            return tc
        if isinstance(texpr, ast.NamedType):
            kind, value = self._resolve(scope, texpr)
            if kind == "type":
                return value  # a TypeCode
            if kind == "interface":
                _iface, tc = value
                return tc
            if kind == "exception":
                raise IdlSemanticError(
                    f"exception {texpr.text!r} used as a data type"
                )
            raise IdlSemanticError(f"{texpr.text!r} is not a type")
        raise IdlSemanticError(f"unsupported type expression {texpr!r}")

    def _resolve_exception(self, scope: _Scope, named: ast.NamedType) -> TypeCode:
        kind, value = self._resolve(scope, named)
        if kind != "exception":
            raise IdlSemanticError(f"{named.text!r} is not an exception")
        _cls, tc = value
        return tc

    # -- compilation ---------------------------------------------------------------
    def run(self) -> CompiledModule:
        for node in self.spec.definitions:
            self._definition(self.root, node)
        return self.root.namespace

    def _definition(self, scope: _Scope, node) -> None:
        if isinstance(node, ast.ModuleDecl):
            self._module(scope, node)
        elif isinstance(node, ast.InterfaceDecl):
            self._interface(scope, node)
        elif isinstance(node, ast.StructDecl):
            members = [(m.name, self._resolve_type(scope, m.type))
                       for m in node.members]
            tc = struct_tc(node.name, members,
                           repo_id=self._repo_id(scope, node.name))
            scope.declare(node.name, "type", tc)
        elif isinstance(node, ast.EnumDecl):
            tc = enum_tc(node.name, node.labels,
                         repo_id=self._repo_id(scope, node.name))
            scope.declare(node.name, "type", tc)
        elif isinstance(node, ast.UnionDecl):
            self._union(scope, node)
        elif isinstance(node, ast.TypedefDecl):
            tc = alias_tc(node.name, self._resolve_type(scope, node.type),
                          repo_id=self._repo_id(scope, node.name))
            scope.declare(node.name, "type", tc)
        elif isinstance(node, ast.ExceptionDecl):
            members = [(m.name, self._resolve_type(scope, m.type))
                       for m in node.members]
            tc = except_tc(node.name, members,
                           repo_id=self._repo_id(scope, node.name))
            cls = make_exception_class(node.name, tc)
            scope.declare(node.name, "exception", (cls, tc), public=cls)
        elif isinstance(node, ast.ConstDecl):
            scope.declare(node.name, "const", node.value)
        else:
            raise IdlSemanticError(f"unsupported declaration {node!r}")

    def _module(self, scope: _Scope, node: ast.ModuleDecl) -> None:
        existing = scope.find_local(node.name)
        if existing is not None:
            # Re-opened module: continue filling the same scope.
            kind, inner = existing
            if kind != "module":
                raise IdlSemanticError(
                    f"{node.name!r} redeclared as module"
                )
        else:
            inner_ns = CompiledModule(node.name)
            inner = _Scope(node.name, scope, inner_ns)
            scope.declare(node.name, "module", inner, public=inner_ns)
        for item in node.body:
            self._definition(inner, item)

    def _union(self, scope: _Scope, node: ast.UnionDecl) -> None:
        disc_tc = self._resolve_type(scope, node.discriminator)
        members: list[tuple[object, str, TypeCode]] = []
        default_index = -1
        for arm in node.arms:
            arm_tc = self._resolve_type(scope, arm.type)
            for label in arm.labels:
                if label is None:
                    if default_index >= 0:
                        raise IdlSemanticError(
                            f"union {node.name}: multiple default arms"
                        )
                    default_index = len(members)
                    members.append((None, arm.name, arm_tc))
                else:
                    members.append((label, arm.name, arm_tc))
        tc = union_tc(node.name, disc_tc, members,
                      default_index=default_index,
                      repo_id=self._repo_id(scope, node.name))
        scope.declare(node.name, "type", tc)

    def _interface(self, scope: _Scope, node: ast.InterfaceDecl) -> None:
        bases: list[InterfaceDef] = []
        for base_name in node.bases:
            kind, value = self._resolve(scope, base_name)
            if kind != "interface":
                raise IdlSemanticError(
                    f"interface base {base_name.text!r} is not an interface"
                )
            bases.append(value[0])
        repo_id = self._repo_id(scope, node.name)
        iface = InterfaceDef(repo_id, node.name, bases=bases)
        tc = objref_tc(repo_id, node.name)
        # Declare before walking the body so operations can reference the
        # interface itself (e.g. a clone() returning its own type).
        scope.declare(node.name, "interface", (iface, tc), public=iface)
        inner = _Scope(node.name, scope, CompiledModule(node.name))
        # Interface scope shares visibility with nested declarations.
        for item in node.body:
            if isinstance(item, ast.OperationDecl):
                iface.add_operation(self._operation(inner, item))
            elif isinstance(item, ast.AttributeDecl):
                iface.add_attribute(
                    item.name, self._resolve_type(inner, item.type),
                    readonly=item.readonly, cpu_cost=self.default_cpu_cost,
                )
            else:
                self._definition(inner, item)
        # Expose interface-scoped types as <Interface>_<Name> at the
        # enclosing namespace for convenience.
        for name, value in inner.namespace.symbols().items():
            scope.namespace._add(f"{node.name}_{name}", value)

    def _operation(self, scope: _Scope, node: ast.OperationDecl) -> OperationDef:
        params = tuple(
            ParamDef(p.name, self._resolve_type(scope, p.type), p.mode)
            for p in node.params
        )
        result = (tc_void if node.result is None
                  else self._resolve_type(scope, node.result))
        raises = tuple(self._resolve_exception(scope, r) for r in node.raises)
        return OperationDef(name=node.name, params=params, result=result,
                            raises=raises, oneway=node.oneway,
                            cpu_cost=self.default_cpu_cost)


def compile_ast(spec: ast.Specification,
                ifr: Optional[InterfaceRepository] = None,
                default_cpu_cost: float = DEFAULT_OP_COST) -> CompiledModule:
    """Compile a parsed specification; registers interfaces in *ifr*."""
    ifr = ifr if ifr is not None else GLOBAL_IFR
    compiler = _Compiler(spec, ifr, default_cpu_cost)
    namespace = compiler.run()
    _register_interfaces(compiler.root, ifr)
    return namespace


def _register_interfaces(scope: _Scope, ifr: InterfaceRepository) -> None:
    for kind, value in scope.entries.values():
        if kind == "interface":
            ifr.register(value[0], replace=True)
        elif kind == "module":
            _register_interfaces(value, ifr)


def compile_idl(source: str, ifr: Optional[InterfaceRepository] = None,
                default_cpu_cost: float = DEFAULT_OP_COST) -> CompiledModule:
    """Parse + compile IDL *source*; the one-call entry point."""
    return compile_ast(parse(source), ifr=ifr,
                       default_cpu_cost=default_cpu_cost)

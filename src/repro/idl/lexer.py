"""IDL tokenizer.

Produces a flat token stream; handles ``//`` and ``/* */`` comments,
``#pragma`` lines, string/char/number literals, multi-character
punctuation (``::``, ``<<``, ``>>``) and keywords.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.util.errors import ValidationError


class IdlLexError(ValidationError):
    """Bad character or malformed literal in IDL source."""


KEYWORDS = {
    "module", "interface", "struct", "enum", "union", "switch", "case",
    "default", "typedef", "exception", "const", "attribute", "readonly",
    "oneway", "in", "out", "inout", "raises", "sequence", "string",
    "void", "short", "long", "unsigned", "float", "double", "boolean",
    "char", "octet", "any", "Object", "TRUE", "FALSE",
}

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<comment>//[^\n]*|/\*.*?\*/)
  | (?P<pragma>\#[^\n]*)
  | (?P<float>\d+\.\d*(?:[eE][+-]?\d+)?|\.\d+(?:[eE][+-]?\d+)?|\d+[eE][+-]?\d+)
  | (?P<int>0[xX][0-9a-fA-F]+|\d+)
  | (?P<string>"(?:[^"\\]|\\.)*")
  | (?P<char>'(?:[^'\\]|\\.)')
  | (?P<ident>[A-Za-z_][A-Za-z0-9_]*)
  | (?P<punct>::|<<|>>|[{}();,:<>=\[\]|*/+-])
    """,
    re.VERBOSE | re.DOTALL,
)


@dataclass(frozen=True)
class Token:
    kind: str      # 'kw', 'ident', 'int', 'float', 'string', 'char', 'punct', 'pragma', 'eof'
    value: str
    line: int

    def __repr__(self) -> str:
        return f"Token({self.kind}, {self.value!r}, line {self.line})"


EOF = "eof"


def tokenize(source: str) -> list[Token]:
    """Tokenize IDL *source*; raises :class:`IdlLexError` on bad input."""
    tokens: list[Token] = []
    pos = 0
    line = 1
    n = len(source)
    while pos < n:
        m = _TOKEN_RE.match(source, pos)
        if m is None:
            snippet = source[pos:pos + 20].splitlines()[0]
            raise IdlLexError(f"line {line}: cannot tokenize at {snippet!r}")
        text = m.group(0)
        kind = m.lastgroup
        if kind == "ws" or kind == "comment":
            pass
        elif kind == "pragma":
            tokens.append(Token("pragma", text, line))
        elif kind == "ident":
            tok_kind = "kw" if text in KEYWORDS else "ident"
            tokens.append(Token(tok_kind, text, line))
        else:
            tokens.append(Token(kind, text, line))
        line += text.count("\n")
        pos = m.end()
    tokens.append(Token(EOF, "", line))
    return tokens

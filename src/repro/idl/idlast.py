"""AST node definitions for the IDL compiler.

Type references are kept symbolic (:class:`NamedType`) until codegen,
which resolves them against lexical scopes — so forward uses within a
module and cross-module scoped names (``A::B``) both work.

Declarations carry the 1-based source ``line`` they started on, for the
static analyzer's findings; it is excluded from equality so structural
AST comparison (the unparse/parse round-trip property) ignores layout.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union


# -- type expressions ----------------------------------------------------------

@dataclass(frozen=True)
class PrimitiveType:
    """A built-in IDL type, by its canonical spelling ('long', 'string'...)."""

    name: str


@dataclass(frozen=True)
class NamedType:
    """A (possibly scoped) reference to a user-defined type: ``A::B::C``."""

    parts: tuple[str, ...]

    @property
    def text(self) -> str:
        return "::".join(self.parts)


@dataclass(frozen=True)
class SequenceType:
    element: "TypeExpr"
    bound: int = 0  # 0 = unbounded


@dataclass(frozen=True)
class ArrayOf:
    """Applied by a declarator with dimensions: ``long grid[4][4];``"""

    element: "TypeExpr"
    dims: tuple[int, ...]


TypeExpr = Union[PrimitiveType, NamedType, SequenceType, ArrayOf]


# -- declarations ----------------------------------------------------------------

@dataclass
class Member:
    type: TypeExpr
    name: str
    line: int = field(default=0, compare=False)


@dataclass
class StructDecl:
    name: str
    members: list[Member]
    line: int = field(default=0, compare=False)


@dataclass
class ExceptionDecl:
    name: str
    members: list[Member]
    line: int = field(default=0, compare=False)


@dataclass
class EnumDecl:
    name: str
    labels: list[str]
    line: int = field(default=0, compare=False)


@dataclass
class UnionArm:
    labels: list[object]      # case label literal values; None for 'default'
    type: TypeExpr
    name: str


@dataclass
class UnionDecl:
    name: str
    discriminator: TypeExpr
    arms: list[UnionArm]
    line: int = field(default=0, compare=False)


@dataclass
class TypedefDecl:
    name: str
    type: TypeExpr
    line: int = field(default=0, compare=False)


@dataclass
class ConstDecl:
    name: str
    type: TypeExpr
    value: object
    line: int = field(default=0, compare=False)


@dataclass
class ParamDecl:
    mode: str                 # 'in' | 'out' | 'inout'
    type: TypeExpr
    name: str


@dataclass
class OperationDecl:
    name: str
    result: Optional[TypeExpr]  # None = void
    params: list[ParamDecl]
    raises: list[NamedType] = field(default_factory=list)
    oneway: bool = False
    line: int = field(default=0, compare=False)


@dataclass
class AttributeDecl:
    name: str
    type: TypeExpr
    readonly: bool = False
    line: int = field(default=0, compare=False)


@dataclass
class InterfaceDecl:
    name: str
    bases: list[NamedType]
    body: list[object]        # operations, attributes, nested type decls
    line: int = field(default=0, compare=False)


@dataclass
class ModuleDecl:
    name: str
    body: list[object]
    line: int = field(default=0, compare=False)


@dataclass
class Specification:
    """A whole IDL compilation unit."""

    definitions: list[object]
    prefix: str = ""          # from '#pragma prefix "..."'

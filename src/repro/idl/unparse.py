"""IDL pretty-printer: AST -> source text.

The inverse of the parser, used to publish interfaces extracted from a
running system (e.g. the CCM-export shim) and to property-test the
parser: ``parse(unparse(spec))`` must reproduce the AST.
"""

from __future__ import annotations

from repro.idl import idlast as ast
from repro.util.errors import ValidationError


def unparse(spec: ast.Specification) -> str:
    """Render a whole specification back to IDL source."""
    lines: list[str] = []
    if spec.prefix:
        lines.append(f'#pragma prefix "{spec.prefix}"')
    for node in spec.definitions:
        lines.extend(_definition(node, 0))
    return "\n".join(lines) + "\n"


def _indent(level: int) -> str:
    return "  " * level


def _definition(node, level: int) -> list[str]:
    pad = _indent(level)
    if isinstance(node, ast.ModuleDecl):
        lines = [f"{pad}module {node.name} {{"]
        for item in node.body:
            lines.extend(_definition(item, level + 1))
        lines.append(f"{pad}}};")
        return lines
    if isinstance(node, ast.InterfaceDecl):
        bases = (" : " + ", ".join(b.text for b in node.bases)
                 if node.bases else "")
        lines = [f"{pad}interface {node.name}{bases} {{"]
        for item in node.body:
            if isinstance(item, ast.OperationDecl):
                lines.append(_operation(item, level + 1))
            elif isinstance(item, ast.AttributeDecl):
                ro = "readonly " if item.readonly else ""
                lines.append(f"{_indent(level+1)}{ro}attribute "
                             f"{_type(item.type)} {item.name};")
            else:
                lines.extend(_definition(item, level + 1))
        lines.append(f"{pad}}};")
        return lines
    if isinstance(node, ast.StructDecl):
        lines = [f"{pad}struct {node.name} {{"]
        lines.extend(_member(m, level + 1) for m in node.members)
        lines.append(f"{pad}}};")
        return lines
    if isinstance(node, ast.ExceptionDecl):
        lines = [f"{pad}exception {node.name} {{"]
        lines.extend(_member(m, level + 1) for m in node.members)
        lines.append(f"{pad}}};")
        return lines
    if isinstance(node, ast.EnumDecl):
        labels = ", ".join(node.labels)
        return [f"{pad}enum {node.name} {{ {labels} }};"]
    if isinstance(node, ast.UnionDecl):
        lines = [f"{pad}union {node.name} switch "
                 f"({_type(node.discriminator)}) {{"]
        for arm in node.arms:
            for label in arm.labels:
                if label is None:
                    lines.append(f"{_indent(level+1)}default:")
                else:
                    lines.append(f"{_indent(level+1)}case "
                                 f"{_case_label(label)}:")
            base, suffix = _declarator_type(arm.type)
            lines.append(f"{_indent(level+2)}{base} {arm.name}{suffix};")
        lines.append(f"{pad}}};")
        return lines
    if isinstance(node, ast.TypedefDecl):
        base, suffix = _declarator_type(node.type)
        return [f"{pad}typedef {base} {node.name}{suffix};"]
    if isinstance(node, ast.ConstDecl):
        return [f"{pad}const {_type(node.type)} {node.name} = "
                f"{_literal(node.value)};"]
    raise ValidationError(f"cannot unparse {node!r}")


def _member(member: ast.Member, level: int) -> str:
    base, suffix = _declarator_type(member.type)
    return f"{_indent(level)}{base} {member.name}{suffix};"


def _operation(op: ast.OperationDecl, level: int) -> str:
    oneway = "oneway " if op.oneway else ""
    result = "void" if op.result is None else _type(op.result)
    params = ", ".join(
        f"{p.mode} {_type(p.type)} {p.name}" for p in op.params)
    raises = ""
    if op.raises:
        raises = " raises (" + ", ".join(r.text for r in op.raises) + ")"
    return (f"{_indent(level)}{oneway}{result} {op.name}"
            f"({params}){raises};")


def _declarator_type(texpr) -> tuple[str, str]:
    """Split array types into (element type, '[dims]') for declarators."""
    if isinstance(texpr, ast.ArrayOf):
        dims = "".join(f"[{d}]" for d in texpr.dims)
        return _type(texpr.element), dims
    return _type(texpr), ""


def _type(texpr) -> str:
    if isinstance(texpr, ast.PrimitiveType):
        return texpr.name
    if isinstance(texpr, ast.NamedType):
        return texpr.text
    if isinstance(texpr, ast.SequenceType):
        if texpr.bound:
            return f"sequence<{_type(texpr.element)}, {texpr.bound}>"
        return f"sequence<{_type(texpr.element)}>"
    if isinstance(texpr, ast.ArrayOf):
        # bare array type outside a declarator: wrap via typedef rules
        raise ValidationError(
            "array types only appear in declarators"
        )
    raise ValidationError(f"cannot render type {texpr!r}")


def _case_label(value) -> str:
    """Union case labels: enum labels print bare, chars quoted."""
    if isinstance(value, bool):
        return "TRUE" if value else "FALSE"
    if isinstance(value, int):
        return repr(value)
    if isinstance(value, str):
        if value.isidentifier():
            return value          # an enum label
        if len(value) == 1:
            return f"'{value}'"   # a char literal
    raise ValidationError(f"cannot render case label {value!r}")


def _literal(value) -> str:
    if isinstance(value, bool):
        return "TRUE" if value else "FALSE"
    if isinstance(value, (int, float)):
        return repr(value)
    if isinstance(value, str):
        return f'"{value}"'
    raise ValidationError(f"cannot render literal {value!r}")

"""An OMG IDL compiler (the CORBA 2.x subset CORBA-LC needs).

The paper deliberately keeps "CORBA 2 standard, mature IDL compilers"
(§2.1.2) instead of inventing IDL extensions; component metadata goes in
XML.  This package plays the role of that IDL compiler: it parses IDL
source and emits runtime artifacts —

- TypeCodes for every struct/enum/union/typedef/exception,
- :class:`~repro.orb.exceptions.UserException` subclasses,
- :class:`~repro.orb.core.InterfaceDef` objects registered in the
  interface repository, ready for stubs/skeletons.

Usage::

    from repro.idl import compile_idl
    mod = compile_idl('''
        module Demo {
          struct Point { double x; double y; };
          interface Mover {
            Point move(in Point from, in double dx);
          };
        };
    ''')
    mod.Demo.Mover          # InterfaceDef
    mod.Demo.Point          # TypeCode
"""

from repro.idl.lexer import IdlLexError, tokenize
from repro.idl.parser import IdlSyntaxError, parse
from repro.idl.codegen import CompiledModule, compile_ast, compile_idl

__all__ = [
    "tokenize",
    "parse",
    "compile_idl",
    "compile_ast",
    "CompiledModule",
    "IdlLexError",
    "IdlSyntaxError",
]

"""Volunteer computing (§3.2, after Sarmenta's Bayanihan).

Hosts *volunteer* while their user is idle and withdraw when the user
returns.  The master farms work shards onto registered volunteers,
installing the worker component on first contact, and re-queues shards
whose volunteer crashed or timed out — so the computation completes
despite churn (measured by benchmark C9).

Volunteers finish the shard they are on when their user comes back
(BOINC-style); they simply stop receiving new shards.
"""

from __future__ import annotations

from typing import Optional

from repro.components.reflection import InstanceInfo
from repro.container.aggregation import (
    WORKER_IFACE,
    dumps_shard,
    loads_shard,
)
from repro.grid.idle import IdleMonitor
from repro.idl import compile_idl
from repro.orb.core import Servant
from repro.orb.exceptions import SystemException
from repro.orb.ior import IOR
from repro.sim.kernel import Event, Interrupt
from repro.util.errors import ReproError

_MASTER_IDL = """
#pragma prefix "corbalc"
module Grid {
  interface Master {
    void register_volunteer(in string host);
    void unregister_volunteer(in string host);
    long pending_units();
  };
};
"""

MASTER_IFACE = compile_idl(_MASTER_IDL).Grid.Master

_PROCESS = WORKER_IFACE.operations["process_shard"]


class VolunteerError(ReproError):
    """Misconfigured volunteer computation."""


class MasterServant(Servant):
    _interface = MASTER_IFACE

    def __init__(self, master: "VolunteerMaster") -> None:
        self._master = master

    def register_volunteer(self, host: str) -> None:
        self._master.on_register(host)

    def unregister_volunteer(self, host: str) -> None:
        self._master.on_unregister(host)

    def pending_units(self) -> int:
        return len(self._master.queue) + len(self._master.in_flight)


class VolunteerMaster:
    """Farms shards of one component's work over volunteering hosts."""

    def __init__(self, node, component_name: str,
                 shard_timeout: float = 30.0,
                 dispatch_interval: float = 0.25) -> None:
        self.node = node
        self.component_name = component_name
        self.shard_timeout = shard_timeout
        self.dispatch_interval = dispatch_interval
        self.queue: list[dict] = []
        self.in_flight: dict[str, dict] = {}       # host -> shard
        self.partials: list = []
        self.volunteers: set[str] = set()
        self.workers: dict[str, IOR] = {}          # host -> worker facet
        self.requeues = 0
        self.done: Optional[Event] = None
        self._servant = MasterServant(self)
        node.orb.adapter("grid").activate(self._servant, key="master")
        self._dispatcher = None

    @property
    def ior(self) -> IOR:
        return self.node.orb.adapter("grid").ior_for("master")

    # -- membership (called by the servant) --------------------------------
    def on_register(self, host: str) -> None:
        self.volunteers.add(host)
        self.node.metrics.counter("volunteer.registrations").inc()

    def on_unregister(self, host: str) -> None:
        self.volunteers.discard(host)

    # -- work -------------------------------------------------------------------
    def submit(self, shards: list[dict]) -> Event:
        """Queue *shards*; returns an event yielding all partial results."""
        if self._dispatcher is not None and self._dispatcher.is_alive:
            raise VolunteerError("a computation is already running")
        self.queue = list(shards)
        self.partials = []
        self.done = self.node.env.event()
        self._dispatcher = self.node.env.process(self._dispatch_loop())
        return self.done

    def _dispatch_loop(self):
        env = self.node.env
        try:
            while self.queue or self.in_flight:
                free = [h for h in sorted(self.volunteers)
                        if h not in self.in_flight
                        and self.node.network.topology.host(h).alive]
                while self.queue and free:
                    host = free.pop(0)
                    shard = self.queue.pop(0)
                    self.in_flight[host] = shard
                    env.process(self._assign(host, shard))
                yield env.timeout(self.dispatch_interval)
            self.done.succeed(list(self.partials))
        except Interrupt:
            if self.done is not None and not self.done.triggered:
                self.done.fail(VolunteerError("master stopped")).defused()

    def _assign(self, host: str, shard: dict):
        try:
            facet = self.workers.get(host)
            if facet is None:
                facet = yield from self._provision(host)
            raw = yield self.node.orb.invoke(
                facet, _PROCESS, (dumps_shard(shard),),
                timeout=self.shard_timeout, meter="volunteer")
            self.partials.append(loads_shard(raw))
        except SystemException:
            # Volunteer died or timed out: requeue the shard.
            self.queue.append(shard)
            self.requeues += 1
            self.workers.pop(host, None)
            self.volunteers.discard(host)
            self.node.metrics.counter("volunteer.requeues").inc()
        finally:
            self.in_flight.pop(host, None)

    def _provision(self, host: str):
        """Install (if needed) and instantiate the worker on *host*."""
        cls = self.node.repository.lookup(self.component_name)
        exact = f"=={cls.version}"
        if host != self.node.host_id:
            acceptor = self.node.service_stub(host, "acceptor")
            if not (yield acceptor.is_installed(self.component_name, exact)):
                pkg = self.node.repository.package_bytes(self.component_name)
                yield acceptor.install(pkg)
        agent = self.node.service_stub(host, "container")
        info = InstanceInfo.from_value(
            (yield agent.create_instance(self.component_name, exact, "")))
        for port in info.ports:
            if port.kind == "facet" and port.type_id == WORKER_IFACE.repo_id:
                facet = IOR.from_string(port.peer)
                self.workers[host] = facet
                return facet
        raise VolunteerError(
            f"{self.component_name} exposes no Worker facet"
        )


class VolunteerAgent:
    """Runs on each workstation: registers with the master while idle."""

    def __init__(self, node, monitor: IdleMonitor, master_ior: IOR) -> None:
        self.node = node
        self.monitor = monitor
        self.master = node.orb.stub(master_ior, MASTER_IFACE)
        monitor.listeners.append(self._on_transition)
        node.host.on_restart.append(self._on_restart)
        if monitor.is_idle:
            self._announce(True)

    def _on_transition(self, _monitor, idle: bool) -> None:
        self._announce(idle)

    def _on_restart(self, _host) -> None:
        if self.monitor.is_idle:
            self._announce(True)

    def _announce(self, idle: bool) -> None:
        if not self.node.alive:
            return
        if idle:
            self.master.register_volunteer(self.node.host_id)
        else:
            self.master.unregister_volunteer(self.node.host_id)

"""Grid computing support (§3.2).

"Our view of Grid Computation targets scalable and intelligent resource
and CPU usage within a distributed system, using techniques such as
IDLE computation and volunteer computing."

- :mod:`repro.grid.idle` — per-host user-activity model; an active user
  reserves most of the host's CPU, so the Reflection Architecture (and
  every placement decision) sees the machine as busy.
- :mod:`repro.grid.worker` — the data-parallel Monte-Carlo π component
  (an aggregatable component in the §2.1.1 sense).
- :mod:`repro.grid.volunteer` — a master that farms work shards onto
  hosts that volunteer while idle, tolerating churn by re-queueing.
"""

from repro.grid.idle import IdleMonitor
from repro.grid.worker import (
    MonteCarloPiExecutor,
    montecarlo_package,
)
from repro.grid.volunteer import VolunteerMaster, VolunteerAgent

__all__ = [
    "IdleMonitor",
    "MonteCarloPiExecutor",
    "montecarlo_package",
    "VolunteerMaster",
    "VolunteerAgent",
]

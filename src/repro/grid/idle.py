"""User-activity model: when is a workstation harvestable?

"Supercomputing out of recycled garbage" (Gelernter's Piranha, cited by
the paper) harvests idle cycles.  The monitor alternates each host
between *busy* (an interactive user holds most of the CPU) and *idle*
periods; while busy, a CPU reservation is taken out of the host's
Resource Manager, so reflection-based placement automatically avoids
machines whose owners are using them.
"""

from __future__ import annotations

from typing import Callable

from repro.sim.kernel import Interrupt
from repro.xmlmeta.descriptors import QoSSpec


class IdleMonitor:
    """Alternating busy/idle process for one node."""

    def __init__(self, node, rng, mean_busy: float = 30.0,
                 mean_idle: float = 60.0, busy_cpu_fraction: float = 0.8,
                 start_idle: bool = True) -> None:
        self.node = node
        self.rng = rng
        self.mean_busy = mean_busy
        self.mean_idle = mean_idle
        self.busy_cpu_fraction = busy_cpu_fraction
        self.idle = start_idle
        self.transitions = 0
        #: called with (monitor, is_idle) on every transition
        self.listeners: list[Callable[["IdleMonitor", bool], None]] = []
        self._user_qos = QoSSpec(
            cpu_units=busy_cpu_fraction * node.host.profile.cpu_power,
            memory_mb=0.0)
        self._proc = node.env.process(self._loop())
        node.host.on_crash.append(self._on_crash)
        node.host.on_restart.append(self._on_restart)
        if not start_idle:
            self.node.resources.reserve(self._user_qos)

    @property
    def is_idle(self) -> bool:
        return self.idle and self.node.alive

    def _set_idle(self, idle: bool) -> None:
        if idle == self.idle:
            return
        self.idle = idle
        self.transitions += 1
        if idle:
            self.node.resources.release(self._user_qos)
        else:
            # The user takes priority; over-commit is allowed (the
            # machine is simply saturated), so bypass admission.
            self.node.resources.cpu_committed += self._user_qos.cpu_units
            self.node.resources.instance_count += 1
        for listener in list(self.listeners):
            listener(self, idle)

    def _loop(self):
        try:
            while True:
                mean = self.mean_idle if self.idle else self.mean_busy
                yield self.node.env.timeout(
                    float(self.rng.exponential(mean)))
                self._set_idle(not self.idle)
        except Interrupt:
            return

    def _on_crash(self, _host) -> None:
        if self._proc is not None and self._proc.is_alive:
            self._proc.interrupt("host crashed")
        self._proc = None

    def _on_restart(self, _host) -> None:
        self._proc = self.node.env.process(self._loop())

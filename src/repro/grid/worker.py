"""Monte-Carlo π: the reproduction's data-parallel workload.

An aggregatable component (§2.1.1): ``split`` shards the sample budget,
each shard is processed by a ``Worker`` facet that charges simulated
CPU in proportion to the samples drawn, and ``merge`` turns hit counts
into the π estimate.  Used by the aggregation coordinator (one-shot
scatter/gather) and the volunteer master (churn-tolerant farming).
"""

from __future__ import annotations

import numpy as np

from repro.components.executor import ComponentExecutor, StatefulMixin
from repro.sim.rng import derived_stream
from repro.container.aggregation import (
    WORKER_IFACE,
    dumps_shard,
    loads_shard,
)
from repro.orb.core import Servant
from repro.packaging.binaries import GLOBAL_BINARIES, synthetic_payload
from repro.packaging.package import ComponentPackage, PackageBuilder
from repro.xmlmeta.descriptors import (
    ComponentTypeDescriptor,
    ImplementationDescriptor,
    PortDecl,
    QoSSpec,
    SoftwareDescriptor,
)
from repro.xmlmeta.versions import Version

#: Simulated work units per 1000 samples.
COST_PER_KSAMPLE = 1.0


def count_hits(samples: int, seed: int) -> int:
    """How many of *samples* uniform points land inside the unit circle."""
    rng = derived_stream("grid.count_hits", seed)
    xs = rng.random(samples)
    ys = rng.random(samples)
    return int(np.count_nonzero(xs * xs + ys * ys <= 1.0))


class _PiWorkerFacet(Servant):
    _interface = WORKER_IFACE

    def __init__(self, executor: "MonteCarloPiExecutor") -> None:
        self._executor = executor

    def process_shard(self, shard: bytes):
        work = loads_shard(shard)
        samples = int(work["samples"])
        seed = int(work["seed"])
        ctx = self._executor.context
        if ctx is not None and samples > 0:
            yield ctx.charge_cpu(COST_PER_KSAMPLE * samples / 1000.0)
        hits = count_hits(samples, seed)
        self._executor.processed_samples += samples
        return dumps_shard({"samples": samples, "hits": hits})


class MonteCarloPiExecutor(StatefulMixin, ComponentExecutor):
    """Splittable π estimator."""

    STATE_ATTRS = ("total_samples", "base_seed")

    def __init__(self) -> None:
        super().__init__()
        self.total_samples = 0
        self.base_seed = 0
        self.processed_samples = 0

    def create_facet(self, port_name: str) -> Servant:
        assert port_name == "work"
        return _PiWorkerFacet(self)

    # -- aggregation hooks ------------------------------------------------
    def split(self, n_ways: int) -> list[dict]:
        base, extra = divmod(self.total_samples, n_ways)
        shards = []
        for i in range(n_ways):
            shards.append({
                "samples": base + (1 if i < extra else 0),
                "seed": self.base_seed + i,
            })
        return shards

    def merge(self, partials: list) -> float:
        samples = sum(p["samples"] for p in partials)
        hits = sum(p["hits"] for p in partials)
        if samples == 0:
            return float("nan")
        return 4.0 * hits / samples

    @staticmethod
    def merge_values(partials: list) -> float:
        """Merge without an executor instance (volunteer master path)."""
        return MonteCarloPiExecutor().merge(partials)


def montecarlo_package(version: str = "1.0.0",
                       cpu_units: float = 50.0) -> ComponentPackage:
    entry = "grid.montecarlo"
    GLOBAL_BINARIES.register(entry, MonteCarloPiExecutor)
    soft = SoftwareDescriptor(
        name="MonteCarloPi", version=Version.parse(version), vendor="grid",
        abstract="Data-parallel Monte-Carlo pi estimator.",
        mobility="mobile", replication="stateless",
        aggregation="data-parallel",
        implementations=[ImplementationDescriptor(
            "*", "*", "*", entry, "bin/any/mcpi")],
    )
    comp = ComponentTypeDescriptor(
        name="MonteCarloPi",
        provides=[PortDecl("work", WORKER_IFACE.repo_id)],
        qos=QoSSpec(cpu_units=cpu_units, memory_mb=16.0),
    )
    builder = PackageBuilder(soft, comp)
    builder.add_binary("bin/any/mcpi", synthetic_payload(10_000, seed=31))
    return ComponentPackage(builder.build())

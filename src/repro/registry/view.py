"""Wire-level views the Distributed Registry trades in.

A :class:`NodeView` is what one node publishes to its Meta-Resource
Manager: its resource snapshot, installed components and running
providers ("the meta-data given by the Reflection Architecture in each
node", §2.4.3).  A :class:`Candidate` is one answer to a distributed
component query.  An :class:`Aggregate` is the compressed subtree
summary a child MRM reports to its parent — the hierarchy's bandwidth
saving comes precisely from this compression.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.components.reflection import COMPONENT_INFO_TC, ComponentInfo
from repro.node.resources import RESOURCE_SNAPSHOT_TC, ResourceSnapshot
from repro.orb.typecodes import (
    sequence_tc,
    struct_tc,
    tc_boolean,
    tc_double,
    tc_string,
)

RUNNING_PROVIDER_TC = struct_tc("RunningProvider", [
    ("repo_id", tc_string),
    ("ior", tc_string),
], repo_id="IDL:corbalc/Registry/RunningProvider:1.0")

NODE_VIEW_TC = struct_tc("NodeView", [
    ("snapshot", RESOURCE_SNAPSHOT_TC),
    ("components", sequence_tc(COMPONENT_INFO_TC)),
    ("running", sequence_tc(RUNNING_PROVIDER_TC)),
    ("generation", tc_double),
], repo_id="IDL:corbalc/Registry/NodeView:1.0")

CANDIDATE_TC = struct_tc("Candidate", [
    ("host", tc_string),
    ("component", tc_string),
    ("version", tc_string),
    ("running_ior", tc_string),     # "" when only installed, not running
    ("mobility", tc_string),
    ("free_cpu", tc_double),
    ("free_memory", tc_double),
    ("is_tiny", tc_boolean),
    ("group", tc_string),           # group the answer came from
], repo_id="IDL:corbalc/Registry/Candidate:1.0")

AGGREGATE_TC = struct_tc("Aggregate", [
    ("group", tc_string),
    ("mrm_host", tc_string),
    ("repo_ids", sequence_tc(tc_string)),   # providable interfaces
    ("free_cpu", tc_double),                # best single-host free CPU
    ("member_count", tc_double),
], repo_id="IDL:corbalc/Registry/Aggregate:1.0")


@dataclass(frozen=True)
class NodeView:
    snapshot: ResourceSnapshot
    components: tuple[ComponentInfo, ...]
    running: tuple[tuple[str, str], ...]   # (repo_id, ior)
    generation: float

    def to_value(self) -> dict:
        return {
            "snapshot": self.snapshot.to_value(),
            "components": [c.to_value() for c in self.components],
            "running": [{"repo_id": r, "ior": i} for r, i in self.running],
            "generation": self.generation,
        }

    @classmethod
    def from_value(cls, value: dict) -> "NodeView":
        return cls(
            snapshot=ResourceSnapshot.from_value(value["snapshot"]),
            components=tuple(ComponentInfo.from_value(c)
                             for c in value["components"]),
            running=tuple((r["repo_id"], r["ior"])
                          for r in value["running"]),
            generation=value["generation"],
        )

    @classmethod
    def collect(cls, node) -> "NodeView":
        """Capture this node's current view (reflection architecture)."""
        registry = node.registry
        running = []
        for info in registry.instances():
            for port in info.ports:
                if port.kind == "facet" and port.peer:
                    running.append((port.type_id, port.peer))
        return cls(
            snapshot=node.resources.snapshot(),
            components=tuple(registry.installed()),
            running=tuple(running),
            generation=float(registry.generation),
        )

    def provides(self, repo_id: str) -> bool:
        if any(r == repo_id for r, _ in self.running):
            return True
        return any(repo_id in c.provides for c in self.components)


def qos_admits(free_cpu: float, free_memory: float, qos) -> bool:
    """Headroom check for *instantiating* a new provider on a host.

    Applies to installed-only candidates: a host that already runs the
    provider is reused in place and needs no free CPU or memory, so
    callers must exempt running candidates from this filter.
    """
    if qos.cpu_units and free_cpu < qos.cpu_units:
        return False
    if qos.memory_mb and free_memory < qos.memory_mb:
        return False
    return True


@dataclass(frozen=True)
class Candidate:
    host: str
    component: str
    version: str
    running_ior: str
    mobility: str
    free_cpu: float
    free_memory: float
    is_tiny: bool
    group: str = ""

    @property
    def is_running(self) -> bool:
        return bool(self.running_ior)

    def to_value(self) -> dict:
        return {
            "host": self.host, "component": self.component,
            "version": self.version, "running_ior": self.running_ior,
            "mobility": self.mobility, "free_cpu": self.free_cpu,
            "free_memory": self.free_memory, "is_tiny": self.is_tiny,
            "group": self.group,
        }

    @classmethod
    def from_value(cls, value: dict) -> "Candidate":
        return cls(**value)

    @classmethod
    def from_view(cls, view: NodeView, repo_id: str,
                  group: str = "") -> "list[Candidate]":
        """All candidates a node's view offers for *repo_id*."""
        out: list[Candidate] = []
        snap = view.snapshot
        running_by_repo: dict[str, str] = {}
        for rid, ior in view.running:
            running_by_repo.setdefault(rid, ior)
        for comp in view.components:
            if repo_id not in comp.provides:
                continue
            out.append(cls(
                host=snap.host, component=comp.name, version=comp.version,
                running_ior=running_by_repo.get(repo_id, ""),
                mobility=comp.mobility,
                free_cpu=snap.cpu_available,
                free_memory=snap.memory_available,
                is_tiny=snap.is_tiny, group=group,
            ))
        return out


@dataclass(frozen=True)
class Aggregate:
    """Compressed subtree summary a child MRM sends its parent."""

    group: str
    mrm_host: str
    repo_ids: tuple[str, ...]
    free_cpu: float
    member_count: float

    def to_value(self) -> dict:
        return {
            "group": self.group, "mrm_host": self.mrm_host,
            "repo_ids": list(self.repo_ids), "free_cpu": self.free_cpu,
            "member_count": self.member_count,
        }

    @classmethod
    def from_value(cls, value: dict) -> "Aggregate":
        return cls(group=value["group"], mrm_host=value["mrm_host"],
                   repo_ids=tuple(value["repo_ids"]),
                   free_cpu=value["free_cpu"],
                   member_count=value["member_count"])

"""Strong-consistency baseline (what §2.4.3 argues against).

"Strong" here means the MRM is told about *every* change immediately
and reliably: each repository/container change triggers an acknowledged
update (retried on timeout), and a fast heartbeat keeps liveness
knowledge tight.  The consistency benchmark (C4) contrasts this
protocol's bandwidth with the soft-state reporter's.
"""

from __future__ import annotations

from typing import Sequence

from repro.orb.exceptions import SystemException
from repro.orb.ior import IOR
from repro.registry.mrm import MRM_IFACE, MrmConfig
from repro.registry.view import NodeView
from repro.sim.kernel import Interrupt

METER = "registry.strong"

#: The report op is oneway by design; the strong protocol wants an
#: acknowledged update, so it uses member_hosts() as a cheap synchronous
#: barrier after each report (real systems would have an acked update
#: op; the message count is the same: request + reply).
_REPORT = MRM_IFACE.operations["report"]
_ACK = MRM_IFACE.operations["member_hosts"]


class StrongStateReporter:
    """Immediate, acknowledged change propagation + fast heartbeats."""

    def __init__(self, node, mrm_iors: Sequence[IOR], config: MrmConfig,
                 heartbeat_divisor: float = 5.0, retries: int = 2,
                 meter: str = METER) -> None:
        self.node = node
        self.mrm_iors = list(mrm_iors)
        self.config = config
        self.heartbeat = config.update_interval / heartbeat_divisor
        self.retries = retries
        self.meter = meter
        self.reports_sent = 0
        self.acks_received = 0
        self._procs = []
        self._start()
        node.repository.listeners.append(self._on_change)
        node.container.listeners.append(self._on_change)
        node.host.on_crash.append(self._on_crash)
        node.host.on_restart.append(self._on_restart)

    def _start(self) -> None:
        self._procs = [self.node.env.process(self._heartbeat_loop())]

    def _on_crash(self, _host) -> None:
        for proc in self._procs:
            if proc.is_alive:
                proc.interrupt("host crashed")
        self._procs = []

    def _on_restart(self, _host) -> None:
        self._start()

    def _on_change(self, _action, _subject) -> None:
        if not self.node.alive:
            return
        self._procs.append(self.node.env.process(self._send_acked()))
        self._procs = [p for p in self._procs if p.is_alive]

    def _send_acked(self):
        view = NodeView.collect(self.node).to_value()
        for mrm in self.mrm_iors:
            for attempt in range(1 + self.retries):
                self.node.orb.send_oneway(mrm, _REPORT,
                                          (self.node.host_id, view),
                                          meter=self.meter)
                self.reports_sent += 1
                try:
                    yield self.node.orb.invoke(
                        mrm, _ACK, (), timeout=self.config.query_timeout,
                        meter=self.meter)
                    self.acks_received += 1
                    break
                except SystemException:
                    continue  # retry the update

    def _heartbeat_loop(self):
        try:
            while True:
                yield self.node.env.timeout(self.heartbeat)
                view = NodeView.collect(self.node).to_value()
                for mrm in self.mrm_iors:
                    self.node.orb.send_oneway(mrm, _REPORT,
                                              (self.node.host_id, view),
                                              meter=self.meter)
                self.reports_sent += 1
        except Interrupt:
            return

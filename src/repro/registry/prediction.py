"""Predictive (dead-reckoning) reporting (§2.4.3).

"Predictive and adaptive techniques can be used to predict the resource
availability, thus reducing even more the bandwidth requirements."

The reporter fits an exponentially-weighted slope to its CPU
availability and sends ``report_model`` (view + slope) instead of plain
reports.  Between reports the MRM extrapolates.  A new report is sent
only when:

- the MRM's extrapolation would be off by more than ``tolerance`` CPU
  units, or
- the registry generation changed (components/instances came or went), or
- ``keepalive_factor`` × update_interval elapsed since the last report
  (so the MRM's soft-state timeout still detects crashes).

Bandwidth drops in proportion to how predictable the load is; the C10
benchmark quantifies the trade against view staleness.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.orb.ior import IOR
from repro.registry.mrm import MRM_IFACE, MrmConfig
from repro.registry.view import NodeView
from repro.sim.kernel import Interrupt

METER = "registry.pred"

_REPORT_MODEL = MRM_IFACE.operations["report_model"]


class EwmaSlope:
    """Exponentially-weighted estimate of d(value)/dt."""

    def __init__(self, alpha: float = 0.3) -> None:
        self.alpha = alpha
        self.slope = 0.0
        self._last_value: Optional[float] = None
        self._last_time: Optional[float] = None

    def observe(self, time: float, value: float) -> float:
        if self._last_time is not None and time > self._last_time:
            instantaneous = (value - self._last_value) / (time - self._last_time)
            self.slope = (self.alpha * instantaneous
                          + (1.0 - self.alpha) * self.slope)
        self._last_value = value
        self._last_time = time
        return self.slope


class PredictiveReporter:
    """Model-based reporter: silence while the model stays accurate."""

    def __init__(self, node, mrm_iors: Sequence[IOR], config: MrmConfig,
                 tolerance: float = 10.0, keepalive_factor: float = 2.5,
                 alpha: float = 0.3, phase: float = 0.0,
                 meter: str = METER) -> None:
        self.node = node
        self.mrm_iors = list(mrm_iors)
        self.config = config
        self.tolerance = tolerance
        self.keepalive = keepalive_factor * config.update_interval
        self.phase = phase % config.update_interval
        self.meter = meter
        self.model = EwmaSlope(alpha=alpha)
        self.reports_sent = 0
        self.reports_suppressed = 0
        # What the MRM believes, for divergence checks.
        self._sent_value: Optional[float] = None
        self._sent_slope = 0.0
        self._sent_time = 0.0
        self._sent_generation = -1.0
        self._proc = None
        self._start()
        node.host.on_crash.append(self._on_crash)
        node.host.on_restart.append(self._on_restart)

    def _start(self) -> None:
        self._proc = self.node.env.process(self._loop())

    def _on_crash(self, _host) -> None:
        if self._proc is not None and self._proc.is_alive:
            self._proc.interrupt("host crashed")
        self._proc = None
        self._sent_value = None  # MRM will expire us; resync on restart

    def _on_restart(self, _host) -> None:
        self._start()

    # -- core ------------------------------------------------------------------
    def _mrm_estimate(self) -> Optional[float]:
        if self._sent_value is None:
            return None
        return (self._sent_value
                + self._sent_slope * (self.node.env.now - self._sent_time))

    def _should_send(self, actual: float, generation: float) -> bool:
        estimate = self._mrm_estimate()
        if estimate is None:
            return True
        if generation != self._sent_generation:
            return True
        if abs(estimate - actual) > self.tolerance:
            return True
        if self.node.env.now - self._sent_time >= self.keepalive:
            return True
        return False

    def _send(self, view: NodeView, slope: float) -> None:
        value = view.to_value()
        for mrm in self.mrm_iors:
            self.node.orb.send_oneway(mrm, _REPORT_MODEL,
                                      (self.node.host_id, value, slope),
                                      meter=self.meter)
        self.reports_sent += 1
        self._sent_value = view.snapshot.cpu_available
        self._sent_slope = slope
        self._sent_time = self.node.env.now
        self._sent_generation = view.generation

    def _loop(self):
        try:
            if self.phase:
                yield self.node.env.timeout(self.phase)
            while True:
                view = NodeView.collect(self.node)
                slope = self.model.observe(self.node.env.now,
                                           view.snapshot.cpu_available)
                if self._should_send(view.snapshot.cpu_available,
                                     view.generation):
                    self._send(view, slope)
                else:
                    self.reports_suppressed += 1
                yield self.node.env.timeout(self.config.update_interval)
        except Interrupt:
            return

    def retarget(self, mrm_iors: Sequence[IOR]) -> None:
        self.mrm_iors = list(mrm_iors)
        self._sent_value = None  # force a fresh report to the new MRM

"""Versioned records the federated registry gossips.

Two record kinds travel between shard owners:

- :class:`ProviderRecord` — "host H can provide repo-id R": one per
  (repo_id, host) pair, carrying the reuse/instantiation facts a
  resolver needs (running IOR, installable component, headroom).
- :class:`HostBeacon` — "host H was alive at epoch T": the membership
  view, gossiped everywhere so any owner can answer liveness queries.

Both carry a **report epoch** (the sim-time their source observed the
fact) and merge by the epidemic rule the issue prescribes: highest
epoch wins, ties broken by the reporting host id.  Merging is therefore
commutative, associative and idempotent — the order gossip frames
arrive in cannot change the converged state.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.orb.typecodes import (
    struct_tc,
    tc_boolean,
    tc_double,
    tc_string,
)
from repro.registry.view import Candidate

PROVIDER_RECORD_TC = struct_tc("ProviderRecord", [
    ("repo_id", tc_string),
    ("host", tc_string),
    ("component", tc_string),       # "" when running-only
    ("version", tc_string),
    ("running_ior", tc_string),     # "" when only installed
    ("mobility", tc_string),
    ("free_cpu", tc_double),
    ("free_memory", tc_double),
    ("is_tiny", tc_boolean),
    ("epoch", tc_double),
    ("retired", tc_boolean),        # tombstone: provider went away
], repo_id="IDL:corbalc/Federation/ProviderRecord:1.0")

HOST_BEACON_TC = struct_tc("HostBeacon", [
    ("host", tc_string),
    ("epoch", tc_double),
    ("alive", tc_boolean),
    ("owner", tc_boolean),          # shard owner vs plain member
], repo_id="IDL:corbalc/Federation/HostBeacon:1.0")


@dataclass(frozen=True)
class ProviderRecord:
    repo_id: str
    host: str
    component: str
    version: str
    running_ior: str
    mobility: str
    free_cpu: float
    free_memory: float
    is_tiny: bool
    epoch: float
    retired: bool = False

    @property
    def key(self) -> tuple[str, str]:
        return (self.repo_id, self.host)

    def beats(self, other: "ProviderRecord") -> bool:
        """Epidemic merge order: highest epoch, host id breaks ties."""
        return (self.epoch, self.host) > (other.epoch, other.host)

    def to_value(self) -> dict:
        return {
            "repo_id": self.repo_id, "host": self.host,
            "component": self.component, "version": self.version,
            "running_ior": self.running_ior, "mobility": self.mobility,
            "free_cpu": self.free_cpu, "free_memory": self.free_memory,
            "is_tiny": self.is_tiny, "epoch": self.epoch,
            "retired": self.retired,
        }

    @classmethod
    def from_value(cls, value: dict) -> "ProviderRecord":
        return cls(**value)

    def to_candidate(self, group: str = "") -> Candidate:
        return Candidate(
            host=self.host, component=self.component,
            version=self.version, running_ior=self.running_ior,
            mobility=self.mobility, free_cpu=self.free_cpu,
            free_memory=self.free_memory, is_tiny=self.is_tiny,
            group=group)


@dataclass(frozen=True)
class HostBeacon:
    host: str
    epoch: float
    alive: bool
    owner: bool

    def beats(self, other: "HostBeacon") -> bool:
        return (self.epoch, self.host) > (other.epoch, other.host)

    def to_value(self) -> dict:
        return {"host": self.host, "epoch": self.epoch,
                "alive": self.alive, "owner": self.owner}

    @classmethod
    def from_value(cls, value: dict) -> "HostBeacon":
        return cls(**value)


class RecordStore:
    """One shard owner's replica of its slice of the record space."""

    def __init__(self) -> None:
        self._records: dict[tuple[str, str], ProviderRecord] = {}
        self._by_repo: dict[str, dict[str, ProviderRecord]] = {}
        self._touched: dict[tuple[str, str], float] = {}
        self.applied = 0
        self.rejected = 0

    def __len__(self) -> int:
        return len(self._records)

    def apply(self, record: ProviderRecord, now: float) -> bool:
        """Merge one record; True when it won against the incumbent."""
        current = self._records.get(record.key)
        if current is not None and not record.beats(current):
            self.rejected += 1
            return False
        self._records[record.key] = record
        self._by_repo.setdefault(record.repo_id, {})[record.host] = record
        self._touched[record.key] = now
        self.applied += 1
        return True

    def lookup(self, repo_id: str) -> list[ProviderRecord]:
        found = self._by_repo.get(repo_id)
        if not found:
            return []
        return [r for r in found.values() if not r.retired]

    def records(self) -> list[ProviderRecord]:
        return list(self._records.values())

    def changed_since(self, since: float) -> list[ProviderRecord]:
        """Records merged at-or-after *since* (the gossip delta)."""
        return [self._records[key]
                for key, when in self._touched.items() if when >= since]

    def sweep(self, cutoff: float) -> int:
        """Expire soft state: drop records reported before *cutoff*."""
        stale = [key for key, rec in self._records.items()
                 if rec.epoch < cutoff]
        for key in stale:
            rec = self._records.pop(key)
            self._touched.pop(key, None)
            repo = self._by_repo.get(rec.repo_id)
            if repo is not None:
                repo.pop(rec.host, None)
                if not repo:
                    del self._by_repo[rec.repo_id]
        return len(stale)

    def clear(self) -> None:
        self._records.clear()
        self._by_repo.clear()
        self._touched.clear()


class MembershipTable:
    """Per-owner gossiped view of the federation's hosts.

    Two planes that must not corrupt each other:

    - the **owner plane** (``owner=True`` beacons): which hosts serve
      shards.  Merged by the epidemic epoch rule, with explicit
      dead-marking on failure detection or retirement.
    - the **member plane** (``owner=False`` beacons): when each plain
      host was last heard from.  Pure freshness — the maximum observed
      epoch wins, and silence past a timeout means "down".

    A shard owner is also a reporting member; keeping the planes
    separate is what stops its member publishes (fresh epochs, owner
    unset) from demoting its owner beacon.
    """

    def __init__(self) -> None:
        self._owners: dict[str, HostBeacon] = {}
        self._members: dict[str, float] = {}
        self._member_touched: dict[str, float] = {}

    def __len__(self) -> int:
        return len(set(self._owners) | set(self._members))

    def __contains__(self, host: str) -> bool:
        return host in self._owners or host in self._members

    def apply(self, beacon: HostBeacon) -> bool:
        if not beacon.owner:
            return self.observe_member(beacon.host, beacon.epoch,
                                       beacon.epoch)
        current = self._owners.get(beacon.host)
        if current is not None and not beacon.beats(current):
            return False
        self._owners[beacon.host] = beacon
        return True

    def observe_member(self, host: str, epoch: float,
                       now: float) -> bool:
        if epoch <= self._members.get(host, -1.0):
            return False
        self._members[host] = epoch
        self._member_touched[host] = now
        return True

    def get(self, host: str):
        return self._owners.get(host)

    def beacons(self) -> list[HostBeacon]:
        """Both planes as gossip-ready beacons."""
        out = list(self._owners.values())
        out.extend(HostBeacon(host, epoch, alive=True, owner=False)
                   for host, epoch in self._members.items())
        return out

    def member_beacons_since(self, since: float) -> list[HostBeacon]:
        """Member-plane beacons learned at-or-after *since* (delta)."""
        return [HostBeacon(host, self._members[host], alive=True,
                           owner=False)
                for host, when in self._member_touched.items()
                if when >= since]

    def mark_dead(self, host: str, now: float) -> None:
        """Locally declare an owner down (spreads on the next round)."""
        current = self._owners.get(host)
        if current is not None and current.alive:
            self._owners[host] = replace(current, epoch=now, alive=False)
        self._members.pop(host, None)
        self._member_touched.pop(host, None)

    def live(self, now: float, timeout: float) -> set[str]:
        """Hosts believed alive: declared so, and recently enough."""
        cutoff = now - timeout
        out = {b.host for b in self._owners.values()
               if b.alive and b.epoch >= cutoff}
        out.update(host for host, epoch in self._members.items()
                   if epoch >= cutoff)
        return out

    def live_owners(self, now: float, timeout: float) -> list[str]:
        return sorted(b.host for b in self._owners.values()
                      if b.alive and b.epoch >= now - timeout)

    def clear(self) -> None:
        self._owners.clear()
        self._members.clear()
        self._member_touched.clear()

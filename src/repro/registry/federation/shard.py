"""Shard owners: the active agents of the federated registry.

A :class:`ShardAgent` runs on each owner host.  It keeps a
:class:`~repro.registry.federation.records.RecordStore` with its slice
of the provider-record space and a gossiped
:class:`~repro.registry.federation.records.MembershipTable`, and runs
**seeded epidemic rounds**: every ``gossip_interval`` it picks
``fanout`` live peers from its own membership view (a named RNG
stream, so runs are reproducible), publishes its round delta onto the
node's event bus, and a batched bus subscription fans the flush out as
**one** marshalled ``gossip`` frame per peer via
:meth:`~repro.orb.core.ORB.send_oneway_fanout` — the PR-7 machinery,
retargeted at each round's peer set.

Anti-entropy: most rounds carry only the records merged since the
previous round, but every ``full_sync_every``-th round pushes the full
owned set, so an owner that lost its RAM (crash/restart) or missed
deltas (partition) converges back within a bounded number of rounds.

Peer discovery is itself epidemic: an agent starts knowing only its
``seed_peers`` and learns the rest of the owner population from the
beacons piggybacked on every gossip frame.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional, Sequence

from repro.obs import names
from repro.orb.core import InterfaceDef, Servant, op
from repro.orb.ior import IOR
from repro.orb.typecodes import (
    sequence_tc,
    tc_boolean,
    tc_double,
    tc_long,
    tc_string,
)
from repro.registry.view import CANDIDATE_TC, qos_admits
from repro.registry.federation.records import (
    HOST_BEACON_TC,
    HostBeacon,
    MembershipTable,
    PROVIDER_RECORD_TC,
    ProviderRecord,
    RecordStore,
)
from repro.sim.kernel import Interrupt
from repro.xmlmeta.descriptors import QoSSpec

SHARD_ADAPTER = "node"
SHARD_KEY = "shard"

#: Bus topic one agent's gossip rounds publish record deltas to.
GOSSIP_TOPIC = "federation.gossip"

METER = "federation.gossip"

SHARD_IFACE = InterfaceDef(
    "IDL:corbalc/Federation/Shard:1.0",
    "Shard",
    operations=[
        # Member -> owner: one publish round of provider records.
        # *epoch* stamps the round even when *records* is empty, so the
        # batch doubles as the member's liveness beacon.
        op("publish_batch", [("origin", tc_string), ("epoch", tc_double),
                             ("records", sequence_tc(PROVIDER_RECORD_TC))],
           oneway=True),
        # Owner <-> owner: one epidemic round (delta + membership).
        op("gossip", [("records", sequence_tc(PROVIDER_RECORD_TC)),
                      ("beacons", sequence_tc(HOST_BEACON_TC))],
           oneway=True),
        # Resolver -> owner: candidates for one repo-id under a QoS bar.
        op("lookup", [("repo_id", tc_string), ("cpu", tc_double),
                      ("memory", tc_double), ("bandwidth", tc_double)],
           sequence_tc(CANDIDATE_TC), cpu_cost=0.2),
        op("shard_hosts", [], sequence_tc(tc_string)),
        op("record_count", [], tc_long),
        op("is_shard_alive", [], tc_boolean),
    ],
)


def shard_ior(host: str) -> IOR:
    return IOR(SHARD_IFACE.repo_id, host, SHARD_ADAPTER, SHARD_KEY)


class ShardAgent:
    """One shard owner: record store + membership + gossip rounds."""

    def __init__(self, node, ring, config,
                 seed_peers: Sequence[str] = ()) -> None:
        self.node = node
        self.ring = ring
        self.config = config
        self.seed_peers = tuple(h for h in seed_peers
                                if h != node.host_id)
        self.store = RecordStore()
        self.membership = MembershipTable()
        self.rounds = 0
        self._last_round = 0.0
        self._round_beacons = None
        self._rng = node.network.rngs.stream(
            f"federation.gossip.{node.host_id}")
        self._proc = None
        self._sub = None
        self._forwarder = None
        self._servant = ShardServant(self)
        node.orb.adapter(SHARD_ADAPTER).activate(self._servant,
                                                 key=SHARD_KEY)
        self._wire_bus()
        self._bootstrap()
        self._start()
        node.host.on_crash.append(self._on_crash)
        node.host.on_restart.append(self._on_restart)

    # -- identity -----------------------------------------------------------
    @property
    def env(self):
        return self.node.env

    @property
    def host_id(self) -> str:
        return self.node.host_id

    @property
    def ior(self) -> IOR:
        return shard_ior(self.host_id)

    # -- wiring -------------------------------------------------------------
    def _wire_bus(self) -> None:
        from repro.events.bus import EventBus
        from repro.events.remote import FanoutForwarder

        bus = getattr(self.node, "bus", None)
        if bus is None:
            bus = EventBus(self.node.env, self.node.metrics)
            self.node.bus = bus
        self._bus = bus
        gossip_op = SHARD_IFACE.operations["gossip"]
        # Destinations start empty; each round retargets the forwarder
        # at that round's sampled peer set before flushing.
        self._forwarder = FanoutForwarder(
            self.node.orb, (), gossip_op,
            to_args=self._gossip_args, meter=METER)
        self._sub = bus.batch_subscribe(
            GOSSIP_TOPIC, self._forwarder.deliver,
            max_batch=self.config.gossip_batch,
            max_age=self.config.gossip_interval)

    def _gossip_args(self, events) -> tuple:
        records = [e.payload for e in events if e.payload is not None]
        beacons = (self._round_beacons
                   if self._round_beacons is not None
                   else self.membership.beacons())
        return (records, [b.to_value() for b in beacons])

    def _bootstrap(self) -> None:
        """Initial membership: self plus the configured seed peers."""
        now = self.env.now
        self.membership.apply(
            HostBeacon(self.host_id, now, alive=True, owner=True))
        for peer in self.seed_peers:
            self.membership.apply(
                HostBeacon(peer, now, alive=True, owner=True))

    # -- lifecycle ----------------------------------------------------------
    def _start(self) -> None:
        self._proc = self.env.process(self._gossip_loop())

    def _on_crash(self, _host) -> None:
        if self._proc is not None and self._proc.is_alive:
            self._proc.interrupt("host crashed")
        self._proc = None
        # RAM is gone: records and learned membership alike.  Deltas
        # buffered in the flush window die with the host too.
        self.store.clear()
        self.membership.clear()
        if self._sub is not None:
            self._sub.clear()

    def _on_restart(self, _host) -> None:
        # Resume from the static seed list; anti-entropy full syncs
        # from peers repopulate the record store.
        self._bootstrap()
        self._start()

    def retire(self) -> None:
        """Permanently stand this owner down (drained or replaced).

        Unlike a crash, retirement unhooks the agent from its host: a
        later restart of the host must not resurrect the gossip loop,
        and the shard key must be free for a future re-promotion.
        """
        if self._proc is not None and self._proc.is_alive:
            self._proc.interrupt("owner retired")
        self._proc = None
        if self._sub is not None:
            self._sub.cancel()
            self._sub = None
        for hooks, cb in ((self.node.host.on_crash, self._on_crash),
                          (self.node.host.on_restart, self._on_restart)):
            if cb in hooks:
                hooks.remove(cb)
        self.node.orb.adapter(SHARD_ADAPTER).deactivate(SHARD_KEY)
        self.store.clear()
        self.membership.clear()

    # -- gossip rounds ------------------------------------------------------
    def _gossip_loop(self):
        try:
            # Desynchronize the fleet's rounds.
            phase = float(self._rng.uniform(0.0,
                                            self.config.gossip_interval))
            if phase:
                yield self.env.timeout(phase)
            while True:
                self._gossip_round()
                yield self.env.timeout(self.config.gossip_interval)
        except Interrupt:
            return

    def _pick_peers(self) -> list[str]:
        now = self.env.now
        peers = set(self.membership.live_owners(
            now, self.config.member_timeout))
        peers.update(self.seed_peers)
        peers.discard(self.host_id)
        ordered = sorted(peers)
        if len(ordered) <= self.config.fanout:
            return ordered
        picks = self._rng.choice(len(ordered), size=self.config.fanout,
                                 replace=False)
        return [ordered[int(i)] for i in sorted(picks)]

    def _gossip_round(self) -> None:
        now = self.env.now
        self.membership.apply(
            HostBeacon(self.host_id, now, alive=True, owner=True))
        # Suspect silence: peers whose beacons went stale are marked
        # dead locally, and the marking itself gossips onward.
        for beacon in self.membership.beacons():
            if (beacon.alive and beacon.host != self.host_id
                    and beacon.epoch < now - self.config.member_timeout):
                self.membership.mark_dead(beacon.host, now)
        self.rounds += 1
        full_sync = (self.rounds % self.config.full_sync_every == 0)
        # The owner plane is small and rides along whole every round;
        # the (population-sized) member plane travels as a delta, whole
        # only on anti-entropy rounds.
        owner_beacons = [b for b in self.membership.beacons() if b.owner]
        if full_sync:
            self.store.sweep(now - self.config.record_timeout)
            outgoing = self.store.records()
            member_beacons = self.membership.member_beacons_since(0.0)
        else:
            outgoing = self.store.changed_since(self._last_round)
            member_beacons = self.membership.member_beacons_since(
                self._last_round)
        self._round_beacons = owner_beacons + member_beacons
        self._last_round = now
        peers = self._pick_peers()
        if not peers:
            return
        self._forwarder.retarget([shard_ior(h) for h in peers])
        if outgoing:
            for record in outgoing:
                self._bus.publish(GOSSIP_TOPIC, record.to_value())
        else:
            # Beacon-only heartbeat round.
            self._bus.publish(GOSSIP_TOPIC, None)
        self._sub.flush()
        self.node.metrics.counter(names.FEDERATION_ROUNDS).inc()

    # -- state merging ------------------------------------------------------
    def _owns(self, repo_id: str) -> bool:
        return self.host_id in self.ring.owners(
            repo_id, self.config.replication)

    def _clamp_epoch(self, epoch: float, now: float) -> float:
        """Cap a reported epoch at ``now + epoch_tolerance``.

        Epochs are *soft-state TTL clocks*: a record whose epoch sits
        far in the future is never swept, beats every honest refresh,
        and keeps a dead host "fresh" in the membership view forever.
        One clock-skewed reporter could therefore poison every owner
        it reaches.  Owners only ever trust their own clock: whatever
        a publish or gossip frame claims, the accepted epoch is at
        most (almost) the local receive time.
        """
        limit = now + self.config.epoch_tolerance
        if epoch <= limit:
            return epoch
        self.node.metrics.counter(names.FEDERATION_EPOCH_CLAMPED).inc()
        return limit

    def _known_host(self, host: str) -> bool:
        """Membership/record host ids must name real population hosts.

        State arrives over an unreliable wire: a bit flip inside a
        host-id string survives CDR decoding (same length, different
        bytes) and, unchecked, a phantom host enters the membership
        table — after which gossip fan-out tries to *route* to it and
        the owner's loop dies on an unknown-destination error.  The
        topology is the ground truth of who can exist; anything else
        is dropped and counted.
        """
        if host in self.node.network.topology:
            return True
        self.node.metrics.counter(names.FEDERATION_REJECTED_UNKNOWN_HOST).inc()
        return False

    def accept_publish(self, origin: str, epoch: float,
                       records: Sequence[dict]) -> None:
        now = self.env.now
        epoch = self._clamp_epoch(epoch, now)
        if self._known_host(origin):
            self.membership.observe_member(origin, epoch, now)
        for value in records:
            record = ProviderRecord.from_value(value)
            if not self._known_host(record.host):
                continue
            clamped = self._clamp_epoch(record.epoch, now)
            if clamped != record.epoch:
                record = replace(record, epoch=clamped)
            self.store.apply(record, now)

    def accept_gossip(self, records: Sequence[dict],
                      beacons: Sequence[dict]) -> None:
        now = self.env.now
        for value in beacons:
            beacon = HostBeacon.from_value(value)
            if not self._known_host(beacon.host):
                continue
            clamped = self._clamp_epoch(beacon.epoch, now)
            if clamped != beacon.epoch:
                beacon = replace(beacon, epoch=clamped)
            if beacon.owner:
                self.membership.apply(beacon)
            else:
                # Member freshness: stamp the *learn* time locally so
                # the next delta round forwards what we just heard.
                self.membership.observe_member(beacon.host, beacon.epoch,
                                               now)
        for value in records:
            record = ProviderRecord.from_value(value)
            if not self._known_host(record.host):
                continue
            # Keep shards bounded: only merge records this owner is
            # responsible for under the current ring.
            if self._owns(record.repo_id):
                clamped = self._clamp_epoch(record.epoch, now)
                if clamped != record.epoch:
                    record = replace(record, epoch=clamped)
                self.store.apply(record, now)

    # -- queries ------------------------------------------------------------
    def candidates(self, repo_id: str, qos: QoSSpec) -> list:
        cutoff = self.env.now - self.config.record_timeout
        out = []
        for record in self.store.lookup(repo_id):
            if record.epoch < cutoff:
                continue
            if not record.running_ior and not qos_admits(
                    record.free_cpu, record.free_memory, qos):
                continue
            out.append(record.to_candidate(
                group=f"shard:{self.host_id}"))
        return out


class ShardServant(Servant):
    """Remote face of one shard owner."""

    _interface = SHARD_IFACE

    def __init__(self, agent: ShardAgent) -> None:
        self.agent = agent

    def publish_batch(self, origin: str, epoch: float,
                      records: list) -> None:
        self.agent.accept_publish(origin, epoch, records)

    def gossip(self, records: list, beacons: list) -> None:
        self.agent.accept_gossip(records, beacons)

    def lookup(self, repo_id: str, cpu: float, memory: float,
               bandwidth: float) -> list:
        qos = QoSSpec(cpu_units=cpu, memory_mb=memory,
                      bandwidth_bps=bandwidth)
        return [c.to_value()
                for c in self.agent.candidates(repo_id, qos)]

    def shard_hosts(self) -> list:
        return self.agent.membership.live_owners(
            self.agent.env.now, self.agent.config.member_timeout)

    def record_count(self) -> int:
        return len(self.agent.store)

    def is_shard_alive(self) -> bool:
        return True

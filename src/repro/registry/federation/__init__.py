"""Federated (sharded + gossiped) Distributed Registry.

The MRM hierarchy of :mod:`repro.registry` scales by *summarizing*:
each level compresses its subtree.  This package scales the other
axis — population — by *partitioning*: the record space is consistent-
hashed over a small set of shard owners
(:class:`~repro.registry.federation.ring.ShardRing`), owners keep each
other honest with seeded epidemic gossip and periodic anti-entropy
syncs (:class:`~repro.registry.federation.shard.ShardAgent`), and
resolvers ask only the few owners of the wanted repo-id
(:class:`~repro.registry.federation.resolver.FederatedResolver`).

Enable it through :class:`~repro.registry.groups.RegistryConfig` with
``federation=True``, or drive
:class:`~repro.registry.federation.orchestrator.FederatedRegistry`
directly.  The ring and record/merge primitives are dependency-free on
purpose: partitioned deployment planning (ROADMAP item 5) reuses them.
"""

from repro.registry.federation.orchestrator import (
    FederatedRegistry,
    FederationConfig,
    FederationReporter,
)
from repro.registry.federation.records import (
    HostBeacon,
    MembershipTable,
    ProviderRecord,
    RecordStore,
)
from repro.registry.federation.resolver import FederatedResolver
from repro.registry.federation.ring import (
    RebalanceReport,
    ShardRing,
    ring_point,
)
from repro.registry.federation.shard import (
    SHARD_IFACE,
    ShardAgent,
    shard_ior,
)

__all__ = [
    "FederatedRegistry",
    "FederationConfig",
    "FederationReporter",
    "FederatedResolver",
    "HostBeacon",
    "MembershipTable",
    "ProviderRecord",
    "RecordStore",
    "RebalanceReport",
    "SHARD_IFACE",
    "ShardAgent",
    "ShardRing",
    "ring_point",
    "shard_ior",
]

"""Consistent-hash shard ring with virtual nodes.

The federated registry partitions its record space by consistent
hashing over repo-ids: each shard owner projects ``vnodes`` points
onto a 64-bit ring, and a key is owned by the first ``n`` *distinct*
hosts clockwise of its digest.  Virtual nodes smooth the partition so
no owner carries a pathological share of the keyspace.

Membership changes are **staged**: :meth:`ShardRing.stage_add` and
:meth:`ShardRing.stage_remove` only record intent, and nothing moves
until an explicit :meth:`ShardRing.rebalance` applies the whole batch
at once.  That keeps lookups stable while a churn episode is still
unfolding, and lets the caller observe exactly how much of the
keyspace a membership change displaced (the classic consistent-hashing
guarantee: ~``k/n`` for one host out of *n*).

The ring is deliberately standalone — no ORB, no simulation imports —
so the partitioned-deployment work (ROADMAP item 5) can reuse it
unchanged.
"""

from __future__ import annotations

import bisect
import hashlib
from dataclasses import dataclass, field

from repro.util.errors import ConfigurationError

_SPACE = 1 << 64


def ring_point(key: str) -> int:
    """Stable 64-bit ring coordinate of *key*."""
    digest = hashlib.blake2b(key.encode("utf-8"), digest_size=8)
    return int.from_bytes(digest.digest(), "big")


@dataclass(frozen=True)
class RebalanceReport:
    """What one :meth:`ShardRing.rebalance` call changed."""

    added: tuple[str, ...]
    removed: tuple[str, ...]
    #: fraction of the keyspace whose primary owner changed.
    moved_fraction: float
    hosts: tuple[str, ...] = field(default=())


class ShardRing:
    """Consistent-hash ring over shard-owner hosts."""

    def __init__(self, vnodes: int = 64) -> None:
        if vnodes < 1:
            raise ConfigurationError("vnodes must be >= 1")
        self.vnodes = vnodes
        self._hosts: set[str] = set()
        self._points: list[tuple[int, str]] = []   # sorted (point, host)
        self._keys: list[int] = []                 # parallel, for bisect
        self._staged_add: set[str] = set()
        self._staged_remove: set[str] = set()

    # -- membership (staged) ------------------------------------------------
    def hosts(self) -> list[str]:
        return sorted(self._hosts)

    def __len__(self) -> int:
        return len(self._hosts)

    def __contains__(self, host: str) -> bool:
        return host in self._hosts

    @property
    def pending(self) -> bool:
        return bool(self._staged_add or self._staged_remove)

    def stage_add(self, host: str) -> None:
        if host in self._hosts and host not in self._staged_remove:
            raise ConfigurationError(f"{host!r} is already on the ring")
        self._staged_remove.discard(host)
        if host not in self._hosts:
            self._staged_add.add(host)

    def stage_remove(self, host: str) -> None:
        if host in self._staged_add:
            self._staged_add.discard(host)
            return
        if host not in self._hosts:
            raise ConfigurationError(f"{host!r} is not on the ring")
        self._staged_remove.add(host)

    def rebalance(self) -> RebalanceReport:
        """Apply all staged membership changes in one step."""
        added = tuple(sorted(self._staged_add))
        removed = tuple(sorted(self._staged_remove))
        old_points = self._points
        old_keys = self._keys
        self._hosts |= self._staged_add
        self._hosts -= self._staged_remove
        self._staged_add = set()
        self._staged_remove = set()
        self._points = sorted(
            (ring_point(f"{host}#{v}"), host)
            for host in self._hosts for v in range(self.vnodes))
        self._keys = [p for p, _ in self._points]
        moved = self._moved_fraction(old_points, old_keys)
        return RebalanceReport(added=added, removed=removed,
                               moved_fraction=moved,
                               hosts=tuple(self.hosts()))

    def _moved_fraction(self, old_points, old_keys) -> float:
        """Share of the keyspace whose primary owner changed."""
        if not old_points or not self._points:
            return 1.0
        cuts = sorted({p for p, _ in old_points}
                      | {p for p, _ in self._points})
        moved = 0
        for i, cut in enumerate(cuts):
            nxt = cuts[(i + 1) % len(cuts)]
            span = (nxt - cut) % _SPACE or _SPACE
            if (self._owner_at(old_points, old_keys, cut)
                    != self._owner_at(self._points, self._keys, cut)):
                moved += span
        return moved / _SPACE

    @staticmethod
    def _owner_at(points, keys, point: int) -> str:
        idx = bisect.bisect_right(keys, point)
        if idx == len(points):
            idx = 0
        return points[idx][1]

    # -- lookups ------------------------------------------------------------
    def owners(self, key: str, n: int = 1) -> list[str]:
        """The first *n* distinct hosts clockwise of *key*'s point.

        Staged (un-rebalanced) membership changes are invisible here:
        lookups answer from the last rebalanced ring.
        """
        if not self._points:
            raise ConfigurationError("ring has no hosts")
        n = min(n, len(self._hosts))
        idx = bisect.bisect_right(self._keys, ring_point(key))
        out: list[str] = []
        for step in range(len(self._points)):
            _, host = self._points[(idx + step) % len(self._points)]
            if host not in out:
                out.append(host)
                if len(out) == n:
                    break
        return out

    def primary(self, key: str) -> str:
        return self.owners(key, 1)[0]

    def load_split(self, keys: list[str]) -> dict[str, int]:
        """How many of *keys* each host primarily owns (diagnostics)."""
        split: dict[str, int] = {host: 0 for host in self.hosts()}
        for key in keys:
            split[self.primary(key)] += 1
        return split

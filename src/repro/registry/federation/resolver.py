"""Shard-neighborhood resolution.

A :class:`FederatedResolver` replaces the flood/hierarchy search with
a ring lookup: the owners of ``hash(repo_id)`` — and only those — are
asked for candidates, in failover order.  The query cost is O(owners
consulted), independent of population size, which is the federated
registry's scaling argument (benchmark C18).
"""

from __future__ import annotations

from repro.orb.exceptions import SystemException, TRANSIENT
from repro.registry.queries import ResolverBase
from repro.registry.federation.shard import SHARD_IFACE, shard_ior
from repro.xmlmeta.descriptors import QoSSpec

_LOOKUP = SHARD_IFACE.operations["lookup"]


class FederatedResolver(ResolverBase):
    """Resolution against the repo-id's shard neighborhood."""

    def __init__(self, node, ring, config) -> None:
        super().__init__(node, config.mrm_config(),
                         placement=config.placement)
        self.ring = ring
        self.fed_config = config

    def _find(self, repo_id: str, qos: QoSSpec):
        node = self.node
        owners = self.ring.owners(repo_id, self.fed_config.replication)
        answered = False
        for host in owners:
            try:
                values = yield node.orb.invoke(
                    shard_ior(host), _LOOKUP,
                    (repo_id, qos.cpu_units, qos.memory_mb,
                     qos.bandwidth_bps),
                    timeout=self.fed_config.query_timeout,
                    meter="federation.lookup")
            except SystemException:
                node.metrics.counter("federation.lookup.failover").inc()
                continue
            answered = True
            if values:
                from repro.registry.view import Candidate
                return [Candidate.from_value(v) for v in values]
        if not answered:
            raise TRANSIENT(
                f"no shard owner of {repo_id!r} answered the lookup")
        return []

"""Shard-neighborhood resolution.

A :class:`FederatedResolver` replaces the flood/hierarchy search with
a ring lookup: the owners of ``hash(repo_id)`` — and only those — are
asked for candidates, in failover order.  The query cost is O(owners
consulted), independent of population size, which is the federated
registry's scaling argument (benchmark C18).

Resolution must *degrade*, not die, when the neighborhood does: if
none of the key's replication-set owners answers (all crashed, or
partitioned away together), the resolver widens to the remaining ring
owners in ring order, and — only when the whole ring is unreachable —
falls back to a flood query of the population.  The flood tier is
O(hosts) and exists purely as the emergency path; its use is counted
(``federation.lookup.flood_fallback``) so operators see when the ring
stopped carrying lookups.
"""

from __future__ import annotations

from repro.obs import names
from repro.orb.exceptions import SystemException, TRANSIENT
from repro.registry.queries import FloodResolver, ResolverBase
from repro.registry.federation.shard import SHARD_IFACE, shard_ior
from repro.xmlmeta.descriptors import QoSSpec

_LOOKUP = SHARD_IFACE.operations["lookup"]


class FederatedResolver(ResolverBase):
    """Resolution against the repo-id's shard neighborhood."""

    def __init__(self, node, ring, config) -> None:
        super().__init__(node, config.mrm_config(),
                         placement=config.placement)
        self.ring = ring
        self.fed_config = config
        self._flood = None

    def _find(self, repo_id: str, qos: QoSSpec):
        node = self.node
        primaries = self.ring.owners(repo_id, self.fed_config.replication)
        # Widen past the replication set only when it failed entirely:
        # the extra ring owners hold the key's records after a
        # rebalance moved it onto them (anti-entropy backfill), and
        # answer authoritatively then.
        extras = [h for h in self.ring.owners(repo_id, len(self.ring))
                  if h not in primaries]
        primary_answered = False
        for host in primaries + extras:
            if primary_answered and host in extras:
                # A replication-set owner already answered (empty).
                # That is authoritative — it owns the key — so don't
                # widen to owners that merely *might* hold stale state.
                break
            if host in extras:
                node.metrics.counter(
                    names.FEDERATION_LOOKUP_RING_FALLBACK).inc()
            try:
                values = yield node.orb.invoke(
                    shard_ior(host), _LOOKUP,
                    (repo_id, qos.cpu_units, qos.memory_mb,
                     qos.bandwidth_bps),
                    timeout=self.fed_config.query_timeout,
                    meter="federation.lookup")
            except SystemException:
                node.metrics.counter(names.FEDERATION_LOOKUP_FAILOVER).inc()
                continue
            if values:
                from repro.registry.view import Candidate
                return [Candidate.from_value(v) for v in values]
            if host in primaries:
                # An extra owner's empty answer proves only that the
                # ring is reachable, not that the key has no records —
                # keep going, and let the flood tier decide.
                primary_answered = True
        if not primary_answered:
            # No owner of the key answered: its whole replication set
            # is dead or unreachable.  Survive it: interrogate the
            # population directly, like the pre-ring flood protocol
            # did.  Expensive, but correct — a registry outage must
            # not make running providers unresolvable.
            node.metrics.counter(names.FEDERATION_LOOKUP_FLOOD_FALLBACK).inc()
            return (yield from self._flood_find(repo_id, qos))
        return []

    def _flood_find(self, repo_id: str, qos: QoSSpec):
        if self._flood is None:
            self._flood = FloodResolver(
                self.node, self.node.network.topology.host_ids(),
                self.config, placement=self.placement)
        return (yield from self._flood._find(repo_id, qos))

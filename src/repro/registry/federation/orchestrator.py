"""Deployment and membership management of the federated registry.

:class:`FederatedRegistry` is the federation counterpart of
:class:`~repro.registry.groups.DistributedRegistry`: it elects shard
owners from the population (an even stride, so owners spread across
clusters), builds the shared :class:`ShardRing`, stands up a
:class:`ShardAgent` on every owner, and gives every node a
:class:`FederationReporter` (publishing its provider records to the
ring's owners) and a :class:`FederatedResolver`.

Membership changes are explicit: :meth:`remove_owner` /
:meth:`add_owner` stage the change and :meth:`rebalance` applies it —
reporters and resolvers see the new ownership instantly because all of
them share the orchestrator's ring object, and anti-entropy gossip
backfills the records a new owner is now responsible for.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.registry.mrm import MrmConfig
from repro.registry.view import NodeView
from repro.registry.federation.resolver import FederatedResolver
from repro.registry.federation.ring import RebalanceReport, ShardRing
from repro.registry.federation.shard import SHARD_IFACE, ShardAgent, shard_ior
from repro.sim.kernel import Interrupt
from repro.util.errors import ConfigurationError

METER = "federation.publish"

_PUBLISH = SHARD_IFACE.operations["publish_batch"]


@dataclass
class FederationConfig:
    """Everything tunable about the federated registry."""

    owners: int = 4                  # shard-owner population
    vnodes: int = 32                 # ring points per owner
    replication: int = 2             # owners per record / lookup width
    update_interval: float = 5.0     # member publish cadence
    gossip_interval: float = 2.0     # owner epidemic round cadence
    fanout: int = 3                  # peers per gossip round
    full_sync_every: int = 4         # rounds between anti-entropy syncs
    gossip_batch: int = 256          # bus flush window for one round
    member_timeout: Optional[float] = None   # liveness staleness bound
    record_timeout: Optional[float] = None   # provider-record TTL
    query_timeout: float = 2.0
    placement: str = "auto"
    seed_peer_count: int = 2         # static bootstrap peers per owner
    #: how far into the future an incoming report epoch may point
    #: before owners clamp it (defends record TTLs and membership
    #: freshness against clock-skewed reporters).
    epoch_tolerance: Optional[float] = None

    def __post_init__(self) -> None:
        if self.owners < 1:
            raise ConfigurationError("need at least one shard owner")
        if self.replication < 1:
            raise ConfigurationError("replication must be >= 1")
        if self.fanout < 1:
            raise ConfigurationError("fanout must be >= 1")
        if self.member_timeout is None:
            self.member_timeout = 3.0 * self.update_interval
        if self.record_timeout is None:
            self.record_timeout = 3.0 * self.update_interval
        if self.epoch_tolerance is None:
            self.epoch_tolerance = self.gossip_interval

    def mrm_config(self) -> MrmConfig:
        return MrmConfig(update_interval=self.update_interval,
                         member_timeout=self.member_timeout,
                         query_timeout=self.query_timeout)


class FederationReporter:
    """Publishes one node's provider records to their shard owners."""

    def __init__(self, node, ring, config: FederationConfig,
                 phase: float = 0.0) -> None:
        self.node = node
        self.ring = ring
        self.config = config
        self.phase = phase % config.update_interval
        #: simulated clock error of this reporter: its publishes stamp
        #: ``env.now + clock_skew`` as their epoch.  Fault injection
        #: (repro.chaos) sets this; owners clamp what they accept.
        self.clock_skew = 0.0
        self.reports_sent = 0
        self._proc = None
        self._start()
        node.host.on_crash.append(self._on_crash)
        node.host.on_restart.append(self._on_restart)

    def _start(self) -> None:
        self._proc = self.node.env.process(self._loop())

    def _on_crash(self, _host) -> None:
        if self._proc is not None and self._proc.is_alive:
            self._proc.interrupt("host crashed")
        self._proc = None

    def _on_restart(self, _host) -> None:
        self.send_now()     # graceful reconnection: re-register now
        self._start()

    def _records(self, view: NodeView, epoch: float) -> list:
        from repro.registry.view import Candidate
        from repro.registry.federation.records import ProviderRecord

        out = []
        for cand in self._view_candidates(view):
            out.append(ProviderRecord(
                repo_id=cand[0], host=self.node.host_id,
                component=cand[1], version=cand[2],
                running_ior=cand[3], mobility=cand[4],
                free_cpu=view.snapshot.cpu_available,
                free_memory=view.snapshot.memory_available,
                is_tiny=view.snapshot.is_tiny, epoch=epoch))
        return out

    @staticmethod
    def _view_candidates(view: NodeView):
        """(repo_id, component, version, running_ior, mobility) rows."""
        running = {}
        for repo_id, ior in view.running:
            running.setdefault(repo_id, ior)
        seen = set()
        for comp in view.components:
            for repo_id in comp.provides:
                if repo_id in seen:
                    continue
                seen.add(repo_id)
                yield (repo_id, comp.name, comp.version,
                       running.get(repo_id, ""), comp.mobility)
        for repo_id, ior in running.items():
            if repo_id not in seen:
                # Running-only: the package is gone but the instance
                # lives; resolvers may reuse, never instantiate.
                yield (repo_id, "", "", ior, "mobile")

    def send_now(self) -> None:
        node = self.node
        epoch = node.env.now + self.clock_skew
        view = NodeView.collect(node)
        by_owner: dict[str, list] = {}
        # Presence beacon: even a node providing nothing reports to the
        # owners of its host key, so liveness tracking covers everyone.
        for owner in self.ring.owners(f"host:{node.host_id}",
                                      self.config.replication):
            by_owner.setdefault(owner, [])
        for record in self._records(view, epoch):
            for owner in self.ring.owners(record.repo_id,
                                          self.config.replication):
                by_owner.setdefault(owner, []).append(record.to_value())
        for owner, values in by_owner.items():
            node.orb.send_oneway(shard_ior(owner), _PUBLISH,
                                 (node.host_id, epoch, values),
                                 meter=METER)
        self.reports_sent += 1

    def _loop(self):
        try:
            if self.phase:
                yield self.node.env.timeout(self.phase)
            while True:
                self.send_now()
                yield self.node.env.timeout(self.config.update_interval)
        except Interrupt:
            return


class FederatedRegistry:
    """Owns the sharded registry deployed over a node population."""

    def __init__(self, nodes: dict,
                 config: Optional[FederationConfig] = None) -> None:
        self.nodes = nodes
        self.config = config or FederationConfig()
        self.ring = ShardRing(vnodes=self.config.vnodes)
        self.agents: dict[str, ShardAgent] = {}
        self.reporters: dict[str, FederationReporter] = {}
        self.resolvers: dict[str, FederatedResolver] = {}
        self._live_cache: Optional[tuple[float, set]] = None

    # -- deployment ---------------------------------------------------------
    def deploy(self, owner_hosts: Optional[Sequence[str]] = None) -> None:
        hosts = list(self.nodes)
        if not hosts:
            raise ConfigurationError("no nodes to federate")
        if owner_hosts is None:
            owner_hosts = self._elect_owners(hosts)
        owner_hosts = list(owner_hosts)
        for host in owner_hosts:
            if host not in self.nodes:
                raise ConfigurationError(f"unknown owner host {host!r}")
            self.ring.stage_add(host)
        self.ring.rebalance()
        for index, host in enumerate(owner_hosts):
            self.agents[host] = ShardAgent(
                self.nodes[host], self.ring, self.config,
                seed_peers=self._seed_peers(owner_hosts, index))
        interval = self.config.update_interval
        for index, host in enumerate(hosts):
            node = self.nodes[host]
            phase = (index * interval) / max(1, len(hosts))
            self.reporters[host] = FederationReporter(
                node, self.ring, self.config, phase=phase)
            resolver = FederatedResolver(node, self.ring, self.config)
            self.resolvers[host] = resolver
            node.resolver = resolver

    def _elect_owners(self, hosts: list[str]) -> list[str]:
        """Every ``len/owners``-th host: spreads owners over clusters."""
        n = min(self.config.owners, len(hosts))
        stride = max(1, len(hosts) // n)
        return [hosts[(i * stride) % len(hosts)] for i in range(n)]

    def _seed_peers(self, owners: Sequence[str], index: int) -> list[str]:
        """The next ``seed_peer_count`` owners, ring-order (static)."""
        k = min(self.config.seed_peer_count, max(0, len(owners) - 1))
        return [owners[(index + 1 + j) % len(owners)] for j in range(k)]

    # -- membership changes -------------------------------------------------
    def remove_owner(self, host: str) -> RebalanceReport:
        """Take a (dead or drained) owner off the ring and rebalance."""
        self.ring.stage_remove(host)
        report = self.ring.rebalance()
        agent = self.agents.pop(host, None)
        if agent is not None:
            now = agent.env.now
            agent.retire()
            for other in self.agents.values():
                other.membership.mark_dead(host, now)
        return report

    def add_owner(self, host: str) -> RebalanceReport:
        """Promote *host* to shard owner and rebalance onto it."""
        if host not in self.nodes:
            raise ConfigurationError(f"unknown owner host {host!r}")
        existing = sorted(self.agents)
        self.ring.stage_add(host)
        report = self.ring.rebalance()
        self.agents[host] = ShardAgent(
            self.nodes[host], self.ring, self.config,
            seed_peers=existing[:max(1, self.config.seed_peer_count)])
        return report

    # -- liveness -----------------------------------------------------------
    def live_hosts(self) -> set[str]:
        """Hosts the gossiped membership currently believes alive.

        Merged across live owners' views and cached per sim-instant:
        the deployment supervisor calls this once per instance per
        tick, and on 1k-host populations recomputing the merge every
        call would dominate the tick.
        """
        env_now = None
        for agent in self.agents.values():
            env_now = agent.env.now
            break
        if env_now is None:
            return set()
        if self._live_cache is not None and self._live_cache[0] == env_now:
            return self._live_cache[1]
        out: set[str] = set()
        for agent in self.agents.values():
            if not agent.node.host.alive:
                continue
            out.add(agent.host_id)
            out |= agent.membership.live(env_now,
                                         self.config.member_timeout)
        self._live_cache = (env_now, out)
        return out

    # -- convergence probes (tests and the C18 benchmark) -------------------
    def owner_views_agree(self) -> bool:
        """True when every live owner sees the same live-owner set."""
        views = []
        for agent in self.agents.values():
            if not agent.node.host.alive:
                continue
            views.append(tuple(agent.membership.live_owners(
                agent.env.now, self.config.member_timeout)))
        return len(set(views)) <= 1

    def records_converged(self, repo_id: str) -> bool:
        """True when every live owner of *repo_id* agrees on it."""
        states = []
        for host in self.ring.owners(repo_id, self.config.replication):
            agent = self.agents.get(host)
            if agent is None or not agent.node.host.alive:
                continue
            states.append(tuple(sorted(
                (r.host, r.epoch, r.running_ior)
                for r in agent.store.lookup(repo_id))))
        return len(set(states)) <= 1 and bool(states)

    def settle_time(self, rounds: float = 2.0) -> float:
        """Sim-time until views are warm (publishes + a gossip round)."""
        return (rounds * self.config.update_interval
                + 2.0 * self.config.gossip_interval + 0.5)

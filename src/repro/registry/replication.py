"""Peer-replicated MRMs and automatic replica re-creation (§2.4.3).

"To enhance fault-tolerance, the protocol must allow replicated peer
MRMs per group.  ...  the protocol must adapt by creating new replicas
as needed and catching replica failures."

Replication itself is achieved by members reporting to *every* MRM
replica (see :class:`~repro.registry.softstate.SoftStateReporter`), so
any surviving replica can answer queries immediately — that's the
failover path measured by the C5 benchmark.

:class:`MrmSupervisor` adds the adaptive part: a watchdog running on the
group's first non-MRM member pings the replicas; when one stays dead
past ``failures_needed`` probes, a fresh MRM is *promoted* on a healthy
member host, and the group's reporters/resolvers are retargeted (the
announce step).  Promotions are counted and timed for the benchmark.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.orb.exceptions import SystemException
from repro.registry.mrm import MRM_IFACE, MrmAgent
from repro.sim.kernel import Interrupt

if TYPE_CHECKING:  # pragma: no cover
    from repro.registry.groups import DistributedRegistry, Group

_ALIVE = MRM_IFACE.operations["is_mrm_alive"]


class MrmSupervisor:
    """Watches one group's MRM replicas; promotes replacements."""

    def __init__(self, registry: "DistributedRegistry", group: "Group",
                 interval: float = 5.0, failures_needed: int = 2) -> None:
        self.registry = registry
        self.group = group
        self.interval = interval
        self.failures_needed = failures_needed
        self.promotions: list[tuple[float, str, str]] = []  # (t, old, new)
        self._fail_counts: dict[str, int] = {}
        watch_host = self._pick_watch_host()
        self.node = registry.nodes[watch_host]
        self._proc = self.node.env.process(self._watch_loop())
        self.node.host.on_crash.append(self._on_crash)
        self.node.host.on_restart.append(self._on_restart)

    def _pick_watch_host(self) -> str:
        for host in self.group.member_hosts:
            if host not in self.group.mrm_hosts:
                return host
        return self.group.member_hosts[-1]

    # -- lifecycle ---------------------------------------------------------
    def _on_crash(self, _host) -> None:
        if self._proc is not None and self._proc.is_alive:
            self._proc.interrupt("host crashed")
        self._proc = None

    def _on_restart(self, _host) -> None:
        self._proc = self.node.env.process(self._watch_loop())

    # -- watchdog -------------------------------------------------------------
    def _watch_loop(self):
        try:
            while True:
                yield self.node.env.timeout(self.interval)
                for agent in list(self.group.agents):
                    yield from self._probe(agent)
        except Interrupt:
            return

    def _probe(self, agent: MrmAgent):
        host = agent.node.host_id
        try:
            yield self.node.orb.invoke(
                agent.ior, _ALIVE, (),
                timeout=self.registry.mrm_config.query_timeout,
                meter="registry.supervise")
            self._fail_counts[host] = 0
        except SystemException:
            count = self._fail_counts.get(host, 0) + 1
            self._fail_counts[host] = count
            if count >= self.failures_needed:
                self._promote(agent)

    def _promote(self, dead_agent: MrmAgent) -> None:
        """Replace *dead_agent* with a fresh MRM on a healthy member."""
        dead_host = dead_agent.node.host_id
        replacement_host = self._pick_replacement()
        if replacement_host is None:
            return
        node = self.registry.nodes[replacement_host]
        parent_iors = (tuple(self.registry.root.mrm_iors())
                       if self.registry.root is not None else ())
        new_agent = MrmAgent(node, self.group.group_id,
                             config=self.registry.mrm_config,
                             parent_iors=parent_iors)
        self.group.agents = [a for a in self.group.agents
                             if a is not dead_agent] + [new_agent]
        self.group.mrm_hosts = [h for h in self.group.mrm_hosts
                                if h != dead_host] + [replacement_host]
        self._fail_counts.pop(dead_host, None)
        # Announce: members re-aim their reports and queries.
        self.registry.retarget_group(self.group)
        self.promotions.append(
            (self.node.env.now, dead_host, replacement_host))
        self.node.metrics.counter("registry.promotions").inc()

    def _pick_replacement(self):
        topology = self.node.network.topology
        for host in self.group.member_hosts:
            if host in self.group.mrm_hosts:
                continue
            if topology.host(host).alive:
                return host
        return None

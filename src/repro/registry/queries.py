"""Network-wide dependency resolution (§2.4.3).

"When component instances start running, they may ask their container
for some required components.  These components are searched in the
whole network.  ...  Once the 'set' of best suited components have been
found, the network must select one of them ...  Once selected, the
network can decide either to instantiate the component in its original
node or to fetch the component to be locally installed, instantiated
and run."

:class:`NetworkResolver` implements that pipeline over the MRM
hierarchy; :class:`FloodResolver` is the flat baseline that asks every
node directly (what you do without MRMs — the C3 benchmark contrasts
the two).
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.node.registry import COMPONENT_REGISTRY_IFACE
from repro.node.resources import RESOURCE_MANAGER_IFACE, ResourceSnapshot
from repro.packaging.package import ComponentPackage
from repro.orb.exceptions import SystemException, TRANSIENT
from repro.orb.ior import IOR
from repro.registry.mrm import MRM_IFACE, MrmConfig
from repro.registry.view import Candidate, qos_admits
from repro.sim.kernel import Event
from repro.util.errors import ConfigurationError
from repro.xmlmeta.descriptors import QoSSpec

#: Above this required stream bandwidth (bytes/s) the "auto" policy
#: fetches the component to run next to its consumer — the paper's MPEG
#: decoder example.
FETCH_BANDWIDTH_THRESHOLD = 1_000_000.0

_QUERY = MRM_IFACE.operations["query"]


def select_candidate(candidates: Sequence[Candidate],
                     prefer_host: str) -> Candidate:
    """Pick the best of a candidate set.

    Order of preference: a running instance beats instantiating a new
    one; the requester's own host beats remote; bigger free CPU beats
    smaller; tiny devices are used only as a last resort.
    """
    if not candidates:
        raise ConfigurationError("empty candidate set")

    def score(c: Candidate):
        return (
            1 if c.is_running else 0,
            1 if c.host == prefer_host else 0,
            0 if c.is_tiny else 1,
            c.free_cpu,
        )
    return max(candidates, key=score)


class ResolverBase:
    """Shared materialization logic: candidate -> facet IOR."""

    def __init__(self, node, config: MrmConfig,
                 placement: str = "auto") -> None:
        if placement not in ("auto", "remote", "fetch"):
            raise ConfigurationError(f"bad placement policy {placement!r}")
        self.node = node
        self.config = config
        self.placement = placement

    def resolve(self, repo_id: str, qos: Optional[QoSSpec] = None) -> Event:
        """Returns a process event yielding the provider's facet IOR."""
        return self.node.env.process(
            self._resolve(repo_id, qos or QoSSpec()))

    # subclasses implement _find(repo_id, qos) -> generator of candidates
    def _find(self, repo_id: str, qos: QoSSpec):
        raise NotImplementedError
        yield  # pragma: no cover

    def _resolve(self, repo_id: str, qos: QoSSpec):
        node = self.node
        node.metrics.counter("resolver.requests").inc()
        # Locality fast path: anything already on this node wins.
        running_here = node.registry.running_providers(repo_id)
        if running_here:
            node.metrics.counter("resolver.local_hits").inc()
            return IOR.from_string(running_here[0])
        local_classes = node.repository.providers_of(repo_id)
        for cls in local_classes:
            if node.resources.fits(cls.component_type.qos):
                node.metrics.counter("resolver.local_hits").inc()
                return self._instantiate_locally(cls.name, repo_id)

        candidates = yield from self._find(repo_id, qos)
        if not candidates:
            raise TRANSIENT(f"no provider for {repo_id!r} in the network")
        best = select_candidate(candidates, prefer_host=node.host_id)
        if best.is_running:
            node.metrics.counter("resolver.reused_running").inc()
            return IOR.from_string(best.running_ior)
        result = yield from self._materialize(best, repo_id, qos)
        return result

    # -- materialization -----------------------------------------------------
    def _should_fetch(self, best: Candidate, qos: QoSSpec) -> bool:
        if best.host == self.node.host_id:
            return False
        if best.mobility != "mobile":
            return False
        if self.placement == "fetch":
            return True
        if self.placement == "remote":
            return False
        return qos.bandwidth_bps >= FETCH_BANDWIDTH_THRESHOLD

    def _materialize(self, best: Candidate, repo_id: str, qos: QoSSpec):
        node = self.node
        if not best.component:
            # A running-only answer (e.g. the provider's package was
            # uninstalled after instantiation) names no component to
            # install or instantiate; selecting it while its instance is
            # gone must fail cleanly, not crash the container agent.
            raise TRANSIENT(
                f"candidate on {best.host} names no installable "
                f"component for {repo_id!r}"
            )
        if self._should_fetch(best, qos):
            # Bring the binary here: fetch + install + local instance.
            node.metrics.counter("resolver.fetched").inc()
            yield from self._fetch_closure(best.host, best.component)
            return self._instantiate_locally(best.component, repo_id)
        # Instantiate at the candidate's node.
        node.metrics.counter("resolver.remote_instances").inc()
        return (yield from self._create_remote(best, repo_id))

    def _fetch_closure(self, source_host: str, component: str):
        """Fetch *component* and, transitively, its declared
        dependencies (§2: "the network as a whole must be used as a
        repository for resolving component requirements")."""
        node = self.node
        acceptor = node.service_stub(source_host, "acceptor")
        pending = [component]
        while pending:
            name = pending.pop()
            if node.repository.is_installed(name):
                continue
            try:
                pkg_bytes = yield acceptor.fetch(name, "")
            except SystemException:
                continue  # optional/missing dependency at the source
            package = ComponentPackage(pkg_bytes)
            node.repository.install(package)
            node.metrics.counter("resolver.closure_installs").inc()
            for dep in package.software.dependencies:
                pending.append(dep.component)

    def _create_remote(self, best: Candidate, repo_id: str):
        node = self.node
        agent = node.service_stub(best.host, "container")
        info = yield agent.create_instance(best.component, "", "")
        for port in info["ports"]:
            if port["kind"] == "facet" and port["type_id"] == repo_id:
                return IOR.from_string(port["peer"])
        raise TRANSIENT(
            f"instance of {best.component} exposes no {repo_id!r} facet"
        )

    def _instantiate_locally(self, component: str, repo_id: str) -> IOR:
        instance = self.node.container.create_instance(component)
        for facet in instance.ports.facets():
            if facet.repo_id == repo_id:
                return facet.ior
        raise TRANSIENT(
            f"instance of {component} exposes no {repo_id!r} facet"
        )


class NetworkResolver(ResolverBase):
    """Resolution through the group's MRM replicas (hierarchical)."""

    def __init__(self, node, mrm_iors: Sequence[IOR], config: MrmConfig,
                 placement: str = "auto") -> None:
        super().__init__(node, config, placement)
        self.mrm_iors = list(mrm_iors)

    def retarget(self, mrm_iors: Sequence[IOR]) -> None:
        self.mrm_iors = list(mrm_iors)

    def _find(self, repo_id: str, qos: QoSSpec):
        node = self.node
        for mrm in self.mrm_iors:  # replicas in failover order
            try:
                values = yield node.orb.invoke(
                    mrm, _QUERY,
                    (repo_id, qos.cpu_units, qos.memory_mb,
                     qos.bandwidth_bps, self.config.query_ttl, ""),
                    timeout=self.config.query_timeout,
                    meter="registry.query")
                return [Candidate.from_value(v) for v in values]
            except SystemException:
                node.metrics.counter("resolver.mrm_failover").inc()
                continue
        raise TRANSIENT("no MRM replica answered the query")


_RUNNING = COMPONENT_REGISTRY_IFACE.operations["running_providers"]
_FINDERS = COMPONENT_REGISTRY_IFACE.operations["find_providers"]
_SNAPSHOT = RESOURCE_MANAGER_IFACE.operations["snapshot"]


class FloodResolver(ResolverBase):
    """Flat baseline: interrogate every node's registry directly."""

    def __init__(self, node, all_hosts: Sequence[str], config: MrmConfig,
                 placement: str = "auto") -> None:
        super().__init__(node, config, placement)
        self.all_hosts = [h for h in all_hosts if h != node.host_id]

    def _find(self, repo_id: str, qos: QoSSpec):
        from repro.node.node import Node
        node = self.node
        candidates: list[Candidate] = []
        for host in self.all_hosts:
            registry_ior = Node.service_ior(host, "registry")
            try:
                running = yield node.orb.invoke(
                    registry_ior, _RUNNING, (repo_id,),
                    timeout=self.config.query_timeout,
                    meter="registry.flood")
                names = yield node.orb.invoke(
                    registry_ior, _FINDERS, (repo_id,),
                    timeout=self.config.query_timeout,
                    meter="registry.flood")
            except SystemException:
                continue
            if not running and not names:
                continue
            resources_ior = Node.service_ior(host, "resources")
            snap = None
            try:
                snap_value = yield node.orb.invoke(
                    resources_ior, _SNAPSHOT, (),
                    timeout=self.config.query_timeout,
                    meter="registry.flood")
                snap = ResourceSnapshot.from_value(snap_value)
            except SystemException:
                # A failed snapshot only disqualifies *instantiating*
                # here; reusing an already-running provider needs no
                # resource headroom, so the host stays in the race.
                if not running:
                    continue
            if not running and not qos_admits(
                    snap.cpu_available, snap.memory_available, qos):
                continue
            candidates.append(Candidate(
                host=host,
                component=names[0] if names else "",
                version="",
                running_ior=running[0] if running else "",
                mobility="mobile",
                free_cpu=snap.cpu_available if snap is not None else 0.0,
                free_memory=(snap.memory_available
                             if snap is not None else 0.0),
                is_tiny=snap.is_tiny if snap is not None else False,
            ))
        return candidates

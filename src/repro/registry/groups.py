"""Group formation and the Distributed Registry orchestrator (§2.4.3).

"The protocol must also carry group formation deciding the nodes that
are going to implement the Meta-Resource Manager interface.  Each MRM
manages a group of nodes or a group of other MRMs, maintaining this
hierarchical structure and behavior."

:class:`DistributedRegistry` deploys the whole protocol stack over a
set of nodes: it forms groups (by topology cluster or fixed size),
places ``replicas`` MRMs per group, stands up a root MRM level when
there is more than one group, starts the configured reporter on every
node, installs a :class:`~repro.registry.queries.NetworkResolver` as
each node's dependency resolver, and (optionally) starts replica
supervision for automatic MRM promotion.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Optional

from repro.registry.mrm import MrmAgent, MrmConfig
from repro.registry.prediction import PredictiveReporter
from repro.registry.queries import NetworkResolver
from repro.registry.replication import MrmSupervisor
from repro.registry.softstate import SoftStateReporter
from repro.registry.strongstate import StrongStateReporter
from repro.util.errors import ConfigurationError

MODES = ("soft", "strong", "predictive")
ROOT_GROUP = "root"


@dataclass
class RegistryConfig:
    """Everything tunable about the Distributed Registry."""

    update_interval: float = 5.0
    member_timeout: Optional[float] = None
    query_timeout: float = 2.0
    query_ttl: int = 4
    replicas: int = 1                 # MRMs per group
    mode: str = "soft"                # reporter flavour
    placement: str = "auto"           # resolver materialization policy
    prediction_tolerance: float = 10.0
    supervise: bool = False           # automatic MRM promotion
    supervise_interval: float = 5.0
    #: route soft-state reports through a per-node event bus (batched
    #: report_batch delivery riding GIOP pipelining) instead of one
    #: point-to-point oneway per report per replica.
    event_bus: bool = False
    #: replace the MRM hierarchy with the sharded, gossip-federated
    #: registry (see :mod:`repro.registry.federation`): ``deploy``
    #: ignores the grouping and stands up shard owners instead,
    #: ``replicas`` becomes the record replication factor.
    federation: bool = False
    federation_owners: int = 4
    federation_gossip_interval: float = 2.0

    def __post_init__(self) -> None:
        if self.mode not in MODES:
            raise ConfigurationError(f"mode must be one of {MODES}")
        if self.replicas < 1:
            raise ConfigurationError("need at least one MRM per group")

    def mrm_config(self) -> MrmConfig:
        return MrmConfig(update_interval=self.update_interval,
                         member_timeout=self.member_timeout,
                         query_timeout=self.query_timeout,
                         query_ttl=self.query_ttl)


@dataclass
class Group:
    group_id: str
    member_hosts: list[str]
    mrm_hosts: list[str] = field(default_factory=list)
    agents: list[MrmAgent] = field(default_factory=list)

    def mrm_iors(self) -> list:
        return [agent.ior for agent in self.agents]


def _first_hosts(tree: dict) -> list[str]:
    """Hosts of the lexically-first leaf group under *tree*."""
    first_key = next(iter(tree))
    content = tree[first_key]
    if isinstance(content, dict):
        return _first_hosts(content)
    return list(content)


def _tree_height(content) -> int:
    """Levels of MRMs *above* the leaf groups under *content*."""
    if isinstance(content, dict):
        return 1 + max(_tree_height(v) for v in content.values())
    return 0


def groups_by_cluster(host_ids: list[str]) -> dict[str, list[str]]:
    """Group ``c{i}h{j}`` style host ids by their cluster prefix.

    Hosts that do not match the pattern land in one ``misc`` group.
    """
    groups: dict[str, list[str]] = {}
    for host in host_ids:
        m = re.match(r"^(c\d+)h\d+$", host)
        key = m.group(1) if m else "misc"
        groups.setdefault(key, []).append(host)
    return groups


def groups_by_size(host_ids: list[str], group_size: int) -> dict[str, list[str]]:
    """Partition hosts into consecutive groups of *group_size*."""
    if group_size < 1:
        raise ConfigurationError("group_size must be >= 1")
    groups = {}
    for i in range(0, len(host_ids), group_size):
        groups[f"g{i // group_size}"] = list(host_ids[i:i + group_size])
    return groups


class DistributedRegistry:
    """Deploys and owns the registry protocol over a node population."""

    def __init__(self, nodes: dict, config: Optional[RegistryConfig] = None
                 ) -> None:
        self.nodes = nodes
        self.config = config or RegistryConfig()
        self.mrm_config = self.config.mrm_config()
        self.groups: dict[str, Group] = {}
        self.root: Optional[Group] = None
        self.reporters: dict[str, object] = {}
        self.resolvers: dict[str, NetworkResolver] = {}
        self.supervisors: list[MrmSupervisor] = []
        #: the sharded backend when ``config.federation`` is on.
        self.federation = None

    # -- deployment ----------------------------------------------------------
    def deploy(self, groups: dict[str, list[str]]) -> None:
        """Stand up MRMs, reporters, resolvers for *groups*."""
        if not groups:
            raise ConfigurationError("no groups to deploy")
        if self.config.federation:
            self._deploy_federated()
            return
        for group_id, hosts in groups.items():
            if not hosts:
                raise ConfigurationError(f"group {group_id!r} is empty")
            if group_id == ROOT_GROUP:
                raise ConfigurationError(
                    f"group id {ROOT_GROUP!r} is reserved"
                )

        multi_group = len(groups) > 1
        root_iors: tuple = ()
        if multi_group:
            # Root level: MRMs whose members are the group MRMs'
            # aggregates.  Placed in the first group, offset past the
            # hosts its own group-level MRMs will occupy.
            first_hosts = list(groups.values())[0]
            root_hosts = self._pick_mrm_hosts(first_hosts,
                                              offset=self.config.replicas)
            self.root = Group(ROOT_GROUP, member_hosts=[],
                              mrm_hosts=root_hosts)
            for host in root_hosts:
                agent = MrmAgent(self.nodes[host], ROOT_GROUP,
                                 config=self.mrm_config)
                self.root.agents.append(agent)
            root_iors = tuple(self.root.mrm_iors())

        for group_id, hosts in groups.items():
            group = Group(group_id, member_hosts=list(hosts))
            group.mrm_hosts = self._pick_mrm_hosts(hosts)
            for host in group.mrm_hosts:
                agent = MrmAgent(self.nodes[host], group_id,
                                 config=self.mrm_config,
                                 parent_iors=root_iors)
                group.agents.append(agent)
            self.groups[group_id] = group
            self._wire_members(group)
            if self.config.supervise:
                supervisor = MrmSupervisor(
                    self, group, interval=self.config.supervise_interval)
                self.supervisors.append(supervisor)

    def _deploy_federated(self) -> None:
        """Stand up the sharded backend instead of the MRM hierarchy."""
        from repro.registry.federation import (
            FederatedRegistry,
            FederationConfig,
        )
        fed = FederatedRegistry(self.nodes, FederationConfig(
            owners=self.config.federation_owners,
            replication=self.config.replicas,
            update_interval=self.config.update_interval,
            gossip_interval=self.config.federation_gossip_interval,
            member_timeout=self.config.member_timeout,
            query_timeout=self.config.query_timeout,
            placement=self.config.placement))
        fed.deploy()
        self.federation = fed
        self.reporters = fed.reporters
        self.resolvers = fed.resolvers

    def deploy_tree(self, tree: dict, _parent_iors: tuple = (),
                    _level: str = "") -> None:
        """Deploy a multi-level MRM hierarchy.

        *tree* maps group ids either to host lists (leaf groups) or to
        nested dicts (groups of groups): each inner level gets its own
        MRM layer — "each MRM manages a group of nodes or a group of
        other MRMs" (§2.4.3).  Example::

            registry.deploy_tree({
                "west": {"c0": [...], "c1": [...]},
                "east": {"c2": [...], "c3": [...]},
            })

        builds root -> {west, east} -> {c0..c3} -> nodes.
        """
        if not tree:
            raise ConfigurationError("empty hierarchy level")
        is_root_call = not _parent_iors
        if is_root_call and len(tree) > 1:
            first_hosts = _first_hosts(tree)
            root_hosts = self._pick_mrm_hosts(
                first_hosts, offset=self.config.replicas * _tree_height(tree))
            self.root = Group(ROOT_GROUP, member_hosts=[],
                              mrm_hosts=root_hosts)
            for host in root_hosts:
                self.root.agents.append(
                    MrmAgent(self.nodes[host], ROOT_GROUP,
                             config=self.mrm_config))
            _parent_iors = tuple(self.root.mrm_iors())

        for group_id, content in tree.items():
            if group_id == ROOT_GROUP:
                raise ConfigurationError(
                    f"group id {ROOT_GROUP!r} is reserved")
            if isinstance(content, dict):
                # an intermediate level: MRMs whose members are the
                # child groups' aggregates
                hosts = self._pick_mrm_hosts(
                    _first_hosts(content),
                    offset=self.config.replicas * _tree_height(content))
                mid = Group(group_id, member_hosts=[], mrm_hosts=hosts)
                for host in hosts:
                    mid.agents.append(MrmAgent(
                        self.nodes[host], group_id,
                        config=self.mrm_config,
                        parent_iors=_parent_iors))
                self.groups[group_id] = mid
                self.deploy_tree(content,
                                 _parent_iors=tuple(mid.mrm_iors()),
                                 _level=group_id)
            else:
                hosts = list(content)
                if not hosts:
                    raise ConfigurationError(
                        f"group {group_id!r} is empty")
                group = Group(group_id, member_hosts=hosts)
                group.mrm_hosts = self._pick_mrm_hosts(hosts)
                for host in group.mrm_hosts:
                    group.agents.append(MrmAgent(
                        self.nodes[host], group_id,
                        config=self.mrm_config,
                        parent_iors=_parent_iors))
                self.groups[group_id] = group
                self._wire_members(group)
                if self.config.supervise:
                    self.supervisors.append(MrmSupervisor(
                        self, group,
                        interval=self.config.supervise_interval))

    def _pick_mrm_hosts(self, hosts: list[str], offset: int = 0
                        ) -> list[str]:
        """Pick ``replicas`` serving hosts, starting *offset* entries in.

        Hierarchy levels stack their picks at different offsets (leaf
        groups at 0, each level above shifted by another ``replicas``)
        so the root MRMs and the first group's MRMs never pile onto the
        same first hosts — one host death must not take out two
        hierarchy levels at once.  When the pool is too small to avoid
        overlap the selection wraps around.
        """
        n = min(self.config.replicas, len(hosts))
        if not offset or len(hosts) <= n:
            return list(hosts[:n])
        start = offset % len(hosts)
        rotated = hosts[start:] + hosts[:start]
        return rotated[:n]

    def _wire_members(self, group: Group) -> None:
        iors = group.mrm_iors()
        interval = self.config.update_interval
        for index, host in enumerate(group.member_hosts):
            node = self.nodes[host]
            phase = (index * interval) / max(1, len(group.member_hosts))
            reporter = self._make_reporter(node, iors, phase)
            self.reporters[host] = reporter
            resolver = NetworkResolver(node, iors, self.mrm_config,
                                       placement=self.config.placement)
            self.resolvers[host] = resolver
            node.resolver = resolver

    def _make_reporter(self, node, iors, phase: float):
        if self.config.mode == "soft":
            bus = None
            if self.config.event_bus:
                from repro.events.bus import EventBus
                bus = getattr(node, "bus", None)
                if bus is None:
                    bus = EventBus(node.env, node.metrics)
                    node.bus = bus
            return SoftStateReporter(node, iors, self.mrm_config,
                                     phase=phase, bus=bus)
        if self.config.mode == "strong":
            return StrongStateReporter(node, iors, self.mrm_config)
        return PredictiveReporter(
            node, iors, self.mrm_config,
            tolerance=self.config.prediction_tolerance, phase=phase)

    # -- post-deployment -----------------------------------------------------------
    def group_of(self, host: str) -> Group:
        for group in self.groups.values():
            if host in group.member_hosts:
                return group
        raise ConfigurationError(f"host {host!r} is in no group")

    def all_mrm_agents(self) -> list[MrmAgent]:
        agents = [a for g in self.groups.values() for a in g.agents]
        if self.root is not None:
            agents.extend(self.root.agents)
        return agents

    def live_hosts(self) -> set[str]:
        """Hosts the registry's soft-state views currently believe alive.

        A host is "alive" when some serving MRM still holds its member
        record — i.e. its periodic reports keep landing.  A host whose
        reports have been missed past the member timeout is swept from
        the tables and drops out of this set, which is exactly the
        paper's "the MRM can suppose a node of the group has been down
        after some time-out" signal the deployment supervisor keys on.
        """
        if self.federation is not None:
            return self.federation.live_hosts()
        out: set[str] = set()
        for agent in self.all_mrm_agents():
            if not agent.node.host.alive:
                continue
            out.update(agent.members)
            # A serving MRM host is, by construction, alive.
            out.add(agent.node.host_id)
        return out

    def retarget_group(self, group: Group) -> None:
        """Point a group's reporters/resolvers at its current MRM set
        (called after a replica promotion)."""
        iors = group.mrm_iors()
        for host in group.member_hosts:
            reporter = self.reporters.get(host)
            if reporter is not None and hasattr(reporter, "retarget"):
                reporter.retarget(iors)
            resolver = self.resolvers.get(host)
            if resolver is not None:
                resolver.retarget(iors)

    def settle_time(self, rounds: float = 2.0) -> float:
        """Sim-time to run before the registry's views are warm."""
        if self.federation is not None:
            return self.federation.settle_time(rounds)
        return rounds * self.config.update_interval + 0.5

"""Meta-Resource Managers (§2.4.3).

"Meta-Resource Managers, instead of managing one machine resources,
maintain an updated view of a set of node's Resource Managers.  This
allows a hierarchical treatment of network resources."

An :class:`MrmAgent` runs on a designated host and keeps *soft* state:

- **members** — node views refreshed by periodic reports, expired after
  a timeout ("the MRM can suppose a node of the group has been down
  after some time-out");
- **children** — compressed :class:`~repro.registry.view.Aggregate`
  summaries from child MRMs (the hierarchy);
- a **parent**, to which it periodically reports its own aggregate and
  escalates queries its level cannot answer ("if current requirements
  cannot be met with current level resources, the protocol must request
  higher hierarchy level requests").

A crash wipes the agent's RAM (members/children); on restart it resumes
with empty tables and repopulates from the next round of reports —
exactly the soft-state recovery story the paper tells.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.orb.core import InterfaceDef, Servant, op
from repro.orb.exceptions import SystemException
from repro.orb.ior import IOR
from repro.orb.typecodes import (
    sequence_tc,
    tc_boolean,
    tc_double,
    tc_long,
    tc_string,
)
from repro.registry.view import (
    AGGREGATE_TC,
    Aggregate,
    CANDIDATE_TC,
    Candidate,
    NODE_VIEW_TC,
    NodeView,
    qos_admits,
)
from repro.xmlmeta.descriptors import QoSSpec

MRM_ADAPTER = "node"

MRM_IFACE = InterfaceDef(
    "IDL:corbalc/Registry/Mrm:1.0",
    "Mrm",
    operations=[
        # Soft-state member report; doubles as keep-alive.
        op("report", [("host", tc_string), ("view", NODE_VIEW_TC)],
           oneway=True),
        # Event-bus batched variant: one call carries a whole flush
        # window of reports (parallel sequences, applied in order).
        op("report_batch", [("hosts", sequence_tc(tc_string)),
                            ("views", sequence_tc(NODE_VIEW_TC))],
           oneway=True),
        # Dead-reckoning variant: view plus a cpu-availability slope the
        # MRM extrapolates until the next report.
        op("report_model", [("host", tc_string), ("view", NODE_VIEW_TC),
                            ("cpu_slope", tc_double)], oneway=True),
        # Child MRM -> parent subtree summary.
        op("report_aggregate", [("agg", AGGREGATE_TC)], oneway=True),
        # Hierarchical component query.
        op("query", [("repo_id", tc_string), ("cpu", tc_double),
                     ("memory", tc_double), ("bandwidth", tc_double),
                     ("ttl", tc_long), ("exclude_group", tc_string)],
           sequence_tc(CANDIDATE_TC), cpu_cost=0.5),
        op("member_hosts", [], sequence_tc(tc_string)),
        op("is_mrm_alive", [], tc_boolean),
    ],
)


@dataclass
class MemberRecord:
    view: NodeView
    last_seen: float
    cpu_slope: float = 0.0
    model_time: float = 0.0


@dataclass
class ChildRecord:
    aggregate: Aggregate
    last_seen: float


class MrmConfig:
    """Timing knobs of one MRM (shared with its reporters)."""

    def __init__(self, update_interval: float = 5.0,
                 member_timeout: Optional[float] = None,
                 sweep_interval: Optional[float] = None,
                 query_timeout: float = 2.0,
                 query_ttl: int = 4) -> None:
        self.update_interval = update_interval
        self.member_timeout = (member_timeout if member_timeout is not None
                               else 3.0 * update_interval)
        self.sweep_interval = (sweep_interval if sweep_interval is not None
                               else update_interval)
        self.query_timeout = query_timeout
        self.query_ttl = query_ttl


class MrmAgent:
    """An active MRM on one node: servant + sweeping + parent reporting."""

    def __init__(self, node, group_id: str,
                 config: Optional[MrmConfig] = None,
                 parent_iors: tuple[IOR, ...] = ()) -> None:
        self.node = node
        self.group_id = group_id
        self.config = config or MrmConfig()
        self.parent_iors = tuple(parent_iors)
        self.members: dict[str, MemberRecord] = {}
        self.children: dict[str, ChildRecord] = {}
        self.expired_members = 0
        self._procs = []
        self._servant = MrmServant(self)
        self._key = f"mrm.{group_id}"
        node.orb.adapter(MRM_ADAPTER).activate(self._servant, key=self._key)
        self._start()
        node.host.on_crash.append(self._on_crash)
        node.host.on_restart.append(self._on_restart)

    # -- identity -----------------------------------------------------------
    @property
    def ior(self) -> IOR:
        return IOR(MRM_IFACE.repo_id, self.node.host_id, MRM_ADAPTER,
                   self._key)

    @property
    def env(self):
        return self.node.env

    # -- lifecycle -------------------------------------------------------------
    def _start(self) -> None:
        self._procs = [self.env.process(self._sweep_loop())]
        if self.parent_iors:
            self._procs.append(self.env.process(self._parent_report_loop()))

    def _on_crash(self, _host) -> None:
        for proc in self._procs:
            if proc.is_alive:
                proc.interrupt("host crashed")
        self._procs = []
        # RAM is gone.
        self.members.clear()
        self.children.clear()

    def _on_restart(self, _host) -> None:
        self._start()

    # -- soft state ---------------------------------------------------------------
    def accept_report(self, host: str, view: NodeView,
                      cpu_slope: float = 0.0) -> None:
        self.members[host] = MemberRecord(
            view=view, last_seen=self.env.now,
            cpu_slope=cpu_slope, model_time=self.env.now)

    def accept_aggregate(self, aggregate: Aggregate) -> None:
        self.children[aggregate.group] = ChildRecord(
            aggregate=aggregate, last_seen=self.env.now)

    def _sweep_loop(self):
        from repro.sim.kernel import Interrupt
        try:
            while True:
                yield self.env.timeout(self.config.sweep_interval)
                deadline = self.env.now - self.config.member_timeout
                for host in [h for h, rec in self.members.items()
                             if rec.last_seen < deadline]:
                    del self.members[host]
                    self.expired_members += 1
                for group in [g for g, rec in self.children.items()
                              if rec.last_seen < deadline]:
                    del self.children[group]
        except Interrupt:
            return

    def _parent_report_loop(self):
        from repro.sim.kernel import Interrupt
        report_op = MRM_IFACE.operations["report_aggregate"]
        try:
            while True:
                yield self.env.timeout(self.config.update_interval)
                agg = self.build_aggregate()
                for parent in self.parent_iors:
                    self.node.orb.send_oneway(parent, report_op,
                                              (agg.to_value(),),
                                              meter="registry.hier")
        except Interrupt:
            return

    def build_aggregate(self) -> Aggregate:
        repo_ids: set[str] = set()
        free_cpu = 0.0
        count = 0.0
        for rec in self.members.values():
            for comp in rec.view.components:
                repo_ids.update(comp.provides)
            for rid, _ior in rec.view.running:
                repo_ids.add(rid)
            free_cpu = max(free_cpu, self._member_free_cpu(rec))
            count += 1
        for rec in self.children.values():
            repo_ids.update(rec.aggregate.repo_ids)
            free_cpu = max(free_cpu, rec.aggregate.free_cpu)
            count += rec.aggregate.member_count
        return Aggregate(group=self.group_id, mrm_host=self.node.host_id,
                         repo_ids=tuple(sorted(repo_ids)),
                         free_cpu=free_cpu, member_count=count)

    def _member_free_cpu(self, rec: MemberRecord) -> float:
        """Free CPU, extrapolated when the member reports a model."""
        base = rec.view.snapshot.cpu_available
        if rec.cpu_slope:
            base += rec.cpu_slope * (self.env.now - rec.model_time)
        return max(0.0, min(base, rec.view.snapshot.cpu_capacity))

    # -- queries --------------------------------------------------------------------
    def local_candidates(self, repo_id: str, qos: QoSSpec) -> list[Candidate]:
        out: list[Candidate] = []
        for rec in self.members.values():
            for cand in Candidate.from_view(rec.view, repo_id,
                                            group=self.group_id):
                free_cpu = self._member_free_cpu(rec)
                if not cand.is_running and not qos_admits(
                        free_cpu, cand.free_memory, qos):
                    # Reusing a running instance needs no headroom;
                    # only instantiation clears the QoS bar.
                    continue
                out.append(Candidate(
                    host=cand.host, component=cand.component,
                    version=cand.version, running_ior=cand.running_ior,
                    mobility=cand.mobility, free_cpu=free_cpu,
                    free_memory=cand.free_memory, is_tiny=cand.is_tiny,
                    group=self.group_id))
        return out

    def query(self, repo_id: str, qos: QoSSpec, ttl: int,
              exclude_group: str):
        """Hierarchical resolution; a generator (nested remote calls).

        Order: own members, then promising child subtrees, then escalate
        to the parent level (excluding this subtree).
        """
        self.node.metrics.counter("registry.queries.served").inc()
        local = self.local_candidates(repo_id, qos)
        if local:
            return local
        if ttl <= 0:
            return []
        query_op = MRM_IFACE.operations["query"]
        # Descend into children that claim the interface.
        for group, rec in sorted(self.children.items()):
            if group == exclude_group:
                continue
            if repo_id not in rec.aggregate.repo_ids:
                continue
            child_ior = IOR(MRM_IFACE.repo_id, rec.aggregate.mrm_host,
                            MRM_ADAPTER, f"mrm.{group}")
            try:
                values = yield self.node.orb.invoke(
                    child_ior, query_op,
                    (repo_id, qos.cpu_units, qos.memory_mb,
                     qos.bandwidth_bps, ttl - 1, ""),
                    timeout=self.config.query_timeout,
                    meter="registry.query")
            except SystemException:
                continue
            if values:
                return [Candidate.from_value(v) for v in values]
        # Escalate to the parent level.
        for parent in self.parent_iors:
            try:
                values = yield self.node.orb.invoke(
                    parent, query_op,
                    (repo_id, qos.cpu_units, qos.memory_mb,
                     qos.bandwidth_bps, ttl - 1, self.group_id),
                    timeout=self.config.query_timeout,
                    meter="registry.query")
            except SystemException:
                continue
            return [Candidate.from_value(v) for v in values]
        return []


class MrmServant(Servant):
    """Remote face of an MRM agent."""

    _interface = MRM_IFACE

    def __init__(self, agent: MrmAgent) -> None:
        self.agent = agent

    def report(self, host: str, view: dict) -> None:
        self.agent.accept_report(host, NodeView.from_value(view))

    def report_batch(self, hosts: list, views: list) -> None:
        # Applied strictly in batch order: within one flush window the
        # reporter may have queued several generations of one host's
        # view, and last-write-wins only holds if they land in order.
        for host, view in zip(hosts, views):
            self.agent.accept_report(host, NodeView.from_value(view))

    def report_model(self, host: str, view: dict, cpu_slope: float) -> None:
        self.agent.accept_report(host, NodeView.from_value(view),
                                 cpu_slope=cpu_slope)

    def report_aggregate(self, agg: dict) -> None:
        self.agent.accept_aggregate(Aggregate.from_value(agg))

    def query(self, repo_id: str, cpu: float, memory: float,
              bandwidth: float, ttl: int, exclude_group: str):
        qos = QoSSpec(cpu_units=cpu, memory_mb=memory,
                      bandwidth_bps=bandwidth)
        # agent.query is a generator (it may make nested remote calls);
        # this servant method is therefore one too, and the ORB drives it.
        result = yield from self.agent.query(repo_id, qos, ttl,
                                             exclude_group)
        return [c.to_value() for c in result]

    def member_hosts(self) -> list[str]:
        return sorted(self.agent.members)

    def is_mrm_alive(self) -> bool:
        return True

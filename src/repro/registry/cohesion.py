"""The Network Cohesion protocol (§2.4.1, §2.4.3).

"Operations for making this node available to the network and to
interact with the rest of nodes of the whole system.  The Network
Cohesion interface supports this protocol for logical network
cohesion", covering "which nodes are available, message routing,
ping/reply handshaking".

Each node runs a :class:`CohesionAgent`:

- on startup (and reconnection) it **joins** by announcing itself to a
  set of seed peers, which reply with the peers *they* know — the view
  converges by anti-entropy;
- it **pings** a deterministic rotation of known peers every interval
  and marks peers dead after ``suspect_after`` missed replies;
- leaves are graceful (``leave`` announcement) or detected by timeout;
- the resulting live-peer view is what group formation and builder
  tools start from.

This peer-level liveness layer is deliberately independent of the MRM
soft-state layer: cohesion answers "who is in the logical network",
MRM views answer "what resources do they offer".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.orb.core import InterfaceDef, Servant, op
from repro.orb.exceptions import SystemException
from repro.orb.ior import IOR
from repro.orb.typecodes import sequence_tc, tc_boolean, tc_string
from repro.sim.kernel import Interrupt

COHESION_ADAPTER = "node"
COHESION_KEY = "cohesion"

COHESION_IFACE = InterfaceDef(
    "IDL:corbalc/Node/NetworkCohesion:1.0",
    "NetworkCohesion",
    operations=[
        # join handshake: announce yourself, learn the peer's view
        op("join", [("host", tc_string)], sequence_tc(tc_string)),
        op("leave", [("host", tc_string)], oneway=True),
        # liveness handshake
        op("ping", [("host", tc_string)], tc_boolean),
        op("known_peers", [], sequence_tc(tc_string)),
    ],
)


def cohesion_ior(host_id: str) -> IOR:
    return IOR(COHESION_IFACE.repo_id, host_id, COHESION_ADAPTER,
               COHESION_KEY)


@dataclass
class PeerRecord:
    host: str
    last_seen: float
    missed: int = 0
    alive: bool = True


class CohesionServant(Servant):
    _interface = COHESION_IFACE

    def __init__(self, agent: "CohesionAgent") -> None:
        self.agent = agent

    def join(self, host: str) -> list[str]:
        self.agent._learn(host)
        return self.agent.known_hosts(include_self=True)

    def leave(self, host: str) -> None:
        self.agent._forget(host)

    def ping(self, host: str) -> bool:
        self.agent._learn(host)
        return True

    def known_peers(self) -> list[str]:
        return self.agent.known_hosts(include_self=True)


class CohesionAgent:
    """One node's participation in the logical network."""

    def __init__(self, node, seeds: list[str],
                 ping_interval: float = 3.0,
                 suspect_after: int = 2,
                 fanout: int = 3) -> None:
        self.node = node
        self.seeds = [s for s in seeds if s != node.host_id]
        self.ping_interval = ping_interval
        self.suspect_after = suspect_after
        self.fanout = fanout
        self.peers: dict[str, PeerRecord] = {}
        self.joins_seen = 0
        self._rotation = 0
        self._procs = []
        node.orb.adapter(COHESION_ADAPTER).activate(
            CohesionServant(self), key=COHESION_KEY)
        self._start()
        node.host.on_crash.append(self._on_crash)
        node.host.on_restart.append(self._on_restart)

    # -- view --------------------------------------------------------------
    def known_hosts(self, include_self: bool = False) -> list[str]:
        hosts = sorted(h for h, rec in self.peers.items() if rec.alive)
        if include_self:
            hosts = sorted(set(hosts) | {self.node.host_id})
        return hosts

    def alive_peers(self) -> list[str]:
        return self.known_hosts(include_self=False)

    def is_peer_alive(self, host: str) -> bool:
        rec = self.peers.get(host)
        return rec is not None and rec.alive

    # -- membership bookkeeping ------------------------------------------------
    def _learn(self, host: str) -> None:
        if host == self.node.host_id:
            return
        rec = self.peers.get(host)
        if rec is None:
            self.peers[host] = PeerRecord(host=host,
                                          last_seen=self.node.env.now)
            self.joins_seen += 1
        else:
            rec.last_seen = self.node.env.now
            rec.missed = 0
            rec.alive = True

    def _forget(self, host: str) -> None:
        self.peers.pop(host, None)

    # -- lifecycle -----------------------------------------------------------------
    def _start(self) -> None:
        self._procs = [self.node.env.process(self._join_then_ping())]

    def _on_crash(self, _host) -> None:
        for proc in self._procs:
            if proc.is_alive:
                proc.interrupt("host crashed")
        self._procs = []
        self.peers.clear()  # RAM gone

    def _on_restart(self, _host) -> None:
        self._start()  # re-join: graceful reconnection

    def shutdown(self) -> None:
        """Graceful leave: tell every known peer we are going."""
        leave_op = COHESION_IFACE.operations["leave"]
        for host in self.known_hosts():
            self.node.orb.invoke(cohesion_ior(host), leave_op,
                                 (self.node.host_id,),
                                 meter="cohesion")
        for proc in self._procs:
            if proc.is_alive:
                proc.interrupt("leaving")
        self._procs = []

    # -- the protocol ------------------------------------------------------------------
    def _join_then_ping(self):
        join_op = COHESION_IFACE.operations["join"]
        ping_op = COHESION_IFACE.operations["ping"]
        env = self.node.env
        try:
            # JOIN: contact seeds, adopt their views (anti-entropy).
            for seed in self.seeds:
                try:
                    theirs = yield self.node.orb.invoke(
                        cohesion_ior(seed), join_op,
                        (self.node.host_id,), timeout=2.0,
                        meter="cohesion")
                except SystemException:
                    continue
                for host in theirs:
                    self._learn(host)

            # PING loop: a deterministic rotation over known peers.
            while True:
                yield env.timeout(self.ping_interval)
                targets = self._pick_targets()
                for host in targets:
                    rec = self.peers.get(host)
                    if rec is None:
                        continue
                    try:
                        yield self.node.orb.invoke(
                            cohesion_ior(host), ping_op,
                            (self.node.host_id,), timeout=1.5,
                            meter="cohesion")
                        rec.last_seen = env.now
                        rec.missed = 0
                        rec.alive = True
                    except SystemException:
                        rec.missed += 1
                        if rec.missed >= self.suspect_after:
                            rec.alive = False
        except Interrupt:
            return

    def _pick_targets(self) -> list[str]:
        hosts = sorted(self.peers)
        if not hosts:
            return []
        picked = []
        for _ in range(min(self.fanout, len(hosts))):
            picked.append(hosts[self._rotation % len(hosts)])
            self._rotation += 1
        return picked


def deploy_cohesion(nodes: dict, seeds: Optional[list[str]] = None,
                    **agent_kwargs) -> dict[str, CohesionAgent]:
    """Stand up cohesion agents on every node.

    *seeds* defaults to the first node — the "well-known entry point"
    pattern; the anti-entropy join spreads the full view from there.
    """
    host_ids = list(nodes)
    if seeds is None:
        seeds = host_ids[:1]
    return {
        host: CohesionAgent(nodes[host], seeds=seeds, **agent_kwargs)
        for host in host_ids
    }
